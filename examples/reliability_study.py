#!/usr/bin/env python3
"""Reliability deep-dive: Markov model, Monte-Carlo, and the threshold.

Section 3.2 argues the Piggybacked-RS system's MTTDL exceeds the RS
system's because repairs move less data.  This example:

1. computes exact Markov-chain MTTDLs with repair rates derived from
   each code's repair plans;
2. cross-validates the chain against direct Monte-Carlo simulation of a
   stripe (scaled rates);
3. shows how the advantage responds to the repair-bandwidth environment
   (congested networks widen the gap);
4. sweeps the cluster's 15-minute unavailability threshold, the policy
   knob that trades recovery traffic against exposure.

Run:  python examples/reliability_study.py
"""

import numpy as np

from repro.analysis.montecarlo import simulate_stripe_mttdl
from repro.analysis.mttdl import mttdl_comparison, mttdl_markov
from repro.analysis.recovery_time import RecoveryTimeModel
from repro.analysis.report import render_table
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.experiments import run_experiment

BLOCK = 256 * 1024 * 1024


def markov_vs_montecarlo() -> None:
    print("== 1. Markov chain vs Monte-Carlo (scaled rates) ==")
    n, r, lam = 14, 4, 0.5
    for label, mu in (("RS-like repair", 2.0), ("piggyback-like repair", 2.0 * 10 / 7.643)):
        analytic = mttdl_markov(n, r, lam, [mu] * r)
        estimate = simulate_stripe_mttdl(
            n, r, lam, [mu] * r, trials=3000, rng=np.random.default_rng(0)
        )
        low, high = estimate.confidence_interval()
        agrees = "agree" if low <= analytic <= high else "DISAGREE"
        print(f"  {label:<22}: markov {analytic:9.1f}   "
              f"monte-carlo {estimate.mean:9.1f} +/- {estimate.standard_error:.1f}  [{agrees}]")
    print()


def environment_sweep() -> None:
    print("== 2. MTTDL vs repair-bandwidth environment ==")
    rows = []
    for label, bandwidth in (
        ("idle network (1 Gb/s)", 125e6),
        ("busy network (250 Mb/s)", 31.25e6),
        ("congested (100 Mb/s)", 12.5e6),
    ):
        model = RecoveryTimeModel(
            download_bandwidth=bandwidth,
            source_bandwidth=bandwidth,
            disk_write_bandwidth=1e9,
        )
        results = mttdl_comparison(
            [ReedSolomonCode(10, 4), PiggybackedRSCode(10, 4)],
            unit_size=BLOCK,
            time_model=model,
        )
        rs, pb = results["RS(10,4)"], results["PiggybackedRS(10,4)"]
        rows.append({
            "environment": label,
            "rs_repair_h": round(rs.single_failure_repair_hours, 3),
            "pb_repair_h": round(pb.single_failure_repair_hours, 3),
            "mttdl_gain": f"{pb.mttdl_hours / rs.mttdl_hours:.3f}x",
        })
    print(render_table(rows))
    print("  the slower the network, the more the 30% download saving\n"
          "  matters for reliability -- congestion widens the MTTDL gap.\n")


def threshold_sweep() -> None:
    print("== 3. the 15-minute threshold (Section 2.2's policy default) ==")
    result = run_experiment("abl_threshold", days=8.0)
    print(render_table(result.data["rows"]))
    print("  short thresholds reconstruct transient outages (traffic);\n"
          "  long thresholds leave stripes degraded for longer (risk).")


def main() -> None:
    markov_vs_montecarlo()
    environment_sweep()
    threshold_sweep()


if __name__ == "__main__":
    main()
