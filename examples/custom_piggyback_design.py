#!/usr/bin/env python3
"""Designing your own piggyback code (arbitrary parameters, Fig. 4 style).

The paper stresses that -- unlike regenerating codes or Rotated-RS --
the Piggybacking framework supports *arbitrary* (k, r) and leaves the
designer freedom in which data units ride on which parity.  This example
rebuilds the paper's Fig. 4 toy code from scratch, then designs a custom
(6, 3) code with non-XOR coefficients and compares three partition
choices.

Run:  python examples/custom_piggyback_design.py
"""

import numpy as np

from repro import PiggybackDesign, PiggybackedRSCode, fig4_toy_design
from repro.analysis.repair_cost import repair_cost_profile
from repro.analysis.report import render_table


def fig4_walkthrough() -> None:
    print("== the paper's Fig. 4 code, from scratch ==")
    design = PiggybackDesign.from_groups(2, 2, groups=[[0]])
    assert design.matrix.tolist() == fig4_toy_design().matrix.tolist()
    code = PiggybackedRSCode(2, 2, design=design)

    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(2, 2), dtype=np.uint8)  # {a1,b1},{a2,b2}
    stripe = code.encode(data)
    print(f"  node 1 stores (a1, b1)            = {tuple(stripe[0])}")
    print(f"  node 2 stores (a2, b2)            = {tuple(stripe[1])}")
    print(f"  node 3 stores (p1(a), p1(b))      = {tuple(stripe[2])}")
    print(f"  node 4 stores (p2(a), p2(b)+a1)   = {tuple(stripe[3])}")

    plan = code.repair_plan(0)
    rebuilt, downloaded = code.execute_repair(
        0, {i: stripe[i] for i in (1, 2, 3)}, plan
    )
    assert np.array_equal(rebuilt, stripe[0])
    print(f"  recovering node 1 downloads {downloaded} bytes "
          f"(3 of the stripe's 8 stored bytes; RS needs 4)\n")


def custom_design() -> None:
    print("== a custom (6,3) code with GF(256) coefficients ==")
    design = PiggybackDesign.from_groups(
        6, 3,
        groups=[[0, 1, 2], [3, 4, 5]],
        coefficients=[[1, 2, 3], [1, 1, 7]],
    )
    code = PiggybackedRSCode(6, 3, design=design)
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=(6, 64), dtype=np.uint8)
    stripe = code.encode(data)
    for failed in range(9):
        survivors = {i: stripe[i] for i in range(9) if i != failed}
        rebuilt, __ = code.execute_repair(failed, survivors)
        assert np.array_equal(rebuilt, stripe[failed])
    profile = repair_cost_profile(code)
    print(f"  all 9 single-node repairs verified; "
          f"data-node average download {profile.average_data_units:.2f} "
          f"units (RS: 6)\n")


def partition_shootout() -> None:
    print("== partition choice matters: three (10,4) designs ==")
    candidates = {
        "near-equal 4/3/3 (default)": [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]],
        "skewed 8/1/1": [list(range(8)), [8], [9]],
        "partial 3/3 (4 units unprotected)": [[0, 1, 2], [3, 4, 5]],
    }
    rows = []
    for label, groups in candidates.items():
        code = PiggybackedRSCode(
            10, 4, design=PiggybackDesign.from_groups(10, 4, groups)
        )
        profile = repair_cost_profile(code)
        rows.append({
            "design": label,
            "avg data repair (units)": round(profile.average_data_units, 2),
            "worst data repair": max(profile.per_node_units[:10]),
            "saving vs RS": f"{1 - profile.average_data_units / 10:.0%}",
        })
    print(render_table(rows))
    print("\nnear-equal groups minimise the average -- exactly why design 1 "
          "of the\nPiggybacking framework (and this library's default) "
          "splits 10 units as 4/3/3.")


def main() -> None:
    fig4_walkthrough()
    custom_design()
    partition_shootout()


if __name__ == "__main__":
    main()
