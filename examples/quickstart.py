#!/usr/bin/env python3
"""Quickstart: encode, fail, repair -- RS vs Piggybacked-RS.

The 60-second tour of the library's public API, walking the paper's core
claim: a (10,4) Piggybacked-RS code stores exactly as much as the (10,4)
RS code the Facebook warehouse cluster uses, tolerates the same four
failures, but repairs a lost data block with ~30% less network transfer.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PiggybackedRSCode, ReedSolomonCode

BLOCK_SIZE = 1 << 20  # 1 MiB stand-in for the cluster's 256 MB blocks


def main() -> None:
    rng = np.random.default_rng(2013)

    # Ten data blocks, as the warehouse cluster groups them (Fig. 2).
    data_blocks = rng.integers(0, 256, size=(10, BLOCK_SIZE), dtype=np.uint8)

    rs = ReedSolomonCode(10, 4)
    piggyback = PiggybackedRSCode(10, 4)

    print("== encode ==")
    rs_stripe = rs.encode(data_blocks)
    pb_stripe = piggyback.encode(data_blocks)
    print(f"{rs.name}:        {rs_stripe.shape[0]} blocks stored, "
          f"overhead {rs.storage_overhead:.1f}x")
    print(f"{piggyback.name}: {pb_stripe.shape[0]} blocks stored, "
          f"overhead {piggyback.storage_overhead:.1f}x  (identical)")

    # Both codes are systematic: the data blocks are stored verbatim.
    assert np.array_equal(rs_stripe[:10], data_blocks)
    assert np.array_equal(pb_stripe[:10], data_blocks)

    print("\n== lose a data block, rebuild it ==")
    failed = 0
    rs_unit, rs_bytes = rs.execute_repair(
        failed, {i: rs_stripe[i] for i in range(14) if i != failed}
    )
    pb_unit, pb_bytes = piggyback.execute_repair(
        failed, {i: pb_stripe[i] for i in range(14) if i != failed}
    )
    assert np.array_equal(rs_unit, rs_stripe[failed])
    assert np.array_equal(pb_unit, pb_stripe[failed])
    print(f"{rs.name}:        downloaded {rs_bytes / 1e6:6.1f} MB "
          f"({rs_bytes // BLOCK_SIZE} blocks)")
    print(f"{piggyback.name}: downloaded {pb_bytes / 1e6:6.1f} MB "
          f"({pb_bytes / BLOCK_SIZE:.1f} blocks)")
    print(f"saving: {1 - pb_bytes / rs_bytes:.0%} "
          f"(the paper's Section 3 headline)")

    print("\n== both tolerate any 4 of 14 failures ==")
    gone = {2, 7, 11, 13}
    survivors = {i: pb_stripe[i] for i in range(14) if i not in gone}
    decoded = piggyback.decode(survivors)
    assert np.array_equal(decoded, data_blocks)
    print(f"erased blocks {sorted(gone)}; full data recovered: OK")

    print("\nper-block repair download (in blocks), all other blocks alive:")
    print("  block :", " ".join(f"{i:>5}" for i in range(14)))
    print("  RS    :", " ".join(f"{rs.repair_download_units(i):>5.1f}"
                                for i in range(14)))
    print("  PB-RS :", " ".join(f"{piggyback.repair_download_units(i):>5.1f}"
                                for i in range(14)))


if __name__ == "__main__":
    main()
