#!/usr/bin/env python3
"""The HDFS-RAID lifecycle of Section 2.1, with real bytes.

Hot data arrives 3-way replicated; after three months without access the
RAID policy erasure-codes it ((10,4) RS in production, Piggybacked-RS
here); machines then fail and blocks are reconstructed across racks.
This example drives the mini-HDFS layer through that whole lifecycle and
verifies byte-identical reads at every stage.

Run:  python examples/hdfs_cold_data_raiding.py
"""

import time

import numpy as np

from repro.analysis.report import format_bytes
from repro.cluster.namenode import NameNode
from repro.cluster.network import TrafficMeter
from repro.cluster.placement import DistinctRackPlacement
from repro.cluster.raidnode import RaidNode
from repro.cluster.scrubber import Scrubber
from repro.cluster.topology import Topology
from repro.codes.piggyback import PiggybackedRSCode
from repro.striping.pipeline import encode_file

BLOCK_SIZE = 256 * 1024  # 256 KiB stand-in for 256 MB


def physical_bytes(namenode: NameNode) -> int:
    return sum(node.used_bytes for node in namenode.datanodes.values())


def main() -> None:
    rng = np.random.default_rng(7)
    topology = Topology(num_racks=20, nodes_per_rack=4)
    namenode = NameNode(topology, DistinctRackPlacement(topology, seed=7))
    meter = TrafficMeter(topology, record_transfers=True)
    raidnode = RaidNode(namenode, PiggybackedRSCode(10, 4), meter)

    print("== 0. the raid node's file-encode pipeline ==")
    # The same batched data plane the raid node uses below, run
    # standalone: stripes sharded over shared memory when a pool helps,
    # serial through the zero-copy batch path otherwise.
    sample = rng.integers(0, 256, size=40 * BLOCK_SIZE, dtype=np.uint8)
    start = time.perf_counter()
    encoded = encode_file(PiggybackedRSCode(10, 4), sample, BLOCK_SIZE)
    elapsed = time.perf_counter() - start
    print(f"  encoded {format_bytes(sample.size)} into "
          f"{len(encoded.layouts)} stripes "
          f"({format_bytes(encoded.parity_bytes)} parity) in "
          f"{elapsed * 1e3:.0f} ms -- {sample.size / elapsed / 1e6:.0f} MB/s, "
          f"{'parallel' if encoded.parallel_used else 'serial'} mode")

    print("\n== 1. hot data arrives, 3-way replicated ==")
    files = {}
    for i in range(3):
        name = f"hive/warehouse/events/part-{i:05d}"
        data = rng.integers(0, 256, size=23 * BLOCK_SIZE + 1000, dtype=np.uint8)
        namenode.write_file(name, data, BLOCK_SIZE, replication=3)
        files[name] = data
    logical = sum(len(d) for d in files.values())
    print(f"  logical data : {format_bytes(logical)}")
    print(f"  stored bytes : {format_bytes(physical_bytes(namenode))} "
          f"({physical_bytes(namenode) / logical:.2f}x)")

    print("\n== 2. three months pass; the RAID policy erasure-codes it ==")
    for name in files:
        stripes = raidnode.raid_file(name)
        print(f"  {name}: {len(stripes)} stripes")
    print(f"  stored bytes : {format_bytes(physical_bytes(namenode))} "
          f"({physical_bytes(namenode) / logical:.2f}x -- the paper's 1.4x)")
    for name, data in files.items():
        assert np.array_equal(namenode.read_file(name), data)
    print("  all files still byte-identical: OK")

    print("\n== 3. machines fail; blocks are reconstructed cross-rack ==")
    victims = sorted(
        namenode.datanodes.values(), key=lambda d: -len(d.blocks)
    )[:3]
    for victim in victims:
        lost = namenode.kill_node(victim.node_id)
        print(f"  killed node {victim.node_id} "
              f"(rack {victim.rack_id}, {len(lost)} blocks lost)")
    rebuilt = raidnode.reconstruct_all_missing(time=900.0)
    recovery_bytes = meter.bytes_by_purpose["recovery"]
    print(f"  reconstructed {rebuilt} blocks, "
          f"moving {format_bytes(recovery_bytes)} across racks")
    for name, data in files.items():
        assert np.array_equal(namenode.read_file(name), data)
    print("  all files still byte-identical: OK")

    print("\n== 4. degraded read during an outage ==")
    name, data = next(iter(files.items()))
    entry = namenode.stripes[namenode.files[name].stripe_ids[0]]
    block_id = entry.layout.data_block_ids[4]
    namenode.kill_node(entry.locations[4])
    payload = raidnode.degraded_read(block_id, time=1000.0)
    assert np.array_equal(payload, data[4 * BLOCK_SIZE: 5 * BLOCK_SIZE])
    print(f"  read {block_id} through its stripe while its node is down: OK")

    print("\n== 5. scrubbing catches silent corruption ==")
    # Heal the outage from stage 4 first so every stripe is scrubbable.
    raidnode.reconstruct_all_missing(time=1500.0)
    scrubber = Scrubber(raidnode)
    victim_entry = namenode.stripes[namenode.files[name].stripe_ids[1]]
    victim_block = victim_entry.layout.all_block_ids()[2]
    victim_node = victim_entry.locations[2]
    namenode.datanodes[victim_node].blocks[victim_block].payload[0] ^= 0x08
    report = scrubber.scrub(time=2000.0)
    print(f"  scrubbed {report.stripes_checked} stripes: "
          f"{report.corrupt_units_found} corrupt unit found and repaired "
          f"({len(report.unverifiable_stripes)} degraded stripes skipped)")
    assert np.array_equal(namenode.read_file(name), data)
    print("  file byte-identical after repair: OK")

    print("\n== traffic summary ==")
    for purpose, count in sorted(meter.bytes_by_purpose.items()):
        print(f"  {purpose:<14}: {format_bytes(count)}")
    print(f"  cross-rack    : {format_bytes(meter.cross_rack_bytes)} "
          f"(through the aggregation switch: "
          f"{format_bytes(meter.aggregation_switch_bytes)})")


if __name__ == "__main__":
    main()
