#!/usr/bin/env python3
"""Design-space tour: replication vs RS vs LRC vs Piggybacked-RS.

Quantifies the trade-off the paper's Sections 1 and 5 discuss: storage
overhead, single-failure repair download, connections, fault tolerance,
and reliability (MTTDL), for every code family in the library.

Run:  python examples/code_comparison.py
"""

from itertools import combinations

from repro.analysis.mttdl import mttdl_comparison
from repro.analysis.repair_cost import repair_cost_profile
from repro.analysis.report import render_table
from repro.codes.hitchhiker import hitchhiker_xor
from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.replication import ReplicationCode
from repro.codes.rs import ReedSolomonCode

BLOCK = 256 * 1024 * 1024


def fault_tolerance_note(code) -> str:
    if code.is_mds:
        return f"any {code.r}"
    # LRC: count surviving fraction of r-failure patterns.
    patterns = list(combinations(range(code.n), code.r))
    survived = sum(1 for p in patterns if code.tolerates(p))
    return f"any {code.g + 1}, {survived / len(patterns):.0%} of {code.r}"


def main() -> None:
    codes = [
        ReplicationCode(3),
        ReedSolomonCode(10, 4),
        PiggybackedRSCode(10, 4),
        hitchhiker_xor(10, 4),
        LRCCode(10, 2, 2),
    ]
    mttdl = mttdl_comparison(codes, unit_size=BLOCK)

    rows = []
    for code in codes:
        profile = repair_cost_profile(code)
        rows.append({
            "code": code.name,
            "storage": f"{code.storage_overhead:.2f}x",
            "MDS": code.is_mds,
            "repair_dl (units)": round(profile.average_units, 2),
            "data repair_dl": round(profile.average_data_units, 2),
            "connections": profile.max_connections,
            "tolerates": fault_tolerance_note(code),
            "MTTDL (years)": f"{mttdl[code.name].mttdl_years:.2e}",
        })
    print(render_table(rows, title="(10,4)-class code comparison"))

    print("""
reading the table:
  - replication recovers with 1 unit but pays 3x storage;
  - RS is storage-optimal but repairs cost k = 10 units (the paper's
    180 TB/day problem);
  - Piggybacked-RS keeps RS's storage and fault tolerance, cutting data
    repairs to 6.5-7 units (~30-35% less) -- the paper's contribution;
  - LRC repairs cheapest among the coded options but needs the same
    1.4x storage while tolerating only 3 arbitrary failures (not MDS).
""")

    print("repair download per failed node (units of one block):")
    header = "  node      : " + " ".join(f"{i:>5}" for i in range(14))
    print(header)
    for code in codes[1:]:
        profile = repair_cost_profile(code)
        cells = " ".join(f"{u:>5.1f}" for u in profile.per_node_units)
        print(f"  {code.name:<10}: {cells}")


if __name__ == "__main__":
    main()
