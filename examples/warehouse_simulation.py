#!/usr/bin/env python3
"""The warehouse-cluster study, reproduced end to end.

Replays a month of calibrated machine failures on a 3000-node simulated
cluster -- first under the production (10,4) RS code, then the identical
failure history under the (10,4) Piggybacked-RS code -- and prints the
Fig. 3a / Fig. 3b series, the Section 2.2 degraded-stripe split, and the
Section 3.2 traffic-saving projection.

Run:  python examples/warehouse_simulation.py [--days N] [--seed S]
"""

import argparse

import numpy as np

from repro.analysis.report import format_bytes, render_table
from repro.cluster.config import PAPER_TARGETS, ClusterConfig
from repro.cluster.simulation import WarehouseSimulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=24.0)
    parser.add_argument("--seed", type=int, default=20130901)
    args = parser.parse_args()

    config = ClusterConfig(days=args.days, seed=args.seed)
    print(f"cluster: {config.num_nodes} machines on {config.num_racks} racks, "
          f"{config.num_stripes:,} (10,4) stripes "
          f"(density scaled {config.block_scale:.0f}x below production)\n")

    print("running under RS(10,4) ...")
    rs = WarehouseSimulation(config).run()
    print("replaying the same failures under PiggybackedRS(10,4) ...\n")
    pb = WarehouseSimulation(config.with_code("piggyback")).run()

    rows = []
    for day in range(rs.days):
        rows.append({
            "day": day,
            "unavailable_machines": rs.unavailability_events_per_day[day],
            "blocks_recovered": round(rs.blocks_recovered_per_day_scaled[day]),
            "rs_cross_rack_TB": round(
                rs.cross_rack_bytes_per_day_scaled[day] / 1e12, 1
            ),
            "piggyback_cross_rack_TB": round(
                pb.cross_rack_bytes_per_day_scaled[day] / 1e12, 1
            ),
        })
    print(render_table(rows, title="daily series (Fig. 3a + Fig. 3b)"))

    print("\n== medians vs the paper ==")
    comparisons = [
        ("machine-unavailability events/day",
         f"> 50", f"{rs.median_unavailability_events:.0f}"),
        ("blocks reconstructed/day",
         f"~{PAPER_TARGETS.median_blocks_recovered_per_day:,.0f}",
         f"{rs.median_blocks_recovered_scaled:,.0f}"),
        ("cross-rack recovery traffic/day",
         f"> {format_bytes(PAPER_TARGETS.median_cross_rack_bytes_per_day)}",
         format_bytes(rs.median_cross_rack_bytes_scaled)),
    ]
    for metric, paper, measured in comparisons:
        print(f"  {metric:<38} paper: {paper:<12} measured: {measured}")

    fractions = rs.degraded_fractions
    print("\n== degraded stripes (Section 2.2) ==")
    print(f"  1 missing : paper 98.08%   measured {fractions['one']:.2%}")
    print(f"  2 missing : paper  1.87%   measured {fractions['two']:.2%}")
    print(f"  3+ missing: paper  0.05%   measured {fractions['three_plus']:.2%}")

    saving = (rs.median_cross_rack_bytes_scaled
              - pb.median_cross_rack_bytes_scaled)
    print("\n== Piggybacked-RS projection (Section 3.2) ==")
    print(f"  RS cross-rack median        : "
          f"{format_bytes(rs.median_cross_rack_bytes_scaled)}/day")
    print(f"  Piggybacked-RS median       : "
          f"{format_bytes(pb.median_cross_rack_bytes_scaled)}/day")
    print(f"  measured saving             : {format_bytes(saving)}/day")
    print(f"  paper's flat-30% projection : "
          f"{format_bytes(0.30 * rs.median_cross_rack_bytes_scaled)}/day "
          f"(paper: > 50 TB)")


if __name__ == "__main__":
    main()
