"""Bench: Fig. 4 -- the (2,2) piggyback toy example (3 vs 4 units)."""

import numpy as np
from conftest import emit

from repro.codes.piggyback import PiggybackedRSCode, fig4_toy_design
from repro.experiments import run_experiment

UNIT_SIZE = 1 << 20


def test_fig4_piggyback_example(benchmark):
    code = PiggybackedRSCode(2, 2, design=fig4_toy_design())
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(2, UNIT_SIZE), dtype=np.uint8)
    stripe = code.encode(data)
    survivors = {i: stripe[i] for i in range(1, 4)}

    rebuilt, downloaded = benchmark(code.execute_repair, 0, survivors)
    assert np.array_equal(rebuilt, stripe[0])
    assert downloaded == 3 * UNIT_SIZE // 2  # 3 subunits, not 4

    result = run_experiment("fig4", unit_size=4096)
    emit(result.render())
