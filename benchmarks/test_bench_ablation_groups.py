"""Bench: ablation -- piggyback group partitions for (10,4)."""

from conftest import emit

from repro.experiments import run_experiment


def test_ablation_group_partitions(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("abl_groups",), rounds=1, iterations=1
    )
    emit(result.render())
    assert result.paper_rows[0]["measured"] is True  # default == optimal
    assert result.data["best_units"] <= 6.7
