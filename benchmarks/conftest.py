"""Benchmark harness configuration.

Every bench regenerates one figure/table of the paper and prints the
same rows/series the paper reports (via ``ExperimentResult.render``).
Simulation-backed benches execute the full-duration run exactly once
inside ``benchmark.pedantic(rounds=1)`` -- the interesting output is the
table, the timing is the cost of regenerating it.

Run with::

    pytest benchmarks/ --benchmark-only

Benches that call :func:`record_bench` additionally persist their
metrics to a ``BENCH_<report>.json`` file at the repository root
(``BENCH_codec.json`` for codec kernels, ``BENCH_simulator.json`` for
simulator throughput), merged with any existing entries so partial runs
(``-k rs``) never drop rows.  The files are the machine-readable perf
trajectory: future PRs compare their numbers against them.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Machine-readable bench reports, at the repository root, by report key.
BENCH_JSON_PATHS: Dict[str, Path] = {
    "codec": _REPO_ROOT / "BENCH_codec.json",
    "simulator": _REPO_ROOT / "BENCH_simulator.json",
}

_RESULTS: Dict[str, Dict[str, Dict[str, float]]] = {}


def emit(text: str) -> None:
    """Print a bench report so it survives pytest capture (-s not needed
    for humans reading the benchmark run with captured output disabled;
    use --capture=no to stream)."""
    sys.stdout.write("\n" + text + "\n")


def record_bench(name: str, report: str = "codec", **metrics) -> None:
    """Record one bench row for the machine-readable report.

    ``name`` identifies the measurement (e.g. ``"RS(10,4).encode"``);
    ``report`` selects the output file (a :data:`BENCH_JSON_PATHS` key);
    ``metrics`` are JSON-scalar values (MB/s, seconds, byte counts).
    """
    if report not in BENCH_JSON_PATHS:
        raise KeyError(
            f"unknown bench report {report!r}; "
            f"available: {sorted(BENCH_JSON_PATHS)}"
        )
    row = dict(metrics)
    if "backend" not in row:
        # Stamp which GF kernel backend produced the number -- a cffi
        # row and a numpy row are not comparable.
        from repro.gf import backends

        row["backend"] = backends.active_backend().name
    _RESULTS.setdefault(report, {})[name] = row


def pytest_sessionfinish(session, exitstatus):
    for report, rows in _RESULTS.items():
        path = BENCH_JSON_PATHS[report]
        merged: Dict[str, Dict[str, float]] = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text())
            except (ValueError, OSError):
                merged = {}
        merged.update(rows)
        # Environment block: numbers are meaningless without knowing
        # the interpreter, numpy, kernel backend and CPU they came from.
        from repro.bench import bench_meta

        merged["meta"] = bench_meta()
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
