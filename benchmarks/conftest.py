"""Benchmark harness configuration.

Every bench regenerates one figure/table of the paper and prints the
same rows/series the paper reports (via ``ExperimentResult.render``).
Simulation-backed benches execute the full-duration run exactly once
inside ``benchmark.pedantic(rounds=1)`` -- the interesting output is the
table, the timing is the cost of regenerating it.

Run with::

    pytest benchmarks/ --benchmark-only

Benches that call :func:`record_bench` additionally persist their
metrics to ``BENCH_codec.json`` at the repository root, merged with any
existing entries so partial runs (``-k rs``) never drop rows.  The file
is the machine-readable perf trajectory: future PRs compare their
numbers against it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict

#: Machine-readable bench report, at the repository root.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_codec.json"

_RESULTS: Dict[str, Dict[str, float]] = {}


def emit(text: str) -> None:
    """Print a bench report so it survives pytest capture (-s not needed
    for humans reading the benchmark run with captured output disabled;
    use --capture=no to stream)."""
    sys.stdout.write("\n" + text + "\n")


def record_bench(name: str, **metrics) -> None:
    """Record one bench row for the machine-readable report.

    ``name`` identifies the measurement (e.g. ``"RS(10,4).encode"``);
    ``metrics`` are JSON-scalar values (MB/s, seconds, byte counts).
    """
    _RESULTS[name] = dict(metrics)


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    merged: Dict[str, Dict[str, float]] = {}
    if BENCH_JSON_PATH.exists():
        try:
            merged = json.loads(BENCH_JSON_PATH.read_text())
        except (ValueError, OSError):
            merged = {}
    merged.update(_RESULTS)
    BENCH_JSON_PATH.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )
