"""Benchmark harness configuration.

Every bench regenerates one figure/table of the paper and prints the
same rows/series the paper reports (via ``ExperimentResult.render``).
Simulation-backed benches execute the full-duration run exactly once
inside ``benchmark.pedantic(rounds=1)`` -- the interesting output is the
table, the timing is the cost of regenerating it.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a bench report so it survives pytest capture (-s not needed
    for humans reading the benchmark run with captured output disabled;
    use --capture=no to stream)."""
    sys.stdout.write("\n" + text + "\n")
