"""Bench: Fig. 3a -- machines unavailable >15 min per day (34 days)."""

from conftest import emit

from repro.analysis.stats import within_factor
from repro.experiments import run_experiment


def test_fig3a_unavailability(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("fig3a",),
        kwargs={"days": 34.0},
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    median = result.data["summary"]["median"]
    # Paper: median above 50 events/day, spikes into the hundreds.
    assert within_factor(median, 52.0, 1.6)
    assert result.data["summary"]["max"] > 100
