"""Bench: codec microbenchmarks -- encode/decode/repair throughput.

Not a paper figure, but the quantity that decides whether a software
codec can keep up with the cluster's recovery rate; printed in MB/s of
*logical* data processed.
"""

import numpy as np
import pytest
from conftest import emit, record_bench

from repro.analysis.report import render_kv
from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode

UNIT_SIZE = 1 << 20

CODES = {
    "rs": ReedSolomonCode(10, 4),
    "piggyback": PiggybackedRSCode(10, 4),
    "lrc": LRCCode(10, 2, 2),
    "crs-bitmatrix": CauchyBitmatrixRSCode(10, 4),
}


def make_stripe(code):
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, size=(10, UNIT_SIZE), dtype=np.uint8)
    return data, code.encode(data)


@pytest.mark.parametrize("name", list(CODES))
def test_encode_throughput(benchmark, name):
    code = CODES[name]
    data, __ = make_stripe(code)
    benchmark(code.encode, data)
    # Median, not mean: one-off page faults on shared hosts skew the
    # mean; acceptance comparisons key off the median throughout.
    mb_per_s = 10 * UNIT_SIZE / benchmark.stats["median"] / 1e6
    emit(render_kv(f"{code.name} encode", {"MB_per_s": round(mb_per_s, 1)}))
    record_bench(
        f"{code.name}.encode",
        MB_per_s=round(mb_per_s, 1),
        mean_s=benchmark.stats["mean"],
        median_s=benchmark.stats["median"],
    )


@pytest.mark.parametrize("name", list(CODES))
def test_decode_throughput(benchmark, name):
    """Worst-case decode: all r data losses, recover from parities."""
    code = CODES[name]
    data, stripe = make_stripe(code)
    erased = min(code.r, 2)
    available = {i: stripe[i] for i in range(erased, code.n)}
    decoded = benchmark(code.decode, available)
    assert np.array_equal(decoded, data)
    mb_per_s = 10 * UNIT_SIZE / benchmark.stats["median"] / 1e6
    emit(render_kv(
        f"{code.name} decode ({erased} erasures)",
        {"MB_per_s": round(mb_per_s, 1)},
    ))
    record_bench(
        f"{code.name}.decode",
        MB_per_s=round(mb_per_s, 1),
        mean_s=benchmark.stats["mean"],
        median_s=benchmark.stats["median"],
        erasures=erased,
    )


@pytest.mark.parametrize("name", list(CODES))
def test_repair_throughput(benchmark, name):
    code = CODES[name]
    __, stripe = make_stripe(code)
    available = {i: stripe[i] for i in range(1, code.n)}
    rebuilt, downloaded = benchmark(code.execute_repair, 0, available)
    assert np.array_equal(rebuilt, stripe[0])
    mb_per_s = UNIT_SIZE / benchmark.stats["median"] / 1e6
    emit(render_kv(
        f"{code.name} single-unit repair",
        {
            "rebuilt_MB_per_s": round(mb_per_s, 1),
            "downloaded_units": downloaded / UNIT_SIZE,
        },
    ))
    record_bench(
        f"{code.name}.repair",
        rebuilt_MB_per_s=round(mb_per_s, 1),
        mean_s=benchmark.stats["mean"],
        median_s=benchmark.stats["median"],
        downloaded_units=downloaded / UNIT_SIZE,
    )
