"""Bench: codec microbenchmarks -- encode/decode/repair throughput.

Not a paper figure, but the quantity that decides whether a software
codec can keep up with the cluster's recovery rate; printed in MB/s of
*logical* data processed.

Every entry is timed over an explicit round count (``REPEATS``) and the
round count is stamped into ``BENCH_codec.json`` -- a median over one
sample is just that sample, and the committed baselines are compared by
median.  The repair rows additionally record the paper's core
efficiency metric, rebuilt bytes per downloaded byte: RS(10,4) reads 10
units to rebuild 1, Piggybacked-RS averages 7, LRC's local groups read
5 (Sections 2.2 and 5 of the paper).
"""

import os

import numpy as np
import pytest
from conftest import emit, record_bench

from repro.analysis.report import render_kv
from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

UNIT_SIZE = 1 << 14 if _SMOKE else 1 << 20

#: Explicit timing repeats; medians over fewer than ~7 samples on this
#: class of shared host are dominated by scheduling noise.
REPEATS = 3 if _SMOKE else 9
WARMUP = 0 if _SMOKE else 1

CODES = {
    "rs": ReedSolomonCode(10, 4),
    "piggyback": PiggybackedRSCode(10, 4),
    "lrc": LRCCode(10, 2, 2),
    "crs-bitmatrix": CauchyBitmatrixRSCode(10, 4),
}

#: Units downloaded per unit rebuilt, by family -- the paper's repair
#: network cost (RS reads k=10; piggybacking averages 7; LRC's local
#: group reads 5).  Guarded exactly: a plan regression that silently
#: reads more would invalidate every downstream traffic number.
EXPECTED_DOWNLOADED_UNITS = {
    "rs": 10.0,
    "piggyback": 7.0,
    "lrc": 5.0,
    "crs-bitmatrix": 10.0,
}

#: Machine-calibrated floor for the Piggybacked-RS fused encode (the
#: PR-1..PR-6 outlier: 150 MB/s against RS's 2000+ before the fused
#: half-width kernels).  Applies on native backends off smoke mode.
PIGGYBACK_ENCODE_FLOOR_MB_PER_S = 600.0


def _native_backend_name():
    from repro.gf import backends

    backend = backends.native_backend()
    return backend.name if backend is not None else None


def make_stripe(code):
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, size=(10, UNIT_SIZE), dtype=np.uint8)
    return data, code.encode(data)


@pytest.mark.parametrize("name", list(CODES))
def test_encode_throughput(benchmark, name):
    code = CODES[name]
    data, __ = make_stripe(code)
    benchmark.pedantic(
        code.encode, args=(data,), rounds=REPEATS, warmup_rounds=WARMUP,
        iterations=1,
    )
    # Median, not mean: one-off page faults on shared hosts skew the
    # mean; acceptance comparisons key off the median throughout.
    mb_per_s = 10 * UNIT_SIZE / benchmark.stats["median"] / 1e6
    emit(render_kv(f"{code.name} encode", {"MB_per_s": round(mb_per_s, 1)}))
    record_bench(
        f"{code.name}.encode",
        MB_per_s=round(mb_per_s, 1),
        mean_s=benchmark.stats["mean"],
        median_s=benchmark.stats["median"],
        repeats=REPEATS,
    )
    if (
        name == "piggyback"
        and not _SMOKE
        and _native_backend_name() is not None
    ):
        assert mb_per_s >= PIGGYBACK_ENCODE_FLOOR_MB_PER_S, (
            f"Piggybacked-RS fused encode regressed to "
            f"{mb_per_s:.1f} MB/s (floor "
            f"{PIGGYBACK_ENCODE_FLOOR_MB_PER_S} MB/s)"
        )


@pytest.mark.parametrize("name", list(CODES))
def test_decode_throughput(benchmark, name):
    """Worst-case decode: all r data losses, recover from parities."""
    code = CODES[name]
    data, stripe = make_stripe(code)
    erased = min(code.r, 2)
    available = {i: stripe[i] for i in range(erased, code.n)}
    decoded = benchmark.pedantic(
        code.decode, args=(available,), rounds=REPEATS,
        warmup_rounds=WARMUP, iterations=1,
    )
    assert np.array_equal(decoded, data)
    mb_per_s = 10 * UNIT_SIZE / benchmark.stats["median"] / 1e6
    emit(render_kv(
        f"{code.name} decode ({erased} erasures)",
        {"MB_per_s": round(mb_per_s, 1)},
    ))
    record_bench(
        f"{code.name}.decode",
        MB_per_s=round(mb_per_s, 1),
        mean_s=benchmark.stats["mean"],
        median_s=benchmark.stats["median"],
        erasures=erased,
        repeats=REPEATS,
    )


@pytest.mark.parametrize("name", list(CODES))
def test_repair_throughput(benchmark, name):
    code = CODES[name]
    __, stripe = make_stripe(code)
    available = {i: stripe[i] for i in range(1, code.n)}
    rebuilt, downloaded = benchmark.pedantic(
        code.execute_repair, args=(0, available), rounds=REPEATS,
        warmup_rounds=WARMUP, iterations=1,
    )
    assert np.array_equal(rebuilt, stripe[0])
    downloaded_units = downloaded / UNIT_SIZE
    assert downloaded_units == EXPECTED_DOWNLOADED_UNITS[name], (
        f"{code.name} repair now downloads {downloaded_units} units per "
        f"unit rebuilt (expected {EXPECTED_DOWNLOADED_UNITS[name]})"
    )
    mb_per_s = UNIT_SIZE / benchmark.stats["median"] / 1e6
    rebuilt_per_downloaded = UNIT_SIZE / downloaded
    emit(render_kv(
        f"{code.name} single-unit repair",
        {
            "rebuilt_MB_per_s": round(mb_per_s, 1),
            "downloaded_units": downloaded_units,
            "rebuilt_per_downloaded_byte": round(rebuilt_per_downloaded, 4),
        },
    ))
    record_bench(
        f"{code.name}.repair",
        rebuilt_MB_per_s=round(mb_per_s, 1),
        mean_s=benchmark.stats["mean"],
        median_s=benchmark.stats["median"],
        downloaded_units=downloaded_units,
        rebuilt_per_downloaded_byte=round(rebuilt_per_downloaded, 4),
        repeats=REPEATS,
    )
