"""Bench: ablation -- distinct-rack vs distinct-node placement."""

from conftest import emit

from repro.experiments import run_experiment


def test_ablation_placement(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("abl_placement",),
        kwargs={"days": 8.0},
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    for row in result.paper_rows:
        assert row["measured"] is True
