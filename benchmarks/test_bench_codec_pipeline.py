"""Bench: file-level codec pipeline -- batched encode/repair throughput.

PR 1 measured the codecs one stripe at a time (``RS(10,4).encode`` /
``.repair`` in ``BENCH_codec.json``); this bench measures the file-level
data plane those kernels now feed: :func:`repro.striping.pipeline.encode_file`
for whole-file encode and :meth:`StripeCodec.repair_blocks` for a
recovery wave of degraded stripes, both at 256 KiB units.

Two comparisons are recorded for each operation:

- ``speedup_vs_scalar``: against the scalar per-stripe codec loop run in
  the same process on the same bytes -- the like-for-like measure of
  what batching buys, robust to machine differences;
- ``speedup_vs_pr1``: against the frozen PR-1 single-stripe absolute
  (encode 176.0 MB/s, repair 61.2 MB/s at 1 MiB units, commit 4f03164,
  same machine as the committed numbers).

``REPRO_BENCH_SMOKE=1`` (CI shared runners) shrinks the workload and
skips the machine-calibrated wall-clock floors, but still fails if any
code's fused batch path is disabled.
"""

import io
import os
import statistics
import time

import numpy as np
from conftest import emit, record_bench

from repro.analysis.report import render_kv
from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.striping.checksum import crc32c
from repro.striping.codec import StripeCodec
from repro.striping.layout import group_into_stripes
from repro.striping.pipeline import (
    CompiledFileRepair,
    _data_slot_lists,
    _ShardGeometry,
    encode_file,
    repair_file,
    repair_stream,
)

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

UNIT_SIZE = 256 * 1024
STRIPES = 2 if _SMOKE else 12
SCALAR_ROUNDS = 1 if _SMOKE else 5
#: This host's wall-clock wobbles by 1.5-2x between samples, so floors
#: key off the min over a generous round count (the standard
#: noise-robust throughput statistic, same as the simulator bench).
BENCH_ROUNDS = 1 if _SMOKE else 40
WARMUP_ROUNDS = 0 if _SMOKE else 3

#: Frozen PR-1 single-stripe absolutes (1 MiB units, commit 4f03164).
PR1_ENCODE_MB_PER_S = 176.0
PR1_REPAIR_MB_PER_S = 61.2

#: Frozen PR-3 batched file-encode absolute (256 KiB units, numpy
#: kernels, commit 1e77443, same machine as the PR-1 numbers).  The
#: native-backend floor below is relative to this.
PR3_FILE_ENCODE_MB_PER_S = 776.9

#: Machine-calibrated floors, skipped under REPRO_BENCH_SMOKE=1.  The
#: encode floor is the issue's headline target (>=4x the PR-1 number).
#: Repair is gated on the like-for-like scalar ratio: the absolute 3x
#: PR-1 bar (183.6 MB/s) sits above this host's measured memory ceiling
#: for 5 table-takes/byte, so the honest absolutes are recorded and the
#: floor protects the batching win itself.
ENCODE_SPEEDUP_VS_PR1_FLOOR = 4.0
REPAIR_SPEEDUP_VS_SCALAR_FLOOR = 2.0

#: Kernel-engine targets (this PR): native file encode >= 3x the PR-3
#: batched baseline, and the compiled CRS XOR schedule >= 2x the naive
#: gather applied to the same bytes in the same process.  Both key off
#: medians and are skipped under REPRO_BENCH_SMOKE=1 or when no native
#: backend is available (the ratios measure the kernels, not numpy).
ENCODE_SPEEDUP_VS_PR3_FLOOR = 3.0
CRS_SCHEDULE_SPEEDUP_FLOOR = 2.0

CODE = ReedSolomonCode(10, 4)

ALL_CODES = {
    "rs": CODE,
    "piggyback": PiggybackedRSCode(10, 4),
    "lrc": LRCCode(10, 2, 2),
    "crs-bitmatrix": CauchyBitmatrixRSCode(10, 4),
}


def _make_file():
    rng = np.random.default_rng(7)
    return rng.integers(
        0, 256, size=STRIPES * CODE.k * UNIT_SIZE, dtype=np.uint8
    )


def _best_of(fn, rounds):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _median_of(fn, rounds):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _native_backend_name():
    from repro.gf import backends

    backend = backends.native_backend()
    return backend.name if backend is not None else None


def test_fused_batch_paths_installed():
    """Every production code must expose the batched fast path."""
    for name, code in ALL_CODES.items():
        assert code.has_fused_batch, f"{name} lost its fused batch path"


def test_file_encode_throughput(benchmark):
    data = _make_file()
    state = {}

    def run():
        state["result"] = encode_file(CODE, data, UNIT_SIZE, parallel=False)

    benchmark.pedantic(
        run, rounds=BENCH_ROUNDS, warmup_rounds=WARMUP_ROUNDS, iterations=1
    )
    result = state["result"]
    assert result.parity_bytes == STRIPES * CODE.r * UNIT_SIZE
    assert CODE.has_fused_batch

    # Like-for-like scalar loop on the same bytes.
    codec = StripeCodec(CODE)
    layouts = result.layouts
    slot_lists = _data_slot_lists(layouts, result.file.blocks)

    def scalar_encode():
        for layout, slots in zip(layouts, slot_lists):
            codec.encode_stripe(layout, slots)

    scalar_s = _median_of(scalar_encode, SCALAR_ROUNDS)
    batched_s = benchmark.stats["median"]
    mb = data.size / 1e6
    mb_per_s = mb / batched_s
    scalar_mb_per_s = mb / scalar_s
    metrics = {
        "MB_per_s": round(mb_per_s, 1),
        "mean_s": benchmark.stats["mean"],
        "median_s": benchmark.stats["median"],
        "unit_KiB": UNIT_SIZE // 1024,
        "stripes": STRIPES,
        "scalar_MB_per_s": round(scalar_mb_per_s, 1),
        "speedup_vs_scalar": round(mb_per_s / scalar_mb_per_s, 2),
        "pr1_single_stripe_MB_per_s": PR1_ENCODE_MB_PER_S,
        "speedup_vs_pr1": round(mb_per_s / PR1_ENCODE_MB_PER_S, 2),
        "pr3_batched_MB_per_s": PR3_FILE_ENCODE_MB_PER_S,
        "speedup_vs_pr3": round(mb_per_s / PR3_FILE_ENCODE_MB_PER_S, 2),
        "repeats": BENCH_ROUNDS,
    }
    emit(render_kv("RS(10,4) file encode (batched pipeline)", metrics))
    record_bench("RS(10,4).file_encode", **metrics)
    if not _SMOKE:
        assert metrics["speedup_vs_pr1"] >= ENCODE_SPEEDUP_VS_PR1_FLOOR, (
            f"file encode is only {metrics['speedup_vs_pr1']}x the PR-1 "
            f"single-stripe baseline (floor {ENCODE_SPEEDUP_VS_PR1_FLOOR}x)"
        )
    if not _SMOKE and _native_backend_name() is not None:
        assert metrics["speedup_vs_pr3"] >= ENCODE_SPEEDUP_VS_PR3_FLOOR, (
            f"native file encode is only {metrics['speedup_vs_pr3']}x the "
            f"PR-3 batched baseline (floor {ENCODE_SPEEDUP_VS_PR3_FLOOR}x)"
        )


def test_file_repair_throughput(benchmark):
    data = _make_file()
    encoded = encode_file(CODE, data, UNIT_SIZE, parallel=False)
    layouts = encoded.layouts
    slot_lists = _data_slot_lists(layouts, encoded.file.blocks)
    requests = []
    for layout, slots, parities in zip(
        layouts, slot_lists, encoded.parities
    ):
        available = {
            slot: block for slot, block in enumerate(slots) if block
        }
        available.update({CODE.k + j: p for j, p in enumerate(parities)})
        del available[0]
        requests.append((layout, 0, available))

    codec = StripeCodec(CODE)
    state = {}

    def run():
        state["results"] = codec.repair_blocks(requests)

    benchmark.pedantic(
        run, rounds=BENCH_ROUNDS, warmup_rounds=WARMUP_ROUNDS, iterations=1
    )
    results = state["results"]
    for (block, __, ___), slots in zip(results, slot_lists):
        assert np.array_equal(block.payload, slots[0].payload)

    oracle = StripeCodec(CODE)

    def scalar_repair():
        for layout, failed, available in requests:
            oracle.repair_block(layout, failed, available)

    scalar_s = _median_of(scalar_repair, SCALAR_ROUNDS)
    batched_s = benchmark.stats["median"]
    rebuilt_mb = STRIPES * UNIT_SIZE / 1e6
    mb_per_s = rebuilt_mb / batched_s
    scalar_mb_per_s = rebuilt_mb / scalar_s
    metrics = {
        "rebuilt_MB_per_s": round(mb_per_s, 1),
        "mean_s": benchmark.stats["mean"],
        "median_s": benchmark.stats["median"],
        "unit_KiB": UNIT_SIZE // 1024,
        "stripes": STRIPES,
        "scalar_MB_per_s": round(scalar_mb_per_s, 1),
        "speedup_vs_scalar": round(mb_per_s / scalar_mb_per_s, 2),
        "pr1_single_stripe_MB_per_s": PR1_REPAIR_MB_PER_S,
        "speedup_vs_pr1": round(mb_per_s / PR1_REPAIR_MB_PER_S, 2),
        "repeats": BENCH_ROUNDS,
    }
    emit(render_kv(
        "RS(10,4) file repair (batched recovery wave)", metrics
    ))
    record_bench("RS(10,4).repair_blocks_wave", **metrics)
    if not _SMOKE:
        assert (
            metrics["speedup_vs_scalar"] >= REPAIR_SPEEDUP_VS_SCALAR_FLOOR
        ), (
            f"batched repair is only {metrics['speedup_vs_scalar']}x the "
            f"scalar loop (floor {REPAIR_SPEEDUP_VS_SCALAR_FLOOR}x)"
        )


def test_crs_schedule_throughput(benchmark):
    """Compiled XOR schedule vs the naive strip gather, same bytes.

    The ratio is like-for-like in-process (robust to machine
    differences); the floor asserts the schedule engine delivers its
    >=2x acceptance target whenever a native backend is active.
    """
    from repro.gf.bitmatrix import W, xor_encode_strips

    code = ALL_CODES["crs-bitmatrix"]
    rng = np.random.default_rng(7)
    unit = UNIT_SIZE if not _SMOKE else 1 << 14
    data = rng.integers(0, 256, size=(code.k, unit), dtype=np.uint8)
    strips = data.reshape(code.k * W, unit // W)
    schedule = code._encode_schedule()
    expected = xor_encode_strips(code.expanded[code.k * W :], strips)
    assert np.array_equal(schedule.apply(strips), expected)

    benchmark.pedantic(
        lambda: schedule.apply(strips),
        rounds=BENCH_ROUNDS,
        warmup_rounds=WARMUP_ROUNDS,
        iterations=1,
    )
    naive_s = _median_of(
        lambda: xor_encode_strips(code.expanded[code.k * W :], strips),
        SCALAR_ROUNDS,
    )
    scheduled_s = benchmark.stats["median"]
    mb = data.size / 1e6
    metrics = {
        "MB_per_s": round(mb / scheduled_s, 1),
        "mean_s": benchmark.stats["mean"],
        "median_s": benchmark.stats["median"],
        "unit_KiB": unit // 1024,
        "naive_MB_per_s": round(mb / naive_s, 1),
        "speedup_vs_naive": round(naive_s / scheduled_s, 2),
        "raw_xors": schedule.raw_xors,
        "scheduled_xors": schedule.scheduled_xors,
        "repeats": BENCH_ROUNDS,
    }
    emit(render_kv("CRS(10,4) encode (compiled XOR schedule)", metrics))
    record_bench("CRS(10,4).xor_schedule_encode", **metrics)
    if not _SMOKE and _native_backend_name() is not None:
        assert metrics["speedup_vs_naive"] >= CRS_SCHEDULE_SPEEDUP_FLOOR, (
            f"XOR schedule is only {metrics['speedup_vs_naive']}x the "
            f"naive gather (floor {CRS_SCHEDULE_SPEEDUP_FLOOR}x)"
        )


# ----------------------------------------------------------------------
# Compiled repair plans + streaming reconstruction (this PR)
# ----------------------------------------------------------------------

#: Compiled-repair steady-state geometry: the whole survivor working
#: set (10 survivors x 16 stripes x 8 KiB = 1.25 MiB) plus output fits
#: in L2, and the compiled plan replays it as one pre-bound native wave
#: per run.  This is the repair-kernel ceiling the data plane feeds.
REPAIR_STRIPES = 2 if _SMOKE else 16
REPAIR_BLOCK_SIZE = 8192

#: Machine-calibrated floor (best-of-N, cffi backend): compiled
#: whole-file repair must rebuild at multi-GB/s.  Measured 4.3 GB/s
#: best / 4.1 GB/s quiet-host median on the committed-baseline host;
#: floored with headroom.  Best-of, not median: see the estimator note
#: in :func:`test_compiled_file_repair_throughput`.
COMPILED_REPAIR_FLOOR_MB_PER_S = 3200.0

#: Larger honest end-to-end geometry for repair_file / repair_stream:
#: checksum verification, geometry planning and (for the stream) the
#: reader/writer threads are all inside the clock.
E2E_STRIPES = 2 if _SMOKE else 12
E2E_BLOCK_SIZE = 16384 if _SMOKE else 256 * 1024


def _make_shards(code, stripes, block_size, failed):
    """Encode a random file and return (file_size, shards, checksums)."""
    file_size = code.k * block_size * stripes
    rng = np.random.default_rng(7)
    geometry = _ShardGeometry(code, "bench", file_size, block_size)
    data = rng.integers(
        0, 256, (stripes, code.k, block_size), dtype=np.uint8
    )
    parities = np.stack(
        [code.encode(data[t])[code.k :] for t in range(stripes)]
    )
    shards = {}
    checksums = {}
    for slot in range(code.n):
        if slot < code.k:
            shard = np.ascontiguousarray(data[:, slot, :])
        else:
            shard = np.ascontiguousarray(parities[:, slot - code.k, :])
        checksums[slot] = [crc32c(shard[t]) for t in range(stripes)]
        shards[slot] = shard.reshape(-1)
    assert all(
        shards[s].size == geometry.shard_size(s) for s in range(code.n)
    )
    return file_size, shards, checksums


def test_compiled_file_repair_throughput(benchmark):
    """Compiled repair plan at L2-resident geometry: the kernel ceiling.

    One :class:`CompiledFileRepair` instance is compiled outside the
    clock; the timed region is ``run()`` -- the fused survivor waves
    against current buffer contents, which is the steady state of a
    raid node draining a repair queue.  Rebuilt bytes are verified
    against the independently encoded shard.
    """
    code = CODE
    failed = 0
    file_size, shards, _ = _make_shards(
        code, REPAIR_STRIPES, REPAIR_BLOCK_SIZE, failed
    )
    expected = shards.pop(failed)
    compiled = CompiledFileRepair(
        code, shards, failed, REPAIR_BLOCK_SIZE, file_size, name="bench"
    )
    state = {}

    def run():
        state["stats"] = compiled.run()

    benchmark.pedantic(
        run, rounds=BENCH_ROUNDS, warmup_rounds=WARMUP_ROUNDS, iterations=1
    )
    assert np.array_equal(compiled.out, expected)
    rebuilt_mb = compiled.out_size / 1e6
    # One run() is ~30 us at this geometry -- the same scale as a
    # scheduler interruption on this single-CPU shared host, so the
    # round *median* swings by 50% with ambient load.  The noise is
    # strictly one-sided (an interruption can only make a round
    # slower), so the minimum is the stable estimator of the kernel's
    # capability -- the convention ``timeit`` documents for exactly
    # this reason.  The headline and the floor use best-of-N; the
    # median is recorded alongside so load-dependent drift stays
    # visible in the committed baselines.
    best_s = benchmark.stats["min"]
    median_s = benchmark.stats["median"]
    mb_per_s = rebuilt_mb / best_s
    metrics = {
        "rebuilt_MB_per_s": round(mb_per_s, 1),
        "median_MB_per_s": round(rebuilt_mb / median_s, 1),
        "mean_s": benchmark.stats["mean"],
        "median_s": median_s,
        "best_s": best_s,
        "block_KiB": REPAIR_BLOCK_SIZE // 1024,
        "stripes": REPAIR_STRIPES,
        "downloaded_units": state["stats"].bytes_read / compiled.out_size,
        "repeats": BENCH_ROUNDS,
    }
    emit(render_kv("RS(10,4) compiled file repair", metrics))
    record_bench("RS(10,4).file_repair", **metrics)
    if not _SMOKE and _native_backend_name() is not None:
        assert mb_per_s >= COMPILED_REPAIR_FLOOR_MB_PER_S, (
            f"compiled file repair rebuilds at {mb_per_s:.1f} MB/s "
            f"(floor {COMPILED_REPAIR_FLOOR_MB_PER_S} MB/s)"
        )


def test_file_repair_e2e_throughput(benchmark):
    """Honest end-to-end repair_file: plan, rebuild, verify CRCs.

    Everything is inside the clock -- geometry construction, plan
    compilation, the fused waves, and per-stripe CRC32C verification of
    the rebuilt bytes.  No floor: the number documents the full-path
    cost next to the kernel ceiling above.
    """
    code = CODE
    failed = 0
    file_size, shards, checksums = _make_shards(
        code, E2E_STRIPES, E2E_BLOCK_SIZE, failed
    )
    expected = shards.pop(failed)
    state = {}

    def run():
        state["result"] = repair_file(
            code,
            shards,
            failed,
            E2E_BLOCK_SIZE,
            file_size,
            name="bench",
            checksums=checksums,
            parallel=False,
        )

    benchmark.pedantic(
        run, rounds=max(1, BENCH_ROUNDS // 4),
        warmup_rounds=WARMUP_ROUNDS, iterations=1,
    )
    result = state["result"]
    assert np.array_equal(result.rebuilt, expected)
    assert result.crc_mismatches == 0
    rebuilt_mb = result.rebuilt_bytes / 1e6
    median_s = benchmark.stats["median"]
    metrics = {
        "rebuilt_MB_per_s": round(rebuilt_mb / median_s, 1),
        "mean_s": benchmark.stats["mean"],
        "median_s": median_s,
        "block_KiB": E2E_BLOCK_SIZE // 1024,
        "stripes": E2E_STRIPES,
        "crc_verified": True,
        "repeats": max(1, BENCH_ROUNDS // 4),
    }
    emit(render_kv("RS(10,4) file repair end-to-end (CRC verified)", metrics))
    record_bench("RS(10,4).file_repair_e2e", **metrics)


def test_repair_stream_throughput(benchmark):
    """Streaming repair over in-memory survivor shards.

    Reader/rebuild/writer threads, bounded queues and executor reuse
    all inside the clock; output proven byte-identical to the stored
    shard every round.
    """
    code = CODE
    failed = 0
    file_size, shards, checksums = _make_shards(
        code, E2E_STRIPES, E2E_BLOCK_SIZE, failed
    )
    expected = shards.pop(failed).tobytes()
    sources = {slot: shard.tobytes() for slot, shard in shards.items()}
    state = {}

    def run():
        sink = io.BytesIO()
        state["result"] = repair_stream(
            code,
            sources,
            sink,
            E2E_BLOCK_SIZE,
            failed,
            file_size,
            name="bench",
            checksums=checksums,
        )
        state["sink"] = sink

    benchmark.pedantic(
        run, rounds=max(1, BENCH_ROUNDS // 4),
        warmup_rounds=WARMUP_ROUNDS, iterations=1,
    )
    assert state["sink"].getvalue() == expected
    result = state["result"]
    assert result.crc_mismatches == 0
    rebuilt_mb = result.rebuilt_bytes / 1e6
    median_s = benchmark.stats["median"]
    metrics = {
        "rebuilt_MB_per_s": round(rebuilt_mb / median_s, 1),
        "mean_s": benchmark.stats["mean"],
        "median_s": median_s,
        "block_KiB": E2E_BLOCK_SIZE // 1024,
        "stripes": E2E_STRIPES,
        "occupancy": round(result.occupancy, 3),
        "crc_verified": True,
        "repeats": max(1, BENCH_ROUNDS // 4),
    }
    emit(render_kv("RS(10,4) repair stream (CRC verified)", metrics))
    record_bench("RS(10,4).repair_stream", **metrics)
