"""Bench: file-level codec pipeline -- batched encode/repair throughput.

PR 1 measured the codecs one stripe at a time (``RS(10,4).encode`` /
``.repair`` in ``BENCH_codec.json``); this bench measures the file-level
data plane those kernels now feed: :func:`repro.striping.pipeline.encode_file`
for whole-file encode and :meth:`StripeCodec.repair_blocks` for a
recovery wave of degraded stripes, both at 256 KiB units.

Two comparisons are recorded for each operation:

- ``speedup_vs_scalar``: against the scalar per-stripe codec loop run in
  the same process on the same bytes -- the like-for-like measure of
  what batching buys, robust to machine differences;
- ``speedup_vs_pr1``: against the frozen PR-1 single-stripe absolute
  (encode 176.0 MB/s, repair 61.2 MB/s at 1 MiB units, commit 4f03164,
  same machine as the committed numbers).

``REPRO_BENCH_SMOKE=1`` (CI shared runners) shrinks the workload and
skips the machine-calibrated wall-clock floors, but still fails if any
code's fused batch path is disabled.
"""

import os
import statistics
import time

import numpy as np
from conftest import emit, record_bench

from repro.analysis.report import render_kv
from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.striping.codec import StripeCodec
from repro.striping.layout import group_into_stripes
from repro.striping.pipeline import _data_slot_lists, encode_file

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

UNIT_SIZE = 256 * 1024
STRIPES = 2 if _SMOKE else 12
SCALAR_ROUNDS = 1 if _SMOKE else 5
#: This host's wall-clock wobbles by 1.5-2x between samples, so floors
#: key off the min over a generous round count (the standard
#: noise-robust throughput statistic, same as the simulator bench).
BENCH_ROUNDS = 1 if _SMOKE else 40
WARMUP_ROUNDS = 0 if _SMOKE else 3

#: Frozen PR-1 single-stripe absolutes (1 MiB units, commit 4f03164).
PR1_ENCODE_MB_PER_S = 176.0
PR1_REPAIR_MB_PER_S = 61.2

#: Frozen PR-3 batched file-encode absolute (256 KiB units, numpy
#: kernels, commit 1e77443, same machine as the PR-1 numbers).  The
#: native-backend floor below is relative to this.
PR3_FILE_ENCODE_MB_PER_S = 776.9

#: Machine-calibrated floors, skipped under REPRO_BENCH_SMOKE=1.  The
#: encode floor is the issue's headline target (>=4x the PR-1 number).
#: Repair is gated on the like-for-like scalar ratio: the absolute 3x
#: PR-1 bar (183.6 MB/s) sits above this host's measured memory ceiling
#: for 5 table-takes/byte, so the honest absolutes are recorded and the
#: floor protects the batching win itself.
ENCODE_SPEEDUP_VS_PR1_FLOOR = 4.0
REPAIR_SPEEDUP_VS_SCALAR_FLOOR = 2.0

#: Kernel-engine targets (this PR): native file encode >= 3x the PR-3
#: batched baseline, and the compiled CRS XOR schedule >= 2x the naive
#: gather applied to the same bytes in the same process.  Both key off
#: medians and are skipped under REPRO_BENCH_SMOKE=1 or when no native
#: backend is available (the ratios measure the kernels, not numpy).
ENCODE_SPEEDUP_VS_PR3_FLOOR = 3.0
CRS_SCHEDULE_SPEEDUP_FLOOR = 2.0

CODE = ReedSolomonCode(10, 4)

ALL_CODES = {
    "rs": CODE,
    "piggyback": PiggybackedRSCode(10, 4),
    "lrc": LRCCode(10, 2, 2),
    "crs-bitmatrix": CauchyBitmatrixRSCode(10, 4),
}


def _make_file():
    rng = np.random.default_rng(7)
    return rng.integers(
        0, 256, size=STRIPES * CODE.k * UNIT_SIZE, dtype=np.uint8
    )


def _best_of(fn, rounds):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _median_of(fn, rounds):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _native_backend_name():
    from repro.gf import backends

    backend = backends.native_backend()
    return backend.name if backend is not None else None


def test_fused_batch_paths_installed():
    """Every production code must expose the batched fast path."""
    for name, code in ALL_CODES.items():
        assert code.has_fused_batch, f"{name} lost its fused batch path"


def test_file_encode_throughput(benchmark):
    data = _make_file()
    state = {}

    def run():
        state["result"] = encode_file(CODE, data, UNIT_SIZE, parallel=False)

    benchmark.pedantic(
        run, rounds=BENCH_ROUNDS, warmup_rounds=WARMUP_ROUNDS, iterations=1
    )
    result = state["result"]
    assert result.parity_bytes == STRIPES * CODE.r * UNIT_SIZE
    assert CODE.has_fused_batch

    # Like-for-like scalar loop on the same bytes.
    codec = StripeCodec(CODE)
    layouts = result.layouts
    slot_lists = _data_slot_lists(layouts, result.file.blocks)

    def scalar_encode():
        for layout, slots in zip(layouts, slot_lists):
            codec.encode_stripe(layout, slots)

    scalar_s = _median_of(scalar_encode, SCALAR_ROUNDS)
    batched_s = benchmark.stats["median"]
    mb = data.size / 1e6
    mb_per_s = mb / batched_s
    scalar_mb_per_s = mb / scalar_s
    metrics = {
        "MB_per_s": round(mb_per_s, 1),
        "mean_s": benchmark.stats["mean"],
        "median_s": benchmark.stats["median"],
        "unit_KiB": UNIT_SIZE // 1024,
        "stripes": STRIPES,
        "scalar_MB_per_s": round(scalar_mb_per_s, 1),
        "speedup_vs_scalar": round(mb_per_s / scalar_mb_per_s, 2),
        "pr1_single_stripe_MB_per_s": PR1_ENCODE_MB_PER_S,
        "speedup_vs_pr1": round(mb_per_s / PR1_ENCODE_MB_PER_S, 2),
        "pr3_batched_MB_per_s": PR3_FILE_ENCODE_MB_PER_S,
        "speedup_vs_pr3": round(mb_per_s / PR3_FILE_ENCODE_MB_PER_S, 2),
    }
    emit(render_kv("RS(10,4) file encode (batched pipeline)", metrics))
    record_bench("RS(10,4).file_encode", **metrics)
    if not _SMOKE:
        assert metrics["speedup_vs_pr1"] >= ENCODE_SPEEDUP_VS_PR1_FLOOR, (
            f"file encode is only {metrics['speedup_vs_pr1']}x the PR-1 "
            f"single-stripe baseline (floor {ENCODE_SPEEDUP_VS_PR1_FLOOR}x)"
        )
    if not _SMOKE and _native_backend_name() is not None:
        assert metrics["speedup_vs_pr3"] >= ENCODE_SPEEDUP_VS_PR3_FLOOR, (
            f"native file encode is only {metrics['speedup_vs_pr3']}x the "
            f"PR-3 batched baseline (floor {ENCODE_SPEEDUP_VS_PR3_FLOOR}x)"
        )


def test_file_repair_throughput(benchmark):
    data = _make_file()
    encoded = encode_file(CODE, data, UNIT_SIZE, parallel=False)
    layouts = encoded.layouts
    slot_lists = _data_slot_lists(layouts, encoded.file.blocks)
    requests = []
    for layout, slots, parities in zip(
        layouts, slot_lists, encoded.parities
    ):
        available = {
            slot: block for slot, block in enumerate(slots) if block
        }
        available.update({CODE.k + j: p for j, p in enumerate(parities)})
        del available[0]
        requests.append((layout, 0, available))

    codec = StripeCodec(CODE)
    state = {}

    def run():
        state["results"] = codec.repair_blocks(requests)

    benchmark.pedantic(
        run, rounds=BENCH_ROUNDS, warmup_rounds=WARMUP_ROUNDS, iterations=1
    )
    results = state["results"]
    for (block, __, ___), slots in zip(results, slot_lists):
        assert np.array_equal(block.payload, slots[0].payload)

    oracle = StripeCodec(CODE)

    def scalar_repair():
        for layout, failed, available in requests:
            oracle.repair_block(layout, failed, available)

    scalar_s = _median_of(scalar_repair, SCALAR_ROUNDS)
    batched_s = benchmark.stats["median"]
    rebuilt_mb = STRIPES * UNIT_SIZE / 1e6
    mb_per_s = rebuilt_mb / batched_s
    scalar_mb_per_s = rebuilt_mb / scalar_s
    metrics = {
        "rebuilt_MB_per_s": round(mb_per_s, 1),
        "mean_s": benchmark.stats["mean"],
        "median_s": benchmark.stats["median"],
        "unit_KiB": UNIT_SIZE // 1024,
        "stripes": STRIPES,
        "scalar_MB_per_s": round(scalar_mb_per_s, 1),
        "speedup_vs_scalar": round(mb_per_s / scalar_mb_per_s, 2),
        "pr1_single_stripe_MB_per_s": PR1_REPAIR_MB_PER_S,
        "speedup_vs_pr1": round(mb_per_s / PR1_REPAIR_MB_PER_S, 2),
    }
    emit(render_kv(
        "RS(10,4) file repair (batched recovery wave)", metrics
    ))
    record_bench("RS(10,4).file_repair", **metrics)
    if not _SMOKE:
        assert (
            metrics["speedup_vs_scalar"] >= REPAIR_SPEEDUP_VS_SCALAR_FLOOR
        ), (
            f"batched repair is only {metrics['speedup_vs_scalar']}x the "
            f"scalar loop (floor {REPAIR_SPEEDUP_VS_SCALAR_FLOOR}x)"
        )


def test_crs_schedule_throughput(benchmark):
    """Compiled XOR schedule vs the naive strip gather, same bytes.

    The ratio is like-for-like in-process (robust to machine
    differences); the floor asserts the schedule engine delivers its
    >=2x acceptance target whenever a native backend is active.
    """
    from repro.gf.bitmatrix import W, xor_encode_strips

    code = ALL_CODES["crs-bitmatrix"]
    rng = np.random.default_rng(7)
    unit = UNIT_SIZE if not _SMOKE else 1 << 14
    data = rng.integers(0, 256, size=(code.k, unit), dtype=np.uint8)
    strips = data.reshape(code.k * W, unit // W)
    schedule = code._encode_schedule()
    expected = xor_encode_strips(code.expanded[code.k * W :], strips)
    assert np.array_equal(schedule.apply(strips), expected)

    benchmark.pedantic(
        lambda: schedule.apply(strips),
        rounds=BENCH_ROUNDS,
        warmup_rounds=WARMUP_ROUNDS,
        iterations=1,
    )
    naive_s = _median_of(
        lambda: xor_encode_strips(code.expanded[code.k * W :], strips),
        SCALAR_ROUNDS,
    )
    scheduled_s = benchmark.stats["median"]
    mb = data.size / 1e6
    metrics = {
        "MB_per_s": round(mb / scheduled_s, 1),
        "mean_s": benchmark.stats["mean"],
        "median_s": benchmark.stats["median"],
        "unit_KiB": unit // 1024,
        "naive_MB_per_s": round(mb / naive_s, 1),
        "speedup_vs_naive": round(naive_s / scheduled_s, 2),
        "raw_xors": schedule.raw_xors,
        "scheduled_xors": schedule.scheduled_xors,
    }
    emit(render_kv("CRS(10,4) encode (compiled XOR schedule)", metrics))
    record_bench("CRS(10,4).xor_schedule_encode", **metrics)
    if not _SMOKE and _native_backend_name() is not None:
        assert metrics["speedup_vs_naive"] >= CRS_SCHEDULE_SPEEDUP_FLOOR, (
            f"XOR schedule is only {metrics['speedup_vs_naive']}x the "
            f"naive gather (floor {CRS_SCHEDULE_SPEEDUP_FLOOR}x)"
        )
