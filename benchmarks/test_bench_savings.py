"""Bench: Section 3.1/3.2 -- (10,4) Piggybacked-RS repair savings (~30%)."""

import numpy as np
from conftest import emit

from repro.codes.piggyback import PiggybackedRSCode
from repro.experiments import run_experiment

UNIT_SIZE = 1 << 20


def test_savings_table(benchmark):
    code = PiggybackedRSCode(10, 4)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(10, UNIT_SIZE), dtype=np.uint8)
    stripe = code.encode(data)
    survivors = {i: stripe[i] for i in range(1, 14)}

    # Benchmark the headline operation: piggyback-aided data repair.
    rebuilt, downloaded = benchmark(code.execute_repair, 0, survivors)
    assert np.array_equal(rebuilt, stripe[0])
    assert downloaded == 7 * UNIT_SIZE  # (10+4)/2 units vs RS's 10

    result = run_experiment("tab_savings", unit_size=1 << 12)
    emit(result.render())
    savings = result.data["savings"]
    assert 0.28 <= savings["data_nodes"] <= 0.36
