"""Bench: Section 2.2 item 2 -- 98.08/1.87/0.05% degraded-stripe split."""

from conftest import emit

from repro.experiments import run_experiment


def test_failure_mode_split(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("tab_missing",),
        kwargs={"days": 48.0},
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    fractions = result.data["fractions"]
    # Shape: singles dominate by ~50x over doubles, triples are rare.
    assert fractions["one"] > 0.94
    assert 0.003 < fractions["two"] < 0.05
    assert fractions["three_plus"] < 0.005
