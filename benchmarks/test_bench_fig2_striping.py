"""Bench: Fig. 2 -- (10,4) block-level striping, plus encode throughput."""

import numpy as np
from conftest import emit

from repro.analysis.report import render_kv
from repro.codes.rs import ReedSolomonCode
from repro.experiments import run_experiment

BLOCK_SIZE = 1 << 20  # 1 MiB scaled blocks


def test_fig2_striping(benchmark):
    code = ReedSolomonCode(10, 4)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(10, BLOCK_SIZE), dtype=np.uint8)

    stripe = benchmark(code.encode, data)
    assert stripe.shape == (14, BLOCK_SIZE)

    result = run_experiment("fig2", block_size=BLOCK_SIZE)
    emit(result.render())
    throughput = 10 * BLOCK_SIZE / benchmark.stats["mean"] / 1e6
    emit(render_kv(
        "(10,4) RS stripe encode",
        {"data_MB_per_stripe": 10 * BLOCK_SIZE / 1e6,
         "encode_throughput_MB_per_s": round(throughput, 1)},
    ))
    by_metric = {row["metric"]: row for row in result.paper_rows}
    assert by_metric["byte-level stripe property holds"]["measured"] is True
