"""Bench: Section 3.2 -- MTTDL(Piggybacked-RS) >= MTTDL(RS)."""

from conftest import emit

from repro.experiments import run_experiment


def test_mttdl_comparison(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("tab_mttdl",), rounds=3, iterations=1
    )
    emit(result.render())
    data = result.data
    assert data["PiggybackedRS(10,4)"] > data["RS(10,4)"]
    assert data["RS(10,4)"] > data["Replication(x3)"]
