"""Bench: ablation -- RS vs Piggybacked-RS vs LRC vs replication."""

from conftest import emit

from repro.experiments import run_experiment


def test_code_comparison(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("abl_codes",), rounds=1, iterations=1
    )
    emit(result.render())
    rows = {row["code"]: row for row in result.tables["code comparison"]}
    # Storage-optimality vs repair-cost trade-off, quantified:
    assert rows["PiggybackedRS(10,4)"]["avg_repair_units"] < rows[
        "RS(10,4)"
    ]["avg_repair_units"]
    assert rows["LRC(10,2,2)"]["avg_repair_units"] < rows[
        "PiggybackedRS(10,4)"
    ]["avg_repair_units"]
    assert rows["LRC(10,2,2)"]["mds"] is False  # ...at a tolerance cost
