"""Bench: Fig. 1 -- recovery of a (2,2) RS unit moves k units cross-rack."""

from conftest import emit

from repro.experiments import run_experiment

UNIT_SIZE = 1 << 20  # 1 MiB units


def test_fig1_recovery_traffic(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("fig1",),
        kwargs={"unit_size": UNIT_SIZE},
        rounds=3,
        iterations=1,
    )
    emit(result.render())
    by_metric = {row["metric"]: row for row in result.paper_rows}
    assert by_metric["units transferred through TOR switches"]["measured"] == 2
    assert by_metric["units through aggregation switch"]["measured"] == 2
