"""Bench: Piggybacked-RS savings across the (k, r) parameter grid."""

from conftest import emit

from repro.experiments import run_experiment


def test_kr_sweep(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("abl_kr",), rounds=1, iterations=1
    )
    emit(result.render())
    assert result.paper_rows[0]["measured"] is True
