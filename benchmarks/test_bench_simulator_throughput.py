"""Bench: simulator throughput -- the substrate's own performance.

Not a paper figure; measures how fast the discrete-event warehouse
simulation itself runs (events and block recoveries per wall-clock
second), which bounds how long the fig3a/fig3b reproductions take.
"""

from conftest import emit

from repro.analysis.report import render_kv
from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation


def run_simulation():
    config = ClusterConfig(days=4.0, stripes_per_node=30.0, seed=8)
    simulation = WarehouseSimulation(config)
    result = simulation.run()
    return simulation, result


def test_simulator_throughput(benchmark):
    simulation, result = benchmark.pedantic(
        run_simulation, rounds=2, iterations=1
    )
    seconds = benchmark.stats["mean"]
    emit(render_kv(
        "warehouse simulator throughput (4 simulated days)",
        {
            "wall_seconds": round(seconds, 2),
            "des_events_per_s": round(
                simulation.queue.events_processed / seconds
            ),
            "block_recoveries_per_s": round(
                result.stats.blocks_recovered / seconds
            ),
            "simulated_days_per_s": round(4.0 / seconds, 2),
        },
    ))
    assert result.stats.blocks_recovered > 0
