"""Bench: simulator throughput -- the substrate's own performance.

Not a paper figure; measures how fast the warehouse simulation runs
(simulated days per wall-clock second), which bounds how long the
fig3a/fig3b reproductions, the sweeps, and cluster-year runs take.

Three measurements, all recorded to ``BENCH_simulator.json`` in the
``BENCH_codec.json`` format (meta block, ``median_s`` alongside
``mean_s``, medians driving every acceptance comparison):

- ``simulator.throughput`` -- the serial oracle at the frozen PR-1
  comparison config (4 days, stream draws), still asserted against the
  PR-1 scalar simulator baseline.
- ``simulator.sharded`` -- the sharded epoch engine vs the serial
  oracle at steady state (40 days, hashed draws), both freshly
  constructed per round, trajectories compared bit-for-bit.  The floor
  is keyed to the *same-machine* serial-oracle median: committed
  numbers from other machines (the 70.9 days/s recorded by PR-6's
  runner) are lineage, not a denominator.
- ``simulator.ten_cluster_years`` -- 3650 simulated days at 10k nodes,
  completed as checkpointed sessions each inside the session budget
  that the serial oracle's projected wall time does not fit.  Gated
  behind ``REPRO_BENCH_TEN_YEARS=1`` (it runs for minutes by design).

``REPRO_BENCH_SMOKE=1`` (set by CI, whose shared runners are not
comparable across runs) shrinks workloads and skips wall-clock floors
but still fails on a trajectory mismatch or a disabled fast path.
"""

import os
import time

import pytest
from conftest import emit, record_bench

from repro.analysis.report import render_kv
from repro.bench import (
    run_simulator_comparison,
    run_throttled_comparison,
    simulator_bench_config,
    smoke_mode,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation

#: Frozen PR-1 comparison config: 4 simulated days at the default
#: production block density, stream draws (the PR-1 engine's only mode).
BENCH_CONFIG = ClusterConfig(days=4.0, stripes_per_node=60.0, seed=8)

#: PR-1 simulator throughput at BENCH_CONFIG: best-of-5 ``run()`` wall
#: time 0.492 s for 4 simulated days (commit 4f03164, same machine as
#: the original batched numbers).
PR1_BASELINE_DAYS_PER_SEC = 8.1

#: Serial throughput recorded by the PR-6-era runner at BENCH_CONFIG
#: (a different machine; kept as lineage alongside same-machine rows).
PR6_RECORDED_DAYS_PER_S = 70.9

#: Acceptance floor: the batched serial path vs the PR-1 baseline.
#: Was 5.0 against best-of timing; re-keyed to the (stricter) median.
SPEEDUP_FLOOR = 4.0

#: Acceptance floor: sharded epoch engine vs the same-machine serial
#: oracle median at steady state, with zero worker processes.  Worker
#: parallelism on multi-core runners stacks on top of this.
SHARDED_SPEEDUP_FLOOR = 1.3

#: Per-session wall-clock budget for the ten-cluster-year run.
SESSION_BUDGET_S = 45.0

#: Acceptance floor for throttled recovery: the repair-policy DES path
#: (coordinator-driven, zero workers) vs the throttled serial oracle.
#: The scheduler runs in both, so this bounds the sharded engine's
#: event-loop overhead, not parallelism.
THROTTLED_SPEEDUP_FLOOR = 0.5


def test_simulator_throughput(benchmark):
    state = {}

    def setup():
        state["simulation"] = WarehouseSimulation(BENCH_CONFIG)
        return (), {}

    def run():
        state["result"] = state["simulation"].run()

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    simulation, result = state["simulation"], state["result"]
    assert simulation.recovery.batched, "batched fast path is disabled"
    assert result.stats.blocks_recovered > 0

    seconds = benchmark.stats["median"]
    days_per_sec = BENCH_CONFIG.days / seconds
    speedup = days_per_sec / PR1_BASELINE_DAYS_PER_SEC
    metrics = {
        "mean_s": benchmark.stats["mean"],
        "median_s": seconds,
        "best_s": benchmark.stats["min"],
        "simulated_days_per_s": round(days_per_sec, 1),
        "block_recoveries_per_s": round(
            result.stats.blocks_recovered / seconds
        ),
        "des_events_per_s": round(
            simulation.queue.events_processed / seconds
        ),
        "pr1_baseline_days_per_s": PR1_BASELINE_DAYS_PER_SEC,
        "pr6_recorded_days_per_s": PR6_RECORDED_DAYS_PER_S,
        "speedup_vs_pr1": round(speedup, 2),
        "batched_recovery": simulation.recovery.batched,
    }
    emit(render_kv(
        "warehouse simulator throughput (4 simulated days, batched path)",
        metrics,
    ))
    record_bench("simulator.throughput", report="simulator", **metrics)
    if os.environ.get("REPRO_BENCH_SMOKE") != "1":
        assert speedup >= SPEEDUP_FLOOR, (
            f"batched simulator is only {speedup:.2f}x the PR-1 baseline "
            f"(floor {SPEEDUP_FLOOR}x, medians)"
        )


def test_sharded_simulator_throughput():
    report = run_simulator_comparison()
    assert report["identical"], (
        "sharded trajectory diverged from the serial oracle at the "
        "bench config -- the speedup below would be meaningless"
    )
    metrics = {
        "days": report["days"],
        "num_nodes": report["num_nodes"],
        "rounds": report["rounds"],
        "workers": report["workers"],
        "num_shards": report["num_shards"],
        "mean_s": report["sharded"]["mean_s"],
        "median_s": report["sharded"]["median_s"],
        "best_s": report["sharded"]["best_s"],
        "sharded_days_per_s": round(report["sharded"]["days_per_s"], 1),
        "oracle_median_s": report["oracle"]["median_s"],
        "oracle_days_per_s": round(report["oracle"]["days_per_s"], 1),
        "speedup_vs_serial_oracle": round(report["speedup_median"], 2),
        "trajectories_identical": report["identical"],
        "multicore_target_speedup": 4.0,
    }
    emit(render_kv(
        "sharded epoch engine vs serial oracle "
        f"({report['days']:.0f} simulated days, hashed draws, medians)",
        metrics,
    ))
    record_bench("simulator.sharded", report="simulator", **metrics)
    if not smoke_mode():
        assert report["speedup_median"] >= SHARDED_SPEEDUP_FLOOR, (
            f"sharded engine is only {report['speedup_median']:.2f}x the "
            f"same-machine serial oracle (floor {SHARDED_SPEEDUP_FLOOR}x, "
            f"medians)"
        )


def test_throttled_recovery_throughput():
    report = run_throttled_comparison()
    assert report["identical"], (
        "throttled-recovery trajectory diverged between the sharded "
        "DES path and the serial oracle -- the timing is meaningless"
    )
    queue = report["queue"]
    assert queue["peak_depth"] > 0, (
        "the bench pipe never built a backlog; the measurement no "
        "longer exercises the scheduler's contended regime"
    )
    metrics = {
        "days": report["days"],
        "num_nodes": report["num_nodes"],
        "rounds": report["rounds"],
        "workers": report["workers"],
        "num_shards": report["num_shards"],
        "mean_s": report["sharded"]["mean_s"],
        "median_s": report["sharded"]["median_s"],
        "best_s": report["sharded"]["best_s"],
        "sharded_days_per_s": round(report["sharded"]["days_per_s"], 1),
        "oracle_median_s": report["oracle"]["median_s"],
        "oracle_days_per_s": round(report["oracle"]["days_per_s"], 1),
        "speedup_vs_serial_oracle": round(report["speedup_median"], 2),
        "trajectories_identical": report["identical"],
        "queue_peak_depth": queue["peak_depth"],
        "queue_deferred": queue["deferred"],
        "queue_promoted": queue["promoted"],
        "queue_cancelled": queue["cancelled"],
        "queue_urgent_wait_s": queue["urgent_wait_s"],
    }
    emit(render_kv(
        "throttled recovery (priority+lazy repair-policy DES) vs serial "
        f"oracle ({report['days']:.0f} simulated days, medians)",
        metrics,
    ))
    record_bench("simulator.throttled", report="simulator", **metrics)
    if not smoke_mode():
        assert report["speedup_median"] >= THROTTLED_SPEEDUP_FLOOR, (
            f"repair-policy DES path is {report['speedup_median']:.2f}x "
            f"the throttled serial oracle (floor "
            f"{THROTTLED_SPEEDUP_FLOOR}x, medians)"
        )


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_TEN_YEARS") != "1",
    reason="minutes-long by design; set REPRO_BENCH_TEN_YEARS=1",
)
def test_ten_cluster_year_run(tmp_path):
    """3650 simulated days at 10k nodes, as checkpointed sessions.

    The point of checkpointing: each session fits a bounded wall-clock
    budget and resumes exactly where the previous one stopped, so the
    run completes across sessions.  The serial oracle has no resume --
    its projected wall time for the same horizon is recorded next to
    the budget it would have to fit in one uninterruptible stretch.
    """
    from repro.cluster.shard import ShardedSimulation

    config = ClusterConfig(
        num_racks=334,
        nodes_per_rack=30,
        stripes_per_node=60.0,
        days=3650.0,
        seed=8,
        destination_draws="hashed",
    )
    snapshot = str(tmp_path / "ten_years.ckpt")

    # Serial-oracle steady-state rate, measured on a short horizon and
    # projected (running the oracle for the full horizon serially is
    # exactly what this scenario exists to avoid).
    probe = simulator_bench_config(smoke=False)
    probe_config = ClusterConfig(
        num_racks=334,
        nodes_per_rack=30,
        stripes_per_node=60.0,
        days=probe.days,
        seed=8,
        destination_draws="hashed",
    )
    oracle = WarehouseSimulation(probe_config)
    start = time.perf_counter()
    oracle.run()
    oracle_rate = probe_config.days / (time.perf_counter() - start)
    oracle_projected_s = config.days / oracle_rate

    session_walls = []
    boundaries = [1300.0, 2600.0, None]
    start = time.perf_counter()
    simulation = ShardedSimulation(config, checkpoint_path=snapshot)
    result = simulation.run(stop_after_day=boundaries[0])
    session_walls.append(time.perf_counter() - start)
    for boundary in boundaries[1:]:
        start = time.perf_counter()
        simulation = ShardedSimulation.resume(snapshot)
        result = simulation.run(stop_after_day=boundary)
        session_walls.append(time.perf_counter() - start)
    assert result is not None, "final session did not finish the run"
    assert result.stats.blocks_recovered > 0
    assert len(result.blocks_recovered_per_day) == int(config.days)

    total_wall = sum(session_walls)
    metrics = {
        "days": config.days,
        "num_nodes": config.num_nodes,
        "sessions": len(session_walls),
        "session_walls_s": [round(w, 1) for w in session_walls],
        "max_session_wall_s": round(max(session_walls), 1),
        "total_wall_s": round(total_wall, 1),
        "sharded_days_per_s": round(config.days / total_wall, 1),
        "oracle_days_per_s": round(oracle_rate, 1),
        "oracle_projected_wall_s": round(oracle_projected_s, 1),
        "session_budget_s": SESSION_BUDGET_S,
        "blocks_recovered": result.stats.blocks_recovered,
    }
    emit(render_kv(
        "ten cluster-years at 10k nodes (checkpointed sessions)", metrics
    ))
    record_bench("simulator.ten_cluster_years", report="simulator", **metrics)
    assert max(session_walls) <= SESSION_BUDGET_S, (
        "a checkpointed session overran the budget; "
        f"walls={session_walls}"
    )
    assert oracle_projected_s > SESSION_BUDGET_S, (
        "the serial oracle would fit the budget in one process -- "
        "the scenario no longer demonstrates anything"
    )
