"""Bench: simulator throughput -- the substrate's own performance.

Not a paper figure; measures how fast the discrete-event warehouse
simulation itself runs (simulated days and block recoveries per
wall-clock second), which bounds how long the fig3a/fig3b reproductions
and the multi-config sweeps take.

The timed region is ``WarehouseSimulation.run()`` only -- construction
(placement, trace calibration) happens in the per-round setup -- and the
reported number is the *minimum* over rounds, the standard noise-robust
choice for throughput floors.

The recorded speedup compares against the frozen PR-1 simulator
(scalar per-unit recovery, list-based stripe index) at this exact
config, measured on the same machine that produced the batched numbers
committed alongside.  ``REPRO_BENCH_SMOKE=1`` (set by CI, whose shared
runners are not comparable to that machine) skips the wall-clock floor
assertion but still fails if the batched fast path is disabled.
"""

import os

from conftest import emit, record_bench

from repro.analysis.report import render_kv
from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation

#: Default bench config: 4 simulated days at the default production
#: block density (``stripes_per_node=60``).
BENCH_CONFIG = ClusterConfig(days=4.0, stripes_per_node=60.0, seed=8)

#: PR-1 simulator throughput at BENCH_CONFIG: best-of-5 ``run()`` wall
#: time 0.492 s for 4 simulated days (commit 4f03164, same machine as
#: the numbers recorded in BENCH_simulator.json).
PR1_BASELINE_DAYS_PER_SEC = 8.1

#: Acceptance floor: the batched fast path must be at least this many
#: times faster than the PR-1 baseline.
SPEEDUP_FLOOR = 5.0


def test_simulator_throughput(benchmark):
    state = {}

    def setup():
        state["simulation"] = WarehouseSimulation(BENCH_CONFIG)
        return (), {}

    def run():
        state["result"] = state["simulation"].run()

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    simulation, result = state["simulation"], state["result"]
    assert simulation.recovery.batched, "batched fast path is disabled"
    assert result.stats.blocks_recovered > 0

    seconds = benchmark.stats["min"]
    days_per_sec = BENCH_CONFIG.days / seconds
    speedup = days_per_sec / PR1_BASELINE_DAYS_PER_SEC
    metrics = {
        "wall_seconds_min": round(seconds, 4),
        "simulated_days_per_s": round(days_per_sec, 1),
        "block_recoveries_per_s": round(
            result.stats.blocks_recovered / seconds
        ),
        "des_events_per_s": round(
            simulation.queue.events_processed / seconds
        ),
        "pr1_baseline_days_per_s": PR1_BASELINE_DAYS_PER_SEC,
        "speedup_vs_pr1": round(speedup, 2),
        "batched_recovery": simulation.recovery.batched,
    }
    emit(render_kv(
        "warehouse simulator throughput (4 simulated days, batched path)",
        metrics,
    ))
    record_bench("simulator.throughput", report="simulator", **metrics)
    if os.environ.get("REPRO_BENCH_SMOKE") != "1":
        assert speedup >= SPEEDUP_FLOOR, (
            f"batched simulator is only {speedup:.2f}x the PR-1 baseline "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
