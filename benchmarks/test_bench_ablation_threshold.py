"""Bench: ablation -- the 15-minute unavailability threshold."""

from conftest import emit

from repro.experiments import run_experiment


def test_ablation_threshold(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("abl_threshold",),
        kwargs={"days": 10.0},
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    assert result.paper_rows[0]["measured"] is True
    rows = result.data["rows"]
    # The longest threshold reconstructs far less than the default.
    assert rows[-1]["total_cross_rack_TB"] < 0.5 * rows[0]["total_cross_rack_TB"]
