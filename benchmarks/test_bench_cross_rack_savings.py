"""Bench: Section 3.2 -- cross-rack traffic saving (>50 TB/day projection).

Replays the identical 24-day failure history under RS(10,4) and
Piggybacked-RS(10,4); prints measured saving next to the paper's own
flat-30% projection method.
"""

from conftest import emit

from repro.analysis.stats import within_factor
from repro.experiments import run_experiment


def test_cross_rack_savings(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("tab_traffic",),
        kwargs={"days": 24.0},
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    rs_tb = result.data["rs_median_bytes"] / 1e12
    saving_tb = result.data["measured_saving_bytes"] / 1e12
    paper_method_tb = result.data["estimate"][
        "paper_method_savings_TB_per_day"
    ]
    assert within_factor(rs_tb, 180.0, 1.5)
    # Paper's projection method applied to our baseline clears 50 TB/day.
    assert paper_method_tb > 50.0
    # Exact replay saving: tens of TB/day (23.6% of baseline under
    # uniform block failures; the paper's flat 30% is the data-block rate).
    assert saving_tb > 30.0
    assert saving_tb / rs_tb > 0.2
