"""Bench: Fig. 3b -- blocks reconstructed & cross-rack bytes per day.

Cluster-A-scale replay over the paper's 24-day window under (10,4) RS.
Paper medians: ~95,500 blocks/day, >180 TB/day.
"""

import numpy as np
from conftest import emit

from repro.analysis.stats import within_factor
from repro.experiments import run_experiment


def test_fig3b_recovery_traffic(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("fig3b",),
        kwargs={"days": 24.0},
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    blocks_median = float(np.median(result.data["blocks_per_day_scaled"]))
    bytes_median = float(
        np.median(result.data["cross_rack_bytes_per_day_scaled"])
    )
    assert within_factor(blocks_median, 95_500.0, 1.5)
    assert within_factor(bytes_median, 180e12, 1.5)
