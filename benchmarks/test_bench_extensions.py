"""Bench: extension experiments (cut-set bound, capacity, degraded reads)."""

from conftest import emit

from repro.experiments import run_experiment


def test_ext_cutset_bound(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("ext_bound",), rounds=3, iterations=1
    )
    emit(result.render())
    assert result.data["bound_units"] == 3.25


def test_ext_codable_capacity(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("ext_capacity",), rounds=3, iterations=1
    )
    emit(result.render())
    assert result.data["gain_fraction"] > 0.25


def test_ext_raiding_pipeline(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("ext_raiding",), rounds=3, iterations=1
    )
    emit(result.render())
    rows = result.tables["weekly growth pipeline"]
    assert rows[1]["total_TB_per_day"] < rows[0]["total_TB_per_day"]


def test_ext_degraded_reads(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("ext_degraded",),
        kwargs={"days": 8.0, "reads_per_stripe_per_day": 1.0},
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    assert 0.2 < result.data["saving"] < 0.45


def test_ext_uplink_utilisation(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("ext_uplink",),
        kwargs={"days": 12.0},
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    assert result.data["pb"]["median_uplink_util_%"] < result.data["rs"][
        "median_uplink_util_%"
    ]


def test_ext_recovery_latency(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("ext_latency",),
        kwargs={"days": 8.0},
        rounds=1,
        iterations=1,
    )
    emit(result.render())
    assert result.data["pb_mean"] < result.data["rs_mean"]
