"""Bench: Section 3.2 -- recovery time governed by bytes, not connections."""

import numpy as np
from conftest import emit

from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.experiments import run_experiment

UNIT_SIZE = 4 << 20  # real payload repair for wall-clock comparison


def test_recovery_time_model(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("tab_rectime",), rounds=3, iterations=1
    )
    emit(result.render())
    for row in result.paper_rows[:3]:
        assert row["measured"] is True


def test_wall_clock_repair_rs_vs_piggyback(benchmark):
    """Measured codec wall-clock: the piggyback repair touches fewer
    bytes, so it should not be slower despite the extra bookkeeping."""
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(10, UNIT_SIZE), dtype=np.uint8)
    rs = ReedSolomonCode(10, 4)
    pb = PiggybackedRSCode(10, 4)
    rs_stripe = rs.encode(data)
    pb_stripe = pb.encode(data)
    rs_sources = {i: rs_stripe[i] for i in range(1, 14)}
    pb_sources = {i: pb_stripe[i] for i in range(1, 14)}

    def repair_both():
        rs.execute_repair(0, rs_sources)
        pb.execute_repair(0, pb_sources)

    benchmark(repair_both)
