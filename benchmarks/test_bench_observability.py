"""Bench: observability overhead -- the disabled path must be near-free.

The metrics layer's contract (DESIGN 5f) is that ``REPRO_METRICS=0``
collapses every instrumentation site to one ``metrics()`` call
returning ``None``, so the hot paths pay effectively nothing.  This
bench holds that contract numerically two ways:

- The *composed* overhead is measured directly: the number of
  ``metrics()`` checks one batched encode actually performs (counted by
  wrapping each instrumented module's reference) times the micro-timed
  per-call disabled cost, as a fraction of the uninstrumented encode
  time.  That fraction must stay under the 2% budget -- with dozens of
  checks at ~100 ns against tens of milliseconds of encode it sits
  orders of magnitude below it, so a trip means a real regression
  (e.g. the registry losing its cached-enabled fast path, or a site
  doing work before the ``None`` check).
- ``codec.encode_stripes`` (the instrumented wrapper) is also timed
  against a hand-inlined copy of its pre-instrumentation body
  (grouping + ``_encode_groups``) in interleaved order-alternating
  pairs.  This wall-clock paired ratio is recorded for the trajectory
  and tripwired at 10% -- this host's clock wobbles far too much for a
  2% wall-clock assertion to be signal, but a disabled path that
  suddenly does enabled-path work still trips it.

Enabled-path throughput is recorded alongside (not asserted -- counters
do real work) so ``BENCH_codec.json`` tracks both modes release over
release.  ``REPRO_BENCH_SMOKE=1`` shrinks the workload and skips the
wall-clock floor on shared runners.
"""

import os
import time
from collections import OrderedDict

import numpy as np
from conftest import emit, record_bench

from repro import observability
from repro.analysis.report import render_kv
from repro.codes.rs import ReedSolomonCode
from repro.striping.codec import StripeCodec
from repro.striping.pipeline import _data_slot_lists, encode_file

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

UNIT_SIZE = 64 * 1024 if _SMOKE else 256 * 1024
STRIPES = 2 if _SMOKE else 12
BENCH_ROUNDS = 1 if _SMOKE else 40
WARMUP_ROUNDS = 0 if _SMOKE else 3

#: Budget for the composed disabled-path overhead: (checks per encode)
#: x (ns per disabled check) / (uninstrumented encode time).
DISABLED_OVERHEAD_BUDGET = 0.02
#: Gross-regression tripwire on the paired wall-clock ratio.  The 2%
#: contract is held by the composed measurement above; wall clock on
#: this host wobbles 1.5-2x between samples (see the codec pipeline
#: bench), so a tight wall-clock floor would be pure noise.
DISABLED_WALL_CLOCK_TRIPWIRE = 0.10
#: Ceiling for one disabled ``metrics()`` check.  Measured ~100 ns; the
#: bound is deliberately loose so it only trips on a real regression
#: (e.g. the registry losing its cached-enabled fast path).
METRICS_CALL_NS_CEILING = 5_000.0

CODE = ReedSolomonCode(10, 4)


def _make_inputs():
    rng = np.random.default_rng(7)
    data = rng.integers(
        0, 256, size=STRIPES * CODE.k * UNIT_SIZE, dtype=np.uint8
    )
    encoded = encode_file(CODE, data, UNIT_SIZE, parallel=False)
    layouts = encoded.layouts
    slot_lists = _data_slot_lists(layouts, encoded.file.blocks)
    return data, layouts, slot_lists


def _best_of(fn, rounds):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _time_once(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _paired_samples(fn_a, fn_b, rounds):
    """Interleaved (a, b) timings, alternating order each round."""
    samples = []
    for i in range(rounds):
        if i % 2:
            elapsed_b = _time_once(fn_b)
            elapsed_a = _time_once(fn_a)
        else:
            elapsed_a = _time_once(fn_a)
            elapsed_b = _time_once(fn_b)
        samples.append((elapsed_a, elapsed_b))
    return samples


def _disabled_metrics_call_ns(iterations=200_000):
    """Cost of one ``metrics()`` check with the kill switch thrown."""
    metrics_fn = observability.metrics
    start = time.perf_counter()
    for _ in range(iterations):
        metrics_fn()
    return (time.perf_counter() - start) / iterations * 1e9


def _count_disabled_checks(fn):
    """Run ``fn`` once counting every ``metrics()`` check it performs.

    Each instrumented module binds ``metrics`` into its own namespace at
    import, so wrapping those references (plus the tracer's, which every
    ``span()`` consults) sees every disabled-path check the codec hot
    path makes.
    """
    import repro.codes.base as base_module
    import repro.observability.tracing as tracing_module
    import repro.striping.codec as codec_module

    modules = (base_module, tracing_module, codec_module)
    real = observability.metrics
    count = 0

    def counting():
        nonlocal count
        count += 1
        return real()

    saved = [module.metrics for module in modules]
    for module in modules:
        module.metrics = counting
    try:
        fn()
    finally:
        for module, original in zip(modules, saved):
            module.metrics = original
    return count


def test_disabled_path_overhead(benchmark):
    data, layouts, slot_lists = _make_inputs()
    codec = StripeCodec(CODE)

    def instrumented():
        codec.encode_stripes(layouts, slot_lists)

    def baseline():
        # The wrapper body with the instrumentation deleted: grouping
        # straight into _encode_groups, exactly the pre-5f hot loop.
        results = [None] * len(layouts)
        groups = OrderedDict()
        for index, layout in enumerate(layouts):
            groups.setdefault(codec.padded_width(layout), []).append(index)
        return codec._encode_groups(layouts, slot_lists, groups, results)

    try:
        observability.set_enabled(False)
        observability.reset()
        benchmark.pedantic(
            instrumented,
            rounds=BENCH_ROUNDS,
            warmup_rounds=WARMUP_ROUNDS,
            iterations=1,
        )
        samples = _paired_samples(instrumented, baseline, BENCH_ROUNDS)
        call_ns = _disabled_metrics_call_ns()
        checks = _count_disabled_checks(instrumented)

        observability.set_enabled(True)
        observability.reset()
        enabled_s = _best_of(instrumented, BENCH_ROUNDS)
        registry = observability.get_registry()
        assert registry.counter_value("codec.encode.stripes") > 0
    finally:
        observability.set_enabled(None)
        observability.reset()

    mb = data.size / 1e6
    disabled_s = min(elapsed_a for elapsed_a, _ in samples)
    baseline_s = min(elapsed_b for _, elapsed_b in samples)
    ratios = sorted(
        elapsed_a / elapsed_b for elapsed_a, elapsed_b in samples
    )
    wall_ratio = ratios[len(ratios) // 2] - 1.0
    composed = checks * call_ns * 1e-9 / baseline_s
    metrics_row = {
        "disabled_MB_per_s": round(mb / disabled_s, 1),
        "baseline_MB_per_s": round(mb / baseline_s, 1),
        "enabled_MB_per_s": round(mb / enabled_s, 1),
        "disabled_checks_per_encode": checks,
        "metrics_call_ns": round(call_ns, 1),
        "composed_overhead_pct": round(composed * 100, 5),
        "paired_wall_ratio_pct": round(wall_ratio * 100, 3),
        "unit_KiB": UNIT_SIZE // 1024,
        "stripes": STRIPES,
    }
    emit(render_kv("RS(10,4) observability overhead (encode)", metrics_row))
    record_bench("RS(10,4).observability_overhead", **metrics_row)

    assert call_ns < METRICS_CALL_NS_CEILING, (
        f"disabled metrics() costs {call_ns:.0f} ns/call "
        f"(ceiling {METRICS_CALL_NS_CEILING:.0f} ns); the cached-enabled "
        f"fast path has regressed"
    )
    assert composed < DISABLED_OVERHEAD_BUDGET, (
        f"{checks} disabled checks x {call_ns:.0f} ns is "
        f"{composed * 100:.3f}% of the uninstrumented encode "
        f"(budget {DISABLED_OVERHEAD_BUDGET * 100:.0f}%)"
    )
    if not _SMOKE:
        assert wall_ratio < DISABLED_WALL_CLOCK_TRIPWIRE, (
            f"disabled-path encode is {wall_ratio * 100:.2f}% slower than "
            f"the uninstrumented body "
            f"(tripwire {DISABLED_WALL_CLOCK_TRIPWIRE * 100:.0f}%)"
        )
