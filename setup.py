"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e . --no-use-pep517``)
on machines without network access to the ``wheel`` build dependency.
"""

from setuptools import setup

setup(
    # Repeated here (not only in pyproject.toml) because the legacy
    # ``setup.py develop`` path used on offline machines does not
    # install [project.scripts] entries on older setuptools.
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
