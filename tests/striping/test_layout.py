"""Tests for stripe layout grouping."""

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.striping.blocks import Block, chunk_bytes
from repro.striping.layout import StripeLayout, group_into_stripes


def blocks_of(count, size=10):
    return [Block(f"b{i}", size) for i in range(count)]


class TestGroupIntoStripes:
    def test_exact_grouping(self):
        stripes = group_into_stripes(blocks_of(20), k=10, r=4)
        assert len(stripes) == 2
        assert all(s.real_data_count == 10 for s in stripes)

    def test_tail_stripe_padded(self):
        stripes = group_into_stripes(blocks_of(13), k=10, r=4)
        assert len(stripes) == 2
        tail = stripes[1]
        assert tail.real_data_count == 3
        assert tail.data_block_ids[3:] == (None,) * 7
        assert tail.data_sizes[3:] == (0,) * 7

    def test_parity_ids_generated(self):
        stripes = group_into_stripes(blocks_of(10), k=10, r=4, stripe_prefix="s")
        assert len(stripes[0].parity_block_ids) == 4
        assert stripes[0].parity_block_ids[0] == "s_0/parity_0"

    def test_invalid_parameters(self):
        with pytest.raises(EncodingError):
            group_into_stripes(blocks_of(4), k=0, r=2)


class TestStripeLayout:
    def make_layout(self, sizes=(10, 10, 7)):
        blocks = [Block(f"b{i}", s) for i, s in enumerate(sizes)]
        return group_into_stripes(blocks, k=4, r=2)[0]

    def test_stripe_width_is_max(self):
        assert self.make_layout().stripe_width == 10

    def test_logical_size(self):
        assert self.make_layout().logical_size == 27

    def test_physical_size_counts_parities_at_width(self):
        layout = self.make_layout()
        assert layout.physical_size == 27 + 2 * 10

    def test_all_block_ids_order(self):
        layout = self.make_layout()
        ids = layout.all_block_ids()
        assert len(ids) == 6
        assert ids[3] is None  # virtual slot
        assert ids[4].endswith("parity_0")

    def test_slot_count_validation(self):
        with pytest.raises(EncodingError):
            StripeLayout(
                stripe_id="s",
                k=3,
                r=1,
                data_block_ids=("a", "b"),
                parity_block_ids=("p",),
                data_sizes=(1, 1),
            )

    def test_full_256mb_accounting_scaled(self):
        """Fig. 2 accounting at scaled block size."""
        data = np.zeros(10 * 64, dtype=np.uint8)
        logical = chunk_bytes("f", data, block_size=64)
        layout = group_into_stripes(logical.blocks, 10, 4)[0]
        assert layout.stripe_width == 64
        assert layout.physical_size / layout.logical_size == pytest.approx(1.4)
