"""Equivalence suite for the streaming repair / degraded-read pipeline.

The contract under test: :func:`repro.striping.pipeline.repair_stream`,
:func:`~repro.striping.pipeline.decode_file`,
:func:`~repro.striping.pipeline.repair_file` and
:class:`~repro.striping.pipeline.CompiledFileRepair` produce bytes
identical to the batched :class:`~repro.striping.codec.StripeCodec`
paths (``repair_block`` / ``decode_stripe``) for every registered code
family, every failure slot, and every file shape -- including empty
files, ragged tails, virtual padding slots, corrupted survivors
(quarantine-and-retry), and short-read sources.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import CorruptionError, PipelineError, RepairError
from repro.striping.blocks import chunk_bytes
from repro.striping.checksum import crc32c
from repro.striping.codec import StripeCodec
from repro.striping.layout import group_into_stripes
from repro.striping.pipeline import (
    CompiledFileRepair,
    decode_file,
    repair_file,
    repair_stream,
)

_CODES = {
    "rs": ReedSolomonCode(4, 2),
    "lrc": LRCCode(4, 2, 2),
    "crs": CauchyBitmatrixRSCode(4, 2),
    "piggyback": PiggybackedRSCode(4, 2),
}


def _materialise(code, name, data, block_size):
    """Encode ``data`` and return the per-slot stored shards.

    Returns ``(layouts, per_stripe, shards, checksums)`` where
    ``per_stripe[t]`` maps slot -> stored Block (real slots only),
    ``shards[slot]`` is the slot's stored bytes across all stripes, and
    ``checksums[slot][t]`` is the CRC32C of stripe ``t``'s stored bytes.
    """
    logical = chunk_bytes(name, data, block_size)
    layouts = group_into_stripes(
        logical.blocks, code.k, code.r, stripe_prefix=f"{name}/stripe"
    )
    codec = StripeCodec(code)
    per_stripe = []
    shards = {slot: bytearray() for slot in range(code.n)}
    checksums = {slot: [] for slot in range(code.n)}
    cursor = 0
    for layout in layouts:
        members = logical.blocks[cursor : cursor + layout.real_data_count]
        cursor += layout.real_data_count
        data_slots = list(members) + [None] * (code.k - len(members))
        parities = codec.encode_stripe(layout, data_slots)
        slot_map = {}
        for slot in range(code.n):
            if slot < code.k:
                block = data_slots[slot]
                stored = b"" if block is None else block.payload.tobytes()
                if block is not None:
                    slot_map[slot] = block
            else:
                parity = parities[slot - code.k]
                stored = parity.payload.tobytes()
                slot_map[slot] = parity
            shards[slot] += stored
            checksums[slot].append(
                crc32c(np.frombuffer(stored, dtype=np.uint8))
            )
        per_stripe.append(slot_map)
    return (
        layouts,
        per_stripe,
        {slot: bytes(b) for slot, b in shards.items()},
        checksums,
    )


@given(
    code_name=st.sampled_from(sorted(_CODES)),
    file_size=st.integers(min_value=0, max_value=1500),
    block_size=st.integers(min_value=16, max_value=192),
    failed_choice=st.integers(min_value=0, max_value=7),
    chunk_stripes=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_repair_stream_matches_batched_repair(
    code_name, file_size, block_size, failed_choice, chunk_stripes
):
    code = _CODES[code_name]
    rng = np.random.default_rng(file_size * 8 + failed_choice)
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    layouts, per_stripe, shards, checksums = _materialise(
        code, "f", data, block_size
    )
    failed = failed_choice % code.n
    codec = StripeCodec(code)

    # Batched oracle: repair_block per stripe with the same survivors.
    oracle = bytearray()
    oracle_bytes_read = 0
    for layout, slot_map in zip(layouts, per_stripe):
        if failed not in slot_map:
            continue  # virtual in this stripe; nothing stored to rebuild
        available = {s: b for s, b in slot_map.items() if s != failed}
        rebuilt, bytes_read, _ = codec.repair_block(
            layout, failed, available
        )
        oracle += rebuilt.payload.tobytes()
        oracle_bytes_read += bytes_read

    sources = {s: shards[s] for s in range(code.n) if s != failed}
    sink = io.BytesIO()
    result = repair_stream(
        code,
        sources,
        sink,
        block_size,
        failed,
        file_size,
        name="f",
        checksums=checksums,
        chunk_stripes=chunk_stripes,
    )
    assert sink.getvalue() == bytes(oracle) == shards[failed]
    assert result.rebuilt_bytes == len(shards[failed])
    assert result.bytes_read == oracle_bytes_read
    assert result.crc_mismatches == 0
    assert result.quarantined == ()


@given(
    code_name=st.sampled_from(sorted(_CODES)),
    file_size=st.integers(min_value=0, max_value=1200),
    block_size=st.integers(min_value=16, max_value=160),
    erased_choice=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=40, deadline=None)
def test_decode_file_matches_decode_stripe(
    code_name, file_size, block_size, erased_choice
):
    code = _CODES[code_name]
    rng = np.random.default_rng(file_size * 8 + erased_choice + 1)
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    layouts, per_stripe, shards, checksums = _materialise(
        code, "f", data, block_size
    )
    erased = erased_choice % code.n
    codec = StripeCodec(code)

    oracle = bytearray()
    for layout, slot_map in zip(layouts, per_stripe):
        available = {s: b for s, b in slot_map.items() if s != erased}
        for block in codec.decode_stripe(layout, available):
            oracle += block.payload.tobytes()
    assert bytes(oracle) == data.tobytes()

    sources = {s: shards[s] for s in range(code.n) if s != erased}
    sink = io.BytesIO()
    result = decode_file(
        code,
        sources,
        sink,
        block_size,
        file_size,
        name="f",
        checksums=checksums,
    )
    assert sink.getvalue() == data.tobytes()
    assert result.data_bytes == file_size
    assert result.crc_mismatches == 0


@pytest.mark.parametrize("code_name", sorted(_CODES))
def test_corrupted_survivor_is_quarantined_and_repair_recovers(code_name):
    code = _CODES[code_name]
    rng = np.random.default_rng(7)
    block_size = 64
    file_size = code.k * block_size * 3
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    _, _, shards, checksums = _materialise(code, "f", data, block_size)
    failed = 1
    survivors = sorted(s for s in range(code.n) if s != failed)
    plan = code.repair_plan_cached(failed, survivors)
    victim = plan.nodes_contacted[0]

    bad = bytearray(shards[victim])
    bad[3] ^= 0xA5  # stripe 0 of the contacted survivor
    sources = {s: shards[s] for s in survivors}
    sources[victim] = bytes(bad)
    sink = io.BytesIO()
    result = repair_stream(
        code,
        sources,
        sink,
        block_size,
        failed,
        file_size,
        name="f",
        checksums=checksums,
    )
    assert sink.getvalue() == shards[failed]
    assert result.crc_mismatches >= 1
    assert (0, victim) in result.quarantined


@pytest.mark.parametrize("code_name", sorted(_CODES))
def test_unattributable_corruption_raises(code_name):
    code = _CODES[code_name]
    rng = np.random.default_rng(11)
    block_size = 32
    file_size = code.k * block_size * 2
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    _, _, shards, checksums = _materialise(code, "f", data, block_size)
    failed = 0
    # All survivors verify, but the failed shard's expected CRC is wrong:
    # the rebuilt unit can never match and nobody can be quarantined.
    checksums[failed][0] ^= 1
    sources = {s: shards[s] for s in range(code.n) if s != failed}
    with pytest.raises(CorruptionError):
        repair_stream(
            code,
            sources,
            io.BytesIO(),
            block_size,
            failed,
            file_size,
            name="f",
            checksums=checksums,
        )


def test_decode_file_quarantines_corrupt_data_source():
    code = _CODES["rs"]
    rng = np.random.default_rng(13)
    block_size = 64
    file_size = code.k * block_size * 2 + 10
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    _, _, shards, checksums = _materialise(code, "f", data, block_size)
    erased = code.k  # lose a parity; decode from data + remaining parity
    bad = bytearray(shards[1])
    bad[block_size + 5] ^= 0x20  # stripe 1 of data slot 1
    sources = {s: shards[s] for s in range(code.n) if s != erased}
    sources[1] = bytes(bad)
    sink = io.BytesIO()
    result = decode_file(
        code,
        sources,
        sink,
        block_size,
        file_size,
        name="f",
        checksums=checksums,
    )
    assert sink.getvalue() == data.tobytes()
    assert result.crc_mismatches >= 1
    assert (1, 1) in result.quarantined


def test_short_read_source_fails_loudly():
    code = _CODES["rs"]
    rng = np.random.default_rng(17)
    block_size = 64
    file_size = code.k * block_size * 2
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    _, _, shards, _ = _materialise(code, "f", data, block_size)
    failed = 2
    sources = {s: shards[s] for s in range(code.n) if s != failed}
    sources[0] = io.BytesIO(shards[0][:-10])  # truncated stream
    with pytest.raises(PipelineError):
        repair_stream(
            code, sources, io.BytesIO(), block_size, failed, file_size,
            name="f",
        )
    # A bytes-like shard with the wrong length is rejected up front too.
    sources[0] = shards[0][:-10]
    with pytest.raises(PipelineError):
        repair_stream(
            code, sources, io.BytesIO(), block_size, failed, file_size,
            name="f",
        )


def test_repair_stream_rejects_failed_slot_as_source():
    code = _CODES["rs"]
    _, _, shards, _ = _materialise(
        code, "f", np.zeros(256, dtype=np.uint8), 64
    )
    with pytest.raises(RepairError):
        repair_stream(
            code,
            {s: shards[s] for s in range(code.n)},
            io.BytesIO(),
            64,
            0,
            256,
            name="f",
        )


def test_repair_stream_from_paths_to_path(tmp_path):
    code = _CODES["piggyback"]
    rng = np.random.default_rng(19)
    block_size = 96
    file_size = code.k * block_size * 4 + 33
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    _, _, shards, checksums = _materialise(code, "f", data, block_size)
    failed = code.k + 1
    sources = {}
    for slot in range(code.n):
        if slot == failed:
            continue
        path = tmp_path / f"shard_{slot}"
        path.write_bytes(shards[slot])
        sources[slot] = str(path)
    out_path = tmp_path / "rebuilt"
    result = repair_stream(
        code,
        sources,
        str(out_path),
        block_size,
        failed,
        file_size,
        name="f",
        checksums=checksums,
    )
    assert out_path.read_bytes() == shards[failed]
    assert result.rebuilt_bytes == len(shards[failed])


@pytest.mark.parametrize("code_name", sorted(_CODES))
def test_repair_file_parallel_matches_serial(code_name):
    code = _CODES[code_name]
    rng = np.random.default_rng(23)
    block_size = 64
    file_size = code.k * block_size * 6 + 17
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    _, _, shards, checksums = _materialise(code, "f", data, block_size)
    failed = 3
    survivors = {s: shards[s] for s in range(code.n) if s != failed}
    serial = repair_file(
        code, survivors, failed, block_size, file_size,
        name="f", checksums=checksums, parallel=False,
    )
    parallel = repair_file(
        code, survivors, failed, block_size, file_size,
        name="f", checksums=checksums, parallel=True, max_workers=2,
    )
    assert serial.rebuilt.tobytes() == shards[failed]
    assert parallel.rebuilt.tobytes() == shards[failed]
    assert serial.bytes_read == parallel.bytes_read
    assert not serial.parallel_used


def test_compiled_repair_reruns_against_current_shard_contents():
    code = _CODES["rs"]
    rng = np.random.default_rng(29)
    block_size = 64
    file_size = code.k * block_size * 4
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    _, _, shards, checksums = _materialise(code, "f", data, block_size)
    failed = 0
    # ndarray shards: the compiled plan binds these buffers, so edits
    # between runs must be visible to the executors.
    survivors = {
        s: np.frombuffer(shards[s], dtype=np.uint8).copy()
        for s in range(code.n)
        if s != failed
    }
    compiled = CompiledFileRepair(
        code, survivors, failed, block_size, file_size,
        name="f", checksums=checksums,
    )
    first = compiled.run()
    assert compiled.out.tobytes() == shards[failed]
    second = compiled.run()
    assert compiled.out.tobytes() == shards[failed]
    assert first == second

    # Mutate a survivor the plan reads; an uncheck-summed rerun must
    # reflect the new buffer contents (wrong bytes, by design).
    unchecked = CompiledFileRepair(
        code, survivors, failed, block_size, file_size, name="f",
    )
    unchecked.run()
    baseline = unchecked.out.tobytes()
    plan = code.repair_plan_cached(
        failed, sorted(s for s in range(code.n) if s != failed)
    )
    victim = plan.nodes_contacted[0]
    survivors[victim][0] ^= 0xFF
    unchecked.run()
    assert unchecked.out.tobytes() != baseline
    survivors[victim][0] ^= 0xFF
    unchecked.run()
    assert unchecked.out.tobytes() == baseline == shards[failed]


def test_empty_and_sub_block_files_round_trip():
    code = _CODES["crs"]
    for file_size in (0, 1, 7):
        data = np.arange(file_size, dtype=np.uint8)
        _, _, shards, checksums = _materialise(code, "f", data, 64)
        failed = code.k  # first parity is stored even for tiny files
        sources = {s: shards[s] for s in range(code.n) if s != failed}
        sink = io.BytesIO()
        repair_stream(
            code, sources, sink, 64, failed, file_size,
            name="f", checksums=checksums,
        )
        assert sink.getvalue() == shards[failed]
        sink = io.BytesIO()
        decode_file(
            code,
            {s: shards[s] for s in range(code.n) if s != 0},
            sink,
            64,
            file_size,
            name="f",
            checksums=checksums,
        )
        assert sink.getvalue() == data.tobytes()
