"""Self-healing pipeline under injected worker faults.

The contract: whatever the chaos plan does to the pool (worker
crashes, stragglers, pool deaths), ``encode_file`` either produces
output byte-identical to the serial path or raises a typed error --
and it never leaks a shared-memory segment.
"""

import numpy as np
import pytest

from repro.codes.rs import ReedSolomonCode
from repro.errors import ConfigError, EncodingError
from repro.faults import CHAOS_ENV, FaultPlan, track_shared_memory
from repro.striping.pipeline import _decide_parallel, encode_file


@pytest.fixture
def data():
    return np.random.default_rng(7).integers(
        0, 256, size=17 * 1024 + 13, dtype=np.uint8
    )


def _assert_same(a, b):
    assert len(a.parities) == len(b.parities)
    for row_a, row_b in zip(a.parities, b.parities):
        for pa, pb in zip(row_a, row_b):
            assert np.array_equal(pa.payload, pb.payload)


class TestWorkerCrash:
    def test_crashed_worker_output_identical_to_serial(self, data):
        """The CI regression: kill a pool worker mid-encode, output is
        still byte-identical to a serial encode."""
        code = ReedSolomonCode(6, 3)
        serial = encode_file(code, data, 1024, parallel=False)
        plan = FaultPlan(seed=11, worker_crashes=1, crash_attempts=1)
        with track_shared_memory() as audit:
            chaotic = encode_file(
                code, data, 1024, parallel=True, max_workers=2,
                fault_plan=plan,
            )
        assert not audit.leaked
        _assert_same(serial, chaotic)
        if chaotic.parallel_used:  # pool-less hosts degrade to serial
            assert chaotic.retries >= 1

    def test_repeated_crashes_fall_back_to_serial(self, data):
        code = ReedSolomonCode(6, 3)
        serial = encode_file(code, data, 1024, parallel=False)
        plan = FaultPlan(seed=11, worker_crashes=1, crash_attempts=5)
        with track_shared_memory() as audit:
            chaotic = encode_file(
                code, data, 1024, parallel=True, max_workers=2,
                fault_plan=plan,
            )
        assert not audit.leaked
        _assert_same(serial, chaotic)
        if chaotic.parallel_used:
            assert chaotic.serial_fallback_shards >= 1

    def test_straggler_delay_is_survived(self, data):
        code = ReedSolomonCode(6, 3)
        serial = encode_file(code, data, 1024, parallel=False)
        plan = FaultPlan(
            seed=11, worker_crashes=0, stragglers=1, straggler_seconds=0.05
        )
        chaotic = encode_file(
            code, data, 1024, parallel=True, max_workers=2, fault_plan=plan
        )
        _assert_same(serial, chaotic)

    def test_chaos_env_applies_to_pooled_encode(self, data, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "11:worker_crashes=1,crash_attempts=1")
        code = ReedSolomonCode(6, 3)
        serial = encode_file(code, data, 1024, parallel=False)
        chaotic = encode_file(code, data, 1024, parallel=True, max_workers=2)
        _assert_same(serial, chaotic)

    def test_progress_timeout_validated(self, data):
        with pytest.raises(EncodingError):
            encode_file(
                ReedSolomonCode(6, 3), data, 1024, progress_timeout=0.0
            )


class TestFaultPlanParsing:
    def test_unset_means_no_plan(self):
        assert FaultPlan.from_env(env={}) is None
        assert FaultPlan.from_env(env={CHAOS_ENV: ""}) is None

    def test_bare_seed(self):
        plan = FaultPlan.from_env(env={CHAOS_ENV: "42"})
        assert plan is not None and plan.seed == 42

    def test_overrides(self):
        plan = FaultPlan.parse("42:bit_flips=3,straggler_seconds=0.5")
        assert plan.bit_flips == 3
        assert plan.straggler_seconds == 0.5

    @pytest.mark.parametrize(
        "raw",
        ["abc", "1:bogus=2", "1:bit_flips=x", "1:bit_flips", "1:=3"],
    )
    def test_junk_raises_config_error(self, raw):
        with pytest.raises(ConfigError):
            FaultPlan.parse(raw)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(seed=1, bit_flips=-1)

    def test_worker_faults_deterministic(self):
        plan = FaultPlan(seed=5, worker_crashes=1, stragglers=1)
        assert plan.worker_faults(8) == plan.worker_faults(8)


class TestParallelEnvValidation:
    def test_pipeline_rejects_junk(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "yes")
        with pytest.raises(ConfigError):
            _decide_parallel(8, None)

    def test_sweep_shares_the_same_helper(self, monkeypatch):
        from repro.cluster.sweep import _decide_parallel as sweep_decide

        monkeypatch.setenv("REPRO_PARALLEL", "2")
        with pytest.raises(ConfigError):
            sweep_decide(8, None)

    def test_valid_values_still_work(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_PARALLEL", "1")
        # "1" permits pools; whether one is used still depends on CPUs.
        assert _decide_parallel(8, None) == ((os.cpu_count() or 1) > 1)
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert not _decide_parallel(8, None)
