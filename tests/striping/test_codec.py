"""Tests for the stripe codec (payload-level encode/decode/repair)."""

import numpy as np
import pytest

from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import EncodingError, RepairError
from repro.striping.blocks import Block, chunk_bytes
from repro.striping.codec import StripeCodec
from repro.striping.layout import group_into_stripes

ALL_CODES = [
    ReedSolomonCode(4, 2),
    PiggybackedRSCode(4, 2),
    LRCCode(4, 2, 2),
]


def make_file(rng, total_bytes, block_size):
    data = rng.integers(0, 256, size=total_bytes, dtype=np.uint8)
    return chunk_bytes("f", data, block_size), data


class TestEncodeStripe:
    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
    def test_parity_count_and_size(self, code, rng):
        logical, __ = make_file(rng, 4 * 100, 100)
        layout = group_into_stripes(logical.blocks, code.k, code.r)[0]
        codec = StripeCodec(code)
        parities = codec.encode_stripe(layout, logical.blocks)
        assert len(parities) == code.r
        for parity in parities:
            assert parity.size == codec.padded_width(layout)

    def test_wrong_block_for_slot(self, rng):
        code = ReedSolomonCode(4, 2)
        logical, __ = make_file(rng, 400, 100)
        layout = group_into_stripes(logical.blocks, 4, 2)[0]
        wrong = list(logical.blocks)
        wrong[0], wrong[1] = wrong[1], wrong[0]
        with pytest.raises(EncodingError):
            StripeCodec(code).encode_stripe(layout, wrong)

    def test_missing_payload_rejected(self):
        code = ReedSolomonCode(2, 1)
        blocks = [Block("b0", 4), Block("b1", 4)]  # no payloads
        layout = group_into_stripes(blocks, 2, 1)[0]
        with pytest.raises(EncodingError):
            StripeCodec(code).encode_stripe(layout, blocks)

    def test_virtual_slot_must_be_none(self, rng):
        code = ReedSolomonCode(4, 2)
        logical, __ = make_file(rng, 250, 100)  # 3 blocks, 1 virtual slot
        layout = group_into_stripes(logical.blocks, 4, 2)[0]
        padded = list(logical.blocks) + [logical.blocks[0]]
        with pytest.raises(EncodingError):
            StripeCodec(code).encode_stripe(layout, padded)

    def test_padded_width_even_for_piggyback(self, rng):
        code = PiggybackedRSCode(4, 2)
        logical, __ = make_file(rng, 4 * 101, 101)  # odd width
        layout = group_into_stripes(logical.blocks, 4, 2)[0]
        assert StripeCodec(code).padded_width(layout) == 102


class TestDecodeStripe:
    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
    def test_restores_all_blocks(self, code, rng):
        logical, data = make_file(rng, 4 * 100, 100)
        layout = group_into_stripes(logical.blocks, code.k, code.r)[0]
        codec = StripeCodec(code)
        parities = codec.encode_stripe(layout, logical.blocks)
        # Lose the first two data blocks; decode from the rest + parity.
        available = {2: logical.blocks[2], 3: logical.blocks[3]}
        for j, parity in enumerate(parities):
            available[code.k + j] = parity
        restored = codec.decode_stripe(layout, available)
        joined = np.concatenate([b.payload for b in restored])
        assert np.array_equal(joined, data)

    def test_tail_file_with_virtual_blocks(self, rng):
        code = ReedSolomonCode(4, 2)
        logical, data = make_file(rng, 230, 100)  # sizes 100,100,30 + virtual
        layout = group_into_stripes(logical.blocks, 4, 2)[0]
        codec = StripeCodec(code)
        parities = codec.encode_stripe(
            layout, list(logical.blocks) + [None]
        )
        available = {1: logical.blocks[1], 2: logical.blocks[2],
                     4: parities[0], 5: parities[1]}
        restored = codec.decode_stripe(layout, available)
        assert [b.size for b in restored] == [100, 100, 30]
        joined = np.concatenate([b.payload for b in restored])
        assert np.array_equal(joined, data)


class TestRepairBlock:
    @pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
    def test_repair_every_slot(self, code, rng):
        logical, __ = make_file(rng, 4 * 100, 100)
        layout = group_into_stripes(logical.blocks, code.k, code.r)[0]
        codec = StripeCodec(code)
        parities = codec.encode_stripe(layout, logical.blocks)
        members = {i: logical.blocks[i] for i in range(4)}
        members.update({4 + j: p for j, p in enumerate(parities)})
        for failed in range(code.n):
            available = {s: b for s, b in members.items() if s != failed}
            rebuilt, bytes_read, plan = codec.repair_block(
                layout, failed, available
            )
            expected = members[failed]
            assert rebuilt.block_id == expected.block_id
            assert np.array_equal(
                rebuilt.payload, expected.payload
            ), (code.name, failed)
            assert bytes_read == plan.bytes_downloaded(codec.padded_width(layout))

    def test_virtual_slot_repair_rejected(self, rng):
        code = ReedSolomonCode(4, 2)
        logical, __ = make_file(rng, 250, 100)
        layout = group_into_stripes(logical.blocks, 4, 2)[0]
        codec = StripeCodec(code)
        parities = codec.encode_stripe(layout, list(logical.blocks) + [None])
        available = {i: b for i, b in enumerate(logical.blocks)}
        with pytest.raises(RepairError):
            codec.repair_block(layout, 3, available)

    def test_virtual_reads_are_free(self, rng):
        """Bytes metered for repair exclude virtual zero blocks."""
        code = ReedSolomonCode(4, 2)
        logical, __ = make_file(rng, 250, 100)  # one virtual slot (slot 3)
        layout = group_into_stripes(logical.blocks, 4, 2)[0]
        codec = StripeCodec(code)
        parities = codec.encode_stripe(layout, list(logical.blocks) + [None])
        available = {0: logical.blocks[0], 1: logical.blocks[1],
                     4: parities[0], 5: parities[1]}
        rebuilt, bytes_read, plan = codec.repair_block(layout, 2, available)
        assert np.array_equal(rebuilt.payload, logical.blocks[2].payload)
        # Plan reads 4 units of 100 bytes, one of which (slot 3) is
        # virtual if chosen; bytes must never exceed the real reads.
        width = codec.padded_width(layout)
        virtual_reads = sum(
            1 for request in plan.requests
            if request.node < 4 and layout.data_block_ids[request.node] is None
        )
        assert bytes_read == (plan.num_connections - virtual_reads) * width

    def test_tail_block_repair_trims_to_size(self, rng):
        code = ReedSolomonCode(4, 2)
        logical, __ = make_file(rng, 330, 100)  # tail block of 30
        layout = group_into_stripes(logical.blocks, 4, 2)[0]
        codec = StripeCodec(code)
        parities = codec.encode_stripe(layout, logical.blocks)
        available = {0: logical.blocks[0], 1: logical.blocks[1],
                     2: logical.blocks[2], 4: parities[0]}
        rebuilt, __, __ = codec.repair_block(layout, 3, available)
        assert rebuilt.size == 30
        assert np.array_equal(rebuilt.payload, logical.blocks[3].payload)

    def test_piggyback_repair_cheaper_through_codec(self, rng):
        """The 30% saving survives the block layer."""
        rs_codec = StripeCodec(ReedSolomonCode(4, 2))
        pb_codec = StripeCodec(PiggybackedRSCode(4, 2))
        logical, __ = make_file(rng, 4 * 100, 100)
        layout = group_into_stripes(logical.blocks, 4, 2)[0]
        members_rs = {i: b for i, b in enumerate(logical.blocks)}
        members_rs.update(
            {4 + j: p for j, p in enumerate(rs_codec.encode_stripe(layout, logical.blocks))}
        )
        members_pb = {i: b for i, b in enumerate(logical.blocks)}
        members_pb.update(
            {4 + j: p for j, p in enumerate(pb_codec.encode_stripe(layout, logical.blocks))}
        )
        failed = 0
        __, rs_bytes, __ = rs_codec.repair_block(
            layout, failed, {s: b for s, b in members_rs.items() if s != failed}
        )
        __, pb_bytes, __ = pb_codec.repair_block(
            layout, failed, {s: b for s, b in members_pb.items() if s != failed}
        )
        assert pb_bytes < rs_bytes
