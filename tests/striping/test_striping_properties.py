"""Property-based tests across the striping layer.

Random file sizes, block sizes, and codes; the invariant is always the
same: whatever survives an erasure pattern within tolerance, the file
comes back byte-identical.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.striping.blocks import chunk_bytes
from repro.striping.codec import StripeCodec
from repro.striping.layout import group_into_stripes

_CODES = {
    "rs": ReedSolomonCode(4, 2),
    "piggyback": PiggybackedRSCode(4, 2),
    "crs": CauchyBitmatrixRSCode(4, 2),
}


@given(
    code_name=st.sampled_from(sorted(_CODES)),
    file_size=st.integers(min_value=1, max_value=1200),
    block_size=st.integers(min_value=16, max_value=256),
    erasure_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_random_files_survive_two_erasures_per_stripe(
    code_name, file_size, block_size, erasure_seed
):
    code = _CODES[code_name]
    rng = np.random.default_rng(erasure_seed)
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    logical = chunk_bytes("f", data, block_size)
    layouts = group_into_stripes(logical.blocks, code.k, code.r)
    codec = StripeCodec(code)

    restored_parts = []
    cursor = 0
    for layout in layouts:
        members = logical.blocks[cursor : cursor + layout.real_data_count]
        cursor += layout.real_data_count
        data_slots = list(members) + [None] * (code.k - len(members))
        parities = codec.encode_stripe(layout, data_slots)
        # Build the availability map, erase 2 random real slots.
        slot_map = {}
        for slot, block in enumerate(data_slots):
            if block is not None:
                slot_map[slot] = block
        for j, parity in enumerate(parities):
            slot_map[code.k + j] = parity
        erasable = sorted(slot_map)
        erased = set(
            rng.choice(erasable, size=min(2, len(erasable) - code.k + 2),
                       replace=False).tolist()
        ) if len(erasable) > code.k else set()
        available = {
            slot: block for slot, block in slot_map.items()
            if slot not in erased
        }
        restored = codec.decode_stripe(layout, available)
        restored_parts.extend(block.payload for block in restored)

    reconstructed = (
        np.concatenate(restored_parts) if restored_parts else np.zeros(0, np.uint8)
    )
    assert np.array_equal(reconstructed, data)


@given(
    code_name=st.sampled_from(sorted(_CODES)),
    file_size=st.integers(min_value=1, max_value=600),
    block_size=st.integers(min_value=16, max_value=128),
    failed_choice=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_repair_restores_exact_block(
    code_name, file_size, block_size, failed_choice
):
    code = _CODES[code_name]
    rng = np.random.default_rng(failed_choice + file_size)
    data = rng.integers(0, 256, size=file_size, dtype=np.uint8)
    logical = chunk_bytes("f", data, block_size)
    layout = group_into_stripes(logical.blocks, code.k, code.r)[0]
    codec = StripeCodec(code)
    members = logical.blocks[: layout.real_data_count]
    data_slots = list(members) + [None] * (code.k - len(members))
    parities = codec.encode_stripe(layout, data_slots)
    slot_map = {
        slot: block
        for slot, block in enumerate(data_slots)
        if block is not None
    }
    slot_map.update({code.k + j: p for j, p in enumerate(parities)})
    real_slots = sorted(slot_map)
    failed = real_slots[failed_choice % len(real_slots)]
    available = {s: b for s, b in slot_map.items() if s != failed}
    rebuilt, bytes_read, plan = codec.repair_block(layout, failed, available)
    assert np.array_equal(rebuilt.payload, slot_map[failed].payload)
    assert bytes_read >= 0
    assert plan.failed_node == failed
