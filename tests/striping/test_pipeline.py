"""The shared-memory file pipeline: determinism and degradation.

Parallel and serial runs must produce byte-identical parities in the
same order; ``REPRO_PARALLEL=0`` must force the serial path; hosts that
cannot spawn pools degrade silently rather than failing.
"""

import numpy as np
import pytest

from repro.codes.piggyback.code import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.striping.codec import StripeCodec
from repro.striping.pipeline import EncodeResult, _decide_parallel, encode_file


@pytest.fixture
def data():
    return np.random.default_rng(2).integers(
        0, 256, size=17 * 1024 + 13, dtype=np.uint8
    )


def _assert_same(a: EncodeResult, b: EncodeResult):
    assert len(a.parities) == len(b.parities)
    for row_a, row_b in zip(a.parities, b.parities):
        for pa, pb in zip(row_a, row_b):
            assert pa.block_id == pb.block_id
            assert pa.size == pb.size
            assert np.array_equal(pa.payload, pb.payload)


def test_serial_matches_scalar_codec(data):
    code = ReedSolomonCode(6, 3)
    result = encode_file(code, data, 1024, parallel=False)
    assert not result.parallel_used and result.shards == 1
    codec = StripeCodec(code)
    cursor = 0
    for layout, parities in zip(result.layouts, result.parities):
        slots = []
        for block_id in layout.data_block_ids:
            if block_id is None:
                slots.append(None)
            else:
                slots.append(result.file.blocks[cursor])
                cursor += 1
        for got, want in zip(parities, codec.encode_stripe(layout, slots)):
            assert np.array_equal(got.payload, want.payload)


def test_parallel_matches_serial(data):
    """Forced-parallel output is byte-identical and identically ordered.

    On hosts where pools or shared memory are unavailable the pipeline
    legitimately degrades to serial, which compares equal trivially.
    """
    code = PiggybackedRSCode(6, 3)
    serial = encode_file(code, data, 1024, parallel=False)
    forced = encode_file(code, data, 1024, parallel=True, max_workers=2)
    _assert_same(serial, forced)


def test_kill_switch_forces_serial(data, monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "0")
    result = encode_file(ReedSolomonCode(6, 3), data, 1024)
    assert not result.parallel_used
    assert result.shards == 1


def test_decide_parallel_rules(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "0")
    assert not _decide_parallel(8, None)
    assert _decide_parallel(8, True)  # explicit request wins
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    assert not _decide_parallel(1, None)  # one stripe: nothing to shard
    assert not _decide_parallel(1, True)


def test_single_stripe_stays_serial():
    code = ReedSolomonCode(6, 3)
    data = np.arange(6 * 256, dtype=np.uint64).astype(np.uint8)
    result = encode_file(code, data, 256, parallel=True)
    assert len(result.layouts) == 1
    assert not result.parallel_used


def test_parity_bytes_accounting(data):
    code = ReedSolomonCode(6, 3)
    result = encode_file(code, data, 1024, parallel=False)
    assert result.parity_bytes == sum(
        p.size for row in result.parities for p in row
    )
    assert result.parity_bytes > 0
