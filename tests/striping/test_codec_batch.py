"""Batched StripeCodec entry points against the scalar oracles.

``encode_stripes`` / ``repair_blocks`` must return exactly what a loop
over ``encode_stripe`` / ``repair_block`` returns -- payload bytes, byte
accounting, and plans -- for ragged final stripes, virtual padding
slots, and mixed widths.  Also pins down the scratch-buffer hazards:
interleaving widths must never alias previously returned payloads, and
the zero-unit cache must stay bounded.
"""

import numpy as np
import pytest

from repro.codes.piggyback.code import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.striping.blocks import chunk_bytes
from repro.striping.codec import ZERO_UNIT_CACHE_CAP, StripeCodec
from repro.striping.layout import group_into_stripes


def _file_stripes(code, total_bytes, block_size, seed=0, name="f"):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=total_bytes, dtype=np.uint8)
    file = chunk_bytes(name, data, block_size=block_size)
    layouts = group_into_stripes(file.blocks, k=code.k, r=code.r)
    slot_lists = []
    cursor = 0
    for layout in layouts:
        slots = []
        for block_id in layout.data_block_ids:
            if block_id is None:
                slots.append(None)
            else:
                slots.append(file.blocks[cursor])
                cursor += 1
        slot_lists.append(slots)
    return data, file, layouts, slot_lists


@pytest.fixture
def code():
    return ReedSolomonCode(6, 3)


def test_encode_stripes_matches_scalar_with_ragged_tail(code):
    codec = StripeCodec(code)
    oracle = StripeCodec(code)
    # 2 full stripes + a tail stripe with a short block and virtual slots
    __, ___, layouts, slot_lists = _file_stripes(code, 64 * 12 + 17, 64)
    batch = codec.encode_stripes(layouts, slot_lists)
    assert len(batch) == len(layouts) == 3
    for layout, slots, parities in zip(layouts, slot_lists, batch):
        expected = oracle.encode_stripe(layout, slots)
        for got, want in zip(parities, expected):
            assert got.block_id == want.block_id
            assert got.size == want.size
            assert np.array_equal(got.payload, want.payload)


def test_encode_stripes_mixed_widths_in_one_call(code):
    codec = StripeCodec(code)
    oracle = StripeCodec(code)
    __, ___, layouts_a, slots_a = _file_stripes(code, 64 * 6, 64, name="a")
    __, ___, layouts_b, slots_b = _file_stripes(code, 32 * 6, 32, name="b")
    # Interleave two widths so grouping must scatter results back.
    layouts = [layouts_a[0], layouts_b[0]]
    slot_lists = [slots_a[0], slots_b[0]]
    batch = codec.encode_stripes(layouts, slot_lists)
    for layout, slots, parities in zip(layouts, slot_lists, batch):
        for got, want in zip(parities, oracle.encode_stripe(layout, slots)):
            assert np.array_equal(got.payload, want.payload)


def test_interleaved_widths_do_not_alias_returned_payloads(code):
    """Scratch reuse across calls must never mutate returned blocks."""
    codec = StripeCodec(code)
    __, ___, layouts_a, slots_a = _file_stripes(code, 64 * 6, 64, name="a")
    first = codec.encode_stripes(layouts_a, slots_a)
    snapshots = [p.payload.copy() for p in first[0]]
    for width, seed in ((32, 1), (48, 2), (64, 3), (96, 4)):
        __, ___, layouts, slots = _file_stripes(
            code, width * 6, width, seed=seed, name=f"w{width}"
        )
        codec.encode_stripes(layouts, slots)
        codec.repair_blocks(
            [
                (
                    layouts[0],
                    0,
                    {
                        slot: block
                        for slot, block in enumerate(slots[0])
                        if slot != 0 and block is not None
                    }
                    | {
                        code.k + j: parity
                        for j, parity in enumerate(
                            codec.encode_stripes(layouts, slots)[0]
                        )
                    },
                )
            ]
        )
    for parity, snapshot in zip(first[0], snapshots):
        assert np.array_equal(parity.payload, snapshot)


def test_repair_blocks_matches_scalar(code):
    codec = StripeCodec(code)
    oracle = StripeCodec(code)
    __, ___, layouts, slot_lists = _file_stripes(code, 64 * 12 + 17, 64)
    parities = codec.encode_stripes(layouts, slot_lists)
    requests = []
    expected = []
    for layout, slots, stripe_parities in zip(layouts, slot_lists, parities):
        members = {
            slot: block
            for slot, block in enumerate(slots)
            if block is not None
        }
        members.update(
            {code.k + j: p for j, p in enumerate(stripe_parities)}
        )
        for failed in sorted(members):
            available = {
                slot: block
                for slot, block in members.items()
                if slot != failed
            }
            requests.append((layout, failed, available))
            expected.append(oracle.repair_block(layout, failed, available))
    results = codec.repair_blocks(requests)
    assert len(results) == len(expected)
    for (block, nbytes, plan), (want, want_bytes, want_plan) in zip(
        results, expected
    ):
        assert block.block_id == want.block_id
        assert block.size == want.size
        assert np.array_equal(block.payload, want.payload)
        assert nbytes == want_bytes
        assert plan.requests == want_plan.requests


def test_repair_blocks_deducts_virtual_slot_bytes(code):
    """Byte accounting for stripes with virtual padding slots matches."""
    codec = StripeCodec(code)
    oracle = StripeCodec(code)
    # A single short stripe: virtual slots guaranteed.
    __, ___, layouts, slot_lists = _file_stripes(code, 64 * 2 + 5, 64)
    (layout,), (slots,) = layouts, slot_lists
    assert layout.real_data_count < layout.k
    stripe_parities = codec.encode_stripes([layout], [slots])[0]
    members = {
        slot: block for slot, block in enumerate(slots) if block is not None
    }
    members.update({code.k + j: p for j, p in enumerate(stripe_parities)})
    failed = sorted(members)[0]
    available = {s: b for s, b in members.items() if s != failed}
    ((block, nbytes, plan),) = codec.repair_blocks(
        [(layout, failed, available)]
    )
    want, want_bytes, want_plan = oracle.repair_block(
        layout, failed, available
    )
    assert np.array_equal(block.payload, want.payload)
    assert nbytes == want_bytes
    assert plan.requests == want_plan.requests


def test_zero_unit_cache_is_bounded(code):
    codec = StripeCodec(code)
    for multiple in range(1, 3 * ZERO_UNIT_CACHE_CAP):
        codec._zero_unit(code.unit_alignment * multiple)
    assert len(codec._zero_units) <= ZERO_UNIT_CACHE_CAP


def test_pad_scratch_reuse_is_invisible_to_callers(code):
    """decode_stripe results survive later calls at other widths."""
    codec = StripeCodec(code)
    data, file, layouts, slot_lists = _file_stripes(code, 64 * 6 + 9, 64)
    recovered = {}
    for layout, slots in zip(layouts, slot_lists):
        parities = codec.encode_stripes([layout], [slots])[0]
        available = {
            slot: block
            for slot, block in enumerate(slots)
            if block is not None
        }
        available.update({code.k + j: p for j, p in enumerate(parities)})
        del available[0]
        for block in codec.decode_stripe(layout, available):
            recovered[block.block_id] = block.payload.copy()
        # hammer the scratch at another width before checking
        __, ___, other_layouts, other_slots = _file_stripes(
            code, 48 * 6 + 7, 48, seed=9, name="other"
        )
        codec.encode_stripes(other_layouts, other_slots)
    for block in file.blocks:
        assert np.array_equal(recovered[block.block_id], block.payload)


def test_repair_blocks_batches_piggyback_plans():
    """The grouped path must execute piggyback (not full-RS) plans."""
    code = PiggybackedRSCode(6, 3)
    codec = StripeCodec(code)
    oracle = StripeCodec(code)
    __, ___, layouts, slot_lists = _file_stripes(code, 64 * 12, 64)
    parities = codec.encode_stripes(layouts, slot_lists)
    requests = []
    expected = []
    for layout, slots, stripe_parities in zip(layouts, slot_lists, parities):
        members = {slot: block for slot, block in enumerate(slots)}
        members.update(
            {code.k + j: p for j, p in enumerate(stripe_parities)}
        )
        available = {s: b for s, b in members.items() if s != 0}
        requests.append((layout, 0, available))
        expected.append(oracle.repair_block(layout, 0, available))
    results = codec.repair_blocks(requests)
    for (block, nbytes, plan), (want, want_bytes, want_plan) in zip(
        results, expected
    ):
        assert np.array_equal(block.payload, want.payload)
        assert nbytes == want_bytes
        assert plan.requests == want_plan.requests
    # the piggyback plan reads less than a full-stripe RS repair would
    assert results[0][1] < code.k * 64
