"""Tests for blocks and file chunking."""

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.striping.blocks import Block, LogicalFile, chunk_bytes


class TestBlock:
    def test_metadata_only(self):
        block = Block("b1", 100)
        assert not block.has_payload

    def test_payload_size_checked(self):
        with pytest.raises(EncodingError):
            Block("b1", 3, payload=np.zeros(4, dtype=np.uint8))

    def test_negative_size_rejected(self):
        with pytest.raises(EncodingError):
            Block("b1", -1)

    def test_payload_flattened_dtype(self):
        block = Block("b1", 4, payload=np.array([1, 2, 3, 4]))
        assert block.payload.dtype == np.uint8

    def test_2d_payload_rejected(self):
        with pytest.raises(EncodingError):
            Block("b1", 4, payload=np.zeros((2, 2), dtype=np.uint8))


class TestChunkBytes:
    def test_exact_multiple(self):
        data = np.arange(100, dtype=np.uint8)
        logical = chunk_bytes("f", data, block_size=25)
        assert len(logical.blocks) == 4
        assert all(b.size == 25 for b in logical.blocks)

    def test_tail_block_shorter(self):
        data = np.arange(90, dtype=np.uint8)
        logical = chunk_bytes("f", data, block_size=25)
        assert [b.size for b in logical.blocks] == [25, 25, 25, 15]

    def test_roundtrip_concatenation(self):
        data = np.arange(77, dtype=np.uint8)
        logical = chunk_bytes("f", data, block_size=10)
        joined = np.concatenate([b.payload for b in logical.blocks])
        assert np.array_equal(joined, data)

    def test_empty_file_single_empty_block(self):
        logical = chunk_bytes("f", np.zeros(0, dtype=np.uint8), block_size=10)
        assert len(logical.blocks) == 1
        assert logical.blocks[0].size == 0

    def test_block_ids_unique_and_ordered(self):
        logical = chunk_bytes("f", np.zeros(50, dtype=np.uint8), block_size=10)
        ids = logical.block_ids
        assert len(set(ids)) == len(ids) == 5
        assert ids[0] == "f/blk_0" and ids[4] == "f/blk_4"

    def test_invalid_block_size(self):
        with pytest.raises(EncodingError):
            chunk_bytes("f", np.zeros(4, dtype=np.uint8), block_size=0)

    def test_file_size(self):
        logical = chunk_bytes("f", np.zeros(37, dtype=np.uint8), block_size=10)
        assert logical.size == 37


class TestLogicalFile:
    def test_empty_file(self):
        assert LogicalFile("f").size == 0
        assert LogicalFile("f").block_ids == []
