"""Overlapped streaming encode: byte-identity, accounting, failures.

:func:`repro.striping.pipeline.encode_stream` pipelines reads, encodes
and writes through bounded queues.  Whatever the threads do, the parity
bytes written to the sink must equal what the in-memory
:func:`encode_file` path computes for the same bytes -- including
ragged tails, sub-stripe files and the empty file -- and errors in any
stage must surface as :class:`PipelineError`, never a hang or silent
truncation.
"""

import io

import numpy as np
import pytest

from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import EncodingError, PipelineError
from repro.striping.pipeline import (
    StreamEncodeResult,
    encode_file,
    encode_stream,
)

CODE = ReedSolomonCode(4, 2)
BLOCK = 1 << 12


def reference_parity(code, data, block_size):
    result = encode_file(code, data, block_size, parallel=False)
    return np.concatenate(
        [p.payload for row in result.parities for p in row]
    )


def stream_parity(code, data, block_size, **kwargs):
    sink = io.BytesIO()
    result = encode_stream(
        code, io.BytesIO(data.tobytes()), sink, block_size, **kwargs
    )
    return np.frombuffer(sink.getvalue(), dtype=np.uint8), result


@pytest.mark.parametrize(
    "size",
    [
        0,  # empty file: one empty-block stripe
        1,  # sub-block
        BLOCK * 3 + 17,  # partial stripe, ragged block
        BLOCK * 4,  # exactly one stripe
        BLOCK * 4 * 3,  # chunk-aligned multi-stripe
        BLOCK * 4 * 5 + BLOCK + 5,  # multi-chunk with ragged tail
    ],
)
def test_stream_matches_encode_file(size):
    rng = np.random.default_rng(size)
    data = rng.integers(0, 256, size, dtype=np.uint8)
    expected = reference_parity(CODE, data, BLOCK)
    got, result = stream_parity(CODE, data, BLOCK, chunk_stripes=2)
    assert np.array_equal(got, expected)
    assert result.data_bytes == size
    assert result.parity_bytes == expected.size


def test_stream_matches_for_crs_backend():
    code = CauchyBitmatrixRSCode(4, 2)
    rng = np.random.default_rng(5)
    data = rng.integers(0, 256, BLOCK * 4 * 3 + 40, dtype=np.uint8)
    expected = reference_parity(code, data, BLOCK)
    got, __ = stream_parity(code, data, BLOCK, chunk_stripes=1)
    assert np.array_equal(got, expected)


def test_bytes_like_source_and_path_sink(tmp_path):
    rng = np.random.default_rng(6)
    data = rng.integers(0, 256, BLOCK * 4 * 2 + 9, dtype=np.uint8)
    expected = reference_parity(CODE, data, BLOCK)
    out_path = tmp_path / "parity.bin"
    result = encode_stream(CODE, data.tobytes(), str(out_path), BLOCK)
    got = np.frombuffer(out_path.read_bytes(), dtype=np.uint8)
    assert np.array_equal(got, expected)
    assert result.parity_bytes == expected.size


def test_path_source_and_none_sink(tmp_path):
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, BLOCK * 4 * 2, dtype=np.uint8)
    src = tmp_path / "data.bin"
    src.write_bytes(data.tobytes())
    result = encode_stream(CODE, src, None, BLOCK)
    assert result.data_bytes == data.size
    assert result.stripes == 2
    assert result.parity_bytes == 2 * CODE.r * BLOCK


def test_accounting_and_occupancy():
    rng = np.random.default_rng(8)
    data = rng.integers(0, 256, BLOCK * 4 * 6, dtype=np.uint8)
    __, result = stream_parity(CODE, data, BLOCK, chunk_stripes=2)
    assert isinstance(result, StreamEncodeResult)
    assert result.chunks == 3
    assert result.stripes == 6
    assert result.wall_seconds > 0
    assert 0.0 <= result.occupancy <= 1.0
    assert result.read_wait_seconds >= 0.0
    assert result.write_wait_seconds >= 0.0


def test_overlap_metrics_recorded():
    from repro import observability

    rng = np.random.default_rng(9)
    data = rng.integers(0, 256, BLOCK * 4 * 2, dtype=np.uint8)
    observability.set_enabled(True)
    observability.reset()
    try:
        stream_parity(CODE, data, BLOCK)
        registry = observability.get_registry()
        assert registry.counter_value("pipeline.overlap.files") == 1
        assert registry.counter_value("pipeline.overlap.stripes") == 2
        assert (
            registry.counter_value("pipeline.overlap.data_bytes")
            == data.size
        )
        snapshot = registry.snapshot()
        assert "pipeline.overlap.occupancy" in snapshot["gauges"]
    finally:
        observability.set_enabled(None)


class _ExplodingReader(io.RawIOBase):
    def readable(self):
        return True

    def readinto(self, b):
        raise OSError("disk on fire")


class _ExplodingSink:
    def write(self, data):
        raise OSError("sink full")


def test_reader_error_propagates():
    with pytest.raises(PipelineError, match="disk on fire"):
        encode_stream(CODE, _ExplodingReader(), io.BytesIO(), BLOCK)


def test_writer_error_propagates():
    rng = np.random.default_rng(10)
    data = rng.integers(0, 256, BLOCK * 4 * 4, dtype=np.uint8)
    with pytest.raises(PipelineError, match="sink full"):
        encode_stream(
            CODE,
            io.BytesIO(data.tobytes()),
            _ExplodingSink(),
            BLOCK,
            chunk_stripes=1,
        )


def test_invalid_parameters_rejected():
    with pytest.raises(EncodingError):
        encode_stream(CODE, b"", None, 0)
    with pytest.raises(EncodingError):
        encode_stream(CODE, b"", None, BLOCK, queue_depth=0)
    with pytest.raises(EncodingError):
        encode_stream(CODE, b"", None, BLOCK, chunk_stripes=0)


def test_short_read_source_is_handled():
    """A reader returning short counts must still assemble full chunks."""

    class DribbleReader(io.RawIOBase):
        def __init__(self, payload):
            self._payload = payload
            self._pos = 0

        def readable(self):
            return True

        def readinto(self, b):
            n = min(len(b), 777, len(self._payload) - self._pos)
            if n <= 0:
                return 0
            b[:n] = self._payload[self._pos : self._pos + n]
            self._pos += n
            return n

    rng = np.random.default_rng(11)
    data = rng.integers(0, 256, BLOCK * 4 * 2 + 123, dtype=np.uint8)
    expected = reference_parity(CODE, data, BLOCK)
    sink = io.BytesIO()
    encode_stream(
        CODE, DribbleReader(data.tobytes()), sink, BLOCK, chunk_stripes=1
    )
    got = np.frombuffer(sink.getvalue(), dtype=np.uint8)
    assert np.array_equal(got, expected)
