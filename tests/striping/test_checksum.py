"""CRC32C: standard vectors, batch==scalar equivalence, masking.

The batch kernel is the hot path (scrubber, raid node); the scalar
bytewise implementation is the oracle pinned against published CRC32C
test vectors, so agreement with it means agreement with iSCSI/ext4/HDFS
CRC32C.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.striping.checksum import crc32c, crc32c_batch, crc32c_reference

#: Published CRC32C (Castagnoli) vectors, RFC 3720 appendix B.4 style.
KNOWN_VECTORS = [
    (b"", 0x00000000),
    (b"a", 0xC1D04330),
    (b"123456789", 0xE3069283),
    (b"\x00" * 32, 0x8A9136AA),
    (b"\xff" * 32, 0x62A8AB43),
]


class TestScalar:
    @pytest.mark.parametrize("data,expected", KNOWN_VECTORS)
    def test_known_vectors(self, data, expected):
        assert crc32c(data) == expected

    def test_accepts_uint8_arrays(self):
        data = np.frombuffer(b"123456789", dtype=np.uint8)
        assert crc32c(data) == 0xE3069283

    def test_chaining(self):
        whole = crc32c(b"123456789")
        assert crc32c(b"456789", crc32c(b"123")) == whole

    def test_rejects_wrong_dtype(self):
        with pytest.raises(EncodingError):
            crc32c(np.arange(4, dtype=np.uint16))


class TestBatch:
    def test_matches_scalar_on_known_vectors(self):
        rows = np.zeros((2, 9), dtype=np.uint8)
        rows[0] = np.frombuffer(b"123456789", dtype=np.uint8)
        rows[1] = np.frombuffer(b"987654321", dtype=np.uint8)
        got = crc32c_batch(rows)
        assert got.dtype == np.uint32
        assert [int(c) for c in got] == [crc32c(bytes(r)) for r in rows]

    def test_single_row_input(self):
        row = np.frombuffer(b"123456789", dtype=np.uint8)
        assert int(crc32c_batch(row)[0]) == 0xE3069283

    def test_lengths_mask_trailing_padding(self):
        rows = np.zeros((3, 9), dtype=np.uint8)
        rows[0, :9] = np.frombuffer(b"123456789", dtype=np.uint8)
        rows[1, :3] = np.frombuffer(b"123", dtype=np.uint8)
        rows[1, 3:] = 0xEE  # garbage past the logical length
        got = crc32c_batch(rows, lengths=[9, 3, 0])
        assert int(got[0]) == crc32c(b"123456789")
        assert int(got[1]) == crc32c(b"123")
        assert int(got[2]) == crc32c(b"")

    def test_rejects_bad_shapes_and_lengths(self):
        with pytest.raises(EncodingError):
            crc32c_batch(np.zeros((2, 2, 2), dtype=np.uint8))
        with pytest.raises(EncodingError):
            crc32c_batch(np.zeros((2, 4), dtype=np.int32))
        with pytest.raises(EncodingError):
            crc32c_batch(np.zeros((2, 4), dtype=np.uint8), lengths=[1])
        with pytest.raises(EncodingError):
            crc32c_batch(np.zeros((2, 4), dtype=np.uint8), lengths=[1, 5])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.binary(min_size=0, max_size=64), min_size=1, max_size=8
        )
    )
    def test_batch_equals_scalar(self, payloads):
        width = max((len(p) for p in payloads), default=0) or 1
        matrix = np.zeros((len(payloads), width), dtype=np.uint8)
        lengths = []
        for i, payload in enumerate(payloads):
            matrix[i, : len(payload)] = np.frombuffer(payload, dtype=np.uint8)
            lengths.append(len(payload))
        got = crc32c_batch(matrix, lengths=lengths)
        assert [int(c) for c in got] == [crc32c(p) for p in payloads]


class TestNativeKernel:
    """The compiled CRC path (when present) against the Python oracle.

    :func:`crc32c` dispatches to the native kernel automatically, so
    these run the same assertions through whichever implementation the
    host provides; on hosts without a compiled backend they still pass
    (both sides are the reference).
    """

    @pytest.mark.parametrize("data,expected", KNOWN_VECTORS)
    def test_known_vectors_via_dispatch(self, data, expected):
        assert crc32c(data) == expected == crc32c_reference(data)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=300), st.integers(0, 2**32 - 1))
    def test_dispatch_equals_reference_with_chaining(self, payload, value):
        assert crc32c(payload, value) == crc32c_reference(payload, value)

    def test_word_boundary_sizes(self):
        # The sliced/hardware kernels switch strategy at 8-byte
        # boundaries; cover every tail length around them.
        rng = np.random.default_rng(3)
        for size in range(0, 40):
            buf = rng.integers(0, 256, size, dtype=np.uint8)
            assert crc32c(buf) == crc32c_reference(buf)
