"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.replication import ReplicationCode
from repro.codes.rs import ReedSolomonCode


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def rs_10_4() -> ReedSolomonCode:
    return ReedSolomonCode(10, 4)


@pytest.fixture
def piggyback_10_4() -> PiggybackedRSCode:
    return PiggybackedRSCode(10, 4)


@pytest.fixture
def lrc_10_2_2() -> LRCCode:
    return LRCCode(10, 2, 2)


@pytest.fixture
def replication_3() -> ReplicationCode:
    return ReplicationCode(3)


@pytest.fixture
def small_data(rng) -> np.ndarray:
    """(10, 64) random data units."""
    return rng.integers(0, 256, size=(10, 64), dtype=np.uint8)


def make_data(rng: np.random.Generator, k: int, unit_size: int) -> np.ndarray:
    return rng.integers(0, 256, size=(k, unit_size), dtype=np.uint8)
