"""CLI scorecard command."""

from repro.cli import main


class TestScorecardCommand:
    def test_quick_scorecard_passes(self, capsys):
        exit_code = main(["scorecard", "--quick"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "reproduction scorecard" in out
        assert "0 fail" in out
        assert "PASS" in out
