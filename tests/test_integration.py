"""End-to-end integration tests across every layer.

These walk the full paper story with real payloads: write files hot
(replicated), cool them (RAID to erasure codes), kill machines, recover,
and verify byte-identical data -- for every code family -- while the
traffic meter observes exactly the bytes the repair plans promise.
"""

import numpy as np
import pytest

from repro.cluster.namenode import NameNode
from repro.cluster.network import TrafficMeter
from repro.cluster.placement import DistinctRackPlacement
from repro.cluster.raidnode import RaidNode
from repro.cluster.topology import Topology
from repro.codes.hitchhiker import hitchhiker_xor
from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode

CODES = [
    ReedSolomonCode(10, 4),
    PiggybackedRSCode(10, 4),
    hitchhiker_xor(10, 4),
    LRCCode(10, 2, 2),
]


def build_cluster(code, seed=42):
    topology = Topology(num_racks=20, nodes_per_rack=4)
    namenode = NameNode(topology, DistinctRackPlacement(topology, seed=seed))
    meter = TrafficMeter(topology, record_transfers=True)
    raidnode = RaidNode(namenode, code, meter)
    return namenode, raidnode, meter


@pytest.mark.parametrize("code", CODES, ids=lambda c: c.name)
class TestFullLifecycle:
    def test_write_raid_fail_recover_read(self, code, rng):
        namenode, raidnode, meter = build_cluster(code)
        data = rng.integers(0, 256, size=2_300, dtype=np.uint8)
        namenode.write_file("warehouse/part-0001", data, block_size=100)
        entries = raidnode.raid_file("warehouse/part-0001")
        assert len(entries) == 3  # 23 blocks -> 3 (10,r) stripes

        # Kill three machines holding stripe members of stripe 0.
        victims = [entries[0].locations[slot] for slot in (0, 5, 11)]
        for victim in victims:
            namenode.kill_node(victim)
        rebuilt = raidnode.reconstruct_all_missing(time=1000.0)
        assert rebuilt >= 3
        assert np.array_equal(
            namenode.read_file("warehouse/part-0001"), data
        )

    def test_recovery_traffic_is_cross_rack(self, code, rng):
        namenode, raidnode, meter = build_cluster(code)
        data = rng.integers(0, 256, size=1_000, dtype=np.uint8)
        namenode.write_file("f", data, block_size=100)
        entries = raidnode.raid_file("f")
        victim = entries[0].locations[0]
        namenode.kill_node(victim)
        before = meter.cross_rack_bytes
        raidnode.reconstruct_all_missing(time=0.0)
        recovered_traffic = [
            t for t in meter.transfers if t.purpose == "recovery"
        ]
        assert recovered_traffic
        assert all(t.cross_rack for t in recovered_traffic)
        assert meter.cross_rack_bytes > before


class TestCodeTrafficOrdering:
    def test_piggyback_cheaper_than_rs_end_to_end(self, rng):
        """The paper's claim measured through the whole stack."""
        totals = {}
        for code in (ReedSolomonCode(10, 4), PiggybackedRSCode(10, 4)):
            namenode, raidnode, meter = build_cluster(code, seed=7)
            data = rng.integers(0, 256, size=1_000, dtype=np.uint8)
            namenode.write_file("f", data, block_size=100)
            entries = raidnode.raid_file("f")
            victim = entries[0].locations[0]  # a data block
            namenode.kill_node(victim)
            raidnode.reconstruct_all_missing(time=0.0)
            totals[code.name] = meter.bytes_by_purpose["recovery"]
        saving = 1 - totals["PiggybackedRS(10,4)"] / totals["RS(10,4)"]
        assert saving == pytest.approx(0.30, abs=0.01)  # group-of-4 node

    def test_degraded_read_during_outage(self, rng):
        namenode, raidnode, __ = build_cluster(PiggybackedRSCode(10, 4))
        data = rng.integers(0, 256, size=1_000, dtype=np.uint8)
        namenode.write_file("f", data, block_size=100)
        entries = raidnode.raid_file("f")
        block_id = entries[0].layout.data_block_ids[3]
        victim = entries[0].locations[3]
        namenode.kill_node(victim)
        payload = raidnode.degraded_read(block_id)
        assert np.array_equal(payload, data[300:400])


class TestMultiStripeScenario:
    def test_machine_failure_hits_many_stripes(self, rng):
        """One machine loss degrades many stripes at once; all recover."""
        code = PiggybackedRSCode(4, 2)
        topology = Topology(num_racks=8, nodes_per_rack=1)
        namenode = NameNode(topology, DistinctRackPlacement(topology, seed=3))
        meter = TrafficMeter(topology)
        raidnode = RaidNode(namenode, code, meter)
        files = {}
        for i in range(4):
            data = rng.integers(0, 256, size=400, dtype=np.uint8)
            namenode.write_file(f"f{i}", data, block_size=100, replication=2)
            raidnode.raid_file(f"f{i}")
            files[f"f{i}"] = data
        # With 8 nodes and 4 stripes of width 6, some node holds several
        # stripe members; kill the busiest.
        busiest = max(
            namenode.datanodes.values(), key=lambda d: len(d.blocks)
        )
        assert len(busiest.blocks) >= 2
        namenode.kill_node(busiest.node_id)
        raidnode.reconstruct_all_missing(time=0.0)
        for name, data in files.items():
            assert np.array_equal(namenode.read_file(name), data)
