"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestCommands:
    def test_experiments_lists_ids(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig3b" in out and "tab_savings" in out

    def test_codes_table(self, capsys):
        assert main(["codes"]) == 0
        out = capsys.readouterr().out
        assert "RS(10,4)" in out
        assert "PiggybackedRS(10,4)" in out

    def test_run_fig4(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out
        assert "fig4" in out

    def test_run_json(self, capsys):
        import json

        assert main(["run", "fig4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "fig4"
        assert payload["paper_rows"]
        assert "design_groups" in payload["data"]

    def test_run_json_simulation_experiment(self, capsys):
        """Numpy values inside results serialise cleanly."""
        import json

        assert main(["run", "ext_bound", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["data"]["bound_units"] == 3.25

    def test_simulate_quick(self, capsys):
        code = main(
            [
                "simulate",
                "--days", "2",
                "--stripes-per-node", "10",
                "--code", "piggyback",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PiggybackedRS(10,4)" in out
        assert "median cross-rack TB/day" in out

    def test_simulate_d3_parallel(self, capsys):
        code = main(
            [
                "simulate",
                "--days", "2",
                "--stripes-per-node", "4",
                "--placement", "d3",
                "--parallel-repair",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "parallel repair waves" in out

    def test_simulate_rejects_unknown_placement(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--placement", "best-fit"])

    def test_simulate_with_chaos(self, capsys):
        code = main(
            [
                "simulate",
                "--days", "2",
                "--stripes-per-node", "10",
                "--chaos-corrupt-units", "10",
                "--chaos-node-flaps", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "corrupt survivors excluded" in out


class TestRobustnessCommands:
    def test_chaos_scenario_is_clean(self, capsys):
        assert main(["chaos", "--code", "rs"]) == 0
        out = capsys.readouterr().out
        assert "verdict: CLEAN" in out
        assert "shared-memory segments leaked       : 0" in out

    def test_chaos_spec_overrides(self, capsys):
        code = main(
            ["chaos", "--spec", "worker_crashes=1,crash_attempts=5"]
        )
        assert code == 0
        assert "verdict: CLEAN" in capsys.readouterr().out

    def test_chaos_rejects_junk_spec(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["chaos", "--spec", "bogus=1"])

    def test_scrub_repairs_and_reports(self, capsys):
        assert main(["scrub", "--corruptions", "3"]) == 0
        out = capsys.readouterr().out
        assert "verdict: CLEAN" in out
        assert "corrupt found / repaired   : 3 / 3" in out

    def test_scrub_parity_only_uses_the_fallback(self, capsys):
        assert main(["scrub", "--parity-only"]) == 0
        out = capsys.readouterr().out
        assert "mode=parity-only" in out
        assert "checksum-verified stripes  : 0" in out
        assert "verdict: CLEAN" in out


class TestBenchCommand:
    def test_bench_smoke_table(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        assert main(["bench", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "active GF backend:" in out
        assert "backend comparison (median)" in out
        # The oracle row is always present; every workload appears.
        assert "numpy" in out
        assert "RS(10,4).file_encode" in out
        assert "RS(10,4).file_repair" in out
        assert "CRS(10,4).encode" in out
        assert "CRS(10,4).decode" in out

    def test_bench_json_has_meta_and_rows(self, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        assert main(["bench", "--rounds", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        meta = payload["meta"]
        assert meta["numpy"]
        assert meta["gf_backend"] in ("numpy", "cffi", "numba")
        assert set(meta["gf_backends"]) == {"numpy", "cffi", "numba"}
        rows = payload["rows"]
        numpy_rows = [r for r in rows if r["backend"] == "numpy"]
        assert len(numpy_rows) == 4
        assert all(r["vs_numpy"] == 1.0 for r in numpy_rows)
        # Unavailable tiers document their reason instead of numbers.
        for row in rows:
            if row["MB_per_s"] is None:
                assert "unavailable" in row["note"]
