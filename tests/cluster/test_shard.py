"""Sharded epoch engine == serial oracle, bit-for-bit.

The contract (DESIGN §5h): :class:`~repro.cluster.shard.ShardedSimulation`
produces the exact trajectory of :class:`WarehouseSimulation` for the
same config -- every per-day series, the degraded histogram, every
counter in :class:`RecoveryStats` and every aggregate in
:class:`TrafficMeter` -- regardless of shard count or worker count.
Under ``destination_draws="hashed"`` destinations are a pure hash of
(stripe uid, flag ordinal, entropy), so the partition is free to
reorder work; under the legacy ``"stream"`` mode only the serial
1-shard layout is legal and anything else is a loud ``ConfigError``.

The comparisons here are over order-invariant aggregates (sorted dict
items, per-day series), the same keys the sweep and bench layers
consume; the raw transfer log may legally interleave differently.
"""

import os
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.shard import ShardedSimulation, stripe_shard_ids
from repro.cluster.simulation import WarehouseSimulation
from repro.errors import ConfigError
from repro.observability import registry as obs_registry

#: Small but non-trivial: 480 machines, enough flags per day that every
#: shard sees work, two codes' worth of degraded stripes.
BASE = ClusterConfig(
    num_racks=40,
    nodes_per_rack=12,
    stripes_per_node=24.0,
    days=12.0,
    seed=11,
    destination_draws="hashed",
)

CODE_PARAMS = {
    "rs": {"k": 10, "r": 4},
    "piggyback": {"k": 6, "r": 3},
    "lrc": {"k": 6, "l": 2, "g": 2},
    "replication": {"replicas": 3},
}


def fingerprint(result):
    """Order-invariant trajectory key shared by every equality test."""
    stats, meter = result.stats, result.meter
    return (
        tuple(result.unavailability_events_per_day),
        tuple(result.blocks_recovered_per_day),
        tuple(result.cross_rack_bytes_per_day),
        tuple(sorted(result.degraded_fractions.items())),
        tuple(sorted(result.degraded_histogram.items())),
        stats.blocks_recovered,
        tuple(sorted(stats.blocks_recovered_by_day.items())),
        stats.bytes_downloaded,
        tuple(sorted(stats.degraded_histogram.items())),
        stats.unrecoverable_units,
        stats.flagged_events_recovered,
        stats.flagged_events_skipped,
        stats.corrupt_survivors_excluded,
        meter.total_bytes,
        meter.cross_rack_bytes,
        meter.intra_rack_bytes,
        meter.num_transfers,
        tuple(sorted(meter.bytes_by_purpose.items())),
        tuple(sorted(meter.cross_rack_bytes_by_day.items())),
        tuple(sorted(meter.bytes_by_switch.items())),
    )


def oracle_fingerprint(config):
    return fingerprint(WarehouseSimulation(config).run())


# ----------------------------------------------------------------------
# Equality: serial shards
# ----------------------------------------------------------------------


@pytest.mark.parametrize("code_name", sorted(CODE_PARAMS))
@pytest.mark.parametrize("num_shards", [1, 3])
def test_serial_shards_match_oracle(code_name, num_shards):
    config = replace(
        BASE, code_name=code_name, code_params=CODE_PARAMS[code_name]
    )
    sharded = ShardedSimulation(config, num_shards=num_shards, workers=0)
    assert fingerprint(sharded.run()) == oracle_fingerprint(config)


def test_stream_mode_single_shard_matches_oracle():
    """Legacy stream draws stay bit-exact in the only legal layout."""
    config = replace(BASE, destination_draws="stream")
    sharded = ShardedSimulation(config, num_shards=1, workers=0)
    assert fingerprint(sharded.run()) == oracle_fingerprint(config)


def test_chaos_matches_oracle():
    """Node flaps + latent corruption partition cleanly too."""
    config = replace(BASE, chaos_node_flaps=6, chaos_corrupt_units=25)
    result = ShardedSimulation(config, num_shards=3, workers=0).run()
    assert result.stats.corrupt_survivors_excluded > 0
    assert fingerprint(result) == oracle_fingerprint(config)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    num_shards=st.integers(min_value=1, max_value=5),
)
def test_any_seed_any_shard_count_matches_oracle(seed, num_shards):
    config = replace(BASE, seed=seed, days=6.0)
    sharded = ShardedSimulation(config, num_shards=num_shards, workers=0)
    assert fingerprint(sharded.run()) == oracle_fingerprint(config)


# ----------------------------------------------------------------------
# Equality: worker processes
# ----------------------------------------------------------------------


def test_workers_match_oracle():
    config = BASE
    sharded = ShardedSimulation(config, num_shards=4, workers=2)
    assert sharded.num_workers == 2
    assert fingerprint(sharded.run()) == oracle_fingerprint(config)


def test_workers_match_serial_shards_with_chaos():
    config = replace(BASE, chaos_node_flaps=6, chaos_corrupt_units=25)
    serial = ShardedSimulation(config, num_shards=4, workers=0).run()
    workers = ShardedSimulation(config, num_shards=4, workers=2).run()
    assert fingerprint(workers) == fingerprint(serial)


def test_repro_parallel_0_forces_serial(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "0")
    simulation = ShardedSimulation(BASE, num_shards=4)
    assert simulation.num_workers == 0
    assert fingerprint(simulation.run()) == oracle_fingerprint(BASE)


def test_explicit_parallel_spawns_workers():
    """``parallel=True`` forces worker processes even on one CPU."""
    simulation = ShardedSimulation(BASE, num_shards=2, parallel=True)
    assert simulation.num_workers >= 1
    assert fingerprint(simulation.run()) == oracle_fingerprint(BASE)


# ----------------------------------------------------------------------
# Merged counters == serial counters, exactly (satellite 3)
# ----------------------------------------------------------------------


def test_merged_counters_equal_serial_exactly():
    """Shard-merged TrafficMeter/RecoveryStats == the oracle's, field
    by field -- integer equality, not approximate."""
    oracle = WarehouseSimulation(BASE).run()
    merged = ShardedSimulation(BASE, num_shards=4, workers=2).run()
    o_s, m_s = oracle.stats, merged.stats
    assert m_s.blocks_recovered == o_s.blocks_recovered
    assert m_s.bytes_downloaded == o_s.bytes_downloaded
    assert dict(m_s.blocks_recovered_by_day) == dict(
        o_s.blocks_recovered_by_day
    )
    assert dict(m_s.degraded_histogram) == dict(o_s.degraded_histogram)
    assert m_s.unrecoverable_units == o_s.unrecoverable_units
    assert m_s.flagged_events_recovered == o_s.flagged_events_recovered
    assert m_s.flagged_events_skipped == o_s.flagged_events_skipped
    o_m, m_m = oracle.meter, merged.meter
    assert m_m.total_bytes == o_m.total_bytes
    assert m_m.cross_rack_bytes == o_m.cross_rack_bytes
    assert m_m.intra_rack_bytes == o_m.intra_rack_bytes
    assert m_m.num_transfers == o_m.num_transfers
    assert dict(m_m.bytes_by_purpose) == dict(o_m.bytes_by_purpose)
    assert dict(m_m.cross_rack_bytes_by_day) == dict(
        o_m.cross_rack_bytes_by_day
    )
    assert dict(m_m.bytes_by_switch) == dict(o_m.bytes_by_switch)


def test_shard_metrics_recorded():
    obs_registry.set_enabled(True)
    obs_registry.reset()
    try:
        ShardedSimulation(BASE, num_shards=3, workers=0).run()
        snap = obs_registry.get_registry().snapshot()
        counters, gauges = snap["counters"], snap["gauges"]
        assert counters["sim.shard.runs"] == 1
        # Epochs can spill past the horizon (heals/flags scheduled after
        # the last configured day still apply, exactly like the oracle).
        assert counters["sim.shard.epochs"] >= int(BASE.days)
        assert counters["sim.shard.ops"] > 0
        assert counters["sim.shard.merge_bytes"] > 0
        assert gauges["sim.shard.shards"] == 3
        assert gauges["sim.shard.workers"] == 0
    finally:
        obs_registry.reset()
        obs_registry.set_enabled(None)


# ----------------------------------------------------------------------
# Shard assignment
# ----------------------------------------------------------------------


def test_stripe_shard_ids_stable_and_balanced():
    ids = stripe_shard_ids(10_000, 8)
    assert ids.shape == (10_000,)
    assert set(ids.tolist()) == set(range(8))
    counts = [int((ids == s).sum()) for s in range(8)]
    assert max(counts) - min(counts) < 10_000 * 0.2
    # Stable: the assignment is a pure function of (uid, num_shards).
    assert (stripe_shard_ids(10_000, 8) == ids).all()
    # Prefix-stable under a different total: hash of uid, not position.
    assert (stripe_shard_ids(5_000, 8) == ids[:5_000]).all()


# ----------------------------------------------------------------------
# Loud rejections
# ----------------------------------------------------------------------


def test_stream_mode_rejects_multiple_shards():
    config = replace(BASE, destination_draws="stream")
    with pytest.raises(ConfigError, match="stream"):
        ShardedSimulation(config, num_shards=2, workers=0)


def test_stream_mode_rejects_workers():
    config = replace(BASE, destination_draws="stream")
    with pytest.raises(ConfigError, match="stream"):
        ShardedSimulation(config, num_shards=1, workers=2)


def test_accepts_read_workload():
    # Reads resolve into the timeline and shard freely (formerly a
    # loud ConfigError).
    config = replace(BASE, reads_per_stripe_per_day=0.5)
    sim = ShardedSimulation(config, num_shards=2, workers=0)
    assert sim.scheduler is None


def test_throttled_recovery_degrades_workers_gracefully():
    # Scheduler configs run, but coordinator-driven: worker processes
    # degrade to in-process shards instead of raising or diverging.
    config = replace(BASE, recovery_bandwidth_bytes_per_sec=1e9)
    sim = ShardedSimulation(config, num_shards=2, workers=2)
    assert sim.scheduler is not None
    assert sim.num_workers == 0


def test_stop_after_day_requires_checkpoint_path():
    with pytest.raises(ConfigError, match="checkpoint_path"):
        ShardedSimulation(BASE, workers=0).run(stop_after_day=3)


def test_checkpoint_every_days_requires_path():
    with pytest.raises(ConfigError, match="checkpoint_path"):
        ShardedSimulation(BASE, workers=0, checkpoint_every_days=2)


def test_checkpoint_every_days_must_be_positive(tmp_path):
    with pytest.raises(ConfigError, match=">= 1"):
        ShardedSimulation(
            BASE,
            workers=0,
            checkpoint_path=str(tmp_path / "c.ckpt"),
            checkpoint_every_days=0,
        )
