"""Edge cases of the RAID node beyond the happy path."""

import numpy as np
import pytest

from repro.cluster.namenode import NameNode
from repro.cluster.placement import DistinctRackPlacement
from repro.cluster.raidnode import RaidNode
from repro.cluster.topology import Topology
from repro.codes.rs import ReedSolomonCode
from repro.errors import SimulationError


def make_cluster(seed=9):
    topology = Topology(num_racks=12, nodes_per_rack=2)
    namenode = NameNode(topology, DistinctRackPlacement(topology, seed=seed))
    return namenode, RaidNode(namenode, ReedSolomonCode(4, 2))  # no meter


class TestRaidNodeEdges:
    def test_meterless_operation(self, rng):
        """A raid node without a meter still functions end to end."""
        namenode, raidnode = make_cluster()
        data = rng.integers(0, 256, size=500, dtype=np.uint8)
        namenode.write_file("f", data, block_size=100)
        entries = raidnode.raid_file("f")
        namenode.kill_node(entries[0].locations[0])
        raidnode.reconstruct_all_missing()
        assert np.array_equal(namenode.read_file("f"), data)

    def test_raid_unknown_file(self):
        __, raidnode = make_cluster()
        with pytest.raises(SimulationError):
            raidnode.raid_file("ghost")

    def test_raid_with_all_copies_dead_fails(self, rng):
        namenode, raidnode = make_cluster()
        data = rng.integers(0, 256, size=200, dtype=np.uint8)
        namenode.write_file("f", data, block_size=100)
        block = namenode.files["f"].file.blocks[0]
        for node in list(namenode.block_locations[block.block_id]):
            namenode.datanodes[node].drop(block.block_id)
        namenode.block_locations[block.block_id] = []
        with pytest.raises(SimulationError):
            raidnode.raid_file("f")

    def test_reconstruct_unknown_stripe(self):
        __, raidnode = make_cluster()
        with pytest.raises(SimulationError):
            raidnode.reconstruct_block("ghost", 0)

    def test_reconstruct_all_missing_idempotent(self, rng):
        namenode, raidnode = make_cluster()
        data = rng.integers(0, 256, size=500, dtype=np.uint8)
        namenode.write_file("f", data, block_size=100)
        entries = raidnode.raid_file("f")
        namenode.kill_node(entries[0].locations[1])
        first = raidnode.reconstruct_all_missing()
        second = raidnode.reconstruct_all_missing()
        assert first >= 1
        assert second == 0

    def test_empty_file_raids(self):
        """A zero-byte file still produces a (virtual-heavy) stripe."""
        namenode, raidnode = make_cluster()
        namenode.write_file("empty", np.zeros(0, dtype=np.uint8), 100)
        entries = raidnode.raid_file("empty")
        assert len(entries) == 1
        assert entries[0].layout.real_data_count == 1  # one empty block
        assert namenode.read_file("empty").size == 0
