"""Tests for the downtime-duration distribution knob."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation
from repro.cluster.traces import sample_downtime_tail
from repro.errors import ConfigError


class TestSampling:
    def test_exponential_mean(self):
        config = ClusterConfig(mean_downtime_seconds=1000.0)
        samples = sample_downtime_tail(
            np.random.default_rng(0), config, 50_000
        )
        assert samples.mean() == pytest.approx(1000.0, rel=0.05)

    def test_weibull_mean_matches_calibration(self):
        """The Weibull tail is rescaled to preserve the configured mean."""
        config = ClusterConfig(
            mean_downtime_seconds=1000.0,
            downtime_distribution="weibull",
            downtime_weibull_shape=0.7,
        )
        samples = sample_downtime_tail(
            np.random.default_rng(0), config, 50_000
        )
        assert samples.mean() == pytest.approx(1000.0, rel=0.05)

    def test_weibull_tail_heavier(self):
        exp_config = ClusterConfig(mean_downtime_seconds=1000.0)
        wb_config = ClusterConfig(
            mean_downtime_seconds=1000.0,
            downtime_distribution="weibull",
            downtime_weibull_shape=0.5,
        )
        rng = np.random.default_rng(1)
        exp = sample_downtime_tail(rng, exp_config, 50_000)
        rng = np.random.default_rng(1)
        weibull = sample_downtime_tail(rng, wb_config, 50_000)
        assert np.percentile(weibull, 99.5) > np.percentile(exp, 99.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(downtime_distribution="uniform")
        with pytest.raises(ConfigError):
            ClusterConfig(downtime_weibull_shape=0.0)


class TestEndToEnd:
    def test_simulation_runs_with_weibull_durations(self):
        config = ClusterConfig(
            num_racks=20,
            nodes_per_rack=5,
            stripes_per_node=10.0,
            days=2.0,
            seed=6,
            downtime_distribution="weibull",
        )
        result = WarehouseSimulation(config).run()
        assert result.stats.blocks_recovered > 0

    def test_headline_shape_robust_to_tail(self):
        """Singles still dominate degraded stripes under a heavy tail --
        the Section 2.2 shape does not hinge on the exponential choice."""
        # Production machine count matters here: concurrent-failure
        # overlap scales with stripe-width / cluster-size.
        config = ClusterConfig(
            stripes_per_node=8.0,
            days=4.0,
            seed=6,
            downtime_distribution="weibull",
            downtime_weibull_shape=0.6,
        )
        result = WarehouseSimulation(config).run()
        fractions = result.degraded_fractions
        assert fractions["one"] > 0.85
        assert fractions["one"] > fractions["two"] > fractions["three_plus"]
