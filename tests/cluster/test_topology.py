"""Tests for the rack/switch topology."""

import pytest

from repro.cluster.topology import Topology
from repro.errors import ConfigError


class TestTopology:
    def test_node_count(self):
        assert Topology(10, 5).num_nodes == 50

    def test_rack_of(self):
        topo = Topology(3, 4)
        assert topo.rack_of(0) == 0
        assert topo.rack_of(3) == 0
        assert topo.rack_of(4) == 1
        assert topo.rack_of(11) == 2

    def test_nodes_in_rack(self):
        topo = Topology(3, 4)
        assert topo.nodes_in_rack(1) == [4, 5, 6, 7]

    def test_crosses_racks(self):
        topo = Topology(3, 4)
        assert not topo.crosses_racks(0, 3)
        assert topo.crosses_racks(0, 4)

    def test_switch_path_intra_rack(self):
        topo = Topology(3, 4)
        assert topo.switch_path(0, 1) == ("tor_0",)

    def test_switch_path_cross_rack(self):
        """Fig. 1: TOR -> aggregation -> TOR."""
        topo = Topology(3, 4)
        assert topo.switch_path(0, 4) == ("tor_0", "aggregation", "tor_1")

    def test_invalid_node(self):
        with pytest.raises(ConfigError):
            Topology(2, 2).rack_of(4)
        with pytest.raises(ConfigError):
            Topology(2, 2).rack_of(-1)

    def test_invalid_rack(self):
        with pytest.raises(ConfigError):
            Topology(2, 2).nodes_in_rack(2)

    def test_invalid_shape(self):
        with pytest.raises(ConfigError):
            Topology(0, 5)

    def test_iter_nodes(self):
        nodes = list(Topology(2, 2).iter_nodes())
        assert len(nodes) == 4
        assert nodes[3].rack_id == 1

    def test_node_accessor(self):
        node = Topology(2, 3).node(4)
        assert node.node_id == 4 and node.rack_id == 1
