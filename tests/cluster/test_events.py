"""Tests for the discrete-event core."""

import pytest

from repro.cluster.events import EventQueue
from repro.errors import SimulationError


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda q, t: seen.append(t))
        queue.schedule(1.0, lambda q, t: seen.append(t))
        queue.schedule(3.0, lambda q, t: seen.append(t))
        queue.run()
        assert seen == [1.0, 3.0, 5.0]

    def test_fifo_among_equal_times(self):
        queue = EventQueue()
        seen = []
        for label in "abc":
            queue.schedule(1.0, lambda q, t, l=label: seen.append(l))
        queue.run()
        assert seen == ["a", "b", "c"]

    def test_handlers_can_schedule_followups(self):
        queue = EventQueue()
        seen = []

        def first(q, t):
            seen.append(("first", t))
            q.schedule_after(2.0, lambda q2, t2: seen.append(("second", t2)))

        queue.schedule(1.0, first)
        queue.run()
        assert seen == [("first", 1.0), ("second", 3.0)]

    def test_run_until_stops(self):
        queue = EventQueue()
        seen = []
        for t in (1.0, 2.0, 3.0):
            queue.schedule(t, lambda q, time: seen.append(time))
        final = queue.run(until=2.0)
        assert seen == [1.0, 2.0]
        assert final == 2.0
        assert queue.pending == 1

    def test_scheduling_into_past_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda q, t: q.schedule(1.0, lambda *_: None))
        with pytest.raises(SimulationError):
            queue.run()

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule_after(-1.0, lambda q, t: None)

    def test_step_returns_label(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda q, t: None, label="hello")
        assert queue.step() == (1.0, "hello")
        assert queue.step() is None

    def test_counters(self):
        queue = EventQueue()
        for t in range(5):
            queue.schedule(float(t), lambda q, time: None)
        queue.run()
        assert queue.events_processed == 5
        assert queue.pending == 0
        assert queue.now == 4.0

    def test_now_starts_at_zero(self):
        assert EventQueue().now == 0.0
