"""The parallel sweep runner: determinism, ordering, seed spawning."""

from __future__ import annotations

import dataclasses

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import run_code_comparison
from repro.cluster.sweep import (
    _decide_parallel,
    parallel_map,
    replicated_configs,
    run_many,
    spawn_seeds,
)

SMALL = ClusterConfig(
    num_racks=15,
    nodes_per_rack=3,
    stripes_per_node=10.0,
    days=1.0,
    seed=13,
)


def _square(x: int) -> int:
    """Module-level so the process pool can pickle it."""
    return x * x


def summarize(result):
    return (
        result.code_name,
        result.stats.blocks_recovered,
        result.stats.bytes_downloaded,
        result.meter.cross_rack_bytes,
        result.blocks_recovered_per_day,
        dict(result.stats.degraded_histogram),
    )


class TestParallelMap:
    def test_preserves_input_order(self):
        items = list(range(23))
        assert parallel_map(_square, items, parallel=True) == [
            x * x for x in items
        ]

    def test_serial_path_identical(self):
        items = list(range(23))
        assert parallel_map(_square, items, parallel=False) == parallel_map(
            _square, items, parallel=True
        )

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert not _decide_parallel(8, parallel=None)
        # An explicit request still wins over the environment.
        assert _decide_parallel(8, parallel=True)

    def test_single_task_stays_serial(self):
        assert not _decide_parallel(1, parallel=None)
        assert not _decide_parallel(1, parallel=True)


class TestRunMany:
    def test_parallel_matches_serial(self):
        configs = [
            dataclasses.replace(SMALL, seed=seed) for seed in (1, 2, 3)
        ]
        serial = run_many(configs, parallel=False)
        parallel = run_many(configs, parallel=True)
        assert [summarize(r) for r in serial] == [
            summarize(r) for r in parallel
        ]

    def test_results_in_input_order(self):
        configs = [
            dataclasses.replace(SMALL, seed=seed) for seed in (9, 4, 7)
        ]
        results = run_many(configs, parallel=True)
        assert [r.config.seed for r in results] == [9, 4, 7]


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 6) == spawn_seeds(42, 6)

    def test_distinct_and_master_dependent(self):
        seeds = spawn_seeds(42, 6)
        assert len(set(seeds)) == 6
        assert spawn_seeds(43, 6) != seeds

    def test_count_zero(self):
        assert spawn_seeds(42, 0) == []

    def test_negative_count_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            spawn_seeds(42, -1)

    def test_replicated_configs(self):
        replicas = replicated_configs(SMALL, 4)
        assert len(replicas) == 4
        assert len({c.seed for c in replicas}) == 4
        assert all(c.num_racks == SMALL.num_racks for c in replicas)


class TestRunCodeComparison:
    def test_matches_direct_runs(self):
        from repro.cluster.simulation import WarehouseSimulation

        comparison = run_code_comparison(
            SMALL, ["rs", "piggyback"], parallel=True
        )
        assert set(comparison) == {"rs", "piggyback"}
        for name in ("rs", "piggyback"):
            direct = WarehouseSimulation(SMALL.with_code(name)).run()
            assert summarize(comparison[name]) == summarize(direct)

    def test_identical_failure_history(self):
        comparison = run_code_comparison(SMALL, ["rs", "piggyback"])
        assert (
            comparison["rs"].unavailability_events_per_day
            == comparison["piggyback"].unavailability_events_per_day
        )
        assert (
            comparison["rs"].blocks_recovered_per_day
            == comparison["piggyback"].blocks_recovered_per_day
        )
