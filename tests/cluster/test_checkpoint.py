"""Checkpoint/restore determinism for the sharded epoch engine.

The contract (DESIGN §5h): stopping a run at any epoch boundary,
reloading the snapshot -- possibly in a different process, under a
different worker count -- and finishing produces the *bit-identical*
trajectory of a straight-through run.  Snapshots are versioned
(``CHECKPOINT_VERSION``); a mismatch is a loud
:class:`~repro.errors.CheckpointError`, never a silent misread.  A
worker killed mid-epoch is replayed from its last durable state plus
the retained epoch ops, with no effect on the merged result.
"""

import json
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.cluster.shard import ShardedSimulation
from repro.errors import CheckpointError
from tests.cluster.test_shard import BASE, CODE_PARAMS, fingerprint

#: Shorter horizon than test_shard's BASE: every test here runs the
#: simulation at least twice (straight-through + stop/resume).
CONFIG = replace(BASE, days=8.0)


def straight_through(config):
    return fingerprint(ShardedSimulation(config, num_shards=3, workers=0).run())


def stop_and_resume(config, tmp_path, stop_day, workers=0, resume_workers=0):
    path = str(tmp_path / "snap.ckpt")
    first = ShardedSimulation(
        config, num_shards=3, workers=workers, checkpoint_path=path
    )
    assert first.run(stop_after_day=stop_day) is None
    resumed = ShardedSimulation.resume(path, workers=resume_workers)
    result = resumed.run()
    assert result is not None
    return fingerprint(result)


# ----------------------------------------------------------------------
# Round-trip determinism
# ----------------------------------------------------------------------


def test_stop_resume_equals_straight_through(tmp_path):
    assert stop_and_resume(CONFIG, tmp_path, 3) == straight_through(CONFIG)


@pytest.mark.parametrize("code_name", sorted(CODE_PARAMS))
def test_round_trip_across_codes(code_name, tmp_path):
    config = replace(
        CONFIG,
        days=5.0,
        code_name=code_name,
        code_params=CODE_PARAMS[code_name],
    )
    assert stop_and_resume(config, tmp_path, 2) == straight_through(config)


def test_round_trip_with_chaos(tmp_path):
    config = replace(CONFIG, chaos_node_flaps=6, chaos_corrupt_units=25)
    assert stop_and_resume(config, tmp_path, 4) == straight_through(config)


def test_stream_mode_round_trip(tmp_path):
    """Stream draws carry live rng state; the snapshot must restore it."""
    config = replace(CONFIG, destination_draws="stream")
    path = str(tmp_path / "snap.ckpt")
    first = ShardedSimulation(
        config, num_shards=1, workers=0, checkpoint_path=path
    )
    assert first.run(stop_after_day=3) is None
    result = ShardedSimulation.resume(path, workers=0).run()
    straight = ShardedSimulation(config, num_shards=1, workers=0).run()
    assert fingerprint(result) == fingerprint(straight)


def test_resume_under_different_worker_count(tmp_path):
    """Worker count is a runtime choice, not part of the snapshot: a
    serial run's snapshot finishes under 2 workers bit-identically."""
    assert stop_and_resume(
        CONFIG, tmp_path, 3, workers=0, resume_workers=2
    ) == straight_through(CONFIG)


def test_resume_serial_from_worker_run(tmp_path):
    assert stop_and_resume(
        CONFIG, tmp_path, 3, workers=2, resume_workers=0
    ) == straight_through(CONFIG)


def test_chained_sessions(tmp_path):
    """Three sessions, two resumes -- the ten-cluster-year shape."""
    path = str(tmp_path / "snap.ckpt")
    sim = ShardedSimulation(
        CONFIG, num_shards=3, workers=0, checkpoint_path=path
    )
    assert sim.run(stop_after_day=2) is None
    assert ShardedSimulation.resume(path).run(stop_after_day=5) is None
    result = ShardedSimulation.resume(path).run()
    assert fingerprint(result) == straight_through(CONFIG)


def test_periodic_checkpoints_do_not_perturb(tmp_path):
    """checkpoint_every_days writes mid-run snapshots; the trajectory
    must be unaffected and the last snapshot must itself resume."""
    path = str(tmp_path / "snap.ckpt")
    sim = ShardedSimulation(
        CONFIG,
        num_shards=3,
        workers=0,
        checkpoint_path=path,
        checkpoint_every_days=2,
    )
    result = sim.run()
    assert fingerprint(result) == straight_through(CONFIG)
    # The final periodic snapshot resumes and (with nothing left to do
    # or a tail to finish) lands on the same trajectory.
    resumed = ShardedSimulation.resume(path).run()
    assert fingerprint(resumed) == fingerprint(result)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    stop_day=st.integers(min_value=1, max_value=5),
)
def test_round_trip_any_seed_any_boundary(seed, stop_day, tmp_path):
    config = replace(CONFIG, seed=seed, days=6.0)
    assert stop_and_resume(config, tmp_path, stop_day) == straight_through(
        config
    )


# ----------------------------------------------------------------------
# Worker failure replay
# ----------------------------------------------------------------------


def test_worker_killed_mid_epoch_replays_identically():
    """Kill worker 0 mid-epoch-2 (while applying its second shard); the
    coordinator respawns it from the last durable state, replays the
    retained epoch ops, and the merged result is unchanged."""
    crashed = ShardedSimulation(
        CONFIG, num_shards=4, workers=2, _test_crash=(0, 2, 1)
    ).run()
    assert fingerprint(crashed) == straight_through(CONFIG)


def test_worker_killed_at_epoch_end_replays_identically():
    """Crash after the worker finished its shards but before the
    coordinator collected the delta (index past the last shard)."""
    crashed = ShardedSimulation(
        CONFIG, num_shards=4, workers=2, _test_crash=(1, 3, 99)
    ).run()
    assert fingerprint(crashed) == straight_through(CONFIG)


# ----------------------------------------------------------------------
# Snapshot format
# ----------------------------------------------------------------------


def _write_snapshot(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    sim = ShardedSimulation(
        replace(CONFIG, days=4.0),
        num_shards=2,
        workers=0,
        checkpoint_path=path,
    )
    assert sim.run(stop_after_day=2) is None
    return path


def test_version_mismatch_raises(tmp_path):
    path = _write_snapshot(tmp_path)
    data = load_checkpoint(path)
    save_checkpoint(path, replace_version(data, CHECKPOINT_VERSION + 1))
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(path)


def replace_version(checkpoint, version):
    checkpoint.version = version
    return checkpoint


def test_not_a_checkpoint_raises(tmp_path):
    path = str(tmp_path / "junk.npz")
    np.savez(path, stuff=np.arange(3))
    with pytest.raises(CheckpointError, match="meta"):
        load_checkpoint(path)


def test_missing_file_raises(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoint(str(tmp_path / "absent.ckpt"))


def test_malformed_meta_raises(tmp_path):
    path = str(tmp_path / "bad.npz")
    blob = np.frombuffer(b"not json at all", dtype=np.uint8)
    np.savez(path, meta=blob)
    with pytest.raises(CheckpointError, match="malformed"):
        load_checkpoint(path)


def test_snapshot_is_self_describing(tmp_path):
    """The snapshot carries the config verbatim: resume needs nothing
    but the path."""
    path = _write_snapshot(tmp_path)
    data = load_checkpoint(path)
    assert data.config == replace(CONFIG, days=4.0)
    assert data.version == CHECKPOINT_VERSION
    assert data.num_shards == 2
    assert 0 < data.next_epoch
    assert data.is_up.dtype == np.bool_
    assert len(data.shard_states) == 2


def test_meta_is_json(tmp_path):
    """The scalar half of the archive is one human-readable JSON doc."""
    path = _write_snapshot(tmp_path)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
    assert meta["version"] == CHECKPOINT_VERSION
    assert meta["config"]["seed"] == CONFIG.seed
    assert len(meta["shards"]) == 2
