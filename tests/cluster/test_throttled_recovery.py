"""Tests for bandwidth-throttled recovery (the shared pipe)."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation
from repro.errors import ConfigError


def throttled_config(**overrides):
    defaults = dict(
        num_racks=20,
        nodes_per_rack=5,
        stripes_per_node=15.0,
        days=3.0,
        seed=44,
        recovery_bandwidth_bytes_per_sec=20e9,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestThrottledRecovery:
    def test_latencies_recorded(self):
        result = WarehouseSimulation(throttled_config()).run()
        latencies = result.stats.repair_latencies
        assert len(latencies) == result.stats.blocks_recovered
        assert all(l > 0 for l in latencies)

    def test_instantaneous_mode_records_nothing(self):
        result = WarehouseSimulation(
            throttled_config(recovery_bandwidth_bytes_per_sec=None)
        ).run()
        assert result.stats.repair_latencies == []

    def test_same_bytes_as_instantaneous(self):
        """Throttling changes *when*, not *how much*."""
        throttled = WarehouseSimulation(throttled_config()).run()
        instant = WarehouseSimulation(
            throttled_config(recovery_bandwidth_bytes_per_sec=None)
        ).run()
        # Cancellations may skip a few blocks when machines return
        # before the pipe drains; with ample bandwidth there are none.
        if throttled.stats.cancelled_recoveries == 0:
            assert (
                throttled.stats.bytes_downloaded
                == instant.stats.bytes_downloaded
            )
            assert (
                throttled.stats.blocks_recovered
                == instant.stats.blocks_recovered
            )

    def test_slower_pipe_higher_latency(self):
        fast = WarehouseSimulation(throttled_config()).run()
        slow = WarehouseSimulation(
            throttled_config(recovery_bandwidth_bytes_per_sec=2e9)
        ).run()
        assert np.mean(slow.stats.repair_latencies) > np.mean(
            fast.stats.repair_latencies
        )

    def test_piggyback_latency_lower(self):
        """Section 3.2 in the DES: less data, faster drain."""
        rs = WarehouseSimulation(throttled_config()).run()
        pb = WarehouseSimulation(
            throttled_config().with_code("piggyback")
        ).run()
        assert np.mean(pb.stats.repair_latencies) < np.mean(
            rs.stats.repair_latencies
        )

    def test_tiny_pipe_causes_cancellations(self):
        """With an absurdly slow pipe, machines return before their
        blocks are reconstructed and those recoveries are cancelled."""
        result = WarehouseSimulation(
            throttled_config(recovery_bandwidth_bytes_per_sec=5e7)
        ).run()
        assert result.stats.cancelled_recoveries > 0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            throttled_config(recovery_bandwidth_bytes_per_sec=0)
