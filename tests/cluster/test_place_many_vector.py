"""Vectorised ``DistinctRackPlacement.place_many`` equivalence.

The vector path emulates the scalar rng stream (Floyd sample +
Fisher-Yates + in-rack offsets as one half-word slice, Lemire
rejections replayed scalar); these property tests pin the contract:
identical placement matrix AND identical final generator state, so a
simulation that continues drawing after setup cannot tell which path
ran.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster.placement import DistinctRackPlacement, PlacementPolicy
from repro.cluster.topology import Topology


@st.composite
def _cases(draw):
    num_racks = draw(st.integers(min_value=2, max_value=24))
    nodes_per_rack = draw(st.integers(min_value=1, max_value=8))
    spares = draw(
        st.integers(min_value=0, max_value=min(2, nodes_per_rack - 1))
    )
    width = draw(st.integers(min_value=2, max_value=num_racks))
    # Straddle _VECTOR_MIN_STRIPES so both dispatch branches appear.
    num_stripes = draw(st.integers(min_value=1, max_value=48))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return num_racks, nodes_per_rack, spares, width, num_stripes, seed


@settings(max_examples=60, deadline=None)
@given(_cases())
def test_place_many_matches_scalar_loop(case):
    num_racks, nodes_per_rack, spares, width, num_stripes, seed = case
    topo = Topology(num_racks=num_racks, nodes_per_rack=nodes_per_rack)
    vector = DistinctRackPlacement(topo, seed=seed, spares_per_rack=spares)
    scalar = DistinctRackPlacement(topo, seed=seed, spares_per_rack=spares)
    got = vector.place_many(num_stripes, width)
    # The pre-vectorisation reference: the base-class scalar loop.
    want = PlacementPolicy.place_many(scalar, num_stripes, width)
    assert np.array_equal(got, want)
    assert got.dtype == want.dtype
    assert (
        vector.rng.bit_generator.state == scalar.rng.bit_generator.state
    )


@settings(max_examples=20, deadline=None)
@given(_cases())
def test_draws_after_place_many_stay_in_sync(case):
    # The stronger form of the state equality: the *next* draws agree.
    num_racks, nodes_per_rack, spares, width, num_stripes, seed = case
    topo = Topology(num_racks=num_racks, nodes_per_rack=nodes_per_rack)
    vector = DistinctRackPlacement(topo, seed=seed, spares_per_rack=spares)
    scalar = DistinctRackPlacement(topo, seed=seed, spares_per_rack=spares)
    vector.place_many(num_stripes, width)
    PlacementPolicy.place_many(scalar, num_stripes, width)
    assert vector.place_stripe(width) == scalar.place_stripe(width)
    assert (
        vector.rng.integers(0, 2**31).item()
        == scalar.rng.integers(0, 2**31).item()
    )
