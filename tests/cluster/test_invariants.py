"""Cross-cutting conservation invariants of the cluster simulation."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation


@pytest.fixture(scope="module")
def result():
    config = ClusterConfig(
        num_racks=20,
        nodes_per_rack=5,
        stripes_per_node=20.0,
        days=3.0,
        seed=99,
        reads_per_stripe_per_day=0.5,
    )
    simulation = WarehouseSimulation(config, record_transfers=True)
    return simulation, simulation.run()


class TestMeterConservation:
    def test_totals_split_exactly(self, result):
        __, sim = result
        meter = sim.meter
        assert meter.total_bytes == meter.cross_rack_bytes + meter.intra_rack_bytes
        assert meter.total_bytes == sum(meter.bytes_by_purpose.values())

    def test_transfer_log_matches_counters(self, result):
        __, sim = result
        meter = sim.meter
        assert len(meter.transfers) == meter.num_transfers
        assert sum(t.num_bytes for t in meter.transfers) == meter.total_bytes
        assert (
            sum(t.num_bytes for t in meter.transfers if t.cross_rack)
            == meter.cross_rack_bytes
        )

    def test_every_cross_rack_byte_passes_two_tors_and_aggregation(self, result):
        __, sim = result
        meter = sim.meter
        tor_bytes = sum(
            count for switch, count in meter.bytes_by_switch.items()
            if switch.startswith("tor_")
        )
        expected_tor = 2 * meter.cross_rack_bytes + meter.intra_rack_bytes
        assert tor_bytes == expected_tor
        assert meter.aggregation_switch_bytes == meter.cross_rack_bytes

    def test_daily_series_sums_to_total(self, result):
        __, sim = result
        meter = sim.meter
        assert sum(meter.daily_cross_rack_series()) == meter.cross_rack_bytes


class TestStoreConsistency:
    def test_index_matches_placement_after_run(self, result):
        simulation, __ = result
        store = simulation.store
        total_indexed = 0
        for node in range(simulation.config.num_nodes):
            for stripe, slot in store.units_on_node(node):
                assert store.placement[stripe, slot] == node
                total_indexed += 1
        assert total_indexed == store.placement.size

    def test_no_duplicate_nodes_within_stripes_after_relocations(self, result):
        simulation, __ = result
        placement = simulation.store.placement
        sorted_rows = np.sort(placement, axis=1)
        assert not np.any(sorted_rows[:, 1:] == sorted_rows[:, :-1])

    def test_recovered_units_not_missing(self, result):
        simulation, sim = result
        # Everything the queue resolved: any still-missing unit belongs
        # to an unrecoverable event or skipped trigger whose node came
        # back -- and node-up clears flags, so nothing may stay missing.
        assert not simulation.store.missing.any()


class TestStatsConsistency:
    def test_blocks_recovered_equals_daily_sum(self, result):
        __, sim = result
        assert sim.stats.blocks_recovered == sum(
            sim.stats.blocks_recovered_by_day.values()
        )

    def test_degraded_histogram_covers_recoveries(self, result):
        __, sim = result
        observed = sum(sim.stats.degraded_histogram.values())
        assert observed == sim.stats.blocks_recovered + sim.stats.unrecoverable_units

    def test_recovery_bytes_match_meter_purpose(self, result):
        __, sim = result
        assert sim.stats.bytes_downloaded == sim.meter.bytes_by_purpose[
            "recovery"
        ]
