"""Every registered code family runs through the warehouse simulator."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation

CODE_CONFIGS = {
    "rs": {"k": 10, "r": 4},
    "piggyback": {"k": 10, "r": 4},
    "hitchhiker-xor": {"k": 10, "r": 4},
    "crs": {"k": 10, "r": 4},
    "lrc": {"k": 10, "l": 2, "g": 2},
    "replication": {"replicas": 3},
}


@pytest.mark.parametrize("code_name", sorted(CODE_CONFIGS))
def test_simulation_runs_under_every_code(code_name):
    config = ClusterConfig(
        num_racks=20,
        nodes_per_rack=5,
        stripes_per_node=10.0,
        days=2.0,
        seed=5,
        code_name=code_name,
        code_params=CODE_CONFIGS[code_name],
    )
    result = WarehouseSimulation(config).run()
    assert result.stats.blocks_recovered > 0
    assert result.meter.cross_rack_bytes > 0
    fractions = result.degraded_fractions
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_repair_traffic_ordering_across_codes():
    """Replication < LRC < Piggyback < RS in recovery bytes, for the
    identical failure history -- the full design-space ordering."""
    totals = {}
    for code_name in ("replication", "lrc", "piggyback", "rs"):
        config = ClusterConfig(
            num_racks=20,
            nodes_per_rack=5,
            stripes_per_node=10.0,
            days=3.0,
            seed=5,
            code_name=code_name,
            code_params=CODE_CONFIGS[code_name],
        )
        result = WarehouseSimulation(config).run()
        # Normalise per recovered block to remove stripe-width effects
        # (replication stripes have 3 units, coded stripes 14).
        totals[code_name] = (
            result.stats.bytes_downloaded / result.stats.blocks_recovered
        )
    assert totals["replication"] < totals["lrc"]
    assert totals["lrc"] < totals["piggyback"]
    assert totals["piggyback"] < totals["rs"]


def test_crs_matches_rs_traffic():
    """The bit-matrix backend has identical repair economics to RS."""
    results = {}
    for code_name in ("rs", "crs"):
        config = ClusterConfig(
            num_racks=20,
            nodes_per_rack=5,
            stripes_per_node=10.0,
            days=2.0,
            seed=5,
            code_name=code_name,
            code_params={"k": 10, "r": 4},
        )
        results[code_name] = WarehouseSimulation(config).run()
    assert (
        results["rs"].meter.cross_rack_bytes
        == results["crs"].meter.cross_rack_bytes
    )
