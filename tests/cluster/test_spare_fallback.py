"""Spare-pool semantics of the no-free-rack replacement fallback.

The bug these pin down: when every rack hosted an excluded node, the
fallback drew uniformly over *all* non-excluded nodes -- landing
repairs on data nodes even though a reserved spare pool existed.  The
fix draws over the non-excluded spares first and touches data nodes
only when every spare is excluded, on both the stream
(:meth:`replacement_node`) and hashed
(:meth:`hashed_replacement_nodes`) paths.  The batched stream path
(:meth:`replacement_nodes`) inherits the rule through its documented
``None`` bailout: any unit on the fallback branch returns ``None`` and
the caller loops the scalar method.
"""

import numpy as np
import pytest

from repro.cluster.placement import (
    DistinctRackPlacement,
    destination_entropy,
)
from repro.cluster.topology import Topology
from repro.errors import PlacementError

ENTROPY = destination_entropy(np.random.SeedSequence(99))


@pytest.fixture
def small():
    """3 racks x 4 nodes, 1 spare per rack (spares are nodes 3, 7, 11)."""
    topo = Topology(num_racks=3, nodes_per_rack=4)
    return topo, DistinctRackPlacement(topo, seed=5, spares_per_rack=1)


def _one_data_node_per_rack(topo):
    return [rack * topo.nodes_per_rack for rack in range(topo.num_racks)]


class TestScalarFallback:
    def test_fallback_targets_spares_not_data_nodes(self, small):
        # Regression: the old fallback drew over all 9 non-excluded
        # nodes, so 20 draws landing only on the 3 spares had
        # probability (1/3)**20 -- this test fails on the old code.
        topo, policy = small
        exclude = _one_data_node_per_rack(topo)  # every rack occupied
        for _ in range(20):
            node = policy.replacement_node(exclude)
            assert policy.is_spare(node)
            assert node not in exclude

    def test_all_spares_excluded_falls_through_to_data_nodes(self, small):
        topo, policy = small
        spares = [n for n in range(topo.num_nodes) if policy.is_spare(n)]
        exclude = _one_data_node_per_rack(topo) + spares
        for _ in range(20):
            node = policy.replacement_node(exclude)
            assert not policy.is_spare(node)
            assert node not in exclude

    def test_spares_zero_unchanged(self):
        # With no spare pool the fallback is the historical any-node
        # draw (also pinned cluster-wide by the trajectory goldens).
        topo = Topology(num_racks=3, nodes_per_rack=4)
        policy = DistinctRackPlacement(topo, seed=5)
        exclude = _one_data_node_per_rack(topo)
        seen = {policy.replacement_node(exclude) for _ in range(200)}
        assert any(n % 4 == 3 for n in seen)  # top slots are plain nodes
        assert any(n % 4 != 3 for n in seen)


class TestHashedFallback:
    def _draw(self, policy, rows, extra, ordinal=0):
        rows = np.asarray(rows, dtype=np.int64)
        uids = np.arange(rows.shape[0], dtype=np.int64)
        return policy.hashed_replacement_nodes(
            rows, extra, uids, ordinal, ENTROPY
        )

    def test_node_level_branch_targets_spares(self, small):
        topo, policy = small
        rows = [_one_data_node_per_rack(topo)] * 4
        for ordinal in range(6):
            for node in self._draw(policy, rows, [], ordinal):
                assert policy.is_spare(int(node))

    def test_excluded_spares_respected(self, small):
        topo, policy = small
        # Spares of racks 0 and 1 are down: every draw must be rack 2's.
        rows = [_one_data_node_per_rack(topo)] * 4
        out = self._draw(policy, rows, [3, 7])
        assert set(out.tolist()) == {11}

    def test_all_spares_excluded_falls_through(self, small):
        topo, policy = small
        rows = [_one_data_node_per_rack(topo)] * 4
        out = self._draw(policy, rows, [3, 7, 11])
        for node in out:
            assert not policy.is_spare(int(node))
            assert int(node) not in rows[0]

    def test_everything_excluded_raises(self, small):
        topo, policy = small
        rows = [list(range(topo.num_nodes))]
        with pytest.raises(PlacementError):
            self._draw(policy, rows, [])

    def test_free_rack_branch_unaffected(self, small):
        # With a free rack the draw targets that rack's spare slot --
        # the pre-existing behaviour the fix must not disturb.
        topo, policy = small
        out = self._draw(policy, [[0, 4]], [])  # rack 2 free
        assert out[0] // topo.nodes_per_rack == 2
        assert policy.is_spare(int(out[0]))


class TestBatchedContract:
    def test_bailout_when_any_unit_lacks_free_rack(self, small):
        topo, policy = small
        rows = np.asarray(
            [[0, 4], _one_data_node_per_rack(topo)[:2]], dtype=np.int64
        )
        # Second row plus the extra exclude covers all three racks.
        assert policy.replacement_nodes(rows, extra_excludes=[8]) is None

    def test_scalar_loop_over_bailed_rows_hits_spares(self, small):
        topo, policy = small
        exclude = _one_data_node_per_rack(topo)
        rows = np.asarray([exclude, exclude], dtype=np.int64)
        assert policy.replacement_nodes(rows) is None
        # The caller's contractual fallback: scalar per row.
        for row in rows:
            assert policy.is_spare(policy.replacement_node(row))

    def test_batched_matches_scalar_when_no_bailout(self):
        topo = Topology(num_racks=8, nodes_per_rack=4)
        a = DistinctRackPlacement(topo, seed=17, spares_per_rack=1)
        b = DistinctRackPlacement(topo, seed=17, spares_per_rack=1)
        rows = np.asarray([[0, 4], [8, 12], [16, 20]], dtype=np.int64)
        batched = a.replacement_nodes(rows, extra_excludes=[24])
        scalar = [
            b.replacement_node(list(row) + [24]) for row in rows.tolist()
        ]
        assert batched is not None
        assert batched.tolist() == scalar
        assert (
            a.rng.bit_generator.state == b.rng.bit_generator.state
        )
