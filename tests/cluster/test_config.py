"""Tests for cluster configuration and paper targets."""

import pytest

from repro.cluster.config import (
    PAPER_TARGETS,
    SECONDS_PER_DAY,
    UNAVAILABILITY_THRESHOLD_SECONDS,
    ClusterConfig,
)
from repro.errors import ConfigError


class TestPaperTargets:
    def test_headline_numbers(self):
        assert PAPER_TARGETS.median_blocks_recovered_per_day == 95_500
        assert PAPER_TARGETS.median_cross_rack_bytes_per_day == 180e12
        assert PAPER_TARGETS.k == 10 and PAPER_TARGETS.r == 4
        assert PAPER_TARGETS.block_size_bytes == 256 * 1024 * 1024

    def test_degradation_split_sums_to_one(self):
        total = (
            PAPER_TARGETS.fraction_one_missing
            + PAPER_TARGETS.fraction_two_missing
            + PAPER_TARGETS.fraction_three_plus_missing
        )
        assert total == pytest.approx(1.0)

    def test_threshold_is_15_minutes(self):
        assert UNAVAILABILITY_THRESHOLD_SECONDS == 900.0
        assert SECONDS_PER_DAY == 86_400.0


class TestClusterConfig:
    def test_defaults_model_the_paper(self):
        config = ClusterConfig()
        assert config.num_nodes == 3000
        assert config.code_name == "rs"
        assert config.code_params == {"k": 10, "r": 4}
        assert config.stripe_width_units == 14

    def test_num_stripes_density(self):
        config = ClusterConfig(stripes_per_node=14.0)
        # 14 members/stripe, 14 per node -> one stripe per node.
        assert config.num_stripes == config.num_nodes

    def test_block_scale(self):
        config = ClusterConfig(
            stripes_per_node=47.0, target_stripes_per_node=4700.0
        )
        assert config.block_scale == pytest.approx(100.0)

    def test_with_code(self):
        config = ClusterConfig()
        pb = config.with_code("piggyback")
        assert pb.code_name == "piggyback"
        assert pb.code_params == config.code_params
        assert pb.seed == config.seed
        lrc = config.with_code("lrc", k=10, l=2, g=2)
        assert lrc.stripe_width_units == 14

    def test_replication_width(self):
        config = ClusterConfig(
            code_name="replication", code_params={"replicas": 3}
        )
        assert config.stripe_width_units == 3

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_racks=1)
        with pytest.raises(ConfigError):
            ClusterConfig(nodes_per_rack=0)
        with pytest.raises(ConfigError):
            ClusterConfig(num_racks=10, code_params={"k": 10, "r": 4})
        with pytest.raises(ConfigError):
            ClusterConfig(full_block_fraction=1.5)
        with pytest.raises(ConfigError):
            ClusterConfig(min_tail_block_fraction=0.0)
        with pytest.raises(ConfigError):
            ClusterConfig(days=0)
        with pytest.raises(ConfigError):
            ClusterConfig(stripes_per_node=-1)
        with pytest.raises(ConfigError):
            ClusterConfig(recovery_trigger_fraction=1.5)


class TestRepairPolicyValidation:
    """The repair-policy knobs reject nonsense loudly at construction."""

    def test_bandwidth_rejects_nan_and_inf(self):
        for bad in (float("nan"), float("inf"), float("-inf"), 0.0, -1.0):
            with pytest.raises(ConfigError, match="recovery bandwidth"):
                ClusterConfig(recovery_bandwidth_bytes_per_sec=bad)

    def test_discipline_names_are_checked(self):
        with pytest.raises(ConfigError, match="repair_queue_discipline"):
            ClusterConfig(repair_queue_discipline="lifo")

    def test_priority_needs_a_bandwidth_model(self):
        # Priority over an instantaneous repair path orders nothing.
        with pytest.raises(ConfigError, match="priority"):
            ClusterConfig(repair_queue_discipline="priority")

    def test_aging_requires_priority(self):
        with pytest.raises(ConfigError, match="aging"):
            ClusterConfig(
                recovery_bandwidth_bytes_per_sec=1e9,
                priority_aging_seconds=60.0,
            )

    def test_lazy_delay_rejects_nan_and_negative(self):
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(ConfigError, match="lazy"):
                ClusterConfig(
                    lazy_repair=True, lazy_repair_delay_seconds=bad
                )

    def test_link_gbps_rejects_nan_inf_and_nonpositive(self):
        for bad in (float("nan"), float("inf"), 0.0, -2.0):
            with pytest.raises(ConfigError, match="repair_link"):
                ClusterConfig(
                    repair_link_gbps=bad, destination_draws="hashed"
                )

    def test_link_model_requires_hashed_draws(self):
        with pytest.raises(ConfigError, match="hashed"):
            ClusterConfig(repair_link_gbps=1.0)

    def test_unknown_placement_policy_rejected(self):
        with pytest.raises(ConfigError, match="placement_policy"):
            ClusterConfig(placement_policy="best-fit")

    def test_d3_requires_hashed_draws(self):
        with pytest.raises(ConfigError, match="hashed"):
            ClusterConfig(placement_policy="d3")
        ClusterConfig(placement_policy="d3", destination_draws="hashed")

    def test_parallel_repair_requires_hashed_draws(self):
        with pytest.raises(ConfigError, match="hashed"):
            ClusterConfig(parallel_repair=True)
        ClusterConfig(parallel_repair=True, destination_draws="hashed")

    def test_hot_spares_must_be_non_negative(self):
        with pytest.raises(ConfigError, match="spares"):
            ClusterConfig(hot_spares_per_rack=-1)

    def test_total_nodes_include_spares(self):
        config = ClusterConfig(
            num_racks=20, nodes_per_rack=5, hot_spares_per_rack=2
        )
        assert config.total_nodes_per_rack == 7
        assert config.num_nodes == 140
        assert config.num_data_nodes == 100
        # Stripe density follows data nodes, not spares.
        same = ClusterConfig(num_racks=20, nodes_per_rack=5)
        assert config.num_stripes == same.num_stripes
