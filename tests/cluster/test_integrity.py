"""End-to-end integrity: checksums, quarantine, and verified repair.

The raid node's contract after this layer: every stored unit's CRC32C
is registered with the stripe metadata at raid time, every read/repair
path verifies what it touches, corrupt survivors are quarantined and
the repair re-planned without them, and a repair that cannot be
verified raises :class:`CorruptionError` instead of committing bytes.
"""

import numpy as np
import pytest

from repro.cluster.namenode import NameNode
from repro.cluster.placement import DistinctRackPlacement
from repro.cluster.raidnode import RaidNode
from repro.cluster.topology import Topology
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import CorruptionError
from repro.striping.checksum import crc32c


def build(code=None, seed=21, file_bytes=800):
    code = code if code is not None else ReedSolomonCode(4, 2)
    topology = Topology(num_racks=10, nodes_per_rack=2)
    namenode = NameNode(topology, DistinctRackPlacement(topology, seed=seed))
    raidnode = RaidNode(namenode, code)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=file_bytes, dtype=np.uint8)
    namenode.write_file("f", data, block_size=100)
    entries = raidnode.raid_file("f")
    return namenode, raidnode, entries, data


def corrupt(namenode, entry, slot, byte_index=3, flip=0x40):
    block_id = entry.layout.all_block_ids()[slot]
    node = entry.locations[slot]
    namenode.datanodes[node].blocks[block_id].payload[byte_index] ^= flip


class TestChecksumRegistration:
    @pytest.mark.parametrize(
        "code", [ReedSolomonCode(4, 2), PiggybackedRSCode(4, 2)],
        ids=["rs", "piggyback"],
    )
    def test_every_stored_unit_has_a_registered_checksum(self, code):
        namenode, __, entries, __ = build(code)
        for entry in entries:
            block_ids = entry.layout.all_block_ids()
            for slot, block_id in enumerate(block_ids):
                if block_id is None:  # virtual slot: nothing stored
                    assert slot not in entry.checksums
                    continue
                stored = namenode.datanodes[entry.locations[slot]].blocks[
                    block_id
                ]
                assert entry.checksums[slot] == crc32c(stored.payload)
                assert stored.checksum == entry.checksums[slot]

    def test_registry_survives_corruption_of_the_copy(self):
        namenode, __, entries, __ = build()
        entry = entries[0]
        before = dict(entry.checksums)
        corrupt(namenode, entry, slot=2)
        assert entry.checksums == before


class TestQuarantineAndRetry:
    def test_corrupt_survivor_quarantined_and_repair_replanned(self):
        namenode, raidnode, entries, __ = build()
        entry = entries[0]
        expected = namenode.datanodes[entry.locations[5]].blocks[
            entry.layout.all_block_ids()[5]
        ].payload.copy()
        namenode.kill_node(entry.locations[5])
        corrupt(namenode, entry, slot=0)  # in the first repair plan
        rebuilt, bytes_read = raidnode.reconstruct_block(
            entry.layout.stripe_id, 5
        )
        assert np.array_equal(rebuilt.payload, expected)
        assert [(r.slot, r.reason) for r in raidnode.quarantine_log] == [
            (0, "checksum mismatch during repair")
        ]
        # The wasted first read still counts in the traffic accounting.
        assert bytes_read == 2 * 4 * 100

    def test_quarantined_block_is_removed_from_service(self):
        namenode, raidnode, entries, __ = build()
        entry = entries[0]
        node = entry.locations[0]
        block_id = entry.layout.all_block_ids()[0]
        namenode.kill_node(entry.locations[5])
        corrupt(namenode, entry, slot=0)
        raidnode.reconstruct_block(entry.layout.stripe_id, 5)
        assert block_id not in namenode.datanodes[node].blocks
        assert block_id not in namenode.block_locations

    def test_unidentifiable_corruption_raises_typed_error(self):
        """A rebuilt unit that fails its checksum while every survivor
        verifies must not be committed."""
        namenode, raidnode, entries, __ = build()
        entry = entries[1]
        namenode.kill_node(entry.locations[5])
        corrupt(namenode, entry, slot=1)
        # Drop the survivor's registry entry: the corruption can no
        # longer be pinned on any survivor.
        entry.checksums.pop(1)
        with pytest.raises(CorruptionError):
            raidnode.reconstruct_block(entry.layout.stripe_id, 5)

    def test_batch_reconstruct_verifies_and_quarantines(self):
        namenode, raidnode, entries, data = build()
        entry = entries[0]
        namenode.kill_node(entry.locations[5])
        corrupt(namenode, entry, slot=0)
        rebuilt_count = raidnode.reconstruct_all_missing()
        assert rebuilt_count >= 1
        assert [(r.slot, r.reason) for r in raidnode.quarantine_log] == [
            (0, "checksum mismatch during repair")
        ]
        # Quarantined slot 0 is a data block: re-repair it and the file
        # must read back byte-identical.
        raidnode.reconstruct_block(entry.layout.stripe_id, 0)
        assert np.array_equal(namenode.read_file("f"), data)


class TestDegradedReadIntegrity:
    def test_corrupt_stored_copy_served_through_the_stripe(self):
        namenode, raidnode, entries, data = build()
        entry = entries[0]
        block_id = entry.layout.all_block_ids()[0]
        original = namenode.datanodes[entry.locations[0]].blocks[
            block_id
        ].payload.copy()
        corrupt(namenode, entry, slot=0)
        served = raidnode.degraded_read(block_id)
        assert np.array_equal(served, original)
        assert [(r.slot, r.reason) for r in raidnode.quarantine_log] == [
            (0, "checksum mismatch on read")
        ]

    def test_clean_copy_read_verifies_without_quarantine(self):
        namenode, raidnode, entries, __ = build()
        entry = entries[0]
        block_id = entry.layout.all_block_ids()[0]
        namenode.kill_node(entry.locations[0])
        raidnode.degraded_read(block_id)
        assert raidnode.quarantine_log == []
