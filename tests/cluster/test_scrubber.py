"""Tests for the scrubbing service (silent-corruption handling)."""

import numpy as np
import pytest

from repro.cluster.namenode import NameNode
from repro.cluster.network import TrafficMeter
from repro.cluster.placement import DistinctRackPlacement
from repro.cluster.raidnode import RaidNode
from repro.cluster.scrubber import Scrubber
from repro.cluster.topology import Topology
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import SimulationError


def build(code, seed=21, file_bytes=800):
    topology = Topology(num_racks=10, nodes_per_rack=2)
    namenode = NameNode(topology, DistinctRackPlacement(topology, seed=seed))
    meter = TrafficMeter(topology)
    raidnode = RaidNode(namenode, code, meter)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=file_bytes, dtype=np.uint8)
    namenode.write_file("f", data, block_size=100)
    entries = raidnode.raid_file("f")
    return namenode, raidnode, Scrubber(raidnode), entries, data


def corrupt(namenode, entry, slot, byte_index=3, flip=0x40):
    block_id = entry.layout.all_block_ids()[slot]
    node = entry.locations[slot]
    namenode.datanodes[node].blocks[block_id].payload[byte_index] ^= flip


@pytest.mark.parametrize(
    "code", [ReedSolomonCode(4, 2), PiggybackedRSCode(4, 2)],
    ids=["rs", "piggyback"],
)
class TestScrubber:
    def test_clean_cluster_scrubs_clean(self, code):
        __, __, scrubber, entries, __ = build(code)
        report = scrubber.scrub()
        assert report.stripes_checked == len(entries)
        assert report.stripes_clean == len(entries)
        assert report.corrupt_units_found == 0

    def test_detects_corrupt_data_block(self, code):
        namenode, __, scrubber, entries, __ = build(code)
        corrupt(namenode, entries[0], slot=1)
        assert scrubber.verify_stripe(entries[0].layout.stripe_id) is False

    def test_locates_the_right_slot(self, code):
        namenode, __, scrubber, entries, __ = build(code)
        corrupt(namenode, entries[0], slot=2)
        assert scrubber.locate_corruption(
            entries[0].layout.stripe_id
        ) == [2]

    def test_locates_corrupt_parity(self, code):
        namenode, __, scrubber, entries, __ = build(code)
        corrupt(namenode, entries[1], slot=code.k + 1)
        assert scrubber.locate_corruption(
            entries[1].layout.stripe_id
        ) == [code.k + 1]

    def test_scrub_repairs_and_data_intact(self, code):
        namenode, __, scrubber, entries, data = build(code)
        corrupt(namenode, entries[0], slot=0)
        report = scrubber.scrub()
        assert report.corrupt_units_found == 1
        assert report.corrupt_units_repaired == 1
        assert np.array_equal(namenode.read_file("f"), data)
        # A second pass is clean.
        assert scrubber.scrub().corrupt_units_found == 0

    def test_degraded_stripe_skipped(self, code):
        namenode, __, scrubber, entries, __ = build(code)
        namenode.kill_node(entries[0].locations[0])
        report = scrubber.scrub()
        assert entries[0].layout.stripe_id in report.unverifiable_stripes

    def test_unknown_stripe(self, code):
        __, __, scrubber, __, __ = build(code)
        with pytest.raises(SimulationError):
            scrubber.verify_stripe("nope")


class TestMultipleCorruptions:
    def test_two_corruptions_in_different_stripes(self):
        code = ReedSolomonCode(4, 2)
        namenode, __, scrubber, entries, data = build(code)
        corrupt(namenode, entries[0], slot=1)
        corrupt(namenode, entries[1], slot=4)
        report = scrubber.scrub()
        assert report.corrupt_units_repaired == 2
        assert np.array_equal(namenode.read_file("f"), data)

    def test_corruption_in_tail_stripe_with_virtual_slots(self):
        code = ReedSolomonCode(4, 2)
        namenode, __, scrubber, entries, data = build(code, file_bytes=900)
        tail = entries[-1]
        assert tail.layout.real_data_count < code.k  # has virtual slots
        real_slot = next(
            s for s, b in enumerate(tail.layout.all_block_ids())
            if b is not None
        )
        corrupt(namenode, tail, slot=real_slot)
        report = scrubber.scrub()
        assert report.corrupt_units_repaired == 1
        assert np.array_equal(namenode.read_file("f"), data)


class TestExceptionNarrowing:
    """``locate_corruption_parity`` once swallowed *every* exception
    from ``code.decode``; programming errors must propagate while the
    genuine cannot-decode family still falls to the next basis."""

    def test_programming_error_escapes(self, monkeypatch):
        code = ReedSolomonCode(4, 2)
        namenode, __, scrubber, entries, __ = build(code)
        corrupt(namenode, entries[0], slot=1)

        def broken_decode(units):
            raise TypeError("bug in the decode path")

        monkeypatch.setattr(scrubber.code, "decode", broken_decode)
        with pytest.raises(TypeError, match="bug in the decode path"):
            scrubber.locate_corruption_parity(entries[0].layout.stripe_id)

    def test_undecodable_subset_still_falls_back(self, monkeypatch):
        from repro.errors import DecodingError

        code = ReedSolomonCode(4, 2)
        namenode, __, scrubber, entries, __ = build(code)
        corrupt(namenode, entries[0], slot=2)
        real_decode = scrubber.code.decode
        rejected = []

        def picky_decode(units):
            # Refuse the first basis the voter tries, the way a non-MDS
            # code refuses a genuinely undecodable survivor subset.
            if not rejected:
                rejected.append(sorted(units))
                raise DecodingError("this k-subset cannot decode")
            return real_decode(units)

        monkeypatch.setattr(scrubber.code, "decode", picky_decode)
        located = scrubber.locate_corruption_parity(
            entries[0].layout.stripe_id
        )
        assert located == [2]
        assert rejected  # the refusal really happened and was skipped
