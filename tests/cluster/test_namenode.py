"""Tests for the mini-HDFS namenode."""

import numpy as np
import pytest

from repro.cluster.namenode import NameNode
from repro.cluster.placement import DistinctRackPlacement
from repro.cluster.topology import Topology
from repro.errors import SimulationError


@pytest.fixture
def namenode():
    topology = Topology(num_racks=20, nodes_per_rack=3)
    return NameNode(topology, DistinctRackPlacement(topology, seed=11))


def write(namenode, name="f", nbytes=350, block_size=100, replication=3, seed=0):
    data = np.random.default_rng(seed).integers(0, 256, nbytes, dtype=np.uint8)
    entry = namenode.write_file(name, data, block_size, replication)
    return entry, data


class TestWriteRead:
    def test_write_places_replicas(self, namenode):
        entry, __ = write(namenode)
        assert len(entry.file.blocks) == 4
        for block in entry.file.blocks:
            holders = namenode.block_locations[block.block_id]
            assert len(holders) == 3
            racks = {namenode.topology.rack_of(n) for n in holders}
            assert len(racks) == 3  # distinct racks

    def test_read_roundtrip(self, namenode):
        __, data = write(namenode)
        assert np.array_equal(namenode.read_file("f"), data)

    def test_duplicate_file_rejected(self, namenode):
        write(namenode)
        with pytest.raises(SimulationError):
            write(namenode)

    def test_missing_file(self, namenode):
        with pytest.raises(SimulationError):
            namenode.read_file("nope")

    def test_empty_file(self, namenode):
        namenode.write_file("empty", np.zeros(0, dtype=np.uint8), 100)
        assert namenode.read_file("empty").size == 0


class TestNodeLifecycle:
    def test_read_survives_replica_failures(self, namenode):
        entry, data = write(namenode)
        block = entry.file.blocks[0]
        holders = namenode.block_locations[block.block_id]
        # Kill two of the three replicas.
        for node in holders[:2]:
            namenode.kill_node(node)
        assert np.array_equal(namenode.read_file("f"), data)

    def test_read_fails_when_all_replicas_down(self, namenode):
        entry, __ = write(namenode)
        block = entry.file.blocks[0]
        for node in namenode.block_locations[block.block_id]:
            namenode.kill_node(node)
        with pytest.raises(SimulationError):
            namenode.read_block(block.block_id)

    def test_missing_blocks_reporting(self, namenode):
        entry, __ = write(namenode)
        block = entry.file.blocks[1]
        assert namenode.missing_blocks() == []
        for node in namenode.block_locations[block.block_id]:
            namenode.kill_node(node)
        assert block.block_id in namenode.missing_blocks()

    def test_revive_restores_access(self, namenode):
        entry, data = write(namenode)
        block = entry.file.blocks[0]
        holders = namenode.block_locations[block.block_id]
        for node in holders:
            namenode.kill_node(node)
        namenode.revive_node(holders[0])
        assert np.array_equal(namenode.read_block(block.block_id),
                              block.payload)

    def test_kill_reports_resident_blocks(self, namenode):
        entry, __ = write(namenode)
        block = entry.file.blocks[0]
        node = namenode.block_locations[block.block_id][0]
        lost = namenode.kill_node(node)
        assert block.block_id in lost

    def test_unknown_node(self, namenode):
        with pytest.raises(SimulationError):
            namenode.kill_node(999)
