"""Tests for the vectorised stripe store."""

import numpy as np
import pytest

from repro.cluster.blockmap import StripeStore
from repro.errors import SimulationError


def make_store():
    placement = np.array(
        [
            [0, 1, 2, 3],
            [2, 3, 4, 5],
            [0, 2, 4, 6],
        ]
    )
    sizes = np.array([100, 200, 300])
    return StripeStore(placement, sizes)


class TestConstruction:
    def test_shape_properties(self):
        store = make_store()
        assert store.num_stripes == 3
        assert store.width == 4

    def test_duplicate_node_in_stripe_rejected(self):
        with pytest.raises(SimulationError):
            StripeStore(np.array([[0, 1, 1, 2]]), np.array([10]))

    def test_size_count_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            StripeStore(np.array([[0, 1]]), np.array([10, 20]))

    def test_1d_placement_rejected(self):
        with pytest.raises(SimulationError):
            StripeStore(np.array([0, 1]), np.array([10]))

    def test_total_physical_bytes(self):
        assert make_store().total_physical_bytes == (100 + 200 + 300) * 4


class TestIndex:
    def test_units_on_node(self):
        store = make_store()
        assert store.units_on_node(2) == [(0, 2), (1, 0), (2, 1)]
        assert store.units_on_node(6) == [(2, 3)]
        assert store.units_on_node(99) == []

    def test_units_per_node(self):
        counts = make_store().units_per_node()
        assert counts[0] == 2 and counts[2] == 3 and counts[5] == 1

    def test_stripe_nodes(self):
        assert make_store().stripe_nodes(1) == [2, 3, 4, 5]


class TestMissingFlags:
    def test_mark_node_missing(self):
        store = make_store()
        pairs = store.mark_node_missing(2)
        assert set(pairs) == {(0, 2), (1, 0), (2, 1)}
        assert store.missing_count(0) == 1
        assert store.available_slots(0) == [0, 1, 3]

    def test_mark_node_available(self):
        store = make_store()
        store.mark_node_missing(2)
        restored = store.mark_node_available(2)
        assert set(restored) == {(0, 2), (1, 0), (2, 1)}
        assert store.missing_count(0) == 0

    def test_degraded_stripes_on_node(self):
        store = make_store()
        store.mark_node_missing(2)
        assert store.degraded_stripes_on_node(2) == [(0, 2), (1, 0), (2, 1)]
        assert store.degraded_stripes_on_node(0) == []

    def test_available_excludes_only_missing(self):
        store = make_store()
        store.mark_node_missing(0)
        assert store.available_slots(2) == [1, 2, 3]
        assert store.available_slots(1) == [0, 1, 2, 3]


class TestRelocate:
    def test_relocate_updates_everything(self):
        store = make_store()
        store.mark_node_missing(2)
        store.relocate_unit(0, 2, 9)
        assert store.placement[0, 2] == 9
        assert not store.missing[0, 2]
        assert (0, 2) in store.units_on_node(9)
        assert (0, 2) not in store.units_on_node(2)
        # other stripes on node 2 untouched
        assert (1, 0) in store.units_on_node(2)

    def test_relocate_to_occupied_node_rejected(self):
        store = make_store()
        with pytest.raises(SimulationError):
            store.relocate_unit(0, 2, 0)  # node 0 already holds slot 0

    def test_relocate_back_is_allowed(self):
        store = make_store()
        store.relocate_unit(0, 2, 9)
        store.relocate_unit(0, 2, 2)
        assert store.placement[0, 2] == 2
