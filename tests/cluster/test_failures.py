"""Tests for failure injection and the 15-minute flag threshold."""

import numpy as np
import pytest

from repro.cluster.blockmap import StripeStore
from repro.cluster.datanode import NodeStateTable
from repro.cluster.events import EventQueue
from repro.cluster.failures import FailureInjector
from repro.cluster.traces import UnavailabilityEvent

THRESHOLD = 15 * 60.0


def make_store():
    placement = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])
    return StripeStore(placement, np.array([10, 10]))


def run_trace(events, store=None, on_flagged=None):
    state = NodeStateTable(6)
    injector = FailureInjector(
        state=state,
        store=store,
        threshold_seconds=THRESHOLD,
        on_flagged=on_flagged,
    )
    queue = EventQueue()
    injector.install(queue, events)
    queue.run()
    return state, injector


class TestLifecycle:
    def test_long_outage_flagged(self):
        flagged = []
        state, injector = run_trace(
            [UnavailabilityEvent(time=100.0, node=1, duration=3600.0)],
            on_flagged=lambda q, node, t: flagged.append((node, t)),
        )
        assert flagged == [(1, 100.0 + THRESHOLD)]
        assert injector.flagged_events_by_day[0] == 1
        assert not state.is_down(1)  # came back up at the end

    def test_node_returns_after_duration(self):
        state, __ = run_trace(
            [UnavailabilityEvent(time=0.0, node=2, duration=2000.0)]
        )
        assert not state.is_down(2)

    def test_overlapping_events_absorbed(self):
        events = [
            UnavailabilityEvent(time=0.0, node=1, duration=10_000.0),
            UnavailabilityEvent(time=100.0, node=1, duration=10_000.0),
        ]
        state, injector = run_trace(events)
        assert injector.skipped_already_down == 1
        assert injector.total_events == 2
        assert not state.is_down(1)

    def test_flag_check_ignores_resolved_outage(self):
        """A node that went down again later must not be flagged by the
        stale check of a previous outage."""
        flagged = []
        events = [
            UnavailabilityEvent(time=0.0, node=1, duration=10_000.0),
            UnavailabilityEvent(time=20_000.0, node=1, duration=10_000.0),
        ]
        __, injector = run_trace(
            events, on_flagged=lambda q, n, t: flagged.append(t)
        )
        assert len(flagged) == 2
        assert injector.total_events == 2

    def test_daily_series(self):
        events = [
            UnavailabilityEvent(time=0.0, node=0, duration=3600.0),
            UnavailabilityEvent(time=1000.0, node=1, duration=3600.0),
            UnavailabilityEvent(time=86_400.0 + 5.0, node=2, duration=3600.0),
        ]
        __, injector = run_trace(events)
        assert injector.daily_flagged_series(3) == [2, 1, 0]


class TestStoreIntegration:
    def test_units_marked_missing_then_restored(self):
        store = make_store()
        events = [UnavailabilityEvent(time=0.0, node=1, duration=3600.0)]
        state = NodeStateTable(6)
        injector = FailureInjector(state, store, THRESHOLD)
        queue = EventQueue()
        injector.install(queue, events)
        # Step through: down event first.
        queue.step()
        assert store.missing[0, 1] and store.missing[1, 0]
        queue.run()
        # Node returned; units were not reconstructed, so they cleared.
        assert not store.missing.any()

    def test_flag_callback_sees_missing_units(self):
        store = make_store()
        seen = []

        def on_flagged(queue, node, time):
            seen.append(store.degraded_stripes_on_node(node))

        state = NodeStateTable(6)
        injector = FailureInjector(state, store, THRESHOLD, on_flagged)
        queue = EventQueue()
        injector.install(
            queue, [UnavailabilityEvent(time=0.0, node=2, duration=3600.0)]
        )
        queue.run()
        assert seen == [[(0, 2), (1, 1)]]
