"""Sharded-engine exactness under the repair-policy scheduler.

The contract this file pins: any repair-policy config (throttled pipe,
priority/lazy queues, per-link model, hot spares, read workloads) run
through :class:`ShardedSimulation` -- at any shard count, any worker
request -- produces counters *field-by-field identical* to the serial
:class:`WarehouseSimulation` oracle, and a checkpoint taken with a
non-empty repair queue resumes bit-identically.
"""

import os
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.shard import ShardedSimulation
from repro.cluster.simulation import WarehouseSimulation

BASE = ClusterConfig(
    num_racks=16,
    nodes_per_rack=6,
    stripes_per_node=20.0,
    days=3.0,
    seed=11,
    destination_draws="hashed",
)

#: Three structurally different code families (plain RS, piggybacked
#: RS, locally repairable) with their parameter shapes.
CODE_PARAMS = {
    "rs": {"k": 10, "r": 4},
    "piggyback": {"k": 10, "r": 4},
    "lrc": {"k": 10, "l": 2, "g": 2},
}


def with_code(config, code_name):
    return replace(
        config, code_name=code_name, code_params=CODE_PARAMS[code_name]
    )

THROTTLED = replace(BASE, recovery_bandwidth_bytes_per_sec=40e6)

FULL_POLICY = replace(
    BASE,
    recovery_bandwidth_bytes_per_sec=40e6,
    repair_queue_discipline="priority",
    lazy_repair=True,
    lazy_repair_delay_seconds=900.0,
    lazy_repair_threshold=40,
    repair_link_gbps=1.0,
    hot_spares_per_rack=1,
    reads_per_stripe_per_day=0.05,
)


def fingerprint(result):
    """Every counter the exactness contract covers, field by field."""
    s = result.stats
    d = {
        "blocks_recovered": s.blocks_recovered,
        "bytes_downloaded": s.bytes_downloaded,
        "cancelled_recoveries": s.cancelled_recoveries,
        "unrecoverable_units": s.unrecoverable_units,
        "corrupt_survivors_excluded": s.corrupt_survivors_excluded,
        "degraded_histogram": dict(s.degraded_histogram),
        "blocks_by_day": dict(s.blocks_recovered_by_day),
        "flagged_recovered": s.flagged_events_recovered,
        "flagged_skipped": s.flagged_events_skipped,
        "repair_latencies": tuple(s.repair_latencies),
        "queue_wait_us": s.queue_wait_us,
        "urgent_wait_us": s.urgent_wait_us,
        "deferred_repairs": s.deferred_repairs,
        "promoted_repairs": s.promoted_repairs,
        "queue_peak_depth": s.queue_peak_depth,
        "spare_placements": s.spare_placements,
        "cross_rack_bytes": result.meter.cross_rack_bytes,
        "total_bytes": result.meter.total_bytes,
        "bytes_by_purpose": dict(result.meter.bytes_by_purpose),
        "cross_by_day": dict(result.meter.cross_rack_bytes_by_day),
    }
    if result.read_stats is not None:
        r = result.read_stats
        d["reads"] = (
            r.reads,
            r.healthy_reads,
            r.degraded_reads,
            r.failed_reads,
            r.healthy_bytes,
            r.degraded_bytes,
            r.degraded_read_latency_us,
            r.degraded_read_latency_max_us,
        )
    else:
        d["reads"] = None
    return d


def assert_matches_oracle(config, num_shards, workers):
    serial = fingerprint(WarehouseSimulation(config).run())
    sharded = fingerprint(
        ShardedSimulation(
            config, num_shards=num_shards, workers=workers
        ).run()
    )
    mismatched = [k for k in serial if serial[k] != sharded[k]]
    assert not mismatched, {
        k: (serial[k], sharded[k]) for k in mismatched
    }


# ----------------------------------------------------------------------
# Oracle equality: code families x shard counts x worker layouts
# ----------------------------------------------------------------------


@pytest.mark.parametrize("code_name", ["rs", "piggyback", "lrc"])
@pytest.mark.parametrize("num_shards,workers", [(1, 0), (3, 0), (4, 2)])
def test_throttled_matches_oracle(code_name, num_shards, workers):
    config = with_code(THROTTLED, code_name)
    assert_matches_oracle(config, num_shards, workers)


@pytest.mark.parametrize("code_name", ["rs", "piggyback", "lrc"])
def test_full_policy_matches_oracle(code_name):
    config = with_code(FULL_POLICY, code_name)
    assert_matches_oracle(config, num_shards=3, workers=0)


def test_full_policy_matches_oracle_with_worker_request():
    # Workers degrade to in-process shards; the result is unchanged.
    assert_matches_oracle(FULL_POLICY, num_shards=4, workers=2)


@pytest.mark.parametrize("num_shards,workers", [(1, 0), (3, 0), (4, 2)])
def test_reads_match_oracle_without_scheduler(num_shards, workers):
    # Reads shard through worker processes when no scheduler runs.
    config = replace(BASE, reads_per_stripe_per_day=0.05)
    assert_matches_oracle(config, num_shards, workers)


def test_lazy_priority_without_link_matches_oracle():
    config = replace(
        BASE,
        recovery_bandwidth_bytes_per_sec=60e6,
        repair_queue_discipline="priority",
        priority_aging_seconds=7200.0,
        lazy_repair=True,
        lazy_repair_delay_seconds=600.0,
    )
    assert_matches_oracle(config, num_shards=2, workers=0)


def test_spares_with_throttle_match_oracle():
    config = replace(
        THROTTLED, hot_spares_per_rack=2, reads_per_stripe_per_day=0.02
    )
    assert_matches_oracle(config, num_shards=3, workers=0)


# ----------------------------------------------------------------------
# Policy effects (not just exactness)
# ----------------------------------------------------------------------


def test_priority_reduces_urgent_wait():
    """Priority queueing measurably shrinks multi-erasure exposure."""
    slow = replace(THROTTLED, recovery_bandwidth_bytes_per_sec=6e6)
    fifo = WarehouseSimulation(slow).run()
    prio = WarehouseSimulation(
        replace(slow, repair_queue_discipline="priority")
    ).run()
    # Same failure history and enqueue stream -- ordering differs (so
    # cancellations and exact block counts may drift slightly), but
    # multi-erasure stripes wait dramatically less under priority.
    assert (
        fifo.stats.flagged_events_recovered
        == prio.stats.flagged_events_recovered
    )
    assert fifo.stats.urgent_wait_us > 0
    assert prio.stats.urgent_wait_us < 0.8 * fifo.stats.urgent_wait_us


def test_lazy_repair_cancels_more():
    """Deferring single-erasure repairs lets returning nodes cancel."""
    eager = WarehouseSimulation(THROTTLED).run()
    lazy = WarehouseSimulation(
        replace(
            THROTTLED,
            lazy_repair=True,
            lazy_repair_delay_seconds=7200.0,
        )
    ).run()
    assert lazy.stats.deferred_repairs > 0
    assert lazy.stats.cancelled_recoveries >= eager.stats.cancelled_recoveries
    assert lazy.stats.bytes_downloaded <= eager.stats.bytes_downloaded


# ----------------------------------------------------------------------
# Checkpoint/restore with a live queue
# ----------------------------------------------------------------------

BACKLOG = replace(
    BASE,
    days=4.0,
    recovery_bandwidth_bytes_per_sec=4e6,
    repair_queue_discipline="priority",
    lazy_repair=True,
    lazy_repair_delay_seconds=43200.0,
)


def test_checkpoint_mid_queue_resumes_bit_identical(tmp_path):
    serial = fingerprint(WarehouseSimulation(BACKLOG).run())
    path = os.path.join(tmp_path, "ckpt.npz")
    sim = ShardedSimulation(
        BACKLOG, num_shards=3, workers=0, checkpoint_path=path
    )
    assert sim.run(stop_after_day=2) is None
    # The contract needs a non-trivial queue at the cut.
    assert sim.scheduler.depth > 0
    resumed = fingerprint(ShardedSimulation.resume(path, workers=0).run())
    assert resumed == serial


def test_checkpoint_missing_scheduler_state_is_loud(tmp_path):
    from repro.cluster.checkpoint import load_checkpoint, save_checkpoint
    from repro.errors import CheckpointError

    path = os.path.join(tmp_path, "ckpt.npz")
    sim = ShardedSimulation(
        BACKLOG, num_shards=2, workers=0, checkpoint_path=path
    )
    sim.run(stop_after_day=1)
    data = load_checkpoint(path)
    data.scheduler_state = None
    save_checkpoint(path, data)
    with pytest.raises(CheckpointError, match="queue state"):
        ShardedSimulation.resume(path, workers=0)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    code_name=st.sampled_from(["rs", "piggyback", "lrc"]),
    stop_day=st.integers(min_value=1, max_value=2),
)
def test_checkpoint_sweep_resumes_identical(tmp_path, seed, code_name, stop_day):
    """Any (seed, code, cut day): resume == straight-through run."""
    config = replace(
        with_code(BACKLOG, code_name),
        seed=seed,
        days=3.0,
        num_racks=14,
        nodes_per_rack=5,
        stripes_per_node=12.0,
    )
    straight = fingerprint(
        ShardedSimulation(config, num_shards=2, workers=0).run()
    )
    path = os.path.join(tmp_path, f"ckpt-{seed}-{code_name}-{stop_day}.npz")
    ShardedSimulation(
        config, num_shards=2, workers=0, checkpoint_path=path
    ).run(stop_after_day=stop_day)
    resumed = fingerprint(ShardedSimulation.resume(path, workers=0).run())
    assert resumed == straight
