"""Parallel multi-failure recovery (CR-SIM-style waves).

A stripe with ``a`` concurrent erasures is rebuilt in one wave costing
``k + a - 1`` unit transfers (one ``k``-unit decode at the leader
destination plus one forward per extra unit) instead of ``a``
independent ``k``-unit repairs.  These tests pin the accounting, the
savings, and -- the hard part -- that the sharded engine replays the
serial oracle bit for bit with waves on, for both the stateless hashed
draws and the stateful d3 policy (which degrades to coordinator-driven
execution).
"""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.shard import ShardedSimulation
from repro.cluster.simulation import WarehouseSimulation


def _config(**overrides):
    base = dict(
        num_racks=14,
        nodes_per_rack=8,
        stripes_per_node=10.0,
        days=6.0,
        seed=23,
        destination_draws="hashed",
    )
    base.update(overrides)
    return ClusterConfig(**base)


def _fingerprint(result):
    stats, meter = result.stats, result.meter
    return (
        stats.blocks_recovered,
        stats.bytes_downloaded,
        tuple(sorted(result.degraded_histogram.items())),
        stats.unrecoverable_units,
        stats.spare_placements,
        stats.parallel_waves,
        stats.wave_extra_units,
        meter.total_bytes,
        meter.cross_rack_bytes,
        tuple(sorted(meter.cross_rack_bytes_by_day.items())),
        tuple(result.blocks_recovered_per_day),
        stats.cancelled_recoveries,
        tuple(np.round(sorted(stats.repair_latencies), 9)),
    )


class TestWaveAccounting:
    def test_serial_run_has_no_waves(self):
        result = WarehouseSimulation(_config()).run()
        assert result.stats.parallel_waves == 0
        assert result.stats.wave_extra_units == 0

    def test_waves_fire_and_forward_units(self):
        result = WarehouseSimulation(_config(parallel_repair=True)).run()
        assert result.stats.parallel_waves > 0
        assert (
            result.stats.wave_extra_units >= result.stats.parallel_waves
        )

    def test_waves_cut_bytes_per_recovered_block(self):
        serial = WarehouseSimulation(_config()).run()
        parallel = WarehouseSimulation(_config(parallel_repair=True)).run()
        # Waves also *rescue* stripes the serial path lost (sibling
        # units rebuilt before further failures), so compare per-block
        # cost, not totals.
        assert (
            parallel.mean_bytes_per_recovered_block
            < serial.mean_bytes_per_recovered_block
        )
        assert parallel.stats.blocks_recovered >= serial.stats.blocks_recovered

    def test_wave_forwards_are_metered(self):
        sim = WarehouseSimulation(
            _config(parallel_repair=True), record_transfers=True
        )
        result = sim.run()
        recovery = [
            t for t in result.meter.transfers if t.purpose == "recovery"
        ]
        # blocks = leaders + forwarded extras; a leader decode reads k
        # unit-sized transfers, each forwarded unit exactly one more.
        k = 10
        leaders = result.stats.blocks_recovered - result.stats.wave_extra_units
        assert len(recovery) == leaders * k + result.stats.wave_extra_units


class TestShardedMatchesSerial:
    @pytest.mark.parametrize(
        "code_name,code_params",
        [("rs", {"k": 10, "r": 4}), ("piggyback", {"k": 10, "r": 4})],
    )
    @pytest.mark.parametrize("placement", ["distinct-rack", "d3"])
    @pytest.mark.parametrize("num_shards", [1, 3])
    def test_parallel_waves_bit_identical(
        self, code_name, code_params, placement, num_shards
    ):
        config = _config(
            code_name=code_name,
            code_params=code_params,
            placement_policy=placement,
            parallel_repair=True,
            hot_spares_per_rack=1,
        )
        oracle = _fingerprint(WarehouseSimulation(config).run())
        sharded = ShardedSimulation(
            config, num_shards=num_shards, workers=0
        ).run()
        assert _fingerprint(sharded) == oracle

    def test_d3_serial_waves_off_bit_identical(self):
        config = _config(placement_policy="d3")
        oracle = _fingerprint(WarehouseSimulation(config).run())
        sharded = ShardedSimulation(config, num_shards=3, workers=0).run()
        assert _fingerprint(sharded) == oracle

    def test_throttled_d3_parallel_bit_identical(self):
        # The bandwidth scheduler + link model exercise the peek-only
        # precomputed-destination path for the stateful policy.
        config = _config(
            placement_policy="d3",
            parallel_repair=True,
            recovery_bandwidth_bytes_per_sec=15e6,
            repair_link_gbps=1.0,
        )
        oracle = _fingerprint(WarehouseSimulation(config).run())
        sharded = ShardedSimulation(config, num_shards=3, workers=0).run()
        assert _fingerprint(sharded) == oracle

    def test_d3_degrades_workers_to_coordinator(self):
        config = _config(placement_policy="d3")
        oracle = _fingerprint(WarehouseSimulation(config).run())
        simulation = ShardedSimulation(config, num_shards=3, workers=2)
        assert simulation.num_workers == 0  # degraded, not broken
        assert _fingerprint(simulation.run()) == oracle

    def test_rack_unit_load_matches_serial_store(self):
        config = _config(placement_policy="d3", parallel_repair=True)
        serial = WarehouseSimulation(config)
        serial.run()
        sharded = ShardedSimulation(config, num_shards=3, workers=0)
        sharded.run()
        racks = np.asarray(serial.store.placement) // config.nodes_per_rack
        want = np.bincount(racks.ravel(), minlength=config.num_racks)
        assert np.array_equal(sharded.rack_unit_load(), want)


class TestCheckpointResume:
    @pytest.mark.parametrize("placement", ["distinct-rack", "d3"])
    def test_resume_mid_run_with_waves(self, tmp_path, placement):
        config = _config(placement_policy=placement, parallel_repair=True)
        oracle = _fingerprint(WarehouseSimulation(config).run())
        path = str(tmp_path / "ck.npz")
        ShardedSimulation(
            config, num_shards=3, workers=0, checkpoint_path=path
        ).run(stop_after_day=3)
        resumed = ShardedSimulation.resume(path, workers=0).run()
        assert _fingerprint(resumed) == oracle
