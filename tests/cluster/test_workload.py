"""Tests for the foreground read workload (degraded reads)."""

import numpy as np
import pytest

from repro.cluster.blockmap import StripeStore
from repro.cluster.datanode import NodeStateTable
from repro.cluster.events import EventQueue
from repro.cluster.network import TrafficMeter
from repro.cluster.topology import Topology
from repro.cluster.workload import ReadWorkload
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import ConfigError

UNIT = 1000


def make_workload(code, rate=1.0, seed=3):
    topology = Topology(num_racks=20, nodes_per_rack=2)
    placement = np.array([
        list(range(0, 2 * code.n, 2)),
        list(range(1, 2 * code.n, 2)),
    ])
    store = StripeStore(placement, np.full(2, UNIT))
    state = NodeStateTable(topology.num_nodes)
    meter = TrafficMeter(topology, record_transfers=True)
    workload = ReadWorkload(
        store=store,
        state=state,
        meter=meter,
        code=code,
        rng=np.random.default_rng(seed),
        reads_per_stripe_per_day=rate,
    )
    return workload, store, state, meter


class TestHealthyReads:
    def test_healthy_read_moves_one_block(self):
        workload, store, state, meter = make_workload(ReedSolomonCode(10, 4))
        assert workload.perform_read(0, 3, client=39, time=0.0)
        assert workload.stats.healthy_reads == 1
        assert workload.stats.healthy_bytes == UNIT
        assert meter.bytes_by_purpose["read"] == UNIT

    def test_read_from_own_node_is_free(self):
        workload, store, state, meter = make_workload(ReedSolomonCode(10, 4))
        holder = int(store.placement[0, 3])
        assert workload.perform_read(0, 3, client=holder, time=0.0)
        assert meter.total_bytes == 0
        assert workload.stats.healthy_bytes == UNIT


class TestDegradedReads:
    def test_degraded_read_runs_repair_plan(self):
        workload, store, state, meter = make_workload(ReedSolomonCode(10, 4))
        holder = int(store.placement[0, 3])
        state.mark_down(holder, 0.0)
        store.mark_node_missing(holder)
        assert workload.perform_read(0, 3, client=39, time=0.0)
        assert workload.stats.degraded_reads == 1
        assert workload.stats.degraded_bytes == 10 * UNIT
        assert meter.bytes_by_purpose["degraded-read"] == 10 * UNIT

    def test_piggyback_degraded_read_cheaper(self):
        rs_wl, rs_store, rs_state, __ = make_workload(ReedSolomonCode(10, 4))
        pb_wl, pb_store, pb_state, __ = make_workload(PiggybackedRSCode(10, 4))
        for workload, store, state in (
            (rs_wl, rs_store, rs_state),
            (pb_wl, pb_store, pb_state),
        ):
            holder = int(store.placement[0, 0])
            state.mark_down(holder, 0.0)
            store.mark_node_missing(holder)
            workload.perform_read(0, 0, client=39, time=0.0)
        assert pb_wl.stats.degraded_bytes == 7 * UNIT
        assert pb_wl.stats.degraded_bytes < rs_wl.stats.degraded_bytes

    def test_down_holder_without_missing_flag_degrades(self):
        """A read racing the failure (before the store is updated on the
        read path) still degrades via the holder's state."""
        workload, store, state, meter = make_workload(ReedSolomonCode(10, 4))
        holder = int(store.placement[0, 3])
        state.mark_down(holder, 0.0)
        assert workload.perform_read(0, 3, client=39, time=0.0)
        assert workload.stats.degraded_reads == 1

    def test_unservable_read_counted(self):
        workload, store, state, meter = make_workload(ReedSolomonCode(10, 4))
        for slot in range(5):
            holder = int(store.placement[0, slot])
            state.mark_down(holder, 0.0)
            store.mark_node_missing(holder)
        assert not workload.perform_read(0, 0, client=39, time=0.0)
        assert workload.stats.failed_reads == 1

    def test_amplification_metric(self):
        workload, store, state, meter = make_workload(ReedSolomonCode(10, 4))
        workload.perform_read(0, 1, client=39, time=0.0)
        holder = int(store.placement[0, 3])
        state.mark_down(holder, 0.0)
        store.mark_node_missing(holder)
        workload.perform_read(0, 3, client=39, time=0.0)
        assert workload.stats.degraded_read_amplification == pytest.approx(10.0)
        assert workload.stats.degraded_fraction == pytest.approx(0.5)


class TestScheduling:
    def test_install_schedules_poisson_reads(self):
        workload, *_ = make_workload(ReedSolomonCode(10, 4), rate=5.0)
        queue = EventQueue()
        count = workload.install(queue, days=3.0)
        assert count == queue.pending
        assert count > 0
        queue.run()
        assert workload.stats.reads == count

    def test_zero_rate_schedules_nothing(self):
        workload, *_ = make_workload(ReedSolomonCode(10, 4), rate=0.0)
        queue = EventQueue()
        assert workload.install(queue, days=3.0) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            make_workload(ReedSolomonCode(10, 4), rate=-1.0)
