"""Tests for traffic metering."""

import pytest

from repro.cluster.config import SECONDS_PER_DAY
from repro.cluster.network import TrafficMeter
from repro.cluster.topology import Topology
from repro.errors import SimulationError


@pytest.fixture
def meter():
    return TrafficMeter(Topology(4, 2), record_transfers=True)


class TestCharge:
    def test_cross_rack_classification(self, meter):
        assert meter.charge(0.0, 0, 2, 100) is True  # racks 0 -> 1
        assert meter.charge(0.0, 0, 1, 50) is False  # same rack

    def test_totals(self, meter):
        meter.charge(0.0, 0, 2, 100)
        meter.charge(0.0, 0, 1, 50)
        assert meter.total_bytes == 150
        assert meter.cross_rack_bytes == 100
        assert meter.intra_rack_bytes == 50
        assert meter.num_transfers == 2

    def test_per_switch_attribution(self, meter):
        meter.charge(0.0, 0, 2, 100)
        assert meter.bytes_by_switch["tor_0"] == 100
        assert meter.bytes_by_switch["tor_1"] == 100
        assert meter.bytes_by_switch["aggregation"] == 100

    def test_intra_rack_touches_only_local_tor(self, meter):
        meter.charge(0.0, 2, 3, 70)
        assert meter.bytes_by_switch == {"tor_1": 70}

    def test_aggregation_equals_cross_rack(self, meter):
        meter.charge(0.0, 0, 2, 100)
        meter.charge(0.0, 4, 6, 200)
        meter.charge(0.0, 0, 1, 999)
        assert meter.aggregation_switch_bytes == meter.cross_rack_bytes == 300

    def test_purpose_accounting(self, meter):
        meter.charge(0.0, 0, 2, 100, purpose="recovery")
        meter.charge(0.0, 0, 3, 11, purpose="degraded-read")
        assert meter.bytes_by_purpose["recovery"] == 100
        assert meter.bytes_by_purpose["degraded-read"] == 11

    def test_self_transfer_rejected(self, meter):
        with pytest.raises(SimulationError):
            meter.charge(0.0, 1, 1, 10)

    def test_negative_bytes_rejected(self, meter):
        with pytest.raises(SimulationError):
            meter.charge(0.0, 0, 2, -1)

    def test_transfer_log(self, meter):
        meter.charge(1.5, 0, 2, 42, purpose="recovery")
        assert len(meter.transfers) == 1
        transfer = meter.transfers[0]
        assert transfer.num_bytes == 42
        assert transfer.cross_rack
        assert transfer.purpose == "recovery"

    def test_log_disabled_by_default(self):
        meter = TrafficMeter(Topology(2, 2))
        meter.charge(0.0, 0, 2, 5)
        assert meter.transfers == []


class TestDailySeries:
    def test_bucketing_by_day(self, meter):
        meter.charge(0.0, 0, 2, 100)
        meter.charge(SECONDS_PER_DAY + 1, 0, 2, 200)
        meter.charge(SECONDS_PER_DAY * 2.5, 0, 2, 300)
        assert meter.daily_cross_rack_series() == [100, 200, 300]

    def test_gaps_filled_with_zero(self, meter):
        meter.charge(0.0, 0, 2, 100)
        meter.charge(SECONDS_PER_DAY * 3.1, 0, 2, 50)
        assert meter.daily_cross_rack_series() == [100, 0, 0, 50]

    def test_explicit_day_count(self, meter):
        meter.charge(0.0, 0, 2, 100)
        assert meter.daily_cross_rack_series(num_days=3) == [100, 0, 0]

    def test_empty(self, meter):
        assert meter.daily_cross_rack_series() == []
        assert meter.daily_cross_rack_series(num_days=2) == [0, 0]

    def test_intra_rack_not_in_daily_series(self, meter):
        meter.charge(0.0, 0, 1, 500)
        assert meter.daily_cross_rack_series(num_days=1) == [0]


class TestChargeBatchTotalRegression:
    """``charge_batch`` once shadowed its running ``total`` with the
    per-day/per-TOR loop variables; a multi-day batch then corrupted
    any later use of the batch total.  Lock in batch == scalar."""

    def _multi_day_batch(self):
        # Three days of cross-rack traffic plus intra-rack filler, so
        # both grouped-sum loops run with several distinct keys.
        return [
            (0.0, 0, 2, 100),
            (0.5 * SECONDS_PER_DAY, 4, 6, 250),
            (1.2 * SECONDS_PER_DAY, 0, 4, 300),
            (2.7 * SECONDS_PER_DAY, 6, 0, 75),
            (2.9 * SECONDS_PER_DAY, 0, 1, 999),  # intra-rack
        ]

    def test_batch_totals_match_scalar_after_multi_day_batch(self):
        import numpy as np

        batch = self._multi_day_batch()
        scalar = TrafficMeter(Topology(4, 2))
        batched = TrafficMeter(Topology(4, 2))
        for time, src, dst, num_bytes in batch:
            scalar.charge(time, src, dst, num_bytes)
        batched.charge_batch(
            np.array([t for t, *_ in batch]),
            np.array([s for _, s, _, _ in batch]),
            np.array([d for _, _, d, _ in batch]),
            np.array([b for *_, b in batch]),
        )
        # Further scalar charges on both meters must keep agreeing: a
        # corrupted running total would skew everything from here on.
        for meter in (scalar, batched):
            meter.charge(3.1 * SECONDS_PER_DAY, 2, 4, 12345)
            meter.charge(3.2 * SECONDS_PER_DAY, 2, 3, 1)
        assert batched.total_bytes == scalar.total_bytes
        assert batched.cross_rack_bytes == scalar.cross_rack_bytes
        assert batched.intra_rack_bytes == scalar.intra_rack_bytes
        assert batched.num_transfers == scalar.num_transfers
        assert dict(batched.cross_rack_bytes_by_day) == dict(
            scalar.cross_rack_bytes_by_day
        )
        assert dict(batched.bytes_by_switch) == dict(scalar.bytes_by_switch)


class TestSeriesOverflowGuard:
    """``daily_cross_rack_series(num_days=N)`` used to silently drop
    bytes charged on day >= N."""

    def test_truncation_raises_by_default(self, meter):
        meter.charge(0.0, 0, 2, 100)
        meter.charge(3.5 * SECONDS_PER_DAY, 0, 2, 50)
        with pytest.raises(SimulationError, match="50 cross-rack bytes"):
            meter.daily_cross_rack_series(num_days=2)

    def test_exact_window_does_not_raise(self, meter):
        meter.charge(0.0, 0, 2, 100)
        meter.charge(1.5 * SECONDS_PER_DAY, 0, 2, 50)
        assert meter.daily_cross_rack_series(num_days=2) == [100, 50]

    def test_allow_overflow_truncates_and_warns(self, meter, caplog):
        import logging

        meter.charge(0.0, 0, 2, 100)
        meter.charge(2.5 * SECONDS_PER_DAY, 0, 2, 50)
        with caplog.at_level(logging.WARNING, logger="repro.network"):
            series = meter.daily_cross_rack_series(
                num_days=2, allow_overflow=True
            )
        assert series == [100, 0]
        assert any(
            "traffic-series-overflow" in record.message
            and "spilled_bytes=50" in record.message
            for record in caplog.records
        )

    def test_overflow_counted_in_metrics(self, meter):
        from repro import observability

        observability.set_enabled(True)
        observability.reset()
        try:
            meter.charge(2.5 * SECONDS_PER_DAY, 0, 2, 50)
            meter.daily_cross_rack_series(num_days=2, allow_overflow=True)
            registry = observability.get_registry()
            assert registry.counter_value("network.series_overflow_days") == 1
            assert registry.counter_value("network.series_overflow_bytes") == 50
        finally:
            observability.set_enabled(None)
            observability.reset()
