"""Tests for datanode state (payload nodes and the vectorised table)."""

import numpy as np
import pytest

from repro.cluster.datanode import DataNode, NodeStateTable
from repro.errors import SimulationError
from repro.striping.blocks import Block


class TestDataNode:
    def make_block(self, block_id="b", size=4):
        return Block(block_id, size, payload=np.zeros(size, dtype=np.uint8))

    def test_store_and_read(self):
        node = DataNode(0, 0)
        node.store(self.make_block())
        assert node.read("b").size == 4

    def test_metadata_only_block_rejected(self):
        node = DataNode(0, 0)
        with pytest.raises(SimulationError):
            node.store(Block("b", 4))

    def test_read_missing_block(self):
        with pytest.raises(SimulationError):
            DataNode(0, 0).read("nope")

    def test_read_while_down(self):
        node = DataNode(0, 0)
        node.store(self.make_block())
        node.is_up = False
        with pytest.raises(SimulationError):
            node.read("b")

    def test_drop_is_idempotent(self):
        node = DataNode(0, 0)
        node.store(self.make_block())
        node.drop("b")
        node.drop("b")
        assert node.blocks == {}

    def test_used_bytes(self):
        node = DataNode(0, 0)
        node.store(self.make_block("a", 4))
        node.store(self.make_block("b", 6))
        assert node.used_bytes == 10


class TestNodeStateTable:
    def test_initial_state_all_up(self):
        table = NodeStateTable(5)
        assert table.num_down == 0
        assert table.down_nodes() == []

    def test_down_up_cycle(self):
        table = NodeStateTable(5)
        table.mark_down(2, 100.0)
        assert table.is_down(2)
        assert table.down_nodes() == [2]
        assert table.downtime(2, 150.0) == 50.0
        table.mark_up(2)
        assert not table.is_down(2)
        assert table.downtime(2, 200.0) == 0.0

    def test_double_down_rejected(self):
        table = NodeStateTable(5)
        table.mark_down(2, 1.0)
        with pytest.raises(SimulationError):
            table.mark_down(2, 2.0)

    def test_double_up_rejected(self):
        with pytest.raises(SimulationError):
            NodeStateTable(5).mark_up(0)

    def test_flagging(self):
        table = NodeStateTable(5)
        table.mark_down(1, 0.0)
        table.flag_unavailable(1)
        assert table.flagged[1]
        table.mark_up(1)
        assert not table.flagged[1]

    def test_flag_up_node_rejected(self):
        with pytest.raises(SimulationError):
            NodeStateTable(5).flag_unavailable(0)

    def test_bounds_checked(self):
        with pytest.raises(SimulationError):
            NodeStateTable(5).is_down(5)
        with pytest.raises(SimulationError):
            NodeStateTable(0)
