"""Unit tests for the repair-policy scheduler (queues, clocks, laws)."""

import math

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.network import RepairLinkModel
from repro.cluster.repair_policy import (
    JOB_DEFERRED,
    JOB_IN_SERVICE,
    JOB_READY,
    RepairJob,
    RepairScheduler,
    scheduler_from_config,
)

MB = 1_000_000


def make_job(
    uid,
    t,
    nbytes=100 * MB,
    urgent=False,
    stripe=None,
    rack=None,
    dest=None,
):
    return RepairJob(
        stripe=uid if stripe is None else stripe,
        slot=0,
        uid=uid,
        shard_id=0,
        enqueue_time=t,
        ordinal=uid + 1,
        nbytes=nbytes,
        urgent=urgent,
        dest=dest,
        rack=rack,
    )


class TestFifoPipe:
    """Flat FIFO over one pipe == the historical throttled law."""

    def test_reproduces_precommit_chain(self):
        # Old law: start = max(flag_time, pipe_free);
        #          pipe_free = start + nbytes / rate.
        rate = 10 * MB
        sched = RepairScheduler(pipe_bytes_per_sec=rate)
        arrivals = [(0, 0.0, 50 * MB), (1, 1.0, 30 * MB), (2, 20.0, 10 * MB)]
        pipe_free = 0.0
        expected = []
        for uid, t, nbytes in arrivals:
            start = max(t, pipe_free)
            pipe_free = start + nbytes / rate
            expected.append((uid, start, pipe_free))
            sched.submit(make_job(uid, t, nbytes), t)
        done = sched.advance(math.inf)
        assert [(j.uid, j.start, j.completion) for j in done] == expected

    def test_completions_in_order(self):
        sched = RepairScheduler(pipe_bytes_per_sec=MB)
        for uid in range(5):
            sched.submit(make_job(uid, 0.0, nbytes=MB), 0.0)
        done = sched.advance(math.inf)
        assert [j.uid for j in done] == [0, 1, 2, 3, 4]
        assert [j.completion for j in done] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_exclusive_advance_leaves_boundary_job(self):
        sched = RepairScheduler(pipe_bytes_per_sec=MB)
        sched.submit(make_job(0, 0.0, nbytes=MB), 0.0)
        assert sched.advance(1.0, inclusive=False) == []
        done = sched.advance(1.0, inclusive=True)
        assert [j.uid for j in done] == [0]

    def test_next_wake_tracks_completion(self):
        sched = RepairScheduler(pipe_bytes_per_sec=MB)
        assert sched.next_wake() is None
        sched.submit(make_job(0, 2.0, nbytes=MB), 2.0)
        # Assignment is the next internal event (at the flag time).
        assert sched.next_wake() == 2.0
        sched.advance(2.0)
        assert sched.next_wake() == 3.0


class TestPriority:
    def test_urgent_served_before_bulk(self):
        sched = RepairScheduler(pipe_bytes_per_sec=MB, discipline="priority")
        sched.submit(make_job(0, 0.0, nbytes=10 * MB), 0.0)  # bulk, in service
        sched.submit(make_job(1, 1.0, nbytes=MB), 1.0)  # bulk, waits
        sched.submit(make_job(2, 2.0, nbytes=MB, urgent=True), 2.0)
        done = sched.advance(math.inf)
        assert [j.uid for j in done] == [0, 2, 1]

    def test_fifo_ignores_urgency(self):
        sched = RepairScheduler(pipe_bytes_per_sec=MB, discipline="fifo")
        sched.submit(make_job(0, 0.0, nbytes=10 * MB), 0.0)
        sched.submit(make_job(1, 1.0, nbytes=MB), 1.0)
        sched.submit(make_job(2, 2.0, nbytes=MB, urgent=True), 2.0)
        done = sched.advance(math.inf)
        assert [j.uid for j in done] == [0, 1, 2]

    def test_aging_prevents_starvation(self):
        # The bulk job ages into the urgent class after 5 s and is then
        # tie-broken by seq against the later urgent arrival.
        sched = RepairScheduler(
            pipe_bytes_per_sec=MB,
            discipline="priority",
            priority_aging_seconds=5.0,
        )
        sched.submit(make_job(0, 0.0, nbytes=10 * MB), 0.0)
        sched.submit(make_job(1, 1.0, nbytes=MB), 1.0)  # aged by t=10
        sched.submit(make_job(2, 2.0, nbytes=MB, urgent=True), 2.0)
        done = sched.advance(math.inf)
        assert [j.uid for j in done] == [0, 1, 2]


class TestLazyRepair:
    def test_timer_defers_single_erasure(self):
        sched = RepairScheduler(
            pipe_bytes_per_sec=MB, lazy_repair=True, lazy_delay_seconds=900.0
        )
        sched.submit(make_job(0, 0.0, nbytes=MB), 0.0)
        assert sched.deferred_total == 1
        assert sched.advance(899.0) == []
        done = sched.advance(math.inf)
        assert [j.uid for j in done] == [0]
        assert done[0].start == 900.0

    def test_urgent_bypasses_laziness(self):
        sched = RepairScheduler(
            pipe_bytes_per_sec=MB, lazy_repair=True, lazy_delay_seconds=900.0
        )
        sched.submit(make_job(0, 0.0, nbytes=MB, urgent=True), 0.0)
        done = sched.advance(10.0)
        assert [j.uid for j in done] == [0]
        assert done[0].start == 0.0

    def test_threshold_flushes_backlog(self):
        sched = RepairScheduler(
            pipe_bytes_per_sec=MB,
            lazy_repair=True,
            lazy_delay_seconds=1e9,
            lazy_threshold=3,
        )
        for uid in range(3):
            sched.submit(make_job(uid, float(uid), nbytes=MB), float(uid))
        # The third submit crosses the threshold: everything activates
        # at its enqueue instant, long before the (huge) timer.
        done = sched.advance(100.0)
        assert [j.uid for j in done] == [0, 1, 2]
        assert sched.threshold_flushes == 1

    def test_promotion_pulls_deferred_stripe(self):
        sched = RepairScheduler(
            pipe_bytes_per_sec=MB, lazy_repair=True, lazy_delay_seconds=1e9
        )
        sched.submit(make_job(0, 0.0, nbytes=MB, stripe=7), 0.0)
        assert sched.pending_jobs()[0].state == JOB_DEFERRED
        # Second erasure on the same stripe: the deferred job promotes.
        sched.submit(
            make_job(1, 5.0, nbytes=MB, stripe=7, urgent=True), 5.0
        )
        assert sched.promoted_total == 1
        done = sched.advance(10.0)
        assert sorted(j.uid for j in done) == [0, 1]
        assert all(j.urgent for j in done)


class TestLinkModel:
    def test_per_rack_links_run_concurrently(self):
        # Two repairs to different racks do not share a TOR uplink;
        # only the aggregation trunk (4x TOR rate at oversub 1) gates
        # the second start -- 0.25 s, not the 1.0 s a shared TOR costs.
        link = RepairLinkModel(4, 1.0, 1.0)  # 1 Gbps per TOR, no oversub
        sched = RepairScheduler(link_model=link)
        sched.submit(make_job(0, 0.0, nbytes=125 * MB, rack=0), 0.0)
        sched.submit(make_job(1, 0.0, nbytes=125 * MB, rack=1), 0.0)
        done = sched.advance(math.inf)
        starts = {j.uid: j.start for j in done}
        assert starts[0] == 0.0
        assert starts[1] == pytest.approx(0.25)  # trunk, not TOR

    def test_same_rack_serialises(self):
        link = RepairLinkModel(4, 1.0, 1.0)
        sched = RepairScheduler(link_model=link)
        sched.submit(make_job(0, 0.0, nbytes=125 * MB, rack=2), 0.0)
        sched.submit(make_job(1, 0.0, nbytes=125 * MB, rack=2), 0.0)
        done = sched.advance(math.inf)
        starts = sorted(j.start for j in done)
        assert starts[0] == 0.0
        assert starts[1] == pytest.approx(1.0)  # full TOR transfer time

    def test_read_latency_sees_backlog(self):
        sched = RepairScheduler(pipe_bytes_per_sec=MB)
        assert sched.read_latency(0.0, MB) == pytest.approx(1.0)
        sched.submit(make_job(0, 0.0, nbytes=10 * MB), 0.0)
        sched.advance(0.0)  # assign: pipe busy until t=10
        latency = sched.read_latency(0.0, MB)
        assert latency == pytest.approx(10.0 + 1.0)


class TestCheckpointing:
    def test_state_roundtrip_mid_backlog(self):
        def build():
            return RepairScheduler(
                pipe_bytes_per_sec=MB,
                discipline="priority",
                lazy_repair=True,
                lazy_delay_seconds=500.0,
                link_model=RepairLinkModel(4, 1.0, 2.0),
            )

        a = build()
        jobs = [
            make_job(0, 0.0, nbytes=30 * MB, rack=0, urgent=True),
            make_job(1, 1.0, nbytes=MB, rack=1, urgent=True),
            make_job(2, 2.0, nbytes=MB, rack=2),
            make_job(3, 3.0, nbytes=MB, rack=3),
        ]
        for j in jobs:
            a.submit(j, j.enqueue_time)
        a.advance(5.0)  # mid-backlog: in-service + deferred + ready
        states = {j.state for j in a.pending_jobs()}
        assert JOB_IN_SERVICE in states and JOB_DEFERRED in states

        b = build()
        b.restore(a.state_dict())
        done_a = [(j.uid, j.start, j.completion) for j in a.advance(math.inf)]
        done_b = [(j.uid, j.start, j.completion) for j in b.advance(math.inf)]
        assert done_a == done_b
        assert a.state_dict() == b.state_dict()

    def test_restored_scheduler_accepts_new_jobs(self):
        a = RepairScheduler(pipe_bytes_per_sec=MB)
        a.submit(make_job(0, 0.0, nbytes=10 * MB), 0.0)
        a.advance(1.0)
        b = RepairScheduler(pipe_bytes_per_sec=MB)
        b.restore(a.state_dict())
        for s in (a, b):
            s.submit(make_job(1, 1.0, nbytes=MB), 1.0)
        assert [
            (j.uid, j.completion) for j in a.advance(math.inf)
        ] == [(j.uid, j.completion) for j in b.advance(math.inf)]


class TestFactory:
    def test_plain_config_builds_nothing(self):
        config = ClusterConfig(num_racks=20, nodes_per_rack=5, days=1.0)
        assert scheduler_from_config(config) is None

    def test_throttle_builds_fifo_pipe(self):
        config = ClusterConfig(
            num_racks=20,
            nodes_per_rack=5,
            days=1.0,
            recovery_bandwidth_bytes_per_sec=1e9,
        )
        sched = scheduler_from_config(config)
        assert sched is not None
        assert sched.pipe_rate == 1e9
        assert sched.discipline == "fifo"
        assert sched.link is None

    def test_full_policy_config(self):
        config = ClusterConfig(
            num_racks=20,
            nodes_per_rack=5,
            days=1.0,
            recovery_bandwidth_bytes_per_sec=1e9,
            repair_queue_discipline="priority",
            priority_aging_seconds=3600.0,
            lazy_repair=True,
            lazy_repair_delay_seconds=600.0,
            lazy_repair_threshold=50,
            repair_link_gbps=1.0,
            repair_oversubscription=8.0,
            destination_draws="hashed",
        )
        sched = scheduler_from_config(config)
        assert sched.discipline == "priority"
        assert sched.aging == 3600.0
        assert sched.lazy and sched.lazy_delay == 600.0
        assert sched.lazy_threshold == 50
        assert sched.link is not None
