"""Equivalence: ``TrafficMeter.charge_batch`` vs repeated ``charge``.

The scalar :meth:`~repro.cluster.network.TrafficMeter.charge` is the
oracle; the batched path must reproduce every counter, every dict (keys
included -- zero-byte transfers still create entries), and the transfer
log exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import SECONDS_PER_DAY
from repro.cluster.network import TrafficMeter
from repro.cluster.topology import Topology
from repro.errors import SimulationError

NUM_RACKS = 4
NODES_PER_RACK = 3
NUM_NODES = NUM_RACKS * NODES_PER_RACK

transfer_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30 * SECONDS_PER_DAY, allow_nan=False),
        st.integers(0, NUM_NODES - 1),
        st.integers(0, NUM_NODES - 1),
        st.integers(0, 10**12),
    ).filter(lambda t: t[1] != t[2]),
    max_size=60,
)


def fresh_meter() -> TrafficMeter:
    return TrafficMeter(
        Topology(NUM_RACKS, NODES_PER_RACK), record_transfers=True
    )


def as_arrays(batch):
    return (
        np.array([t for t, _, _, _ in batch], dtype=np.float64),
        np.array([s for _, s, _, _ in batch], dtype=np.int64),
        np.array([d for _, _, d, _ in batch], dtype=np.int64),
        np.array([b for _, _, _, b in batch], dtype=np.int64),
    )


@given(batch=transfer_lists, purpose=st.sampled_from(["recovery", "read"]))
@settings(max_examples=200, deadline=None)
def test_charge_batch_equals_repeated_charge(batch, purpose):
    scalar = fresh_meter()
    batched = fresh_meter()
    crossings = 0
    for time, src, dst, num_bytes in batch:
        crossings += bool(scalar.charge(time, src, dst, num_bytes, purpose))
    times, srcs, dsts, sizes = as_arrays(batch)
    assert batched.charge_batch(times, srcs, dsts, sizes, purpose) == crossings
    assert batched.total_bytes == scalar.total_bytes
    assert batched.cross_rack_bytes == scalar.cross_rack_bytes
    assert batched.intra_rack_bytes == scalar.intra_rack_bytes
    assert batched.num_transfers == scalar.num_transfers
    assert dict(batched.bytes_by_purpose) == dict(scalar.bytes_by_purpose)
    assert dict(batched.cross_rack_bytes_by_day) == dict(
        scalar.cross_rack_bytes_by_day
    )
    assert dict(batched.bytes_by_switch) == dict(scalar.bytes_by_switch)
    assert batched.transfers == scalar.transfers
    assert (
        batched.daily_cross_rack_series() == scalar.daily_cross_rack_series()
    )


@given(batches=st.lists(transfer_lists, max_size=4))
@settings(max_examples=50, deadline=None)
def test_interleaved_batches_accumulate(batches):
    """Consecutive batches accumulate like one long scalar sequence."""
    scalar = fresh_meter()
    batched = fresh_meter()
    for batch in batches:
        for time, src, dst, num_bytes in batch:
            scalar.charge(time, src, dst, num_bytes)
        batched.charge_batch(*as_arrays(batch))
    assert batched.total_bytes == scalar.total_bytes
    assert dict(batched.bytes_by_switch) == dict(scalar.bytes_by_switch)
    assert dict(batched.cross_rack_bytes_by_day) == dict(
        scalar.cross_rack_bytes_by_day
    )
    assert batched.transfers == scalar.transfers


class TestChargeBatchValidation:
    def test_empty_batch_is_a_noop(self):
        meter = fresh_meter()
        empty = np.array([], dtype=np.int64)
        assert meter.charge_batch(empty, empty, empty, empty) == 0
        assert meter.total_bytes == 0
        assert meter.num_transfers == 0
        assert dict(meter.bytes_by_purpose) == {}

    def test_length_mismatch_rejected(self):
        meter = fresh_meter()
        with pytest.raises(SimulationError, match="disagree in length"):
            meter.charge_batch(
                np.zeros(2), np.zeros(2, int), np.ones(2, int), np.zeros(1, int)
            )

    def test_negative_bytes_rejected(self):
        meter = fresh_meter()
        with pytest.raises(SimulationError, match="negative transfer"):
            meter.charge_batch(
                np.zeros(1),
                np.array([0]),
                np.array([1]),
                np.array([-5]),
            )

    def test_self_loop_rejected(self):
        meter = fresh_meter()
        with pytest.raises(SimulationError, match="cannot transfer to itself"):
            meter.charge_batch(
                np.zeros(1),
                np.array([3]),
                np.array([3]),
                np.array([10]),
            )

    def test_failed_batch_charges_nothing(self):
        meter = fresh_meter()
        with pytest.raises(SimulationError):
            meter.charge_batch(
                np.zeros(2),
                np.array([0, 2]),
                np.array([1, 2]),
                np.array([10, 10]),
            )
        assert meter.total_bytes == 0
        assert meter.num_transfers == 0
