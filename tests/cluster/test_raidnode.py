"""Tests for the RAID node (cold-data encoding + reconstruction)."""

import numpy as np
import pytest

from repro.cluster.namenode import NameNode
from repro.cluster.network import TrafficMeter
from repro.cluster.placement import DistinctRackPlacement
from repro.cluster.raidnode import RaidNode
from repro.cluster.topology import Topology
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import SimulationError


def make_cluster(code, seed=13):
    topology = Topology(num_racks=20, nodes_per_rack=3)
    namenode = NameNode(topology, DistinctRackPlacement(topology, seed=seed))
    meter = TrafficMeter(topology, record_transfers=True)
    return namenode, RaidNode(namenode, code, meter), meter


def write_and_raid(namenode, raidnode, nbytes=1000, block_size=100, seed=3):
    data = np.random.default_rng(seed).integers(0, 256, nbytes, dtype=np.uint8)
    namenode.write_file("cold", data, block_size, replication=3)
    entries = raidnode.raid_file("cold")
    return data, entries


class TestRaidFile:
    def test_raid_reduces_to_single_copy(self):
        namenode, raidnode, __ = make_cluster(ReedSolomonCode(4, 2))
        data, entries = write_and_raid(namenode, raidnode)
        for entry in entries:
            for slot, block_id in enumerate(entry.layout.all_block_ids()):
                if block_id is None:
                    continue
                holders = namenode.block_locations[block_id]
                assert len(holders) == 1

    def test_stripe_members_on_distinct_racks(self):
        namenode, raidnode, __ = make_cluster(ReedSolomonCode(4, 2))
        __, entries = write_and_raid(namenode, raidnode)
        for entry in entries:
            racks = {
                namenode.topology.rack_of(node)
                for node in entry.locations.values()
            }
            assert len(racks) == len(entry.locations)

    def test_file_still_readable_after_raid(self):
        namenode, raidnode, __ = make_cluster(ReedSolomonCode(4, 2))
        data, __ = write_and_raid(namenode, raidnode)
        assert np.array_equal(namenode.read_file("cold"), data)

    def test_storage_savings(self):
        """3x replication -> 1.5x for a (4,2) code (1.4x for (10,4))."""
        namenode, raidnode, __ = make_cluster(ReedSolomonCode(4, 2))
        data, entries = write_and_raid(namenode, raidnode, nbytes=800)
        physical = sum(
            node.used_bytes for node in namenode.datanodes.values()
        )
        assert physical == pytest.approx(len(data) * 1.5)

    def test_double_raid_rejected(self):
        namenode, raidnode, __ = make_cluster(ReedSolomonCode(4, 2))
        write_and_raid(namenode, raidnode)
        with pytest.raises(SimulationError):
            raidnode.raid_file("cold")

    def test_tail_file_with_virtual_blocks(self):
        namenode, raidnode, __ = make_cluster(ReedSolomonCode(4, 2))
        data, entries = write_and_raid(namenode, raidnode, nbytes=550)
        # 6 blocks -> stripe 0 full, stripe 1 has 2 real + 2 virtual.
        assert entries[1].layout.real_data_count == 2
        assert np.array_equal(namenode.read_file("cold"), data)


class TestReconstruction:
    @pytest.mark.parametrize(
        "code", [ReedSolomonCode(4, 2), PiggybackedRSCode(4, 2)],
        ids=["rs", "piggyback"],
    )
    def test_reconstruct_after_node_loss(self, code):
        namenode, raidnode, meter = make_cluster(code)
        data, entries = write_and_raid(namenode, raidnode)
        # Kill the node holding stripe 0, slot 1.
        victim = entries[0].locations[1]
        namenode.kill_node(victim)
        rebuilt, bytes_read = raidnode.reconstruct_block(
            entries[0].layout.stripe_id, 1, time=60.0
        )
        assert np.array_equal(namenode.read_file("cold"), data)
        # The rebuilt block lives on a new, live node.
        new_home = entries[0].locations[1]
        assert new_home != victim
        assert namenode.datanodes[new_home].is_up

    def test_meter_charged_per_plan(self):
        code = PiggybackedRSCode(4, 2)
        namenode, raidnode, meter = make_cluster(code)
        data, entries = write_and_raid(namenode, raidnode)
        recovery_before = meter.bytes_by_purpose.get("recovery", 0)
        victim = entries[0].locations[0]
        namenode.kill_node(victim)
        __, bytes_read = raidnode.reconstruct_block(
            entries[0].layout.stripe_id, 0, time=0.0
        )
        charged = meter.bytes_by_purpose["recovery"] - recovery_before
        assert charged == bytes_read

    def test_reconstruct_all_missing(self):
        namenode, raidnode, __ = make_cluster(ReedSolomonCode(4, 2))
        data, entries = write_and_raid(namenode, raidnode)
        victims = {entries[0].locations[0], entries[0].locations[2]}
        for victim in victims:
            namenode.kill_node(victim)
        count = raidnode.reconstruct_all_missing(time=10.0)
        assert count >= 2
        assert np.array_equal(namenode.read_file("cold"), data)

    def test_reconstruct_healthy_slot_rejected(self):
        namenode, raidnode, __ = make_cluster(ReedSolomonCode(4, 2))
        __, entries = write_and_raid(namenode, raidnode)
        with pytest.raises(Exception):
            raidnode.reconstruct_block(entries[0].layout.stripe_id, 0)


class TestDegradedRead:
    def test_degraded_read_returns_block(self):
        namenode, raidnode, meter = make_cluster(ReedSolomonCode(4, 2))
        data, entries = write_and_raid(namenode, raidnode)
        block_id = entries[0].layout.data_block_ids[2]
        victim = entries[0].locations[2]
        namenode.kill_node(victim)
        payload = raidnode.degraded_read(block_id, time=5.0)
        expected = data[200:300]
        assert np.array_equal(payload, expected)
        assert meter.bytes_by_purpose["degraded-read"] > 0

    def test_degraded_read_does_not_relocate(self):
        namenode, raidnode, __ = make_cluster(ReedSolomonCode(4, 2))
        __, entries = write_and_raid(namenode, raidnode)
        victim = entries[0].locations[2]
        namenode.kill_node(victim)
        raidnode.degraded_read(entries[0].layout.data_block_ids[2])
        assert entries[0].locations[2] == victim  # unchanged mapping

    def test_degraded_read_of_live_block_is_direct(self):
        namenode, raidnode, meter = make_cluster(ReedSolomonCode(4, 2))
        data, entries = write_and_raid(namenode, raidnode)
        payload = raidnode.degraded_read(entries[0].layout.data_block_ids[0])
        assert np.array_equal(payload, data[:100])
        assert meter.bytes_by_purpose.get("degraded-read", 0) == 0

    def test_unknown_block(self):
        namenode, raidnode, __ = make_cluster(ReedSolomonCode(4, 2))
        write_and_raid(namenode, raidnode)
        with pytest.raises(SimulationError):
            raidnode.degraded_read("not-a-block")
