"""Equivalence: batched node recovery vs the per-unit oracle path.

``batched_recovery=False`` runs :meth:`RecoveryService.recover_unit`
for every degraded unit; ``True`` runs
:meth:`RecoveryService.recover_node_batch`.  Both must produce the same
``RecoveryStats``, the same meter aggregates, and the same final
``StripeStore`` -- byte for byte, for any seed, code, and placement
policy.  (Individual transfer *order* differs -- the batch path groups
by repair pattern -- so the comparison covers every order-invariant
aggregate, not the transfer log.)
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation

BASE = ClusterConfig(
    num_racks=15,
    nodes_per_rack=5,
    stripes_per_node=15.0,
    days=2.0,
)


def run_mode(config: ClusterConfig, batched: bool):
    simulation = WarehouseSimulation(
        dataclasses.replace(config, batched_recovery=batched)
    )
    return simulation, simulation.run()


def assert_equivalent(config: ClusterConfig) -> None:
    batched_sim, batched = run_mode(config, True)
    scalar_sim, scalar = run_mode(config, False)

    bstats, sstats = batched.stats, scalar.stats
    assert bstats.blocks_recovered == sstats.blocks_recovered
    assert dict(bstats.blocks_recovered_by_day) == dict(
        sstats.blocks_recovered_by_day
    )
    assert bstats.bytes_downloaded == sstats.bytes_downloaded
    assert dict(bstats.degraded_histogram) == dict(sstats.degraded_histogram)
    assert bstats.unrecoverable_units == sstats.unrecoverable_units
    assert bstats.flagged_events_recovered == sstats.flagged_events_recovered
    assert bstats.flagged_events_skipped == sstats.flagged_events_skipped
    assert bstats.repair_latencies == sstats.repair_latencies
    assert bstats.cancelled_recoveries == sstats.cancelled_recoveries

    bmeter, smeter = batched.meter, scalar.meter
    assert bmeter.total_bytes == smeter.total_bytes
    assert bmeter.cross_rack_bytes == smeter.cross_rack_bytes
    assert bmeter.intra_rack_bytes == smeter.intra_rack_bytes
    assert bmeter.num_transfers == smeter.num_transfers
    assert dict(bmeter.bytes_by_purpose) == dict(smeter.bytes_by_purpose)
    assert dict(bmeter.cross_rack_bytes_by_day) == dict(
        smeter.cross_rack_bytes_by_day
    )
    assert dict(bmeter.bytes_by_switch) == dict(smeter.bytes_by_switch)

    assert np.array_equal(
        batched_sim.store.placement, scalar_sim.store.placement
    )
    assert np.array_equal(batched_sim.store.missing, scalar_sim.store.missing)

    assert batched.unavailability_events_per_day == (
        scalar.unavailability_events_per_day
    )
    assert batched.blocks_recovered_per_day == scalar.blocks_recovered_per_day
    assert batched.cross_rack_bytes_per_day == scalar.cross_rack_bytes_per_day


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=8, deadline=None)
def test_batched_equals_scalar_across_seeds(seed):
    assert_equivalent(dataclasses.replace(BASE, seed=seed))


@pytest.mark.parametrize(
    "overrides",
    [
        {"code_name": "piggyback"},
        {"placement_policy": "distinct-node", "seed": 5},
        {"reads_per_stripe_per_day": 0.5, "seed": 11},
        {"num_racks": 20, "nodes_per_rack": 3, "seed": 3},
    ],
    ids=["piggyback", "distinct-node", "with-reads", "narrow-racks"],
)
def test_batched_equals_scalar_variants(overrides):
    assert_equivalent(dataclasses.replace(BASE, **overrides))


def test_batched_path_actually_engaged():
    """Guard against the fast path silently falling back to scalar."""
    simulation, __ = run_mode(dataclasses.replace(BASE, seed=1), True)
    assert simulation.recovery.batched is True
    # The pattern cache only fills through recover_node_batch.
    assert simulation.recovery._pattern_plans
