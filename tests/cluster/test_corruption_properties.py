"""Property: any single corrupt unit is located exactly and repaired.

For every registered code, whatever stored unit is damaged and wherever
the damage lands, ``Scrubber.locate_corruption`` must name exactly that
unit and ``repair_corrupt_unit`` must restore byte-identical content --
on the checksum-first path and (for the paper's erasure codes) on the
parity-voting fallback path with no registry checksums at all.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.namenode import NameNode
from repro.cluster.placement import DistinctRackPlacement
from repro.cluster.raidnode import RaidNode
from repro.cluster.scrubber import Scrubber
from repro.cluster.topology import Topology
from repro.codes.registry import create_code

#: One parameterisation per registered code family (aliases excluded).
ALL_CODES = [
    ("rs", {"k": 4, "r": 2}),
    ("crs", {"k": 4, "r": 2}),
    ("piggyback", {"k": 4, "r": 2}),
    ("lrc", {"k": 4, "l": 2, "g": 2}),
    ("hitchhiker-xor", {"k": 4, "r": 2}),
    ("hitchhiker-nonxor", {"k": 4, "r": 2}),
    ("replication", {"replicas": 3}),
]

#: Codes whose parity equations double as a corruption oracle.
PARITY_CODES = ALL_CODES[:4]


def build(name, params, seed=13, file_bytes=700):
    code = create_code(name, **params)
    topology = Topology(num_racks=10, nodes_per_rack=2)
    namenode = NameNode(topology, DistinctRackPlacement(topology, seed=seed))
    raidnode = RaidNode(namenode, code)
    data = np.random.default_rng(seed).integers(
        0, 256, size=file_bytes, dtype=np.uint8
    )
    namenode.write_file("f", data, block_size=100)
    entries = raidnode.raid_file("f")
    return namenode, raidnode, entries, data


def damage(namenode, entry, slot, byte_pick, bit_pick):
    block_id = entry.layout.all_block_ids()[slot]
    block = namenode.datanodes[entry.locations[slot]].blocks[block_id]
    offset = byte_pick % block.size
    block.payload[offset] ^= np.uint8(1 << (bit_pick % 8))


def pick_target(entries, stripe_pick, slot_pick):
    entry = entries[stripe_pick % len(entries)]
    real_slots = [
        slot
        for slot, block_id in enumerate(entry.layout.all_block_ids())
        if block_id is not None
    ]
    return entry, real_slots[slot_pick % len(real_slots)]


@pytest.mark.parametrize("name,params", ALL_CODES, ids=[c[0] for c in ALL_CODES])
@settings(max_examples=12, deadline=None)
@given(
    stripe_pick=st.integers(min_value=0, max_value=10**6),
    slot_pick=st.integers(min_value=0, max_value=10**6),
    byte_pick=st.integers(min_value=0, max_value=10**6),
    bit_pick=st.integers(min_value=0, max_value=7),
)
def test_single_corruption_located_and_repaired(
    name, params, stripe_pick, slot_pick, byte_pick, bit_pick
):
    namenode, raidnode, entries, data = build(name, params)
    entry, slot = pick_target(entries, stripe_pick, slot_pick)
    damage(namenode, entry, slot, byte_pick, bit_pick)
    scrubber = Scrubber(raidnode)
    assert scrubber.locate_corruption(entry.layout.stripe_id) == [slot]
    scrubber.repair_corrupt_unit(entry.layout.stripe_id, slot)
    assert np.array_equal(namenode.read_file("f"), data)
    report = scrubber.scrub()
    assert report.corrupt_units_found == 0
    assert report.stripes_clean == report.stripes_checked


@pytest.mark.parametrize(
    "name,params", PARITY_CODES, ids=[c[0] for c in PARITY_CODES]
)
@settings(max_examples=12, deadline=None)
@given(
    stripe_pick=st.integers(min_value=0, max_value=10**6),
    slot_pick=st.integers(min_value=0, max_value=10**6),
    byte_pick=st.integers(min_value=0, max_value=10**6),
    bit_pick=st.integers(min_value=0, max_value=7),
)
def test_parity_fallback_matches_checksum_verdict(
    name, params, stripe_pick, slot_pick, byte_pick, bit_pick
):
    """With the registry checksums gone, the parity oracle alone still
    localises the corruption and the repair still round-trips."""
    namenode, raidnode, entries, data = build(name, params)
    entry, slot = pick_target(entries, stripe_pick, slot_pick)
    for other in entries:
        other.checksums.clear()
    damage(namenode, entry, slot, byte_pick, bit_pick)
    scrubber = Scrubber(raidnode)
    assert scrubber.locate_corruption(entry.layout.stripe_id) == [slot]
    scrubber.repair_corrupt_unit(entry.layout.stripe_id, slot)
    assert np.array_equal(namenode.read_file("f"), data)
