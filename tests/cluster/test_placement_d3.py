"""Unit and property tests for the deterministic d3 placement policy."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import (
    DeterministicRoundRobinPlacement,
    destination_entropy,
    make_placement,
)
from repro.cluster.simulation import WarehouseSimulation
from repro.cluster.topology import Topology
from repro.errors import PlacementError

ENTROPY = destination_entropy(np.random.SeedSequence(4242))


@pytest.fixture
def topo():
    return Topology(num_racks=12, nodes_per_rack=5)


def _policy(topo, seed=3, spares=0):
    return DeterministicRoundRobinPlacement(
        topo, seed=seed, spares_per_rack=spares
    )


class TestSchedule:
    def test_factory_name_and_stateful_flag(self, topo):
        policy = make_placement("d3", topo)
        assert isinstance(policy, DeterministicRoundRobinPlacement)
        assert policy.stateful is True
        assert make_placement("distinct-rack", topo).stateful is False

    def test_deterministic_across_instances(self, topo):
        a = _policy(topo).place_many(40, 9)
        b = _policy(topo).place_many(40, 9)
        assert np.array_equal(a, b)

    def test_seed_changes_schedule(self, topo):
        a = _policy(topo, seed=3).place_many(40, 9)
        b = _policy(topo, seed=4).place_many(40, 9)
        assert not np.array_equal(a, b)

    def test_no_rng_draws(self, topo):
        policy = _policy(topo)
        before = policy.rng.bit_generator.state
        policy.place_many(30, 9)
        policy.place_stripe(9)
        policy.replacement_node([0, 5, 10])
        assert policy.rng.bit_generator.state == before

    def test_stripes_rack_diverse(self, topo):
        matrix = _policy(topo).place_many(50, 12)
        racks = matrix // topo.nodes_per_rack
        for row in racks:
            assert len(set(row.tolist())) == 12

    def test_width_exceeding_racks_rejected(self, topo):
        with pytest.raises(PlacementError):
            _policy(topo).place_stripe(13)
        with pytest.raises(PlacementError):
            _policy(topo).place_many(4, 13)

    def test_place_many_matches_stripe_loop(self, topo):
        a = _policy(topo)
        b = _policy(topo)
        many = a.place_many(25, 7)
        loop = np.array(
            [b.place_stripe(7) for _ in range(25)], dtype=np.int32
        )
        assert np.array_equal(many, loop)

    def test_rack_load_balanced_within_one(self, topo):
        # The round-robin schedule's construction guarantee.
        for width in (5, 9, 12):
            matrix = _policy(topo).place_many(37, width)
            load = np.bincount(
                (matrix // topo.nodes_per_rack).ravel(),
                minlength=topo.num_racks,
            )
            assert load.max() - load.min() <= 1

    def test_spares_never_hold_stripes(self, topo):
        matrix = _policy(topo, spares=2).place_many(60, 10)
        assert np.all(matrix % topo.nodes_per_rack < 3)


class TestReplacement:
    def test_least_loaded_rack_wins(self, topo):
        policy = _policy(topo)
        policy.place_many(20, 9)  # near-uniform load
        # Drain one rack by debiting it through commits of other picks:
        # simpler -- ask for a replacement and verify the chosen rack
        # had the minimum load among racks with no excluded node.
        load_before = policy._load.copy()
        exclude = [0, 5, 10]
        excluded_racks = {n // topo.nodes_per_rack for n in exclude}
        node = policy.replacement_node(exclude)
        rack = node // topo.nodes_per_rack
        assert rack not in excluded_racks
        eligible = [
            r for r in range(topo.num_racks) if r not in excluded_racks
        ]
        assert load_before[rack] == min(load_before[r] for r in eligible)
        assert policy._load[rack] == load_before[rack] + 1

    def test_repairs_rotate_within_rack(self, topo):
        policy = _policy(topo, spares=2)
        # Exclude all racks but 0 so every pick lands in rack 0; the
        # keyed cursor must alternate between its two spare slots.
        exclude = [
            r * topo.nodes_per_rack for r in range(1, topo.num_racks)
        ]
        picks = [policy.replacement_node(exclude) for _ in range(4)]
        assert picks[0] != picks[1]
        assert picks[:2] == picks[2:]
        assert all(policy.is_spare(p) for p in picks)

    def test_hashed_draw_debits_old_holder(self, topo):
        policy = _policy(topo)
        policy.place_many(12, 12)
        row = policy.place_stripe(12)
        load_total = int(policy._load.sum())
        uids = np.asarray([3], dtype=np.int64)  # old holder = row[3 % 12]
        old = row[3 % 12]
        policy.hashed_replacement_nodes(
            np.asarray([row], dtype=np.int64), [], uids, 0, ENTROPY
        )
        # One credit (destination) and one debit (old holder): total
        # stored load is conserved across a relocation.
        assert int(policy._load.sum()) == load_total
        assert policy._load[old // topo.nodes_per_rack] >= 0

    def test_commit_false_is_a_pure_peek(self, topo):
        policy = _policy(topo)
        policy.place_many(15, 9)
        row = np.asarray([policy.place_stripe(9)], dtype=np.int64)
        uids = np.asarray([0], dtype=np.int64)
        state = policy.state_dict()
        peek1 = policy.hashed_replacement_nodes(
            row, [], uids, 5, ENTROPY, commit=False
        )
        peek2 = policy.hashed_replacement_nodes(
            row, [], uids, 5, ENTROPY, commit=False
        )
        assert policy.state_dict() == state
        committed = policy.hashed_replacement_nodes(
            row, [], uids, 5, ENTROPY, commit=True
        )
        assert peek1.tolist() == peek2.tolist() == committed.tolist()
        assert policy.state_dict() != state

    def test_no_free_rack_prefers_spares(self):
        topo = Topology(num_racks=3, nodes_per_rack=4)
        policy = _policy(topo, spares=1)
        exclude = [0, 4, 8]  # one data node per rack
        node = policy.replacement_node(exclude)
        assert policy.is_spare(node)
        spares = [n for n in range(topo.num_nodes) if policy.is_spare(n)]
        fallback = policy.replacement_node(exclude + spares)
        assert not policy.is_spare(fallback)
        assert fallback not in exclude

    def test_everything_excluded_raises(self):
        topo = Topology(num_racks=2, nodes_per_rack=2)
        with pytest.raises(PlacementError):
            _policy(topo).replacement_node(list(range(4)))

    def test_state_dict_roundtrip(self, topo):
        a = _policy(topo)
        a.place_many(20, 9)
        a.replacement_node([0, 5])
        state = a.state_dict()
        b = _policy(topo)
        b.restore(state)
        assert b.state_dict() == state
        # Continuations agree draw for draw.
        assert a.place_stripe(9) == b.place_stripe(9)
        for _ in range(5):
            assert a.replacement_node([1, 7]) == b.replacement_node([1, 7])


class TestDiversityUnderRepairs:
    """Stripes stay rack-diverse after a simulated lifetime of repairs."""

    @pytest.mark.parametrize("policy", ["distinct-rack", "d3"])
    def test_final_placements_rack_diverse(self, policy):
        config = ClusterConfig(
            num_racks=16,
            nodes_per_rack=6,
            stripes_per_node=8.0,
            days=5.0,
            seed=31,
            destination_draws="hashed",
            placement_policy=policy,
            code_params={"k": 6, "r": 2},
        )
        sim = WarehouseSimulation(config)
        result = sim.run()
        assert result.stats.blocks_recovered > 0  # repairs actually ran
        racks = np.asarray(sim.store.placement) // config.nodes_per_rack
        distinct = np.array(
            [len(set(row.tolist())) for row in racks]
        )
        assert np.all(distinct == racks.shape[1])

    def test_d3_keeps_rack_load_flat_under_repairs(self):
        config = ClusterConfig(
            num_racks=16,
            nodes_per_rack=6,
            stripes_per_node=8.0,
            days=5.0,
            seed=31,
            destination_draws="hashed",
            placement_policy="d3",
            code_params={"k": 6, "r": 2},
        )
        sim = WarehouseSimulation(config)
        result = sim.run()
        assert result.stats.blocks_recovered > 0
        racks = np.asarray(sim.store.placement) // config.nodes_per_rack
        load = np.bincount(racks.ravel(), minlength=config.num_racks)
        assert load.max() / load.mean() <= 1.1
