"""Recovery with corrupt survivors: scalar/batched parity, accounting.

Marking units corrupt must route repair plans around them identically
on the scalar and vectorised recovery paths, and must be metered in
``RecoveryStats.corrupt_survivors_excluded`` -- without perturbing the
default (chaos-off) simulation in any way.
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation
from repro.errors import ConfigError

BASE = dict(
    num_racks=20, nodes_per_rack=5, stripes_per_node=20.0, days=2.0
)


def run(**overrides):
    return WarehouseSimulation(ClusterConfig(**BASE, **overrides)).run()


class TestScalarBatchedParity:
    def test_identical_results_with_corrupt_units(self):
        batched = run(
            chaos_corrupt_units=10, chaos_node_flaps=2, batched_recovery=True
        )
        scalar = run(
            chaos_corrupt_units=10, chaos_node_flaps=2, batched_recovery=False
        )
        assert batched.blocks_recovered_per_day == scalar.blocks_recovered_per_day
        assert batched.cross_rack_bytes_per_day == scalar.cross_rack_bytes_per_day
        assert (
            batched.stats.corrupt_survivors_excluded
            == scalar.stats.corrupt_survivors_excluded
        )
        assert batched.stats.bytes_downloaded == scalar.stats.bytes_downloaded

    def test_exclusions_are_counted(self):
        result = run(chaos_corrupt_units=10)
        assert result.stats.corrupt_survivors_excluded > 0

    def test_flaps_add_unavailability_events(self):
        quiet = run()
        flapped = run(chaos_node_flaps=5)
        assert sum(flapped.unavailability_events_per_day) > sum(
            quiet.unavailability_events_per_day
        )


class TestChaosOffIsInert:
    def test_defaults_identical_to_chaos_zero(self):
        default = run()
        explicit = run(chaos_seed=None, chaos_node_flaps=0, chaos_corrupt_units=0)
        assert default.blocks_recovered_per_day == explicit.blocks_recovered_per_day
        assert default.cross_rack_bytes_per_day == explicit.cross_rack_bytes_per_day
        assert default.stats.corrupt_survivors_excluded == 0

    def test_chaos_runs_are_deterministic(self):
        first = run(chaos_corrupt_units=5, chaos_node_flaps=1)
        second = run(chaos_corrupt_units=5, chaos_node_flaps=1)
        assert first.blocks_recovered_per_day == second.blocks_recovered_per_day
        assert first.stats.bytes_downloaded == second.stats.bytes_downloaded

    def test_chaos_seed_changes_the_fault_draw(self):
        sim_a = WarehouseSimulation(
            ClusterConfig(**BASE, chaos_corrupt_units=10, chaos_seed=1)
        )
        sim_b = WarehouseSimulation(
            ClusterConfig(**BASE, chaos_corrupt_units=10, chaos_seed=2)
        )
        mask_a = sim_a.recovery._corrupt_mask
        mask_b = sim_b.recovery._corrupt_mask
        assert mask_a is not None and mask_b is not None
        assert (mask_a != mask_b).any()


class TestValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(**BASE, chaos_node_flaps=-1)
        with pytest.raises(ConfigError):
            ClusterConfig(**BASE, chaos_corrupt_units=-1)
