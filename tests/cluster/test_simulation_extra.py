"""Additional simulation-level behaviours."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation


def small(**overrides):
    defaults = dict(
        num_racks=20, nodes_per_rack=5, stripes_per_node=15.0, days=3.0, seed=31
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestCodeIndependentStreams:
    def test_placements_identical_across_codes(self):
        """Same seed + same stripe width => same placement matrices."""
        rs_sim = WarehouseSimulation(small())
        pb_sim = WarehouseSimulation(small().with_code("piggyback"))
        assert np.array_equal(rs_sim.store.placement, pb_sim.store.placement)
        assert np.array_equal(rs_sim.store.unit_sizes, pb_sim.store.unit_sizes)

    def test_failure_events_identical_across_codes(self):
        rs = WarehouseSimulation(small()).run()
        pb = WarehouseSimulation(small().with_code("piggyback")).run()
        assert (
            rs.unavailability_events_per_day == pb.unavailability_events_per_day
        )
        assert rs.stats.flagged_events_recovered == pb.stats.flagged_events_recovered


class TestWorkloadIntegration:
    def test_reads_metered_separately_from_recovery(self):
        config = small(reads_per_stripe_per_day=1.0)
        result = WarehouseSimulation(config).run()
        assert result.read_stats is not None
        assert result.read_stats.reads > 0
        meter = result.meter
        assert meter.bytes_by_purpose.get("read", 0) > 0
        # Fig. 3b accounting only ever counts recovery bytes.
        assert result.stats.bytes_downloaded == meter.bytes_by_purpose[
            "recovery"
        ]

    def test_no_workload_no_read_stats(self):
        result = WarehouseSimulation(small()).run()
        assert result.read_stats is None

    def test_degraded_reads_occur_during_outages(self):
        config = small(
            reads_per_stripe_per_day=3.0,
            mean_downtime_seconds=20_000.0,  # long outages: more exposure
        )
        result = WarehouseSimulation(config).run()
        assert result.read_stats.degraded_reads > 0
        assert 0 < result.read_stats.degraded_fraction < 0.2


class TestResultProperties:
    def test_total_cross_rack_scaled(self):
        config = small()
        result = WarehouseSimulation(config).run()
        assert result.total_cross_rack_bytes_scaled == pytest.approx(
            result.meter.cross_rack_bytes * config.block_scale
        )

    def test_series_scaling_consistent(self):
        config = small()
        result = WarehouseSimulation(config).run()
        assert sum(result.cross_rack_bytes_per_day_scaled) <= (
            result.total_cross_rack_bytes_scaled + 1e-6
        )

    def test_zero_recovered_guard(self):
        """A one-day run with no triggered recoveries reports 0 cleanly."""
        config = small(days=1.0, recovery_trigger_fraction=0.0)
        result = WarehouseSimulation(config).run()
        assert result.stats.blocks_recovered == 0
        assert result.mean_bytes_per_recovered_block == 0.0
