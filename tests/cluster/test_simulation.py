"""Tests for the assembled warehouse simulation."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation, run_code_comparison


def small_config(**overrides):
    defaults = dict(
        num_racks=20,
        nodes_per_rack=5,
        stripes_per_node=20.0,
        days=3.0,
        seed=77,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestWarehouseSimulation:
    def test_series_lengths(self):
        result = WarehouseSimulation(small_config()).run()
        assert len(result.unavailability_events_per_day) == 3
        assert len(result.blocks_recovered_per_day) == 3
        assert len(result.cross_rack_bytes_per_day) == 3

    def test_some_activity_happens(self):
        result = WarehouseSimulation(small_config()).run()
        assert sum(result.unavailability_events_per_day) > 0
        assert result.stats.blocks_recovered > 0
        assert result.meter.cross_rack_bytes > 0

    def test_deterministic_same_seed(self):
        a = WarehouseSimulation(small_config()).run()
        b = WarehouseSimulation(small_config()).run()
        assert a.unavailability_events_per_day == b.unavailability_events_per_day
        assert a.blocks_recovered_per_day == b.blocks_recovered_per_day
        assert a.cross_rack_bytes_per_day == b.cross_rack_bytes_per_day

    def test_different_seed_differs(self):
        a = WarehouseSimulation(small_config()).run()
        b = WarehouseSimulation(small_config(seed=78)).run()
        assert (
            a.cross_rack_bytes_per_day != b.cross_rack_bytes_per_day
            or a.blocks_recovered_per_day != b.blocks_recovered_per_day
        )

    def test_all_recovery_traffic_is_cross_rack(self):
        """Distinct-rack placement + fresh-rack destinations: every
        recovery byte crosses racks (the paper's core observation)."""
        result = WarehouseSimulation(small_config()).run()
        assert result.meter.intra_rack_bytes == 0
        assert result.meter.cross_rack_bytes == result.stats.bytes_downloaded

    def test_scaled_properties(self):
        config = small_config()
        result = WarehouseSimulation(config).run()
        scale = config.block_scale
        assert result.median_blocks_recovered_scaled == pytest.approx(
            result.median_blocks_recovered * scale
        )
        assert result.median_cross_rack_bytes_scaled == pytest.approx(
            result.median_cross_rack_bytes * scale
        )

    def test_mean_bytes_per_block_in_rs_range(self):
        """Under (10,4) RS each recovery reads 10 stripe-width units."""
        config = small_config()
        result = WarehouseSimulation(config).run()
        lower = 10 * config.min_tail_block_fraction * config.block_size_bytes
        upper = 10 * config.block_size_bytes
        assert lower <= result.mean_bytes_per_recovered_block <= upper

    def test_degraded_fractions_sum_to_one(self):
        result = WarehouseSimulation(small_config()).run()
        fractions = result.degraded_fractions
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["one"] > 0.5  # singles dominate


class TestCodeComparison:
    def test_identical_failure_history(self):
        config = small_config()
        results = run_code_comparison(config, ["rs", "piggyback"])
        rs, pb = results["rs"], results["piggyback"]
        assert (
            rs.unavailability_events_per_day == pb.unavailability_events_per_day
        )
        assert rs.blocks_recovered_per_day == pb.blocks_recovered_per_day

    def test_piggyback_saves_cross_rack_bytes(self):
        config = small_config(days=4.0)
        results = run_code_comparison(config, ["rs", "piggyback"])
        rs_bytes = results["rs"].meter.cross_rack_bytes
        pb_bytes = results["piggyback"].meter.cross_rack_bytes
        saving = 1 - pb_bytes / rs_bytes
        # All-node average saving for (10,4) design 1 is 23.6%; allow a
        # band for which nodes actually failed.
        assert 0.15 < saving < 0.32

    def test_per_code_params_override(self):
        config = small_config()
        results = run_code_comparison(
            config,
            ["rs", "lrc"],
            lrc={"k": 10, "l": 2, "g": 2},
        )
        assert results["lrc"].code_name == "LRC(10,2,2)"
