"""Tests for the recovery scheduler and its byte accounting."""

import numpy as np
import pytest

from repro.cluster.blockmap import StripeStore
from repro.cluster.datanode import NodeStateTable
from repro.cluster.events import EventQueue
from repro.cluster.network import TrafficMeter
from repro.cluster.placement import DistinctRackPlacement
from repro.cluster.recovery import RecoveryService
from repro.cluster.topology import Topology
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import RepairError


def make_service(code, num_racks=20, nodes_per_rack=3, unit_size=1000, seed=5):
    topology = Topology(num_racks, nodes_per_rack)
    placement = DistinctRackPlacement(topology, seed=seed)
    placements = placement.place_many(4, code.n)
    store = StripeStore(placements, np.full(4, unit_size))
    state = NodeStateTable(topology.num_nodes)
    meter = TrafficMeter(topology, record_transfers=True)
    service = RecoveryService(
        store=store,
        state=state,
        placement=placement,
        code=code,
        meter=meter,
        rng=np.random.default_rng(seed),
        trigger_fraction=1.0,
    )
    return service


class TestRecoverUnit:
    def test_rs_recovery_bytes(self):
        service = make_service(ReedSolomonCode(10, 4))
        node = int(service.store.placement[0, 3])
        service.state.mark_down(node, 0.0)
        service.store.mark_node_missing(node)
        assert service.recover_unit(0, 3, time=60.0)
        # k units of 1000 bytes, all cross-rack (distinct-rack placement).
        assert service.meter.cross_rack_bytes == 10 * 1000
        assert service.stats.blocks_recovered == 1
        assert service.stats.bytes_downloaded == 10 * 1000

    def test_piggyback_recovery_cheaper(self):
        rs_service = make_service(ReedSolomonCode(10, 4))
        pb_service = make_service(PiggybackedRSCode(10, 4))
        for service in (rs_service, pb_service):
            node = int(service.store.placement[0, 0])
            service.state.mark_down(node, 0.0)
            service.store.mark_node_missing(node)
            service.recover_unit(0, 0, time=60.0)
        assert (
            pb_service.meter.cross_rack_bytes
            < rs_service.meter.cross_rack_bytes
        )
        assert pb_service.meter.cross_rack_bytes == 7 * 1000  # (10+4)/2 units

    def test_relocation_after_recovery(self):
        service = make_service(ReedSolomonCode(10, 4))
        node = int(service.store.placement[1, 2])
        service.state.mark_down(node, 0.0)
        service.store.mark_node_missing(node)
        service.recover_unit(1, 2, time=0.0)
        new_node = int(service.store.placement[1, 2])
        assert new_node != node
        assert not service.store.missing[1, 2]
        # Destination is never a node of the same stripe or a down node.
        assert new_node not in (
            set(service.store.placement[1].tolist()) - {new_node}
        )
        assert not service.state.is_down(new_node)

    def test_degraded_histogram(self):
        service = make_service(ReedSolomonCode(10, 4))
        nodes = [int(service.store.placement[0, s]) for s in (0, 1)]
        for node in nodes:
            service.state.mark_down(node, 0.0)
            service.store.mark_node_missing(node)
        service.recover_unit(0, 0, time=0.0)
        # At recovery time the stripe had 2 missing units.
        assert service.stats.degraded_histogram[2] == 1

    def test_unrecoverable_counted_not_raised(self):
        service = make_service(ReedSolomonCode(10, 4))
        # Take down 5 units of stripe 0: only 9 survivors < k.
        for slot in range(5):
            node = int(service.store.placement[0, slot])
            service.state.mark_down(node, 0.0)
            service.store.mark_node_missing(node)
        assert not service.recover_unit(0, 0, time=0.0)
        assert service.stats.unrecoverable_units == 1
        assert service.stats.blocks_recovered == 0

    def test_recovering_healthy_unit_rejected(self):
        service = make_service(ReedSolomonCode(10, 4))
        with pytest.raises(RepairError):
            service.recover_unit(0, 0, time=0.0)

    def test_plan_cache_hits(self):
        # Plans are memoised on the code instance, shared by every
        # service protecting stripes with that code.
        service = make_service(ReedSolomonCode(10, 4))
        available = tuple(range(1, 14))
        first = service._plan_for(0, available)
        second = service._plan_for(0, available)
        assert first is second
        cache = service.code.__dict__["_repair_plan_cache"]
        assert len(cache) == 1
        service._plan_for(1, tuple(i for i in range(14) if i != 1))
        assert len(cache) == 2


class TestOnNodeFlagged:
    def test_recovers_all_units_of_node(self):
        service = make_service(ReedSolomonCode(10, 4))
        # Find a node holding at least one unit.
        node = int(service.store.placement[0, 0])
        expected = len(service.store.units_on_node(node))
        service.state.mark_down(node, 0.0)
        service.store.mark_node_missing(node)
        service.on_node_flagged(EventQueue(), node, time=900.0)
        assert service.stats.blocks_recovered == expected
        assert service.stats.flagged_events_recovered == 1

    def test_trigger_fraction_zero_skips(self):
        service = make_service(ReedSolomonCode(10, 4))
        service.trigger_fraction = 0.0
        node = int(service.store.placement[0, 0])
        service.state.mark_down(node, 0.0)
        service.store.mark_node_missing(node)
        service.on_node_flagged(EventQueue(), node, time=900.0)
        assert service.stats.blocks_recovered == 0
        assert service.stats.flagged_events_skipped == 1
        # Units stay missing until the node returns.
        assert service.store.missing.any()

    def test_daily_blocks_series(self):
        service = make_service(ReedSolomonCode(10, 4))
        node = int(service.store.placement[0, 0])
        count = len(service.store.units_on_node(node))
        service.state.mark_down(node, 0.0)
        service.store.mark_node_missing(node)
        service.on_node_flagged(EventQueue(), node, time=90_000.0)  # day 1
        assert service.stats.daily_blocks_series(2) == [0, count]
