"""Tests for calibrated trace generation."""

import numpy as np
import pytest

from repro.cluster.config import SECONDS_PER_DAY, ClusterConfig
from repro.cluster.traces import (
    daily_event_counts,
    expected_mean_unit_size,
    generate_unavailability_events,
    stripe_unit_sizes,
)
from repro.errors import TraceError


class TestDailyEventCounts:
    def test_length_and_positivity(self):
        rng = np.random.default_rng(0)
        counts = daily_event_counts(rng, 30, 52.0, 0.5, 0.05, 4.0)
        assert counts.shape == (30,)
        assert (counts >= 1).all()

    def test_median_near_target(self):
        rng = np.random.default_rng(0)
        counts = daily_event_counts(rng, 2000, 52.0, 0.5, 0.0, 1.0)
        assert 45 <= np.median(counts) <= 60

    def test_spikes_raise_tail(self):
        rng = np.random.default_rng(0)
        calm = daily_event_counts(rng, 500, 52.0, 0.3, 0.0, 1.0)
        rng = np.random.default_rng(0)
        spiky = daily_event_counts(rng, 500, 52.0, 0.3, 0.1, 5.0)
        assert spiky.max() > calm.max()

    def test_invalid_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TraceError):
            daily_event_counts(rng, 0, 52.0, 0.5, 0.0, 1.0)
        with pytest.raises(TraceError):
            daily_event_counts(rng, 5, -1.0, 0.5, 0.0, 1.0)


class TestUnavailabilityEvents:
    def test_event_fields(self):
        config = ClusterConfig(days=3.0)
        rng = np.random.default_rng(1)
        events = generate_unavailability_events(rng, config)
        assert events == sorted(events, key=lambda e: e.time)
        for event in events:
            assert 0 <= event.node < config.num_nodes
            assert 0.0 <= event.time < 3.0 * SECONDS_PER_DAY
            assert event.duration > config.unavailability_threshold_seconds

    def test_day_attribute(self):
        config = ClusterConfig(days=2.0)
        rng = np.random.default_rng(1)
        events = generate_unavailability_events(rng, config)
        for event in events:
            assert event.day == int(event.time // SECONDS_PER_DAY)

    def test_deterministic_for_seeded_rng(self):
        config = ClusterConfig(days=2.0)
        a = generate_unavailability_events(np.random.default_rng(9), config)
        b = generate_unavailability_events(np.random.default_rng(9), config)
        assert a == b


class TestStripeUnitSizes:
    def test_range(self):
        config = ClusterConfig()
        sizes = stripe_unit_sizes(np.random.default_rng(0), 5000, config)
        assert sizes.shape == (5000,)
        assert (sizes >= 1).all()
        assert (sizes <= config.block_size_bytes).all()

    def test_mean_matches_analytic(self):
        config = ClusterConfig()
        sizes = stripe_unit_sizes(np.random.default_rng(0), 100_000, config)
        expected = expected_mean_unit_size(config)
        assert sizes.mean() == pytest.approx(expected, rel=0.02)

    def test_calibration_gives_paper_ratio(self):
        """Mean RS recovery transfer ~= 1.9 GB (180 TB / 95.5k blocks)."""
        config = ClusterConfig()
        mean_transfer = 10 * expected_mean_unit_size(config)
        assert 1.7e9 < mean_transfer < 2.2e9

    def test_full_block_fraction_respected(self):
        config = ClusterConfig(full_block_fraction=1.0)
        sizes = stripe_unit_sizes(np.random.default_rng(0), 100, config)
        assert (sizes == config.block_size_bytes).all()

    def test_invalid_count(self):
        with pytest.raises(TraceError):
            stripe_unit_sizes(np.random.default_rng(0), 0, ClusterConfig())
