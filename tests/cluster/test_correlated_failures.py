"""Tests for correlated (batch) failure events."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation
from repro.cluster.traces import generate_unavailability_events
from repro.errors import ConfigError


class TestBatchGeneration:
    def test_batches_share_a_timestamp(self):
        config = ClusterConfig(
            days=20.0,
            correlated_event_probability=1.0,  # one batch every day
            correlated_batch_size=10,
        )
        events = generate_unavailability_events(
            np.random.default_rng(3), config
        )
        by_time = {}
        for event in events:
            by_time.setdefault(event.time, []).append(event)
        batch_instants = [
            group for group in by_time.values() if len(group) >= 10
        ]
        assert len(batch_instants) == 20  # one per day
        for group in batch_instants:
            nodes = [e.node for e in group]
            assert len(set(nodes)) == len(nodes)  # distinct machines

    def test_zero_probability_means_no_batches(self):
        config = ClusterConfig(days=20.0, correlated_event_probability=0.0)
        events = generate_unavailability_events(
            np.random.default_rng(3), config
        )
        by_time = {}
        for event in events:
            by_time.setdefault(event.time, []).append(event)
        assert max(len(group) for group in by_time.values()) == 1

    def test_batch_size_capped_at_cluster(self):
        config = ClusterConfig(
            num_racks=20,
            nodes_per_rack=2,
            days=3.0,
            correlated_event_probability=1.0,
            correlated_batch_size=500,
        )
        events = generate_unavailability_events(
            np.random.default_rng(3), config
        )
        assert all(0 <= e.node < 40 for e in events)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(correlated_event_probability=1.5)
        with pytest.raises(ConfigError):
            ClusterConfig(correlated_batch_size=0)


class TestBatchEffects:
    def test_batches_create_multiply_degraded_stripes(self):
        base = dict(
            num_racks=40, nodes_per_rack=5, stripes_per_node=20.0,
            days=6.0, seed=13,
        )
        quiet = WarehouseSimulation(
            ClusterConfig(**base, correlated_event_probability=0.0)
        ).run()
        batchy = WarehouseSimulation(
            ClusterConfig(
                **base,
                correlated_event_probability=0.5,
                correlated_batch_size=30,
            )
        ).run()
        def multi_fraction(result):
            histogram = result.degraded_histogram
            total = sum(histogram.values())
            return 1.0 - histogram.get(1, 0) / total if total else 0.0

        assert multi_fraction(batchy) > multi_fraction(quiet)

    def test_non_mds_code_survives_batches(self):
        """LRC hits unrecoverable patterns under batches; the recovery
        service must count them, not crash."""
        config = ClusterConfig(
            num_racks=20, nodes_per_rack=5, stripes_per_node=10.0,
            days=4.0, seed=13,
            code_name="lrc", code_params={"k": 10, "l": 2, "g": 2},
            correlated_event_probability=0.8,
            correlated_batch_size=30,
        )
        result = WarehouseSimulation(config).run()
        assert result.stats.unrecoverable_units > 0
        assert result.stats.blocks_recovered > 0
