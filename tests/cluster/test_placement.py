"""Tests for placement policies."""

import numpy as np
import pytest

from repro.cluster.placement import (
    DistinctNodePlacement,
    DistinctRackPlacement,
    make_placement,
)
from repro.cluster.topology import Topology
from repro.errors import PlacementError


@pytest.fixture
def topo():
    return Topology(num_racks=20, nodes_per_rack=5)


class TestDistinctRackPlacement:
    def test_distinct_racks(self, topo):
        policy = DistinctRackPlacement(topo, seed=1)
        for _ in range(50):
            nodes = policy.place_stripe(14)
            racks = [topo.rack_of(n) for n in nodes]
            assert len(set(racks)) == 14

    def test_width_exceeding_racks_rejected(self, topo):
        with pytest.raises(PlacementError):
            DistinctRackPlacement(topo, seed=1).place_stripe(21)

    def test_deterministic_with_seed(self, topo):
        a = DistinctRackPlacement(topo, seed=7).place_stripe(5)
        b = DistinctRackPlacement(topo, seed=7).place_stripe(5)
        assert a == b

    def test_place_many_shape(self, topo):
        matrix = DistinctRackPlacement(topo, seed=1).place_many(10, 14)
        assert matrix.shape == (10, 14)
        assert matrix.dtype == np.int32

    def test_placements_vary(self, topo):
        policy = DistinctRackPlacement(topo, seed=1)
        assert policy.place_stripe(5) != policy.place_stripe(5)


class TestDistinctNodePlacement:
    def test_distinct_nodes(self, topo):
        policy = DistinctNodePlacement(topo, seed=1)
        nodes = policy.place_stripe(30)
        assert len(set(nodes)) == 30

    def test_can_exceed_rack_count(self, topo):
        policy = DistinctNodePlacement(topo, seed=1)
        assert len(policy.place_stripe(25)) == 25

    def test_width_exceeding_nodes_rejected(self, topo):
        with pytest.raises(PlacementError):
            DistinctNodePlacement(topo, seed=1).place_stripe(101)


class TestReplacementNode:
    def test_prefers_fresh_rack(self, topo):
        policy = DistinctRackPlacement(topo, seed=3)
        stripe_nodes = policy.place_stripe(14)
        used_racks = {topo.rack_of(n) for n in stripe_nodes}
        for _ in range(20):
            replacement = policy.replacement_node(stripe_nodes)
            assert replacement not in stripe_nodes
            assert topo.rack_of(replacement) not in used_racks

    def test_falls_back_when_no_fresh_rack(self):
        topo = Topology(num_racks=3, nodes_per_rack=2)
        policy = DistinctRackPlacement(topo, seed=3)
        stripe_nodes = policy.place_stripe(3)  # uses every rack
        replacement = policy.replacement_node(stripe_nodes)
        assert replacement not in stripe_nodes

    def test_no_candidate_raises(self):
        topo = Topology(num_racks=2, nodes_per_rack=1)
        policy = DistinctRackPlacement(topo, seed=0)
        with pytest.raises(PlacementError):
            policy.replacement_node([0, 1])


class TestFactory:
    def test_known_names(self, topo):
        assert isinstance(
            make_placement("distinct-rack", topo), DistinctRackPlacement
        )
        assert isinstance(
            make_placement("distinct-node", topo), DistinctNodePlacement
        )

    def test_unknown_name(self, topo):
        with pytest.raises(PlacementError):
            make_placement("best-fit", topo)
