"""Golden-trajectory pins for the placement/recovery rng streams.

``goldens/placement_goldens.json`` was generated from the codebase
*before* the spare-pool fallback and d3 work landed.  Every pinned
config has ``hot_spares_per_rack=0``, where the fallback rewrite and
the vectorised ``place_many`` must reproduce the historical draws
bit-for-bit -- placement matrix hash, recovery counters, and
per-day traffic alike.  A mismatch here means the rng stream moved.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation

GOLDENS = json.loads(
    (Path(__file__).parent / "goldens" / "placement_goldens.json").read_text()
)


def _fingerprint(config: ClusterConfig) -> dict:
    sim = WarehouseSimulation(config)
    result = sim.run()
    stats, meter = result.stats, result.meter
    return {
        "blocks_recovered": int(stats.blocks_recovered),
        "bytes_downloaded": int(stats.bytes_downloaded),
        "degraded_histogram": {
            str(k): int(v)
            for k, v in sorted(stats.degraded_histogram.items())
        },
        "unrecoverable_units": int(stats.unrecoverable_units),
        "flagged_events_recovered": int(stats.flagged_events_recovered),
        "flagged_events_skipped": int(stats.flagged_events_skipped),
        "spare_placements": int(stats.spare_placements),
        "total_bytes": int(meter.total_bytes),
        "cross_rack_bytes": int(meter.cross_rack_bytes),
        "cross_rack_by_day": {
            str(k): int(v)
            for k, v in sorted(meter.cross_rack_bytes_by_day.items())
        },
        "placements_sha1": hashlib.sha1(
            sim.store.placement.astype("int64").tobytes()
        ).hexdigest(),
    }


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_spare_free_trajectory_pinned(name):
    golden = GOLDENS[name]
    config = ClusterConfig(**golden["config"])
    assert config.hot_spares_per_rack == 0
    assert _fingerprint(config) == golden["fingerprint"]
