"""The public API surface: everything advertised must work as documented."""

import importlib

import numpy as np
import pytest

import repro


class TestPublicExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_headline_workflow(self):
        """The README quickstart, verbatim in spirit."""
        data = np.random.default_rng(0).integers(
            0, 256, size=(10, 1 << 10), dtype=np.uint8
        )
        rs = repro.ReedSolomonCode(10, 4)
        pb = repro.PiggybackedRSCode(10, 4)
        stripe = pb.encode(data)
        unit, downloaded = pb.execute_repair(
            0, {i: stripe[i] for i in range(1, 14)}
        )
        assert (unit == stripe[0]).all()
        assert downloaded < rs.k * (1 << 10)

    def test_registry_entry_points(self):
        for name in ("rs", "piggyback", "lrc", "replication", "crs",
                     "hitchhiker-xor"):
            assert name in repro.available_codes()

    def test_error_hierarchy(self):
        from repro.errors import (
            CodeConstructionError,
            DecodingError,
            FieldError,
            RepairError,
            ReproError,
            SimulationError,
        )

        for exc in (CodeConstructionError, DecodingError, FieldError,
                    RepairError, SimulationError):
            assert issubclass(exc, ReproError)

    def test_subpackages_importable(self):
        for module in (
            "repro.gf",
            "repro.codes",
            "repro.striping",
            "repro.cluster",
            "repro.analysis",
            "repro.experiments",
            "repro.cli",
        ):
            importlib.import_module(module)


class TestCrossPackageConsistency:
    def test_paper_targets_match_analysis_defaults(self):
        from repro.analysis.capacity import OperatingPoint
        from repro.cluster.config import PAPER_TARGETS

        point = OperatingPoint()
        assert point.recovery_bytes_per_day == pytest.approx(
            PAPER_TARGETS.median_cross_rack_bytes_per_day
        )

    def test_experiment_ids_cover_design_doc(self):
        from repro.experiments import available_experiments

        ids = set(available_experiments())
        documented = {
            "fig1", "fig2", "fig3a", "fig3b", "fig4",
            "tab_missing", "tab_savings", "tab_traffic", "tab_rectime",
            "tab_mttdl", "abl_groups", "abl_codes", "abl_threshold",
            "abl_kr", "ext_bound", "ext_capacity", "ext_degraded",
            "ext_raiding", "ext_latency", "ext_uplink",
        }
        assert documented <= ids
