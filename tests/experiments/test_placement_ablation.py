"""Tests for the placement-policy ablation."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("abl_placement", days=4.0)


class TestPlacementAblation:
    def test_both_claims_hold(self, result):
        for row in result.paper_rows:
            assert row["measured"] is True

    def test_distinct_rack_nearly_all_cross_rack(self, result):
        rows = {row["placement"]: row for row in result.data["rows"]}
        assert rows["distinct-rack"]["cross_rack_fraction_%"] > 97.0

    def test_distinct_node_strictly_more_local(self, result):
        rows = {row["placement"]: row for row in result.data["rows"]}
        assert (
            rows["distinct-node"]["cross_rack_fraction_%"]
            < rows["distinct-rack"]["cross_rack_fraction_%"]
        )

    def test_production_config_is_exactly_all_cross_rack(self):
        """At 100 racks the production policy yields 100% cross-rack
        (asserted independently in the simulation invariants too)."""
        from repro.cluster.config import ClusterConfig
        from repro.cluster.simulation import WarehouseSimulation

        config = ClusterConfig(
            days=2.0, stripes_per_node=10.0, seed=3
        )
        result = WarehouseSimulation(config).run()
        assert result.meter.intra_rack_bytes == 0
