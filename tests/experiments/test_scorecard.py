"""Tests for the self-grading scorecard."""

import pytest

from repro.experiments.scorecard import (
    ScoreRow,
    grade_row,
    scorecard,
    summarize,
)


class TestGradeRow:
    def test_boolean_pass_and_fail(self):
        assert grade_row("x", {"metric": "m", "paper": True,
                               "measured": True}).status == "pass"
        assert grade_row("x", {"metric": "m", "paper": True,
                               "measured": False}).status == "fail"

    def test_measured_bool_against_prose_paper(self):
        assert grade_row("x", {"metric": "m", "paper": "implied",
                               "measured": True}).status == "pass"
        assert grade_row("x", {"metric": "m", "paper": "implied",
                               "measured": False}).status == "fail"

    def test_numeric_within_band(self):
        assert grade_row("x", {"metric": "m", "paper": "~95,500",
                               "measured": 98_739}).status == "pass"
        assert grade_row("x", {"metric": "m", "paper": 100,
                               "measured": 1000}).status == "fail"

    def test_greater_than_claims(self):
        assert grade_row("x", {"metric": "m", "paper": "> 180",
                               "measured": 201.0}).status == "pass"
        assert grade_row("x", {"metric": "m", "paper": "> 180",
                               "measured": 20.0}).status == "fail"

    def test_prose_paper_cell_is_informational(self):
        row = grade_row(
            "x",
            {"metric": "m", "paper": "d/(d-k+1) [cut-set]", "measured": 3.25},
        )
        assert row.status == "info"

    def test_unparseable_measured_is_informational(self):
        row = grade_row("x", {"metric": "m", "paper": 5, "measured": "n/a"})
        assert row.status == "info"

    def test_zero_paper_value(self):
        assert grade_row("x", {"metric": "m", "paper": 0,
                               "measured": 0}).status == "pass"
        assert grade_row("x", {"metric": "m", "paper": 0,
                               "measured": 3}).status == "fail"


class TestScorecard:
    def test_fast_experiments_all_pass(self):
        rows = scorecard(
            ["fig1", "fig2", "fig4", "tab_savings", "tab_rectime",
             "tab_mttdl", "abl_groups", "abl_codes", "abl_kr",
             "ext_bound", "ext_capacity", "ext_raiding"]
        )
        summary = summarize(rows)
        assert summary["fail"] == 0
        assert summary["pass"] >= 25

    def test_summarize_counts(self):
        rows = [
            ScoreRow("a", "m", "1", "1", "pass"),
            ScoreRow("a", "m", "1", "9", "fail"),
            ScoreRow("a", "m", "x", "y", "info"),
        ]
        assert summarize(rows) == {"pass": 1, "fail": 1, "info": 1}
