"""Tests for the DES recovery-latency experiment."""

import pytest

from repro.experiments import run_experiment


class TestExtLatency:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_latency", days=4.0)

    def test_piggyback_faster(self, result):
        assert result.data["pb_mean"] < result.data["rs_mean"]

    def test_speedup_tracks_download_reduction(self, result):
        # The all-node average download reduction is 23.6%; the latency
        # reduction through a shared pipe lands in the same band.
        assert 0.15 < result.data["speedup"] < 0.32

    def test_same_block_count(self, result):
        rows = result.tables["recovery latency"]
        assert rows[0]["blocks"] == rows[1]["blocks"]
        assert rows[0]["blocks"] > 0
