"""The repair-policy ablation: registered, pinned, and discriminating."""

import pytest

from repro.experiments import available_experiments, run_experiment


@pytest.fixture(scope="module")
def ablation():
    return run_experiment("repair_policies", days=3.0)


class TestRepairPolicies:
    def test_registered(self):
        assert "repair_policies" in available_experiments()

    def test_covers_the_policy_matrix(self, ablation):
        assert set(ablation.data["fingerprints"]) == {
            "eager_fifo",
            "lazy_fifo",
            "eager_priority",
            "lazy_priority",
            "full_stack",
        }

    def test_every_variant_matches_the_serial_oracle(self, ablation):
        rows = ablation.tables["policies"]
        assert all(row["oracle"] is True for row in rows)

    def test_baseline_is_pinned_to_the_plain_throttled_law(self, ablation):
        # All policy knobs off == the historical eager-FIFO throttle,
        # counter for counter (the regression pin the ISSUE demands).
        assert ablation.data["baseline_pin"] is True

    def test_priority_shrinks_urgent_wait(self, ablation):
        urgent = ablation.data["urgent_wait_us"]
        assert 0 < urgent["eager_priority"] < urgent["eager_fifo"]

    def test_lazy_defers_and_saves_bytes(self, ablation):
        fp = ablation.data["fingerprints"]
        # fingerprint fields: [1]=bytes_downloaded, [7]=deferred.
        assert fp["lazy_fifo"][7] > 0
        assert fp["lazy_fifo"][1] <= fp["eager_fifo"][1]

    def test_full_stack_places_spares(self, ablation):
        fp = ablation.data["fingerprints"]
        assert fp["full_stack"][10] > 0

    def test_renders(self, ablation):
        text = ablation.render()
        assert "policies" in text and "eager_fifo" in text
