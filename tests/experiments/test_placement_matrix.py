"""The placement/parallel-recovery ablation: registered and discriminating."""

import pytest

from repro.experiments import available_experiments, run_experiment


@pytest.fixture(scope="module")
def ablation():
    return run_experiment("placement_ablation", days=4.0)


class TestPlacementMatrix:
    def test_registered(self):
        assert "placement_ablation" in available_experiments()

    def test_covers_the_matrix(self, ablation):
        assert set(ablation.data["fingerprints"]) == {
            "random_serial",
            "random_parallel",
            "d3_serial",
            "d3_parallel",
        }

    def test_every_variant_matches_the_serial_oracle(self, ablation):
        rows = ablation.tables["placements"]
        assert all(row["oracle"] is True for row in rows)

    def test_sharded_partitioning_invariance(self, ablation):
        assert ablation.data["shard_invariant"] is True

    def test_d3_rack_load_spread_within_ten_percent(self, ablation):
        spreads = ablation.data["load_spreads"]
        assert spreads["d3_serial"] <= 1.1
        assert spreads["d3_parallel"] <= 1.1

    def test_d3_flatter_than_random(self, ablation):
        spreads = ablation.data["load_spreads"]
        assert spreads["d3_serial"] < spreads["random_serial"]
        assert spreads["d3_parallel"] < spreads["random_parallel"]

    def test_waves_cut_bytes_per_block(self, ablation):
        per_block = ablation.data["bytes_per_block"]
        assert per_block["random_parallel"] < per_block["random_serial"]
        assert per_block["d3_parallel"] < per_block["d3_serial"]

    def test_waves_only_fire_with_parallel_repair(self, ablation):
        rows = {row["variant"]: row for row in ablation.tables["placements"]}
        assert rows["random_serial"]["waves"] == 0
        assert rows["d3_serial"]["waves"] == 0
        assert rows["random_parallel"]["waves"] > 0
        assert rows["d3_parallel"]["waves"] > 0

    def test_all_summary_checks_pass(self, ablation):
        for row in ablation.tables["summary"]:
            assert row["value"] is True, row["check"]

    def test_renders(self, ablation):
        text = ablation.render()
        assert "placements" in text and "d3_parallel" in text
