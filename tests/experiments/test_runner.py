"""Tests for experiment plumbing."""

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    register_experiment,
    run_experiment,
)


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        ids = available_experiments()
        expected = {
            "fig1", "fig2", "fig3a", "fig3b", "fig4",
            "tab_missing", "tab_savings", "tab_traffic",
            "tab_rectime", "tab_mttdl", "abl_groups", "abl_codes",
        }
        assert expected <= set(ids)

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")

    def test_register_and_run(self):
        def fake():
            return ExperimentResult("fake", "fake experiment")

        register_experiment("test-fake", fake)
        result = run_experiment("test-fake")
        assert result.experiment_id == "fake"

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigError):
            register_experiment("", lambda: None)


class TestRender:
    def test_render_includes_tables(self):
        result = ExperimentResult(
            "x",
            "title",
            paper_rows=[{"metric": "m", "paper": 1, "measured": 1}],
            tables={"extra": [{"col": 5}]},
        )
        text = result.render()
        assert "== x: title ==" in text
        assert "paper vs measured" in text
        assert "extra" in text

    def test_render_without_rows(self):
        text = ExperimentResult("x", "t").render()
        assert text.startswith("== x")
