"""End-to-end tests: every paper experiment runs and lands in band.

Simulation-backed experiments run here with shortened durations and
lighter block density (the full-length runs live in ``benchmarks/``);
the bands below are deliberately wide because short windows are noisy,
while the benches compare medians over the paper's full durations.
"""

import pytest

from repro.analysis.stats import within_factor
from repro.cluster.config import ClusterConfig
from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def quick_config():
    return ClusterConfig(days=10.0, stripes_per_node=40.0)


class TestFig1:
    def test_exact_counts(self):
        result = run_experiment("fig1", unit_size=1 << 12)
        by_metric = {row["metric"]: row for row in result.paper_rows}
        assert by_metric["units transferred through TOR switches"]["measured"] == 2
        assert by_metric["nodes contacted"]["measured"] == 2
        assert result.data["cross_rack_bytes"] == 2 * (1 << 12)


class TestFig2:
    def test_layout_and_overhead(self):
        result = run_experiment("fig2", block_size=1 << 12)
        by_metric = {row["metric"]: row for row in result.paper_rows}
        assert by_metric["data blocks per stripe"]["measured"] == 10
        assert by_metric["parity blocks per stripe"]["measured"] == 4
        assert by_metric["storage overhead (vs 3x replication)"]["measured"] == pytest.approx(1.4)
        assert by_metric["byte-level stripe property holds"]["measured"] is True


class TestFig3a:
    def test_median_in_band(self, quick_config):
        result = run_experiment("fig3a", config=quick_config)
        median = result.data["summary"]["median"]
        # Paper: median > 50; short-window band of 2x around 52.
        assert within_factor(median, 52.0, 2.0)
        assert result.data["machines"] == 3000

    def test_series_has_heavy_tail(self, quick_config):
        result = run_experiment("fig3a", config=quick_config)
        summary = result.data["summary"]
        assert summary["max"] > summary["median"]


class TestFig3b:
    @pytest.fixture(scope="class")
    def result(self, quick_config):
        return run_experiment("fig3b", config=quick_config)

    def test_blocks_per_day_in_band(self, result):
        from numpy import median

        blocks = median(result.data["blocks_per_day_scaled"])
        assert within_factor(blocks, 95_500.0, 2.5)

    def test_cross_rack_bytes_in_band(self, result):
        from numpy import median

        cross = median(result.data["cross_rack_bytes_per_day_scaled"])
        assert within_factor(cross, 180e12, 2.5)

    def test_gb_per_block_matches_ratio(self, result):
        by_metric = {row["metric"]: row for row in result.paper_rows}
        gb = by_metric["mean transfer per recovered block (GB)"]["measured"]
        assert 1.5 < gb < 2.4


class TestTabMissing:
    def test_split_shape(self, quick_config):
        result = run_experiment("tab_missing", config=quick_config)
        fractions = result.data["fractions"]
        # Singles dominate, doubles are percent-level, triples are rare:
        # the paper's 98.08 / 1.87 / 0.05 shape.
        assert fractions["one"] > 0.93
        assert 0.001 < fractions["two"] < 0.06
        assert fractions["three_plus"] < 0.01
        assert fractions["one"] > 10 * fractions["two"]
        assert fractions["two"] > fractions["three_plus"]


class TestFig4:
    def test_three_vs_four(self):
        result = run_experiment("fig4", unit_size=512)
        by_metric = {row["metric"]: row for row in result.paper_rows}
        assert by_metric[
            "bytes downloaded to recover node 1 (in stripe bytes)"
        ]["measured"] == 3
        assert by_metric["tolerates any 2 of 4 failures"]["measured"] is True
        assert by_metric["extra storage vs RS"]["measured"] == 0


class TestTabSavings:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("tab_savings", unit_size=1 << 10)

    def test_thirty_percent_claim(self, result):
        savings = result.data["savings"]
        assert 0.28 <= savings["data_nodes"] <= 0.36
        assert savings["all_nodes"] == pytest.approx(1 - 107 / 140)

    def test_per_node_table_complete(self, result):
        rows = result.tables["per-node repair download"]
        assert len(rows) == 14
        assert all(row["rs_download_units"] == 10 for row in rows)
        data_rows = [row for row in rows if row["kind"] == "data"]
        assert all(row["piggyback_download_units"] < 10 for row in data_rows)


class TestTabTraffic:
    def test_savings_band(self, quick_config):
        result = run_experiment("tab_traffic", config=quick_config)
        rs_tb = result.data["rs_median_bytes"] / 1e12
        saving_tb = result.data["measured_saving_bytes"] / 1e12
        assert within_factor(rs_tb, 180.0, 2.5)
        # Measured replay saving: the exact fraction of the RS baseline.
        assert saving_tb == pytest.approx(rs_tb * (1 - 107 / 140), rel=0.05)
        # Paper-method projection from this baseline clears 50 TB/day
        # whenever the baseline is at the paper's level.
        paper_method = result.data["estimate"]["paper_method_savings_TB_per_day"]
        assert paper_method == pytest.approx(0.30 * rs_tb)


class TestTabRectime:
    def test_all_claims_hold(self):
        result = run_experiment("tab_rectime")
        for row in result.paper_rows[:3]:
            assert row["measured"] is True
        sweep = result.tables["connection-overhead sweep"]
        realistic = [r for r in sweep if r["connection_overhead_ms"] <= 100]
        assert all(r["piggyback_faster"] for r in realistic)


class TestTabMttdl:
    def test_reliability_ordering(self):
        result = run_experiment("tab_mttdl")
        data = result.data
        assert data["PiggybackedRS(10,4)"] > data["RS(10,4)"]
        assert data["RS(10,4)"] > data["Replication(x3)"]


class TestAblations:
    def test_groups_default_is_optimal(self):
        result = run_experiment("abl_groups")
        assert result.paper_rows[0]["measured"] is True
        sweep = result.tables["partition sweep (sorted best-first)"]
        assert sweep[0]["avg_data_repair_units"] <= sweep[-1][
            "avg_data_repair_units"
        ]
        assert result.data["best_units"] == pytest.approx(6.7)

    def test_codes_comparison(self):
        result = run_experiment("abl_codes")
        rows = {row["code"]: row for row in result.tables["code comparison"]}
        assert rows["RS(10,4)"]["avg_repair_units"] == 10.0
        assert rows["PiggybackedRS(10,4)"]["avg_repair_units"] < 10.0
        assert rows["LRC(10,2,2)"]["mds"] is False
        assert 0.0 < result.data["lrc_four_failure_survival"] < 1.0

    def test_render_all_fast_experiments(self):
        for experiment_id in ("fig1", "fig2", "fig4", "tab_savings",
                              "tab_rectime", "tab_mttdl", "abl_groups",
                              "abl_codes"):
            text = run_experiment(experiment_id).render()
            assert "paper vs measured" in text
