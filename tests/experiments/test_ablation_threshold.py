"""Tests for the unavailability-threshold ablation."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("abl_threshold", days=6.0)


class TestThresholdSweep:
    def test_total_traffic_monotonically_decreasing(self, result):
        totals = [row["total_cross_rack_TB"] for row in result.data["rows"]]
        assert totals == sorted(totals, reverse=True)

    def test_flagged_events_decrease(self, result):
        flagged = [row["flagged_events_per_day"] for row in result.data["rows"]]
        assert flagged[0] >= flagged[-1]
        assert flagged[-1] < flagged[0]

    def test_default_threshold_first(self, result):
        assert result.data["rows"][0]["threshold_min"] == 15

    def test_render(self, result):
        assert "threshold sweep" in result.render()
