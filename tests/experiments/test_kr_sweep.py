"""Tests for the (k, r) parameter sweep."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("abl_kr")


class TestKrSweep:
    def test_all_grid_points_save(self, result):
        assert all(row["data_saving_%"] > 0 for row in result.data["rows"])

    def test_saving_grows_with_r(self, result):
        """More parities -> more piggyback slots -> smaller groups."""
        for k in (6, 10, 14):
            savings = [
                row["data_saving_%"]
                for row in result.data["rows"]
                if row["k"] == k
            ]
            assert savings == sorted(savings)

    def test_production_point(self, result):
        row = next(
            r for r in result.data["rows"] if r["k"] == 10 and r["r"] == 4
        )
        assert row["data_saving_%"] == pytest.approx(33.0)
        assert row["connections"] == 11

    def test_connections_always_k_plus_1(self, result):
        for row in result.data["rows"]:
            assert row["connections"] == row["k"] + 1

    def test_r2_saving_is_the_half_group_level(self, result):
        """r=2 piggybacks half the units: 12.5% average data saving."""
        for row in result.data["rows"]:
            if row["r"] == 2 and row["k"] % 2 == 0:
                assert row["data_saving_%"] == pytest.approx(12.5)
