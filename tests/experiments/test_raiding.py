"""Tests for the raid-conversion growth experiment."""

import pytest

from repro.experiments import run_experiment


class TestExtRaiding:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_raiding")

    def test_conversion_identical_both_codes(self, result):
        rows = result.tables["weekly growth pipeline"]
        assert rows[0]["conversion_TB_per_day"] == rows[1][
            "conversion_TB_per_day"
        ]

    def test_default_growth_numbers(self, result):
        rows = result.tables["weekly growth pipeline"]
        # 2 PB/week * 1.4 / 7 days = 400 TB/day.
        assert rows[0]["conversion_TB_per_day"] == pytest.approx(400.0)
        assert rows[0]["disk_freed_PB_per_week"] == pytest.approx(3.2)

    def test_piggyback_lowers_total(self, result):
        rows = result.tables["weekly growth pipeline"]
        assert rows[1]["total_TB_per_day"] < rows[0]["total_TB_per_day"]

    def test_custom_growth_scales(self):
        result = run_experiment("ext_raiding", growth_bytes_per_week=4e15)
        rows = result.tables["weekly growth pipeline"]
        assert rows[0]["conversion_TB_per_day"] == pytest.approx(800.0)
