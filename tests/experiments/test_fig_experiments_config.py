"""Experiments honour caller-supplied configuration."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.experiments import run_experiment


class TestConfigOverrides:
    def test_fig3a_respects_config(self):
        config = ClusterConfig(
            num_racks=20, nodes_per_rack=5, stripes_per_node=10.0,
            days=2.0, seed=1,
        )
        result = run_experiment("fig3a", config=config)
        assert result.data["machines"] == 100
        assert len(result.data["series"]) == 2

    def test_fig3b_respects_days(self):
        config = ClusterConfig(
            num_racks=20, nodes_per_rack=5, stripes_per_node=10.0,
            days=3.0, seed=1,
        )
        result = run_experiment("fig3b", config=config)
        assert len(result.data["blocks_per_day_scaled"]) == 3

    def test_fig1_unit_size_scales_bytes(self):
        small = run_experiment("fig1", unit_size=1024)
        large = run_experiment("fig1", unit_size=4096)
        assert large.data["bytes_downloaded"] == 4 * small.data[
            "bytes_downloaded"
        ]

    def test_fig4_deterministic_given_seed(self):
        a = run_experiment("fig4", unit_size=256, seed=9)
        b = run_experiment("fig4", unit_size=256, seed=9)
        assert a.data["downloaded_bytes"] == b.data["downloaded_bytes"]

    def test_tab_savings_parameterised(self):
        result = run_experiment("tab_savings", k=6, r=3, unit_size=512)
        rows = result.tables["per-node repair download"]
        assert len(rows) == 9
        assert all(row["rs_download_units"] == 6 for row in rows)

    def test_seeded_simulation_experiments_are_deterministic(self):
        config = ClusterConfig(
            num_racks=20, nodes_per_rack=5, stripes_per_node=10.0,
            days=2.0, seed=12,
        )
        a = run_experiment("fig3b", config=config)
        b = run_experiment("fig3b", config=config)
        assert a.data["blocks_per_day_scaled"] == b.data[
            "blocks_per_day_scaled"
        ]
