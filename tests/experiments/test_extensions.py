"""Tests for the extension experiments."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.experiments import run_experiment


class TestExtBound:
    def test_bound_and_gap(self):
        result = run_experiment("ext_bound")
        assert result.data["bound_units"] == pytest.approx(3.25)
        assert 1.0 < result.data["piggyback_gap"] < 3.0
        rows = {r["code"]: r for r in result.tables["repair optimality"]}
        assert rows["RS(10,4)"]["closes_of_RS_gap"] == "0%"
        assert rows["PiggybackedRS(10,4)"]["closes_of_RS_gap"] == "49%"


class TestExtCapacity:
    def test_gain_matches_exact_fraction(self):
        result = run_experiment("ext_capacity")
        assert result.data["gain_fraction"] == pytest.approx(
            140 / 107 - 1, rel=1e-6
        )
        rows = {r["code"]: r for r in result.tables["codable capacity"]}
        assert rows["RS(10,4)"]["codable_PB_at_180TB_per_day"] == 10.0
        assert rows["PiggybackedRS(10,4)"][
            "codable_PB_at_180TB_per_day"
        ] > 12.0


class TestExtDegraded:
    @pytest.fixture(scope="class")
    def result(self):
        config = ClusterConfig(
            days=6.0,
            stripes_per_node=25.0,
            reads_per_stripe_per_day=1.0,
        )
        return run_experiment("ext_degraded", config=config)

    def test_same_reads_both_codes(self, result):
        rows = result.tables["read workload"]
        assert rows[0]["reads"] == rows[1]["reads"]
        assert rows[0]["degraded_reads"] == rows[1]["degraded_reads"]

    def test_saving_around_a_third(self, result):
        # Degraded reads hit data blocks only, where the design saves
        # 30-35%; the realized mix depends on which blocks were read.
        assert 0.25 < result.data["saving"] < 0.40

    def test_degraded_bytes_ordering(self, result):
        assert result.data["pb_degraded_bytes"] < result.data[
            "rs_degraded_bytes"
        ]
