"""Tests for the bit-matrix GF(2^8) representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf.bitmatrix import (
    W,
    element_to_bitmatrix,
    expand_generator,
    strip_schedule,
    verify_bitmatrix_action,
    xor_count,
    xor_encode_strips,
)
from repro.gf.field import DEFAULT_FIELD

gf = DEFAULT_FIELD


class TestElementToBitmatrix:
    def test_zero_is_zero_matrix(self):
        assert not element_to_bitmatrix(0).any()

    def test_one_is_identity(self):
        assert np.array_equal(element_to_bitmatrix(1), np.eye(W, dtype=np.uint8))

    def test_two_is_shift_plus_feedback(self):
        matrix = element_to_bitmatrix(2)
        # Column j = bits of 2 * 2^j; for j < 7 that is a pure shift.
        for j in range(W - 1):
            expected = np.zeros(W, dtype=np.uint8)
            expected[j + 1] = 1
            assert np.array_equal(matrix[:, j], expected)
        # Column 7: 2 * 0x80 = 0x11D reduced.
        overflow = 0x100 ^ 0x11D
        assert np.array_equal(
            matrix[:, 7],
            np.array([(overflow >> i) & 1 for i in range(W)], dtype=np.uint8),
        )

    def test_out_of_range(self):
        with pytest.raises(FieldError):
            element_to_bitmatrix(256)

    def test_action_matches_field_multiplication_exhaustive_sample(self):
        rng = np.random.default_rng(0)
        for _ in range(300):
            element = int(rng.integers(0, 256))
            value = int(rng.integers(0, 256))
            assert verify_bitmatrix_action(element, value)

    def test_matrix_of_product_is_product_of_matrices(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            a = int(rng.integers(0, 256))
            b = int(rng.integers(0, 256))
            left = element_to_bitmatrix(gf.mul(a, b))
            right = element_to_bitmatrix(a) @ element_to_bitmatrix(b) % 2
            assert np.array_equal(left, right.astype(np.uint8))


class TestExpandGenerator:
    def test_shape(self):
        generator = np.zeros((6, 4), dtype=np.uint8)
        assert expand_generator(generator).shape == (48, 32)

    def test_identity_block_expands_to_identity(self):
        generator = np.eye(3, dtype=np.uint8)
        assert np.array_equal(
            expand_generator(generator), np.eye(24, dtype=np.uint8)
        )

    def test_rejects_non_2d(self):
        with pytest.raises(FieldError):
            expand_generator(np.zeros(4, dtype=np.uint8))


class TestXorEncode:
    def test_matches_field_arithmetic(self, rng):
        """XOR-strip encoding of one coefficient equals gf.scale."""
        element = 0x53
        payload = rng.integers(0, 256, 64, dtype=np.uint8)
        # Bit-slice the payload: strip i holds bit i of each byte.
        strips = np.stack(
            [(payload >> i) & 1 for i in range(W)]
        ).astype(np.uint8)
        out = xor_encode_strips(element_to_bitmatrix(element), strips)
        recombined = np.zeros(64, dtype=np.uint8)
        for i in range(W):
            recombined |= (out[i] & 1) << i
        assert np.array_equal(recombined, gf.scale(element, payload))

    def test_shape_mismatch(self):
        with pytest.raises(FieldError):
            xor_encode_strips(
                np.eye(8, dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8)
            )

    def test_empty_row_yields_zero_strip(self):
        matrix = np.zeros((2, 3), dtype=np.uint8)
        matrix[0, 1] = 1
        strips = np.ones((3, 4), dtype=np.uint8)
        out = xor_encode_strips(matrix, strips)
        assert out[0].all()
        assert not out[1].any()


class TestSchedules:
    def test_strip_schedule(self):
        row = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        assert strip_schedule(row) == [0, 2, 3]

    def test_xor_count(self):
        matrix = np.array([[1, 1, 1], [0, 0, 0], [1, 0, 0]], dtype=np.uint8)
        # Row 0: 2 XORs; row 1: empty; row 2: copy only.
        assert xor_count(matrix) == 2

    def test_xor_count_identity_free(self):
        assert xor_count(np.eye(8, dtype=np.uint8)) == 0


@given(
    element=st.integers(min_value=0, max_value=255),
    value=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=200)
def test_bitmatrix_action_property(element, value):
    assert verify_bitmatrix_action(element, value)
