"""Property tests: table-driven kernels == retained reference paths.

The GF(2^8) hot path runs on a precomputed 256x256 product table with
fused gather-then-XOR kernels (``GF256.mul``/``scale``/``dot``/``matmul``
and :func:`repro.gf.linalg.gf_matmul`).  The pre-kernel log/antilog
implementations are retained as ``*_reference`` oracles; these tests
assert byte-identical results across random inputs, deliberately
including the 0 and 255 boundary elements and zero-coefficient /
zero-payload edge cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf import tables
from repro.gf.field import DEFAULT_FIELD, KERNEL_CHUNK
from repro.gf.linalg import gf_matmul, gf_matmul_reference

gf = DEFAULT_FIELD

elements = st.integers(min_value=0, max_value=255)
# Bias towards the boundary elements the zero-masking bugs live at.
edge_biased = st.one_of(st.sampled_from([0, 1, 255]), elements)
payloads = st.lists(edge_biased, min_size=0, max_size=300).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


def random_matrix(draw, rows, cols):
    data = draw(
        st.lists(edge_biased, min_size=rows * cols, max_size=rows * cols)
    )
    return np.array(data, dtype=np.uint8).reshape(rows, cols)


matrix_shapes = st.tuples(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=40),
)


class TestProductTable:
    def test_matches_bitwise_reference_table(self):
        reference = tables.build_multiplication_table()
        derived = tables.build_product_table(gf._exp, gf._log)
        assert np.array_equal(derived, reference)

    def test_zero_row_and_column(self):
        assert not gf._prod[0, :].any()
        assert not gf._prod[:, 0].any()

    def test_costs_64_kib(self):
        assert gf._prod.nbytes == 64 * 1024


class TestMulEquivalence:
    @given(payloads, payloads)
    @settings(max_examples=100)
    def test_mul_matches_reference(self, xs, ys):
        length = min(xs.shape[0], ys.shape[0])
        xs, ys = xs[:length], ys[:length]
        assert np.array_equal(gf.mul(xs, ys), gf.mul_reference(xs, ys))

    def test_exhaustive_scalar_grid(self):
        a = np.repeat(np.arange(256, dtype=np.uint8), 256)
        b = np.tile(np.arange(256, dtype=np.uint8), 256)
        assert np.array_equal(gf.mul(a, b), gf.mul_reference(a, b))


class TestScaleEquivalence:
    @given(elements, payloads)
    @settings(max_examples=100)
    def test_scale_matches_reference(self, coefficient, payload):
        assert np.array_equal(
            gf.scale(coefficient, payload),
            gf.scale_reference(coefficient, payload),
        )

    @given(elements, payloads)
    @settings(max_examples=50)
    def test_scale_out_buffer_matches(self, coefficient, payload):
        out = np.empty_like(payload)
        returned = gf.scale(coefficient, payload, out=out)
        assert returned is out
        assert np.array_equal(out, gf.scale_reference(coefficient, payload))

    def test_zero_coefficient_zeroes_any_payload(self):
        payload = np.array([0, 1, 37, 255], dtype=np.uint8)
        assert not gf.scale(0, payload).any()
        out = np.full(4, 0xAB, dtype=np.uint8)
        gf.scale(0, payload, out=out)
        assert not out.any()

    def test_zero_payload_stays_zero_for_all_coefficients(self):
        payload = np.zeros(16, dtype=np.uint8)
        for coefficient in (0, 1, 2, 128, 255):
            assert not gf.scale(coefficient, payload).any()

    def test_coefficient_255_on_all_elements(self):
        payload = np.arange(256, dtype=np.uint8)
        assert np.array_equal(
            gf.scale(255, payload), gf.scale_reference(255, payload)
        )

    def test_out_of_range_coefficient_raises(self):
        with pytest.raises(FieldError):
            gf.scale(256, np.zeros(4, dtype=np.uint8))


class TestPowEdgeCases:
    def test_zero_base_zero_exponent_is_one(self):
        assert gf.pow(0, 0) == 1

    def test_zero_base_positive_exponents_are_zero(self):
        for exponent in (1, 2, 254, 255, 1000):
            assert gf.pow(0, exponent) == 0

    def test_array_with_zeros_is_zero_correct(self):
        arr = np.array([0, 1, 2, 0, 255], dtype=np.uint8)
        result = gf.pow(arr, 3)
        assert result[0] == 0 and result[3] == 0
        assert result[1] == 1
        assert result[2] == gf.mul(2, gf.mul(2, 2))
        assert result[4] == gf.mul(255, gf.mul(255, 255))


class TestDotEquivalence:
    @given(st.data(), st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=60)
    def test_dot_matches_reference(self, data, n, length):
        coefficients = random_matrix(data.draw, 1, n)[0]
        payload = random_matrix(data.draw, n, length)
        assert np.array_equal(
            gf.dot(coefficients, payload),
            gf.dot_reference(coefficients, payload),
        )

    def test_dot_out_buffer(self):
        rng = np.random.default_rng(3)
        coefficients = rng.integers(0, 256, size=6, dtype=np.uint8)
        payload = rng.integers(0, 256, size=(6, 100), dtype=np.uint8)
        out = np.full(100, 0x5A, dtype=np.uint8)
        returned = gf.dot(coefficients, payload, out=out)
        assert returned is out
        assert np.array_equal(out, gf.dot_reference(coefficients, payload))


class TestMatmulEquivalence:
    @given(st.data(), matrix_shapes)
    @settings(max_examples=60)
    def test_matmul_matches_reference(self, data, shape):
        m, n, p = shape
        a = random_matrix(data.draw, m, n)
        b = random_matrix(data.draw, n, p)
        assert np.array_equal(
            gf_matmul(a, b), gf_matmul_reference(a, b)
        )

    def test_matmul_out_buffer_and_views(self):
        rng = np.random.default_rng(11)
        a = rng.integers(0, 256, size=(4, 10), dtype=np.uint8)
        b = rng.integers(0, 256, size=(10, 333), dtype=np.uint8)
        expected = gf_matmul_reference(a, b)
        out = np.full((4, 333), 0xFF, dtype=np.uint8)
        assert np.array_equal(gf_matmul(a, b, out=out), expected)
        # Non-contiguous out view (columns of a wider buffer).
        wide = np.zeros((4, 666), dtype=np.uint8)
        gf_matmul(a, b, out=wide[:, :333])
        assert np.array_equal(wide[:, :333], expected)
        assert not wide[:, 333:].any()

    def test_matmul_crosses_chunk_boundary(self):
        """Payload wider than one kernel chunk exercises the chunk loop."""
        rng = np.random.default_rng(13)
        a = rng.integers(0, 256, size=(2, 3), dtype=np.uint8)
        width = KERNEL_CHUNK + 1021
        b = rng.integers(0, 256, size=(3, width), dtype=np.uint8)
        assert np.array_equal(gf_matmul(a, b), gf_matmul_reference(a, b))

    def test_matmul_zero_and_identity_coefficients(self):
        b = np.arange(30, dtype=np.uint8).reshape(3, 10)
        zero = np.zeros((2, 3), dtype=np.uint8)
        assert not gf_matmul(zero, b).any()
        eye = np.eye(3, dtype=np.uint8)
        assert np.array_equal(gf_matmul(eye, b), b)
