"""Tests for polynomials over GF(2^8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf.field import DEFAULT_FIELD
from repro.gf.polynomial import GFPolynomial

gf = DEFAULT_FIELD

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=255), min_size=0, max_size=8
)


class TestBasics:
    def test_zero_polynomial(self):
        zero = GFPolynomial()
        assert zero.is_zero()
        assert zero.degree == -1

    def test_trailing_zeros_stripped(self):
        poly = GFPolynomial([1, 2, 0, 0])
        assert poly.coefficients == [1, 2]
        assert poly.degree == 1

    def test_invalid_coefficient(self):
        with pytest.raises(FieldError):
            GFPolynomial([256])

    def test_equality(self):
        assert GFPolynomial([1, 2]) == GFPolynomial([1, 2, 0])
        assert GFPolynomial([1]) != GFPolynomial([2])


class TestArithmetic:
    def test_addition_is_xor_of_coefficients(self):
        a = GFPolynomial([1, 2, 3])
        b = GFPolynomial([4, 2])
        assert (a + b).coefficients == [5, 0, 3]

    def test_add_cancels_self(self):
        a = GFPolynomial([7, 9])
        assert (a + a).is_zero()

    def test_multiplication_degree(self):
        a = GFPolynomial([1, 1])  # x + 1
        b = GFPolynomial([2, 0, 1])  # x^2 + 2
        assert (a * b).degree == 3

    def test_multiply_by_zero(self):
        assert (GFPolynomial([1, 2]) * GFPolynomial()).is_zero()

    def test_known_square(self):
        # (x + 1)^2 = x^2 + 1 in characteristic 2.
        square = GFPolynomial([1, 1]) * GFPolynomial([1, 1])
        assert square.coefficients == [1, 0, 1]

    def test_scale(self):
        poly = GFPolynomial([1, 2]).scale(3)
        assert poly.coefficients == [3, gf.mul(2, 3)]

    def test_divmod_roundtrip(self):
        dividend = GFPolynomial([5, 3, 7, 1])
        divisor = GFPolynomial([2, 1])
        quotient, remainder = dividend.divmod(divisor)
        reconstructed = quotient * divisor + remainder
        assert reconstructed == dividend
        assert remainder.degree < divisor.degree

    def test_division_by_zero(self):
        with pytest.raises(FieldError):
            GFPolynomial([1]).divmod(GFPolynomial())

    def test_floordiv_and_mod_operators(self):
        dividend = GFPolynomial([1, 0, 1])
        divisor = GFPolynomial([1, 1])
        assert (dividend // divisor) * divisor + (dividend % divisor) == dividend


class TestEvaluation:
    def test_evaluate_constant(self):
        assert GFPolynomial([9]).evaluate(123) == 9

    def test_evaluate_zero_polynomial(self):
        assert GFPolynomial().evaluate(5) == 0

    def test_evaluate_linear(self):
        poly = GFPolynomial([3, 2])  # 2x + 3
        assert poly.evaluate(7) == gf.add(3, gf.mul(2, 7))

    def test_evaluate_many(self):
        poly = GFPolynomial([1, 1])
        values = poly.evaluate_many([0, 1, 2])
        assert np.array_equal(values, np.array([1, 0, 3], dtype=np.uint8))


class TestInterpolation:
    def test_roundtrip_through_points(self, rng):
        coefficients = rng.integers(0, 256, 5).tolist()
        poly = GFPolynomial(coefficients)
        xs = [1, 2, 3, 4, 5]
        ys = [poly.evaluate(x) for x in xs]
        recovered = GFPolynomial.interpolate(xs, ys)
        assert recovered == poly

    def test_duplicate_x_rejected(self):
        with pytest.raises(FieldError):
            GFPolynomial.interpolate([1, 1], [2, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(FieldError):
            GFPolynomial.interpolate([1, 2], [3])

    def test_rs_view_matches_matrix_view(self, rng):
        """Classic RS check: evaluations of a degree<k polynomial at any
        k points determine all n evaluations."""
        k, n = 4, 8
        message = rng.integers(0, 256, k).tolist()
        poly = GFPolynomial(message)
        codeword = [poly.evaluate(x) for x in range(n)]
        subset = [0, 3, 5, 7]
        recovered = GFPolynomial.interpolate(
            subset, [codeword[x] for x in subset]
        )
        assert [recovered.evaluate(x) for x in range(n)] == codeword


@given(coeff_lists, coeff_lists)
@settings(max_examples=60)
def test_multiplication_commutes(a_coeffs, b_coeffs):
    a, b = GFPolynomial(a_coeffs), GFPolynomial(b_coeffs)
    assert a * b == b * a


@given(coeff_lists, coeff_lists, st.integers(min_value=0, max_value=255))
@settings(max_examples=60)
def test_evaluation_is_ring_homomorphism(a_coeffs, b_coeffs, x):
    a, b = GFPolynomial(a_coeffs), GFPolynomial(b_coeffs)
    assert (a + b).evaluate(x) == gf.add(a.evaluate(x), b.evaluate(x))
    assert (a * b).evaluate(x) == gf.mul(a.evaluate(x), b.evaluate(x))
