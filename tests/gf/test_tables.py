"""Tests for GF(2^8) table construction."""

import numpy as np
import pytest

from repro.errors import FieldError
from repro.gf import tables


class TestBuildTables:
    def test_exp_table_length(self):
        exp, _ = tables.build_tables()
        assert exp.shape == (tables.EXP_TABLE_LEN,)

    def test_log_table_length(self):
        _, log = tables.build_tables()
        assert log.shape == (tables.FIELD_SIZE,)

    def test_exp_starts_at_one(self):
        exp, _ = tables.build_tables()
        assert exp[0] == 1

    def test_exp_of_one_is_generator(self):
        exp, _ = tables.build_tables()
        assert exp[1] == 2

    def test_exp_cycle_wraps(self):
        exp, _ = tables.build_tables()
        for i in range(tables.GROUP_ORDER):
            assert exp[i] == exp[i + tables.GROUP_ORDER]

    def test_exp_covers_all_nonzero_elements(self):
        exp, _ = tables.build_tables()
        assert set(exp[: tables.GROUP_ORDER].tolist()) == set(range(1, 256))

    def test_log_exp_roundtrip(self):
        exp, log = tables.build_tables()
        for value in range(1, 256):
            assert exp[log[value]] == value

    def test_log_zero_is_sentinel(self):
        _, log = tables.build_tables()
        assert log[0] == tables.ZERO_LOG_SENTINEL

    def test_sentinel_keeps_lookups_in_bounds(self):
        assert 2 * tables.ZERO_LOG_SENTINEL < tables.EXP_TABLE_LEN

    def test_rejects_wrong_degree_polynomial(self):
        with pytest.raises(FieldError):
            tables.build_tables(0x1D)  # degree 4-ish, not 8

    def test_rejects_non_primitive_polynomial(self):
        # x^8 + x^4 + x^3 + x + 1 (0x11B, the AES polynomial): 2 is not
        # a generator there.
        with pytest.raises(FieldError):
            tables.build_tables(0x11B)

    @pytest.mark.parametrize("poly", tables.KNOWN_PRIMITIVE_POLYS)
    def test_known_primitive_polynomials_build(self, poly):
        exp, log = tables.build_tables(poly)
        assert set(exp[: tables.GROUP_ORDER].tolist()) == set(range(1, 256))


class TestMultiplicationTable:
    @pytest.fixture(scope="class")
    def mul_table(self):
        return tables.build_multiplication_table()

    def test_shape(self, mul_table):
        assert mul_table.shape == (256, 256)

    def test_zero_row_and_column(self, mul_table):
        assert not mul_table[0].any()
        assert not mul_table[:, 0].any()

    def test_one_is_identity(self, mul_table):
        assert np.array_equal(mul_table[1], np.arange(256, dtype=np.uint8))

    def test_commutative(self, mul_table):
        assert np.array_equal(mul_table, mul_table.T)

    def test_agrees_with_log_tables(self, mul_table):
        exp, log = tables.build_tables()
        rng = np.random.default_rng(0)
        for _ in range(500):
            a = int(rng.integers(1, 256))
            b = int(rng.integers(1, 256))
            assert mul_table[a, b] == exp[log[a] + log[b]]

    def test_known_products(self, mul_table):
        # 0x53 * 0xCA = 0x5F under 0x11D (worked example).
        assert mul_table[2, 128] == (256 ^ 0x11D)  # x * x^7 reduces once
        assert mul_table[3, 3] == 5  # (x+1)^2 = x^2+1
