"""Property-based tests: packed GF kernels match the reference matmul."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import gf_matmul
from repro.gf.field import DEFAULT_FIELD
from repro.gf.packed import PackedMatmul, PackedRow

gf = DEFAULT_FIELD


@st.composite
def matmul_cases(draw):
    """A random coefficient matrix plus random input rows."""
    m = draw(st.integers(min_value=1, max_value=6))
    n = draw(st.integers(min_value=1, max_value=7))
    width = draw(st.integers(min_value=1, max_value=97))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 256, size=(m, n), dtype=np.uint8)
    data = rng.integers(0, 256, size=(n, width), dtype=np.uint8)
    return matrix, data


@given(matmul_cases())
@settings(max_examples=60, deadline=None)
def test_packed_matmul_matches_reference(case):
    matrix, data = case
    expected = gf_matmul(matrix, data)
    result = PackedMatmul(matrix, gf).matmul(data)
    assert np.array_equal(result, expected)


@given(matmul_cases())
@settings(max_examples=60, deadline=None)
def test_packed_row_matches_reference(case):
    matrix, data = case
    coefficients = matrix[0]
    expected = gf_matmul(coefficients.reshape(1, -1), data)[0]
    out = np.empty(data.shape[1], dtype=np.uint8)
    PackedRow(coefficients, gf).apply(list(data), out)
    assert np.array_equal(out, expected)


@given(matmul_cases())
@settings(max_examples=30, deadline=None)
def test_packed_row_accumulate_xors_into_out(case):
    matrix, data = case
    coefficients = matrix[0]
    base = np.arange(data.shape[1], dtype=np.uint64).astype(np.uint8)
    expected = base ^ gf_matmul(coefficients.reshape(1, -1), data)[0]
    out = base.copy()
    PackedRow(coefficients, gf).apply(list(data), out, accumulate=True)
    assert np.array_equal(out, expected)


def test_packed_row_handles_unaligned_rows():
    """Odd offsets and odd lengths must fall back, not corrupt."""
    rng = np.random.default_rng(5)
    coefficients = rng.integers(0, 256, size=4, dtype=np.uint8)
    backing = rng.integers(0, 256, size=(4, 102), dtype=np.uint8)
    rows = [backing[i, 1:100] for i in range(4)]  # odd start, odd length
    stacked = np.stack(rows)
    expected = gf_matmul(coefficients.reshape(1, -1), stacked)[0]
    out_backing = np.zeros(101, dtype=np.uint8)
    out = out_backing[1:100]
    PackedRow(coefficients, gf).apply(rows, out)
    assert np.array_equal(out, expected)
    assert out_backing[0] == 0 and out_backing[100] == 0


def test_packed_matmul_writes_into_given_rows():
    rng = np.random.default_rng(6)
    matrix = rng.integers(0, 256, size=(5, 10), dtype=np.uint8)
    data = rng.integers(0, 256, size=(10, 64), dtype=np.uint8)
    out = np.empty((5, 64), dtype=np.uint8)
    PackedMatmul(matrix, gf).apply(list(data), list(out))
    assert np.array_equal(out, gf_matmul(matrix, data))
