"""Property-based tests: GF(2^8) satisfies the field axioms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.field import DEFAULT_FIELD

gf = DEFAULT_FIELD

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)
arrays = st.lists(elements, min_size=1, max_size=64).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


@given(elements, elements)
def test_addition_commutes(a, b):
    assert gf.add(a, b) == gf.add(b, a)


@given(elements, elements, elements)
def test_addition_associates(a, b, c):
    assert gf.add(gf.add(a, b), c) == gf.add(a, gf.add(b, c))


@given(elements)
def test_additive_identity_and_inverse(a):
    assert gf.add(a, 0) == a
    assert gf.add(a, a) == 0  # characteristic 2: every element is its own inverse


@given(elements, elements)
def test_multiplication_commutes(a, b):
    assert gf.mul(a, b) == gf.mul(b, a)


@given(elements, elements, elements)
def test_multiplication_associates(a, b, c):
    assert gf.mul(gf.mul(a, b), c) == gf.mul(a, gf.mul(b, c))


@given(elements)
def test_multiplicative_identity(a):
    assert gf.mul(a, 1) == a


@given(nonzero)
def test_multiplicative_inverse(a):
    assert gf.mul(a, gf.inv(a)) == 1


@given(elements, elements, elements)
def test_distributivity(a, b, c):
    left = gf.mul(a, gf.add(b, c))
    right = gf.add(gf.mul(a, b), gf.mul(a, c))
    assert left == right


@given(nonzero, nonzero)
def test_no_zero_divisors(a, b):
    assert gf.mul(a, b) != 0


@given(elements, nonzero)
def test_division_is_multiplication_by_inverse(a, b):
    assert gf.div(a, b) == gf.mul(a, gf.inv(b))


@given(nonzero, st.integers(min_value=-20, max_value=20))
def test_pow_is_group_exponentiation(a, exponent):
    expected = 1
    base = a if exponent >= 0 else gf.inv(a)
    for _ in range(abs(exponent)):
        expected = gf.mul(expected, base)
    assert gf.pow(a, exponent) == expected


@given(arrays, arrays)
@settings(max_examples=50)
def test_array_ops_match_scalar_ops(xs, ys):
    length = min(xs.shape[0], ys.shape[0])
    xs, ys = xs[:length], ys[:length]
    products = gf.mul(xs, ys)
    sums = gf.add(xs, ys)
    for i in range(length):
        assert products[i] == gf.mul(int(xs[i]), int(ys[i]))
        assert sums[i] == gf.add(int(xs[i]), int(ys[i]))


@given(st.integers(min_value=0, max_value=255), arrays)
@settings(max_examples=50)
def test_scale_distributes_over_xor(coefficient, payload):
    doubled = gf.scale(coefficient, payload ^ payload)
    assert not doubled.any()
    split = gf.scale(coefficient, payload) ^ gf.scale(coefficient, payload)
    assert not split.any()
