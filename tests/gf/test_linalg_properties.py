"""Property-based tests for GF(2^8) linear algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.linalg import (
    gf_inv_matrix,
    gf_is_invertible,
    gf_matmul,
    gf_rank,
    gf_solve,
)

matrix_dims = st.integers(min_value=1, max_value=6)


def random_matrix(seed, rows, cols):
    return np.random.default_rng(seed).integers(
        0, 256, size=(rows, cols), dtype=np.uint8
    )


@given(
    n=matrix_dims,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_inverse_roundtrips_when_invertible(n, seed):
    matrix = random_matrix(seed, n, n)
    if not gf_is_invertible(matrix):
        return
    inverse = gf_inv_matrix(matrix)
    assert np.array_equal(gf_matmul(matrix, inverse), np.eye(n, dtype=np.uint8))


@given(
    n=matrix_dims,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_rank_equals_n_iff_invertible(n, seed):
    matrix = random_matrix(seed, n, n)
    assert (gf_rank(matrix) == n) == gf_is_invertible(matrix)


@given(
    n=matrix_dims,
    m=matrix_dims,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_rank_bounded_and_product_rank_no_larger(n, m, seed):
    a = random_matrix(seed, n, m)
    rank = gf_rank(a)
    assert 0 <= rank <= min(n, m)
    b = random_matrix(seed + 1, m, m)
    assert gf_rank(gf_matmul(a, b)) <= rank


@given(
    n=matrix_dims,
    width=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_solve_recovers_solution(n, width, seed):
    a = random_matrix(seed, n, n)
    if not gf_is_invertible(a):
        return
    x = random_matrix(seed + 7, n, width)
    b = gf_matmul(a, x)
    assert np.array_equal(gf_solve(a, b), x)


@given(
    n=matrix_dims,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    row_factor=st.integers(min_value=1, max_value=255),
)
@settings(max_examples=40, deadline=None)
def test_duplicated_row_is_singular(n, seed, row_factor):
    from repro.gf.field import DEFAULT_FIELD

    if n < 2:
        return
    matrix = random_matrix(seed, n, n)
    matrix[1] = DEFAULT_FIELD.scale(row_factor, matrix[0])
    assert not gf_is_invertible(matrix)
