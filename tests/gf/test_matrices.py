"""Tests for structured code-construction matrices."""

from itertools import combinations

import numpy as np
import pytest

from repro.errors import CodeConstructionError
from repro.gf.linalg import gf_is_invertible
from repro.gf.matrices import (
    cauchy_matrix,
    systematic_generator_from_cauchy,
    systematic_generator_from_vandermonde,
    vandermonde_matrix,
)


def assert_mds_generator(generator, k):
    """Every k x k row-submatrix must be invertible."""
    n = generator.shape[0]
    for rows in combinations(range(n), k):
        assert gf_is_invertible(generator[list(rows)]), rows


class TestVandermonde:
    def test_shape_and_entries(self):
        matrix = vandermonde_matrix(4, 3)
        assert matrix.shape == (4, 3)
        assert matrix[0, 0] == 1  # 0^0 convention
        assert matrix[2, 1] == 2
        assert matrix[3, 2] == 5  # 3^2 = (x+1)^2 = x^2 + 1

    def test_first_column_is_ones(self):
        matrix = vandermonde_matrix(6, 4)
        assert np.all(matrix[:, 0] == 1)

    def test_custom_points(self):
        matrix = vandermonde_matrix(2, 2, points=[5, 9])
        assert matrix[0, 1] == 5 and matrix[1, 1] == 9

    def test_duplicate_points_rejected(self):
        with pytest.raises(CodeConstructionError):
            vandermonde_matrix(2, 2, points=[3, 3])

    def test_wrong_point_count_rejected(self):
        with pytest.raises(CodeConstructionError):
            vandermonde_matrix(3, 2, points=[1, 2])

    def test_too_many_rows_rejected(self):
        with pytest.raises(CodeConstructionError):
            vandermonde_matrix(257, 2)

    def test_square_invertible(self):
        assert gf_is_invertible(vandermonde_matrix(8, 8))


class TestCauchy:
    def test_shape(self):
        assert cauchy_matrix(4, 10).shape == (4, 10)

    def test_every_submatrix_invertible_small(self):
        matrix = cauchy_matrix(3, 5)
        for size in (1, 2, 3):
            for rows in combinations(range(3), size):
                for cols in combinations(range(5), size):
                    sub = matrix[np.ix_(rows, cols)]
                    assert gf_is_invertible(sub)

    def test_overlapping_points_rejected(self):
        with pytest.raises(CodeConstructionError):
            cauchy_matrix(2, 2, x_points=[0, 1], y_points=[1, 2])

    def test_wrong_counts_rejected(self):
        with pytest.raises(CodeConstructionError):
            cauchy_matrix(2, 2, x_points=[4, 5, 6], y_points=[0, 1])


class TestSystematicGenerators:
    @pytest.mark.parametrize(
        "builder",
        [systematic_generator_from_vandermonde, systematic_generator_from_cauchy],
    )
    def test_top_block_is_identity(self, builder):
        generator = builder(5, 3)
        assert np.array_equal(generator[:5], np.eye(5, dtype=np.uint8))

    @pytest.mark.parametrize(
        "builder",
        [systematic_generator_from_vandermonde, systematic_generator_from_cauchy],
    )
    @pytest.mark.parametrize("k,r", [(2, 2), (3, 2), (4, 3), (5, 4)])
    def test_mds_property_exhaustive(self, builder, k, r):
        assert_mds_generator(builder(k, r), k)

    @pytest.mark.parametrize(
        "builder",
        [systematic_generator_from_vandermonde, systematic_generator_from_cauchy],
    )
    def test_production_parameters_sampled(self, builder, rng):
        generator = builder(10, 4)
        assert np.array_equal(generator[:10], np.eye(10, dtype=np.uint8))
        # Exhaustive (10,4) MDS check lives in the RS tests; spot-check
        # 80 random 10-row subsets here.
        for _ in range(80):
            rows = rng.choice(14, size=10, replace=False)
            assert gf_is_invertible(generator[np.sort(rows)])

    @pytest.mark.parametrize(
        "builder",
        [systematic_generator_from_vandermonde, systematic_generator_from_cauchy],
    )
    def test_invalid_parameters(self, builder):
        with pytest.raises(CodeConstructionError):
            builder(0, 2)
        with pytest.raises(CodeConstructionError):
            builder(-1, 2)
        with pytest.raises(CodeConstructionError):
            builder(250, 10)

    def test_parity_rows_dense(self):
        # No parity coefficient should be zero for the Vandermonde
        # construction at production parameters (a zero would mean a
        # data unit not covered by that parity).
        generator = systematic_generator_from_vandermonde(10, 4)
        assert np.all(generator[10:] != 0)
