"""Kernel-backend engine: selection rules and oracle equivalence.

Three contracts:

- **Selection is loud where it must be**: junk ``REPRO_GF_BACKEND``
  values and explicit requests for unavailable backends raise
  :class:`ConfigError` (the ``REPRO_PARALLEL`` convention); silent
  fallthrough happens only in auto mode.
- **Every available backend is byte-identical to the numpy oracle** at
  the ``scale``/``dot``/``matmul`` kernel layer and at the
  ``parity_batch``/``decode_batch`` codec layer, across
  hypothesis-generated inputs including the 0/1/255 boundary elements.
- **Codec objects pickle across backends**: ``__getstate__`` drops
  backend handles and memoised plans, so a codec pickled under one
  backend rehydrates cleanly under another (the process-pool pipeline
  depends on this).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BackendUnavailable, ConfigError
from repro.gf import backends
from repro.gf.backends import (
    AUTO_ORDER,
    BACKEND_ENV,
    backend_env_choice,
    backend_statuses,
    select_backend,
    use_backend,
)
from repro.gf.field import DEFAULT_FIELD

gf = DEFAULT_FIELD

AVAILABLE = [
    name
    for name, status in backend_statuses().items()
    if status.startswith("available")
]
NATIVE_AVAILABLE = [n for n in AVAILABLE if n != "numpy"]

elements = st.integers(min_value=0, max_value=255)
edge_biased = st.one_of(st.sampled_from([0, 1, 255]), elements)


@pytest.fixture(autouse=True)
def _restore_selection():
    yield
    backends.reset_backend_state()


# ----------------------------------------------------------------------
# Selection rules
# ----------------------------------------------------------------------


class TestEnvChoice:
    def test_unset_empty_and_auto_mean_auto(self):
        assert backend_env_choice({}) is None
        assert backend_env_choice({BACKEND_ENV: ""}) is None
        assert backend_env_choice({BACKEND_ENV: "auto"}) is None

    def test_valid_names_pass_through(self):
        for name in ("numpy", "cffi", "numba"):
            assert backend_env_choice({BACKEND_ENV: name}) == name

    @pytest.mark.parametrize(
        "junk", ["fast", "NUMPY", "cffi ", "1", "yes", "native"]
    )
    def test_junk_rejected_loudly(self, junk):
        with pytest.raises(ConfigError, match="REPRO_GF_BACKEND"):
            backend_env_choice({BACKEND_ENV: junk})

    def test_junk_env_rejected_at_selection(self):
        with pytest.raises(ConfigError):
            select_backend(env={BACKEND_ENV: "turbo"})


class TestExplicitRequests:
    def test_numpy_always_selectable(self):
        backend = select_backend("numpy")
        assert backend.name == "numpy"
        assert not backend.is_native

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown GF backend"):
            select_backend("simd")

    def test_explicitly_requested_unavailable_backend_is_loud(
        self, monkeypatch
    ):
        # Force the probe to fail regardless of what this host has.
        monkeypatch.setitem(
            backends._failures, "cffi", "forced unavailable (test)"
        )
        monkeypatch.delitem(backends._instances, "cffi", raising=False)
        with pytest.raises(ConfigError, match="requested explicitly"):
            select_backend("cffi")
        with pytest.raises(ConfigError, match="requested explicitly"):
            select_backend(env={BACKEND_ENV: "cffi"})

    def test_unavailable_numba_reports_reason(self):
        statuses = backend_statuses()
        if statuses["numba"].startswith("available"):
            pytest.skip("numba installed on this host")
        with pytest.raises(ConfigError, match="unavailable"):
            select_backend("numba")


class TestAutoFallback:
    def test_auto_falls_back_to_numpy_when_native_tiers_fail(
        self, monkeypatch
    ):
        # Auto-mode semantics: clear any CI pin of the backend env var.
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        for name in AUTO_ORDER:
            if name == "numpy":
                continue
            monkeypatch.setitem(
                backends._failures, name, "forced unavailable (test)"
            )
            monkeypatch.delitem(backends._instances, name, raising=False)
        backends.reset_backend_state()
        assert backends.active_backend().name == "numpy"
        assert backends.native_backend() is None

    def test_auto_prefers_the_fastest_available_tier(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        backends.reset_backend_state()
        expected = next(n for n in AUTO_ORDER if n in AVAILABLE)
        assert backends.active_backend().name == expected

    def test_statuses_cover_every_tier(self):
        statuses = backend_statuses()
        assert set(statuses) == set(AUTO_ORDER)
        assert statuses["numpy"].startswith("available")

    def test_use_backend_restores_previous_selection(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        backends.reset_backend_state()
        before = backends.active_backend().name
        with use_backend("numpy") as pinned:
            assert pinned.name == "numpy"
            assert backends.active_backend().name == "numpy"
        assert backends.active_backend().name == before

    def test_backend_unavailable_is_an_exception_type(self):
        assert issubclass(BackendUnavailable, Exception)


# ----------------------------------------------------------------------
# Oracle equivalence (kernel layer)
# ----------------------------------------------------------------------


def _payload(draw_list):
    return np.array(draw_list, dtype=np.uint8)


payloads = st.lists(edge_biased, min_size=1, max_size=5000).map(_payload)


@pytest.mark.parametrize("name", NATIVE_AVAILABLE or ["numpy"])
class TestKernelOracleEquivalence:
    """scale/dot/matmul agree with the numpy oracle byte for byte.

    Payloads cross :data:`~repro.gf.field.NATIVE_MIN_BYTES` in the
    dedicated large-size test so both the dispatch and fallback sides
    of the size gate are exercised.
    """

    @given(coefficient=edge_biased, payload=payloads)
    @settings(max_examples=30, deadline=None)
    def test_scale(self, name, coefficient, payload):
        with use_backend("numpy"):
            expected = gf.scale(coefficient, payload)
        with use_backend(name):
            assert np.array_equal(gf.scale(coefficient, payload), expected)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=6),
        length=st.sampled_from([1, 7, 63, 64, 4095, 4096, 10001]),
    )
    @settings(max_examples=30, deadline=None)
    def test_dot_and_matmul(self, name, seed, n, length):
        rng = np.random.default_rng(seed)
        coefficients = rng.integers(0, 256, n, dtype=np.uint8)
        rows = rng.integers(0, 256, (n, length), dtype=np.uint8)
        a = rng.integers(0, 256, (3, n), dtype=np.uint8)
        with use_backend("numpy"):
            expected_dot = gf.dot(coefficients, list(rows))
            expected_mm = gf.matmul(a, list(rows))
        with use_backend(name):
            assert np.array_equal(gf.dot(coefficients, list(rows)), expected_dot)
            assert np.array_equal(gf.matmul(a, list(rows)), expected_mm)

    def test_large_payload_crosses_native_threshold(self, name):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 256, (4, 1 << 16), dtype=np.uint8)
        a = rng.integers(0, 256, (3, 4), dtype=np.uint8)
        with use_backend("numpy"):
            expected = gf.matmul(a, list(rows))
        with use_backend(name):
            assert np.array_equal(gf.matmul(a, list(rows)), expected)


# ----------------------------------------------------------------------
# Oracle equivalence (codec layer)
# ----------------------------------------------------------------------


def _codes():
    from repro.codes.crs import CauchyBitmatrixRSCode
    from repro.codes.rs import ReedSolomonCode

    return [ReedSolomonCode(4, 2), CauchyBitmatrixRSCode(4, 2)]


@pytest.mark.parametrize("name", NATIVE_AVAILABLE or ["numpy"])
class TestCodecOracleEquivalence:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_parity_and_decode_batch(self, name, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (3, 4, 64), dtype=np.uint8)
        for code_builder in _codes():
            with use_backend("numpy"):
                code = type(code_builder)(4, 2)
                expected_parity = code.parity_batch(data)
                stripe = np.concatenate([data, expected_parity], axis=1)
                available = {
                    i: stripe[:, i, :] for i in (1, 3, 4, 5)
                }
                expected_decode = code.decode_batch(available)
            with use_backend(name):
                code = type(code_builder)(4, 2)
                assert np.array_equal(code.parity_batch(data), expected_parity)
                assert np.array_equal(
                    code.decode_batch(available), expected_decode
                )


# ----------------------------------------------------------------------
# Pickling across backends
# ----------------------------------------------------------------------


class TestPicklingAcrossBackends:
    """Codecs pickle under any backend and rehydrate under any other.

    ``__getstate__`` must drop backend handles (cffi owns C pointers)
    and memoised plans; the pipeline pickles codes into pool workers
    that may auto-select a different backend than the parent.
    """

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_codes_pickle_after_hot_use(self, name):
        from repro.codes.crs import CauchyBitmatrixRSCode
        from repro.codes.rs import ReedSolomonCode

        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, (4, 64), dtype=np.uint8)
        with use_backend(name):
            for code in (ReedSolomonCode(4, 2), CauchyBitmatrixRSCode(4, 2)):
                stripe = code.encode(data)  # warms plans/schedules
                blob = pickle.dumps(code)
                clone = pickle.loads(blob)
                assert np.array_equal(clone.encode(data), stripe)
                survivors = {i: stripe[i] for i in (0, 2, 4, 5)}
                assert np.array_equal(clone.decode(survivors), data)

    @pytest.mark.parametrize("source", AVAILABLE)
    @pytest.mark.parametrize("target", AVAILABLE)
    def test_pickled_under_one_backend_decodes_under_another(
        self, source, target
    ):
        from repro.codes.rs import ReedSolomonCode

        rng = np.random.default_rng(4)
        data = rng.integers(0, 256, (4, 4096), dtype=np.uint8)
        with use_backend(source):
            code = ReedSolomonCode(4, 2)
            stripe = code.encode(data)
            blob = pickle.dumps(code)
        with use_backend(target):
            clone = pickle.loads(blob)
            assert np.array_equal(clone.encode(data), stripe)

    def test_packed_matmul_pickles_without_backend_handle(
        self, monkeypatch
    ):
        from repro.gf.packed import PackedMatmul

        # Not a selection test: a broken env pin must not mask it.
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        backends.reset_backend_state()
        rng = np.random.default_rng(5)
        matrix = rng.integers(0, 256, (2, 4), dtype=np.uint8)
        rows = [rng.integers(0, 256, 4096, dtype=np.uint8) for _ in range(4)]
        out = [np.empty(4096, dtype=np.uint8) for _ in range(2)]
        plan = PackedMatmul(matrix, gf)
        plan.apply(rows, out)
        clone = pickle.loads(pickle.dumps(plan))
        out2 = [np.empty(4096, dtype=np.uint8) for _ in range(2)]
        clone.apply(rows, out2)
        assert all(np.array_equal(a, b) for a, b in zip(out, out2))
