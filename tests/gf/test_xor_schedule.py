"""XOR-schedule compiler: oracle equivalence and cost guarantees.

The compiled schedule must be byte-identical to
:func:`repro.gf.bitmatrix.xor_encode_strips` (the retained naive
gather) on every binary matrix, and its CSE pass must never *increase*
the XOR count.  Hypothesis drives random matrices including all-zero
rows (empty schedules), duplicate rows (maximal sharing) and single-row
matrices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf.bitmatrix import W, xor_encode_strips
from repro.gf.xor_schedule import XorSchedule, compile_xor_schedule


def random_binary_matrix(rng, out_rows, in_rows, density):
    return (rng.random((out_rows, in_rows)) < density).astype(np.uint8)


matrix_params = st.tuples(
    st.integers(min_value=1, max_value=24),  # out rows
    st.integers(min_value=1, max_value=24),  # in rows
    st.sampled_from([0.0, 0.1, 0.3, 0.5, 0.9, 1.0]),  # density
    st.integers(min_value=0, max_value=2**32 - 1),  # seed
)


@given(params=matrix_params, length=st.sampled_from([1, 3, 64, 257]))
@settings(max_examples=60, deadline=None)
def test_schedule_matches_naive_gather(params, length):
    out_rows, in_rows, density, seed = params
    rng = np.random.default_rng(seed)
    matrix = random_binary_matrix(rng, out_rows, in_rows, density)
    strips = rng.integers(0, 256, (in_rows, length), dtype=np.uint8)
    schedule = compile_xor_schedule(matrix)
    expected = xor_encode_strips(matrix, strips)
    assert np.array_equal(schedule.apply(strips), expected)


@given(params=matrix_params)
@settings(max_examples=60, deadline=None)
def test_cse_never_increases_xor_count(params):
    out_rows, in_rows, density, seed = params
    rng = np.random.default_rng(seed)
    matrix = random_binary_matrix(rng, out_rows, in_rows, density)
    schedule = compile_xor_schedule(matrix)
    assert schedule.scheduled_xors <= schedule.raw_xors
    assert schedule.raw_xors == max(
        int(matrix.sum()) - int((matrix.sum(axis=1) > 0).sum()), 0
    )


def test_duplicate_rows_share_work():
    """Identical dense rows must collapse to shared temporaries."""
    row = np.ones(16, dtype=np.uint8)
    matrix = np.vstack([row] * 6)
    schedule = compile_xor_schedule(matrix)
    # Naive: 6 rows x 15 XORs; shared: one chain + cheap reuse.
    assert schedule.raw_xors == 90
    assert schedule.scheduled_xors < 30


def test_zero_rows_produce_zero_strips():
    matrix = np.zeros((3, 5), dtype=np.uint8)
    schedule = compile_xor_schedule(matrix)
    strips = np.arange(5 * 8, dtype=np.uint8).reshape(5, 8)
    out = schedule.apply(strips)
    assert not out.any()
    assert schedule.raw_xors == schedule.scheduled_xors == 0


def test_apply_into_preallocated_out():
    rng = np.random.default_rng(11)
    matrix = random_binary_matrix(rng, 4, 6, 0.5)
    strips = rng.integers(0, 256, (6, 32), dtype=np.uint8)
    schedule = compile_xor_schedule(matrix)
    out = np.empty((4, 32), dtype=np.uint8)
    returned = schedule.apply(strips, out=out)
    assert returned is out
    assert np.array_equal(out, xor_encode_strips(matrix, strips))


def test_shape_validation_is_loud():
    schedule = compile_xor_schedule(np.ones((2, 3), dtype=np.uint8))
    with pytest.raises(FieldError):
        schedule.apply(np.zeros((4, 8), dtype=np.uint8))
    with pytest.raises(FieldError):
        schedule.apply(
            np.zeros((3, 8), dtype=np.uint8),
            out=np.zeros((2, 9), dtype=np.uint8),
        )
    with pytest.raises(FieldError):
        compile_xor_schedule(np.zeros(4, dtype=np.uint8))


def test_schedule_is_deterministic():
    rng = np.random.default_rng(7)
    matrix = random_binary_matrix(rng, 16, 16, 0.4)
    a = compile_xor_schedule(matrix)
    b = compile_xor_schedule(matrix)
    assert a == b


def test_schedules_are_picklable():
    import pickle

    rng = np.random.default_rng(9)
    matrix = random_binary_matrix(rng, 8, 8, 0.5)
    strips = rng.integers(0, 256, (8, 64), dtype=np.uint8)
    schedule = compile_xor_schedule(matrix)
    clone = pickle.loads(pickle.dumps(schedule))
    assert isinstance(clone, XorSchedule)
    assert np.array_equal(clone.apply(strips), schedule.apply(strips))


def test_crs_generator_schedule_beats_naive_cost():
    """The real Cauchy matrix must benefit measurably from CSE."""
    from repro.codes.crs import CauchyBitmatrixRSCode

    code = CauchyBitmatrixRSCode(10, 4)
    schedule = code._encode_schedule()
    assert schedule.in_rows == 10 * W
    assert schedule.out_rows == 4 * W
    assert schedule.scheduled_xors < 0.7 * schedule.raw_xors


def test_crs_schedule_cache_hits_are_counted():
    from repro import observability
    from repro.codes.crs import CauchyBitmatrixRSCode

    observability.set_enabled(True)
    observability.reset()
    try:
        code = CauchyBitmatrixRSCode(4, 2)
        first = code._encode_schedule()
        second = code._encode_schedule()
        assert first is second
        registry = observability.get_registry()
        assert registry.counter_value("cache.xor_schedule.misses") == 1
        assert registry.counter_value("cache.xor_schedule.hits") == 1
        assert registry.counter_value("gf.xor_schedule.compiled") == 1
    finally:
        observability.set_enabled(None)
