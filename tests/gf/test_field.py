"""Tests for vectorised GF(2^8) operations."""

import numpy as np
import pytest

from repro.errors import FieldError
from repro.gf.field import DEFAULT_FIELD, GF256

gf = DEFAULT_FIELD


class TestScalarOps:
    def test_add_is_xor(self):
        assert gf.add(0x53, 0xCA) == 0x53 ^ 0xCA

    def test_sub_equals_add(self):
        assert gf.sub(7, 3) == gf.add(7, 3)

    def test_mul_by_zero(self):
        assert gf.mul(0, 123) == 0
        assert gf.mul(123, 0) == 0

    def test_mul_by_one(self):
        for a in (1, 2, 91, 255):
            assert gf.mul(a, 1) == a

    def test_mul_by_two_is_carryless_double(self):
        assert gf.mul(2, 0x80) == (0x100 ^ 0x11D)

    def test_div_inverts_mul(self):
        for a in (1, 7, 130, 255):
            for b in (1, 3, 200):
                assert gf.div(gf.mul(a, b), b) == a

    def test_div_by_zero_raises(self):
        with pytest.raises(FieldError):
            gf.div(5, 0)

    def test_zero_divided_is_zero(self):
        assert gf.div(0, 77) == 0

    def test_inv_roundtrip(self):
        for a in range(1, 256):
            assert gf.mul(a, gf.inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(FieldError):
            gf.inv(0)

    def test_pow_zero_exponent(self):
        assert gf.pow(0, 0) == 1
        assert gf.pow(17, 0) == 1

    def test_pow_matches_repeated_mul(self):
        value = 1
        for exponent in range(1, 10):
            value = gf.mul(value, 29)
            assert gf.pow(29, exponent) == value

    def test_pow_negative(self):
        assert gf.pow(29, -1) == gf.inv(29)
        assert gf.pow(29, -3) == gf.inv(gf.pow(29, 3))

    def test_pow_of_zero(self):
        assert gf.pow(0, 5) == 0

    def test_exp_log_roundtrip(self):
        for a in (1, 2, 100, 255):
            assert gf.exp(gf.log(a)) == a

    def test_log_zero_raises(self):
        with pytest.raises(FieldError):
            gf.log(0)

    def test_out_of_range_rejected(self):
        with pytest.raises(FieldError):
            gf.mul(300, 1)
        with pytest.raises(FieldError):
            gf.add(-1, 1)


class TestArrayOps:
    def test_add_arrays(self, rng):
        a = rng.integers(0, 256, 100, dtype=np.uint8)
        b = rng.integers(0, 256, 100, dtype=np.uint8)
        assert np.array_equal(gf.add(a, b), a ^ b)

    def test_mul_broadcasts_scalar(self, rng):
        a = rng.integers(0, 256, 100, dtype=np.uint8)
        result = gf.mul(a, 3)
        expected = np.array([gf.mul(int(x), 3) for x in a], dtype=np.uint8)
        assert np.array_equal(result, expected)

    def test_mul_handles_zeros_in_arrays(self):
        a = np.array([0, 1, 2, 0], dtype=np.uint8)
        b = np.array([5, 0, 3, 0], dtype=np.uint8)
        result = gf.mul(a, b)
        assert result[0] == 0 and result[1] == 0 and result[3] == 0
        assert result[2] == gf.mul(2, 3)

    def test_div_arrays(self, rng):
        a = rng.integers(0, 256, 50, dtype=np.uint8)
        b = rng.integers(1, 256, 50, dtype=np.uint8)
        quotient = gf.div(a, b)
        assert np.array_equal(gf.mul(quotient, b), a)

    def test_returns_python_int_for_scalars(self):
        assert isinstance(gf.mul(3, 5), int)
        assert isinstance(gf.add(3, 5), int)

    def test_returns_array_for_arrays(self):
        result = gf.mul(np.array([1, 2], dtype=np.uint8), 3)
        assert isinstance(result, np.ndarray)


class TestBulkHelpers:
    def test_scale_zero_coefficient(self, rng):
        payload = rng.integers(0, 256, 64, dtype=np.uint8)
        assert not gf.scale(0, payload).any()

    def test_scale_one_is_copy(self, rng):
        payload = rng.integers(0, 256, 64, dtype=np.uint8)
        scaled = gf.scale(1, payload)
        assert np.array_equal(scaled, payload)
        assert scaled is not payload

    def test_scale_matches_mul(self, rng):
        payload = rng.integers(0, 256, 64, dtype=np.uint8)
        assert np.array_equal(gf.scale(7, payload), gf.mul(payload, 7))

    def test_scale_invalid_coefficient(self):
        with pytest.raises(FieldError):
            gf.scale(256, np.zeros(4, dtype=np.uint8))

    def test_addmul_in_place(self, rng):
        acc = rng.integers(0, 256, 32, dtype=np.uint8)
        payload = rng.integers(0, 256, 32, dtype=np.uint8)
        expected = acc ^ gf.scale(9, payload)
        gf.addmul(acc, 9, payload)
        assert np.array_equal(acc, expected)

    def test_addmul_shape_mismatch(self):
        with pytest.raises(FieldError):
            gf.addmul(
                np.zeros(4, dtype=np.uint8), 1, np.zeros(5, dtype=np.uint8)
            )

    def test_dot_linear_combination(self, rng):
        payloads = rng.integers(0, 256, size=(3, 16), dtype=np.uint8)
        coefficients = np.array([1, 2, 3], dtype=np.uint8)
        expected = (
            payloads[0]
            ^ gf.scale(2, payloads[1])
            ^ gf.scale(3, payloads[2])
        )
        assert np.array_equal(gf.dot(coefficients, payloads), expected)

    def test_dot_count_mismatch(self, rng):
        with pytest.raises(FieldError):
            gf.dot(
                np.array([1, 2], dtype=np.uint8),
                rng.integers(0, 256, size=(3, 4), dtype=np.uint8),
            )

    def test_dot_requires_2d_payloads(self):
        with pytest.raises(FieldError):
            gf.dot(np.array([1], dtype=np.uint8), np.zeros(4, dtype=np.uint8))


class TestFieldIdentity:
    def test_equality_by_polynomial(self):
        assert GF256() == GF256()
        assert GF256(0x12B) != GF256()

    def test_hashable(self):
        assert len({GF256(), GF256(), GF256(0x12B)}) == 2

    def test_repr_mentions_polynomial(self):
        assert "0x11d" in repr(GF256())

    def test_different_polynomial_different_arithmetic(self):
        other = GF256(0x12B)
        assert other.mul(2, 0x80) == (0x100 ^ 0x12B)
