"""Tests for GF(2^8) linear algebra."""

import numpy as np
import pytest

from repro.errors import LinearAlgebraError
from repro.gf.field import DEFAULT_FIELD
from repro.gf.linalg import (
    gf_inv_matrix,
    gf_is_invertible,
    gf_matmul,
    gf_rank,
    gf_solve,
)

gf = DEFAULT_FIELD


def random_matrix(rng, rows, cols):
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


def random_invertible(rng, n):
    while True:
        matrix = random_matrix(rng, n, n)
        if gf_is_invertible(matrix):
            return matrix


class TestMatmul:
    def test_identity(self, rng):
        matrix = random_matrix(rng, 5, 7)
        identity = np.eye(5, dtype=np.uint8)
        assert np.array_equal(gf_matmul(identity, matrix), matrix)

    def test_zero(self, rng):
        matrix = random_matrix(rng, 4, 4)
        zero = np.zeros((4, 4), dtype=np.uint8)
        assert not gf_matmul(zero, matrix).any()

    def test_associativity(self, rng):
        a = random_matrix(rng, 3, 4)
        b = random_matrix(rng, 4, 5)
        c = random_matrix(rng, 5, 2)
        left = gf_matmul(gf_matmul(a, b), c)
        right = gf_matmul(a, gf_matmul(b, c))
        assert np.array_equal(left, right)

    def test_manual_2x2(self):
        a = np.array([[1, 2], [0, 1]], dtype=np.uint8)
        b = np.array([[3, 0], [1, 1]], dtype=np.uint8)
        expected = np.array(
            [
                [gf.add(3, gf.mul(2, 1)), gf.mul(2, 1)],
                [1, 1],
            ],
            dtype=np.uint8,
        )
        assert np.array_equal(gf_matmul(a, b), expected)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(LinearAlgebraError):
            gf_matmul(random_matrix(rng, 2, 3), random_matrix(rng, 4, 2))

    def test_wide_payload(self, rng):
        matrix = random_matrix(rng, 3, 3)
        payload = random_matrix(rng, 3, 10_000)
        result = gf_matmul(matrix, payload)
        assert result.shape == (3, 10_000)
        # spot-check one column
        col = 1234
        for i in range(3):
            expected = 0
            for j in range(3):
                expected ^= gf.mul(int(matrix[i, j]), int(payload[j, col]))
            assert result[i, col] == expected


class TestInverse:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 10])
    def test_inverse_roundtrip(self, rng, n):
        matrix = random_invertible(rng, n)
        inverse = gf_inv_matrix(matrix)
        assert np.array_equal(
            gf_matmul(matrix, inverse), np.eye(n, dtype=np.uint8)
        )
        assert np.array_equal(
            gf_matmul(inverse, matrix), np.eye(n, dtype=np.uint8)
        )

    def test_identity_inverse(self):
        identity = np.eye(4, dtype=np.uint8)
        assert np.array_equal(gf_inv_matrix(identity), identity)

    def test_singular_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(LinearAlgebraError):
            gf_inv_matrix(singular)

    def test_zero_matrix_raises(self):
        with pytest.raises(LinearAlgebraError):
            gf_inv_matrix(np.zeros((3, 3), dtype=np.uint8))

    def test_non_square_raises(self):
        with pytest.raises(LinearAlgebraError):
            gf_inv_matrix(np.zeros((2, 3), dtype=np.uint8))

    def test_does_not_mutate_input(self, rng):
        matrix = random_invertible(rng, 4)
        copy = matrix.copy()
        gf_inv_matrix(matrix)
        assert np.array_equal(matrix, copy)


class TestRank:
    def test_full_rank(self, rng):
        assert gf_rank(random_invertible(rng, 6)) == 6

    def test_rank_deficient(self):
        matrix = np.array([[1, 2, 3], [2, 4, 6], [0, 0, 1]], dtype=np.uint8)
        # row 2 = 2 * row 1 over GF(256): 2*2=4, 2*3=6.
        assert gf_rank(matrix) == 2

    def test_zero_matrix(self):
        assert gf_rank(np.zeros((3, 5), dtype=np.uint8)) == 0

    def test_rectangular(self, rng):
        tall = random_matrix(rng, 8, 3)
        assert gf_rank(tall) <= 3

    def test_rank_invariant_under_row_scaling(self, rng):
        matrix = random_matrix(rng, 4, 4)
        scaled = matrix.copy()
        scaled[0] = gf.scale(7, scaled[0])
        assert gf_rank(matrix) == gf_rank(scaled)


class TestSolve:
    def test_solve_vector(self, rng):
        a = random_invertible(rng, 5)
        x = rng.integers(0, 256, 5, dtype=np.uint8)
        b = gf_matmul(a, x.reshape(-1, 1))[:, 0]
        solved = gf_solve(a, b)
        assert np.array_equal(solved, x)

    def test_solve_matrix(self, rng):
        a = random_invertible(rng, 4)
        x = random_matrix(rng, 4, 100)
        b = gf_matmul(a, x)
        assert np.array_equal(gf_solve(a, b), x)

    def test_shape_mismatch(self, rng):
        with pytest.raises(LinearAlgebraError):
            gf_solve(random_invertible(rng, 3), np.zeros(4, dtype=np.uint8))


class TestIsInvertible:
    def test_non_square_false(self):
        assert not gf_is_invertible(np.zeros((2, 3), dtype=np.uint8))

    def test_singular_false(self):
        assert not gf_is_invertible(np.array([[1, 1], [1, 1]], dtype=np.uint8))

    def test_identity_true(self):
        assert gf_is_invertible(np.eye(7, dtype=np.uint8))
