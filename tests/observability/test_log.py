"""Tests for the structured logger."""

import logging

import pytest

from repro.errors import ConfigError
from repro.observability import LOG_ENV, get_logger, log_env_level
from repro.observability.log import format_event


class TestEnvLevel:
    def test_default_is_warning(self):
        assert log_env_level({}) == logging.WARNING
        assert log_env_level({LOG_ENV: ""}) == logging.WARNING

    @pytest.mark.parametrize(
        "name,level",
        [
            ("debug", logging.DEBUG),
            ("info", logging.INFO),
            ("warning", logging.WARNING),
            ("ERROR", logging.ERROR),  # case-insensitive
        ],
    )
    def test_named_levels(self, name, level):
        assert log_env_level({LOG_ENV: name}) == level

    def test_junk_rejected_loudly(self):
        with pytest.raises(ConfigError):
            log_env_level({LOG_ENV: "verbose"})


class TestFormatEvent:
    def test_bare_event(self):
        assert format_event("thing-happened", {}) == "thing-happened"

    def test_fields_in_insertion_order(self):
        line = format_event("overflow", {"days": 3, "bytes": 10})
        assert line == "overflow days=3 bytes=10"

    def test_values_are_reprs(self):
        assert format_event("e", {"name": "x y"}) == "e name='x y'"


class TestGetLogger:
    def test_namespaced_under_repro(self, caplog):
        logger = get_logger("network")
        with caplog.at_level(logging.WARNING, logger="repro.network"):
            logger.warning("dropped", count=2)
        assert caplog.records[-1].name == "repro.network"
        assert caplog.records[-1].message == "dropped count=2"

    def test_repro_prefix_not_doubled(self, caplog):
        logger = get_logger("repro.pipeline")
        with caplog.at_level(logging.WARNING, logger="repro.pipeline"):
            logger.warning("stalled")
        assert caplog.records[-1].name == "repro.pipeline"

    def test_below_level_is_cheap_noop(self, caplog):
        logger = get_logger("quiet")
        with caplog.at_level(logging.WARNING, logger="repro.quiet"):
            logger.debug("invisible", huge_field=object())
        assert not caplog.records

    def test_warnings_survive_metrics_kill_switch(
        self, disabled_metrics, caplog
    ):
        # The logger is deliberately independent of REPRO_METRICS:
        # disabling metrics must not disable dropped-data warnings.
        logger = get_logger("network")
        with caplog.at_level(logging.WARNING, logger="repro.network"):
            logger.warning("traffic-series-overflow", spilled_bytes=7)
        assert "spilled_bytes=7" in caplog.records[-1].message
