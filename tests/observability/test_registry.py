"""Tests for the metrics registry core."""

import json

import pytest

from repro import observability
from repro.errors import ConfigError
from repro.observability import (
    METRICS_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    metrics_env_enabled,
    write_snapshot,
)


class TestEnvSwitch:
    @pytest.mark.parametrize("value", [None, "", "1"])
    def test_enabled_values(self, value):
        env = {} if value is None else {METRICS_ENV: value}
        assert metrics_env_enabled(env) is True

    def test_disabled(self):
        assert metrics_env_enabled({METRICS_ENV: "0"}) is False

    @pytest.mark.parametrize("junk", ["yes", "true", "2", "off", " 1"])
    def test_junk_rejected_loudly(self, junk):
        with pytest.raises(ConfigError):
            metrics_env_enabled({METRICS_ENV: junk})

    def test_set_enabled_overrides(self, registry):
        assert metrics() is registry
        observability.set_enabled(False)
        assert metrics() is None
        observability.set_enabled(True)
        assert metrics() is registry


class TestCounter:
    def test_exact_integer_semantics(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert isinstance(counter.value, int)

    def test_floats_rejected(self):
        counter = Counter("c")
        with pytest.raises(TypeError):
            counter.inc(1.5)

    def test_large_values_stay_exact(self):
        counter = Counter("c")
        big = 2**62 + 1
        counter.inc(big)
        counter.inc(big)
        assert counter.value == 2 * big  # no float rounding, ever


class TestGaugeHistogram:
    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_histogram_aggregates(self):
        hist = Histogram("h")
        for value in (1, 2, 3, 10):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 16
        assert hist.vmin == 1
        assert hist.vmax == 10
        assert hist.mean == 4.0

    def test_empty_histogram_mean(self):
        assert Histogram("h").mean == 0.0


class TestRegistry:
    def test_handles_are_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.span_stats("s") is reg.span_stats("s")

    def test_conveniences(self):
        reg = MetricsRegistry()
        reg.inc("c", 5)
        reg.set_gauge("g", 2)
        reg.observe("h", 0.5)
        assert reg.counter_value("c") == 5
        assert reg.counter_value("never-touched") == 0
        assert reg.gauges["g"].value == 2
        assert reg.histograms["h"].count == 1

    def test_snapshot_shape(self, registry):
        registry.inc("z.counter", 3)
        registry.inc("a.counter", 1)
        registry.set_gauge("g", 4)
        registry.observe("h", 2.0)
        snap = registry.snapshot()
        assert snap["enabled"] is True
        assert list(snap["counters"]) == ["a.counter", "z.counter"]
        assert snap["counters"]["z.counter"] == 3
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["mean"] == 2.0
        json.dumps(snap)  # JSON-safe end to end

    def test_reset(self, registry):
        registry.inc("c")
        observability.reset()
        assert registry.counter_value("c") == 0
        assert registry.snapshot()["counters"] == {}

    def test_write_snapshot_roundtrip(self, registry, tmp_path):
        registry.inc("bytes", 123456789)
        path = tmp_path / "metrics.json"
        snap = write_snapshot(str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(snap))
        assert on_disk["counters"]["bytes"] == 123456789


class TestDisabledPath:
    def test_metrics_returns_none(self, disabled_metrics):
        assert metrics() is None

    def test_registry_still_reachable_for_snapshots(self, disabled_metrics):
        snap = observability.get_registry().snapshot()
        assert snap["enabled"] is False
