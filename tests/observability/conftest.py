"""Shared fixtures: every test runs against a clean, enabled registry
and restores the env-driven state afterwards."""

import pytest

from repro import observability


@pytest.fixture
def registry():
    observability.set_enabled(True)
    observability.reset()
    yield observability.get_registry()
    observability.set_enabled(None)
    observability.reset()


@pytest.fixture
def disabled_metrics():
    observability.set_enabled(False)
    observability.reset()
    yield
    observability.set_enabled(None)
    observability.reset()
