"""End-to-end consistency: registry counters vs the numbers they mirror.

The acceptance bar for the observability layer is *bit-for-bit*
agreement: a counter that drifts from the meter it instruments is worse
than no counter.  These tests drive whole simulations across seeds and
assert exact integer equality against :class:`TrafficMeter` and
:class:`RecoveryStats`, plus byte-identical simulation output with the
``REPRO_METRICS=0`` kill switch thrown.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import observability
from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import WarehouseSimulation

SIM_KWARGS = dict(
    num_racks=15,
    nodes_per_rack=4,
    stripes_per_node=8.0,
    days=3.0,
)


def run_sim(seed: int):
    return WarehouseSimulation(ClusterConfig(seed=seed, **SIM_KWARGS)).run()


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_counters_match_meter_and_stats_exactly(seed):
    observability.set_enabled(True)
    observability.reset()
    try:
        result = run_sim(seed)
        registry = observability.get_registry()
        meter = result.meter
        stats = result.stats
        assert registry.counter_value("network.bytes") == meter.total_bytes
        assert (
            registry.counter_value("network.cross_rack_bytes")
            == meter.cross_rack_bytes
        )
        assert (
            registry.counter_value("network.intra_rack_bytes")
            == meter.intra_rack_bytes
        )
        assert (
            registry.counter_value("network.transfers")
            == meter.num_transfers
        )
        assert (
            registry.counter_value("recovery.blocks_recovered")
            == stats.blocks_recovered
        )
        assert (
            registry.counter_value("recovery.bytes_downloaded")
            == stats.bytes_downloaded
        )
        assert (
            registry.counter_value("recovery.unrecoverable_units")
            == stats.unrecoverable_units
        )
        # The daily series plus any overflow surfaced via metrics must
        # re-add to the meter's full cross-rack total -- nothing silent.
        assert (
            sum(result.cross_rack_bytes_per_day)
            + registry.counter_value("network.series_overflow_bytes")
            == meter.cross_rack_bytes
        )
    finally:
        observability.set_enabled(None)
        observability.reset()


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=6, deadline=None)
def test_kill_switch_leaves_simulation_output_identical(seed):
    try:
        observability.set_enabled(True)
        observability.reset()
        enabled_result = run_sim(seed)
        observability.set_enabled(False)
        observability.reset()
        disabled_result = run_sim(seed)
    finally:
        observability.set_enabled(None)
        observability.reset()
    assert (
        enabled_result.cross_rack_bytes_per_day
        == disabled_result.cross_rack_bytes_per_day
    )
    assert (
        enabled_result.blocks_recovered_per_day
        == disabled_result.blocks_recovered_per_day
    )
    assert (
        enabled_result.unavailability_events_per_day
        == disabled_result.unavailability_events_per_day
    )
    assert (
        enabled_result.meter.total_bytes == disabled_result.meter.total_bytes
    )
    assert (
        enabled_result.meter.cross_rack_bytes
        == disabled_result.meter.cross_rack_bytes
    )
    assert dict(enabled_result.meter.bytes_by_switch) == dict(
        disabled_result.meter.bytes_by_switch
    )
    assert (
        enabled_result.stats.bytes_downloaded
        == disabled_result.stats.bytes_downloaded
    )
    assert enabled_result.degraded_histogram == disabled_result.degraded_histogram


class TestEmitMetricsCli:
    def test_snapshot_counters_match_a_direct_run(self, tmp_path, monkeypatch):
        from repro.cli import main

        # Hermetic against an ambient kill switch: this test is about
        # the flag's default-on behaviour.
        monkeypatch.delenv(observability.METRICS_ENV, raising=False)
        observability.set_enabled(None)
        path = tmp_path / "metrics.json"
        argv = [
            "simulate",
            "--days", "2",
            "--stripes-per-node", "5",
            "--seed", "987",
            "--emit-metrics", str(path),
        ]
        try:
            assert main(argv) == 0
        finally:
            observability.set_enabled(None)
            observability.reset()
        snap = json.loads(path.read_text())
        assert snap["enabled"] is True
        # The oracle: the same config run directly, counters compared
        # bit-for-bit against its meter and stats.
        result = WarehouseSimulation(
            ClusterConfig(days=2.0, stripes_per_node=5.0, seed=987)
        ).run()
        counters = snap["counters"]
        assert counters["network.bytes"] == result.meter.total_bytes
        assert (
            counters["network.cross_rack_bytes"]
            == result.meter.cross_rack_bytes
        )
        assert (
            counters["recovery.bytes_downloaded"]
            == result.stats.bytes_downloaded
        )
        assert (
            counters["recovery.blocks_recovered"]
            == result.stats.blocks_recovered
        )
        assert counters["simulation.runs"] == 1

    def test_kill_switch_wins_over_flag(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv(observability.METRICS_ENV, "0")
        observability.set_enabled(None)  # drop any cached read
        path = tmp_path / "metrics.json"
        argv = [
            "simulate",
            "--days", "1",
            "--stripes-per-node", "2",
            "--emit-metrics", str(path),
        ]
        try:
            assert main(argv) == 0
        finally:
            observability.set_enabled(None)
            observability.reset()
        snap = json.loads(path.read_text())
        assert snap["enabled"] is False
        assert snap["counters"] == {}


def test_kill_switch_leaves_pipeline_output_identical():
    import numpy as np

    from repro.codes.rs import ReedSolomonCode
    from repro.striping.pipeline import encode_file

    data = np.random.default_rng(77).integers(
        0, 256, size=200_000, dtype=np.uint8
    )
    try:
        observability.set_enabled(True)
        observability.reset()
        enabled_run = encode_file(
            ReedSolomonCode(4, 2), data, 4096, parallel=True
        )
        observability.set_enabled(False)
        observability.reset()
        disabled_run = encode_file(
            ReedSolomonCode(4, 2), data, 4096, parallel=True
        )
    finally:
        observability.set_enabled(None)
        observability.reset()
    assert len(enabled_run.parities) == len(disabled_run.parities)
    for row_a, row_b in zip(enabled_run.parities, disabled_run.parities):
        for parity_a, parity_b in zip(row_a, row_b):
            assert parity_a.block_id == parity_b.block_id
            assert np.array_equal(parity_a.payload, parity_b.payload)
