"""Tests for span-based phase tracing."""

import pytest

from repro.observability import MetricsRegistry, Span, metrics, span
from repro.observability.tracing import _NULL_SPAN


class TestSpan:
    def test_records_into_registry(self, registry):
        with span("phase.a"):
            sum(range(1000))
        stats = registry.spans["phase.a"]
        assert stats.count == 1
        assert stats.wall_seconds >= 0.0
        assert stats.cpu_seconds >= 0.0
        assert stats.wall_max == stats.wall_seconds

    def test_aggregates_repeat_runs(self, registry):
        for _ in range(3):
            with span("phase.b"):
                pass
        assert registry.spans["phase.b"].count == 3

    def test_exception_propagates_but_still_records(self, registry):
        with pytest.raises(ValueError):
            with span("phase.fail"):
                raise ValueError("boom")
        assert registry.spans["phase.fail"].count == 1

    def test_explicit_registry(self):
        reg = MetricsRegistry()
        with span("private", registry=reg):
            pass
        assert reg.spans["private"].count == 1
        assert isinstance(span("private", registry=reg), Span)

    def test_wall_max_tracks_slowest(self, registry):
        stats = registry.span_stats("phase.max")
        stats.record(0.1, 0.1)
        stats.record(0.5, 0.4)
        stats.record(0.2, 0.1)
        assert stats.wall_max == 0.5
        assert stats.wall_seconds == pytest.approx(0.8)


class TestDisabledSpan:
    def test_null_span_shared_instance(self, disabled_metrics):
        assert metrics() is None
        assert span("anything") is _NULL_SPAN
        assert span("other") is _NULL_SPAN  # no allocation per call

    def test_null_span_is_noop_context(self, disabled_metrics):
        with span("anything"):
            value = 42
        assert value == 42

    def test_null_span_does_not_swallow_exceptions(self, disabled_metrics):
        with pytest.raises(RuntimeError):
            with span("anything"):
                raise RuntimeError("must escape")
