"""Tests for the bandwidth-limited recovery-time model."""

import pytest

from repro.analysis.recovery_time import GBPS, RecoveryTimeModel
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode

UNIT = 256 * 1024 * 1024


class TestPlanTime:
    def test_rs_time_components(self, rs_10_4):
        model = RecoveryTimeModel(
            download_bandwidth=GBPS,
            source_bandwidth=GBPS,
            disk_write_bandwidth=1e12,  # disk not the bottleneck
            connection_overhead=0.0,
        )
        time = model.code_recovery_time(rs_10_4, UNIT)
        assert time == pytest.approx(10 * UNIT / GBPS)

    def test_piggyback_faster_at_block_scale(self, rs_10_4, piggyback_10_4):
        """Section 3.2: fewer total bytes -> less time, despite more
        connections."""
        model = RecoveryTimeModel()
        rs_time = model.code_recovery_time(rs_10_4, UNIT)
        pb_time = model.code_recovery_time(piggyback_10_4, UNIT)
        assert pb_time < rs_time

    def test_connection_overhead_term(self, rs_10_4):
        slow = RecoveryTimeModel(connection_overhead=1.0)
        fast = RecoveryTimeModel(connection_overhead=0.0)
        delta = slow.code_recovery_time(rs_10_4, UNIT) - fast.code_recovery_time(
            rs_10_4, UNIT
        )
        assert delta == pytest.approx(10.0)  # 10 connections x 1 s

    def test_disk_bottleneck(self, rs_10_4):
        model = RecoveryTimeModel(
            download_bandwidth=1e15,
            source_bandwidth=1e15,
            disk_write_bandwidth=1e6,
            connection_overhead=0.0,
        )
        assert model.code_recovery_time(rs_10_4, UNIT) == pytest.approx(
            UNIT / 1e6
        )

    def test_slowest_source_bound(self, rs_10_4):
        model = RecoveryTimeModel(
            download_bandwidth=1e15,
            source_bandwidth=1e6,
            disk_write_bandwidth=1e15,
            connection_overhead=0.0,
        )
        # Each source ships one full unit at 1 MB/s.
        assert model.code_recovery_time(rs_10_4, UNIT) == pytest.approx(
            UNIT / 1e6
        )

    def test_average_recovery_time(self, piggyback_10_4):
        model = RecoveryTimeModel()
        average = model.average_recovery_time(piggyback_10_4, UNIT)
        fastest = model.code_recovery_time(piggyback_10_4, UNIT, failed_node=4)
        slowest = model.code_recovery_time(piggyback_10_4, UNIT, failed_node=10)
        assert fastest <= average <= slowest


class TestCrossover:
    def test_crossover_positive_and_large(self, rs_10_4, piggyback_10_4):
        model = RecoveryTimeModel()
        crossover = model.crossover_overhead(piggyback_10_4, rs_10_4, UNIT)
        assert crossover is not None
        # The claim breaks only at absurd per-connection costs
        # (seconds), far above real TCP/DN setup (milliseconds).
        assert crossover > 1.0

    def test_no_crossover_when_not_more_connections(self, rs_10_4):
        model = RecoveryTimeModel()
        assert model.crossover_overhead(rs_10_4, rs_10_4, UNIT) is None

    def test_describe_keys(self, rs_10_4):
        info = RecoveryTimeModel().describe(rs_10_4, UNIT)
        assert set(info) == {"connections", "download_MB", "time_s"}
        assert info["connections"] == 10
