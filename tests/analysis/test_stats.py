"""Tests for series statistics helpers."""

import pytest

from repro.analysis.stats import (
    histogram_fractions,
    relative_error,
    summarize_series,
    within_factor,
)


class TestSummarize:
    def test_basic(self):
        summary = summarize_series([1, 2, 3, 4, 5])
        assert summary.median == 3.0
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.count == 5

    def test_percentiles_ordered(self):
        summary = summarize_series(range(100))
        assert summary.p10 < summary.median < summary.p90

    def test_empty(self):
        summary = summarize_series([])
        assert summary.count == 0
        assert summary.median == 0.0

    def test_as_dict(self):
        d = summarize_series([2.0]).as_dict()
        assert d["median"] == 2.0 and d["count"] == 1


class TestRelativeError:
    def test_signed(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(-0.1)

    def test_zero_target(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == float("inf")


class TestWithinFactor:
    def test_inside(self):
        assert within_factor(95_500, 100_000, 1.5)
        assert within_factor(180, 200, 2.0)

    def test_outside(self):
        assert not within_factor(10, 100, 2.0)
        assert not within_factor(500, 100, 2.0)

    def test_symmetric(self):
        assert within_factor(50, 100, 2.0)
        assert within_factor(200, 100, 2.0)
        assert not within_factor(49, 100, 2.0)

    def test_degenerate(self):
        assert within_factor(0, 0, 2.0)
        assert not within_factor(0, 5, 2.0)


class TestHistogramFractions:
    def test_fractions(self):
        fractions = histogram_fractions({1: 98, 2: 2})
        assert fractions[1] == pytest.approx(0.98)
        assert fractions[2] == pytest.approx(0.02)

    def test_empty(self):
        assert histogram_fractions({}) == {}

    def test_sorted_keys(self):
        fractions = histogram_fractions({3: 1, 1: 1, 2: 1})
        assert list(fractions) == [1, 2, 3]
