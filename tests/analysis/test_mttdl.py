"""Tests for the Markov MTTDL model."""

import pytest

from repro.analysis.mttdl import (
    mttdl_comparison,
    mttdl_for_code,
    mttdl_markov,
)
from repro.analysis.recovery_time import RecoveryTimeModel
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.replication import ReplicationCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import ConfigError


class TestMarkovCore:
    def test_no_redundancy_closed_form(self):
        """r=0: MTTDL is just the first failure time 1/(n*lam)."""
        assert mttdl_markov(1, 0, 0.01, []) == pytest.approx(100.0)
        assert mttdl_markov(4, 0, 0.01, []) == pytest.approx(25.0)

    def test_mirrored_pair_closed_form(self):
        """n=2, r=1: MTTDL = 3/(2 lam) + mu/(2 lam^2) (standard RAID-1
        result)."""
        lam, mu = 0.001, 1.0
        expected = 3 / (2 * lam) + mu / (2 * lam**2)
        assert mttdl_markov(2, 1, lam, [mu]) == pytest.approx(expected)

    def test_faster_repair_longer_life(self):
        slow = mttdl_markov(14, 4, 1e-4, [0.1] * 4)
        fast = mttdl_markov(14, 4, 1e-4, [1.0] * 4)
        assert fast > slow

    def test_more_parity_longer_life(self):
        r3 = mttdl_markov(13, 3, 1e-4, [1.0] * 3)
        r4 = mttdl_markov(14, 4, 1e-4, [1.0] * 4)
        assert r4 > r3

    def test_zero_repair_rate_allowed(self):
        """With no repair, MTTDL is the time to r+1 failures."""
        lam = 0.01
        value = mttdl_markov(3, 1, lam, [0.0])
        expected = 1 / (3 * lam) + 1 / (2 * lam)
        assert value == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigError):
            mttdl_markov(0, 0, 0.1, [])
        with pytest.raises(ConfigError):
            mttdl_markov(4, 4, 0.1, [1.0] * 4)  # r >= n
        with pytest.raises(ConfigError):
            mttdl_markov(4, 2, -0.1, [1.0, 1.0])
        with pytest.raises(ConfigError):
            mttdl_markov(4, 2, 0.1, [1.0])  # wrong rate count
        with pytest.raises(ConfigError):
            mttdl_markov(4, 2, 0.1, [1.0, -1.0])


class TestCodeMttdl:
    def test_piggyback_beats_rs(self):
        """The Section 3.2 reliability claim."""
        results = mttdl_comparison(
            [ReedSolomonCode(10, 4), PiggybackedRSCode(10, 4)],
            time_model=RecoveryTimeModel(),
        )
        assert (
            results["PiggybackedRS(10,4)"].mttdl_hours
            > results["RS(10,4)"].mttdl_hours
        )

    def test_gap_widens_without_detection_floor(self):
        """With detection time excluded, the repair-rate advantage is
        the full 30%+ and the MTTDL gap grows."""
        rs = mttdl_for_code(
            ReedSolomonCode(10, 4), 256 << 20, detection_hours=0.0
        )
        pb = mttdl_for_code(
            PiggybackedRSCode(10, 4), 256 << 20, detection_hours=0.0
        )
        with_detect_rs = mttdl_for_code(ReedSolomonCode(10, 4), 256 << 20)
        with_detect_pb = mttdl_for_code(PiggybackedRSCode(10, 4), 256 << 20)
        assert pb.mttdl_hours / rs.mttdl_hours > (
            with_detect_pb.mttdl_hours / with_detect_rs.mttdl_hours
        )

    def test_replication_much_lower(self):
        results = mttdl_comparison(
            [ReedSolomonCode(10, 4), ReplicationCode(3)]
        )
        assert (
            results["RS(10,4)"].mttdl_hours
            > 100 * results["Replication(x3)"].mttdl_hours
        )

    def test_result_fields(self):
        result = mttdl_for_code(ReedSolomonCode(4, 2), 1 << 20)
        assert result.code_name == "RS(4,2)"
        assert result.mttdl_years == pytest.approx(
            result.mttdl_hours / (24 * 365.25)
        )
        assert result.single_failure_repair_hours > 0
