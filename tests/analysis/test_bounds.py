"""Tests for the cut-set repair lower bound."""

import pytest

from repro.analysis.bounds import (
    best_cutset_bound_units,
    msr_cutset_bound_units,
    repair_optimality_table,
)
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import ConfigError


class TestCutsetBound:
    def test_production_value(self):
        # (10,4), d = 13 helpers: 13/4 = 3.25 units.
        assert best_cutset_bound_units(10, 14) == pytest.approx(3.25)

    def test_degenerates_to_rs_at_d_equals_k(self):
        assert msr_cutset_bound_units(10, 10) == pytest.approx(10.0)

    def test_decreasing_in_helpers(self):
        values = [msr_cutset_bound_units(10, d) for d in range(10, 14)]
        assert values == sorted(values, reverse=True)

    def test_replication_like(self):
        # k=1: bound is 1 unit regardless of helpers.
        assert msr_cutset_bound_units(1, 1) == pytest.approx(1.0)
        assert msr_cutset_bound_units(1, 5) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            msr_cutset_bound_units(0, 5)
        with pytest.raises(ConfigError):
            msr_cutset_bound_units(5, 4)  # d < k
        with pytest.raises(ConfigError):
            best_cutset_bound_units(5, 5)  # n <= k


class TestOptimalityTable:
    def test_codes_bracketed_by_rs_and_bound(self):
        rows = repair_optimality_table(
            [ReedSolomonCode(10, 4), PiggybackedRSCode(10, 4)]
        )
        for row in rows:
            assert row.bound_units <= row.average_data_repair_units
            assert row.average_data_repair_units <= row.rs_units
            assert 0.0 <= row.fraction_of_possible_saving <= 1.0

    def test_rs_closes_nothing(self):
        row = repair_optimality_table([ReedSolomonCode(10, 4)])[0]
        assert row.fraction_of_possible_saving == pytest.approx(0.0)
        assert row.saving_vs_rs == pytest.approx(0.0)

    def test_piggyback_closes_about_half(self):
        row = repair_optimality_table([PiggybackedRSCode(10, 4)])[0]
        assert row.fraction_of_possible_saving == pytest.approx(
            (10 - 6.7) / (10 - 3.25)
        )
        assert row.gap_to_bound == pytest.approx(6.7 / 3.25)
