"""Tests for automatic trace calibration."""

import pytest

from repro.analysis.calibration import calibrate_config
from repro.cluster.config import ClusterConfig
from repro.errors import ConfigError


def small_config(**overrides):
    defaults = dict(
        num_racks=20, nodes_per_rack=5, stripes_per_node=20.0, seed=17
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestCalibration:
    def test_detuned_config_converges_toward_targets(self):
        """Start far off target; two rounds should close most of the gap."""
        detuned = small_config(
            daily_event_median=10.0, recovery_trigger_fraction=0.9
        )
        result = calibrate_config(
            detuned,
            target_unavailability_median=40.0,
            target_blocks_median=50_000.0,
            pilot_days=6.0,
            iterations=3,
            tolerance=0.15,
        )
        assert abs(result.unavailability_error) < 0.35
        assert abs(result.blocks_error) < 0.35
        assert result.config.daily_event_median > detuned.daily_event_median

    def test_already_calibrated_stops_early(self):
        """Targets equal to a config's own pilot measurements are
        accepted on round one (pilots are seeded and deterministic)."""
        config = small_config()
        probe = calibrate_config(
            config,
            target_unavailability_median=1.0,  # guaranteed miss: just
            target_blocks_median=1.0,          # measuring the pilot
            pilot_days=6.0,
            iterations=1,
        )
        result = calibrate_config(
            config,
            target_unavailability_median=max(
                probe.measured_unavailability_median, 1.0
            ),
            target_blocks_median=max(probe.measured_blocks_median, 1.0),
            pilot_days=6.0,
            iterations=3,
        )
        assert result.iterations == 1
        assert result.config.daily_event_median == config.daily_event_median

    def test_trigger_fraction_stays_in_bounds(self):
        config = small_config(recovery_trigger_fraction=0.9)
        result = calibrate_config(
            config,
            target_unavailability_median=30.0,
            target_blocks_median=10_000_000.0,  # unreachable
            pilot_days=4.0,
            iterations=2,
        )
        assert 0.01 <= result.config.recovery_trigger_fraction <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            calibrate_config(small_config(), iterations=0)
        with pytest.raises(ConfigError):
            calibrate_config(small_config(), pilot_days=0)
        with pytest.raises(ConfigError):
            calibrate_config(small_config(), target_blocks_median=0)
