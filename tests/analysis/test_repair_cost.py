"""Tests for analytic repair costs."""

import pytest

from repro.analysis.repair_cost import (
    repair_cost_profile,
    repair_cost_table,
    savings_vs_rs,
)
from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.replication import ReplicationCode
from repro.codes.rs import ReedSolomonCode


class TestRepairCostProfile:
    def test_rs_profile(self, rs_10_4):
        profile = repair_cost_profile(rs_10_4)
        assert profile.per_node_units == (10.0,) * 14
        assert profile.average_units == 10.0
        assert profile.max_connections == 10
        assert profile.is_mds

    def test_piggyback_profile(self, piggyback_10_4):
        profile = repair_cost_profile(piggyback_10_4)
        assert profile.per_node_units[:4] == (7.0,) * 4
        assert profile.per_node_units[4:10] == (6.5,) * 6
        assert profile.per_node_units[10:] == (10.0,) * 4
        assert profile.average_data_units == pytest.approx(6.7)
        assert profile.average_parity_units == 10.0
        assert profile.max_connections == 11

    def test_replication_profile(self):
        profile = repair_cost_profile(ReplicationCode(3))
        assert profile.average_units == 1.0
        assert profile.storage_overhead == 3.0

    def test_lrc_profile(self, lrc_10_2_2):
        profile = repair_cost_profile(lrc_10_2_2)
        assert profile.average_data_units == 5.0
        assert not profile.is_mds


class TestSavings:
    def test_paper_headline_numbers(self, piggyback_10_4):
        savings = savings_vs_rs(piggyback_10_4)
        assert savings["data_nodes"] == pytest.approx(0.33)
        assert savings["all_nodes"] == pytest.approx(1 - 107 / 140)
        # ~30% average saving for single block (data) failures: the
        # paper's Section 3.1 claim.
        assert 0.28 <= savings["data_nodes"] <= 0.36

    def test_best_and_worst_node(self, piggyback_10_4):
        savings = savings_vs_rs(piggyback_10_4)
        assert savings["best_node"] == pytest.approx(0.35)
        assert savings["worst_node"] == pytest.approx(0.0)

    def test_rs_vs_itself_is_zero(self, rs_10_4):
        savings = savings_vs_rs(rs_10_4)
        assert savings["all_nodes"] == pytest.approx(0.0)

    def test_explicit_reference(self, piggyback_10_4, rs_10_4):
        assert savings_vs_rs(piggyback_10_4, rs_10_4) == savings_vs_rs(
            piggyback_10_4
        )


class TestTable:
    def test_rows(self):
        rows = repair_cost_table(
            [ReedSolomonCode(10, 4), PiggybackedRSCode(10, 4), LRCCode(10, 2, 2)]
        )
        assert [row["code"] for row in rows] == [
            "RS(10,4)",
            "PiggybackedRS(10,4)",
            "LRC(10,2,2)",
        ]
        assert rows[0]["avg_repair_units"] == 10.0
        assert rows[1]["storage_overhead"] == rows[0]["storage_overhead"]
        assert rows[2]["mds"] is False
