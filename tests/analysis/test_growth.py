"""Tests for the raid-conversion growth model."""

import pytest

from repro.analysis.growth import (
    GrowthReport,
    RaidConversionModel,
    storage_released_per_logical_byte,
    weekly_growth_report,
)
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import ConfigError


class TestConversionModel:
    def test_default_cost_per_byte(self, rs_10_4):
        model = RaidConversionModel()
        # read 1.0 + parity 0.4 = 1.4x per logical byte.
        assert model.conversion_bytes_per_logical_byte(rs_10_4) == pytest.approx(
            1.4
        )

    def test_local_reads_cheaper(self, rs_10_4):
        model = RaidConversionModel(read_is_remote=False)
        assert model.conversion_bytes_per_logical_byte(rs_10_4) == pytest.approx(
            0.4
        )

    def test_consolidation_adds(self, rs_10_4):
        model = RaidConversionModel(consolidation_fraction=0.5)
        assert model.conversion_bytes_per_logical_byte(rs_10_4) == pytest.approx(
            1.9
        )

    def test_same_for_piggyback(self, rs_10_4, piggyback_10_4):
        """Encoding traffic depends only on (k, r): piggybacking is free
        at conversion time."""
        model = RaidConversionModel()
        assert model.conversion_bytes_per_logical_byte(
            piggyback_10_4
        ) == model.conversion_bytes_per_logical_byte(rs_10_4)

    def test_weekly_to_daily(self, rs_10_4):
        model = RaidConversionModel()
        weekly = model.weekly_conversion_bytes(rs_10_4, 2e15)
        assert weekly == pytest.approx(2.8e15)
        assert model.daily_conversion_bytes(rs_10_4, 2e15) == pytest.approx(
            weekly / 7
        )

    def test_validation(self, rs_10_4):
        with pytest.raises(ConfigError):
            RaidConversionModel(
                consolidation_fraction=2.0
            ).conversion_bytes_per_logical_byte(rs_10_4)
        with pytest.raises(ConfigError):
            RaidConversionModel().weekly_conversion_bytes(rs_10_4, -1.0)


class TestStorageReleased:
    def test_paper_numbers(self, rs_10_4):
        # 3x -> 1.4x: 1.6 bytes freed per logical byte.
        assert storage_released_per_logical_byte(rs_10_4) == pytest.approx(1.6)

    def test_invalid_replication(self, rs_10_4):
        with pytest.raises(ConfigError):
            storage_released_per_logical_byte(rs_10_4, replication_factor=0)


class TestGrowthReport:
    def test_report_fields(self, piggyback_10_4):
        report = weekly_growth_report(
            piggyback_10_4,
            growth_bytes_per_week=2e15,  # "a few petabytes every week"
            recovery_bytes_per_day=130e12,
        )
        assert report.code_name == "PiggybackedRS(10,4)"
        assert report.conversion_bytes_per_day == pytest.approx(2.8e15 / 7)
        assert report.storage_released_per_week == pytest.approx(3.2e15)
        assert report.total_network_bytes_per_day == pytest.approx(
            2.8e15 / 7 + 130e12
        )

    def test_conversion_dominates_at_high_growth(self, rs_10_4):
        """At a few PB/week, conversion traffic itself rivals recovery
        traffic -- both compete for the TOR uplinks."""
        report = weekly_growth_report(
            rs_10_4, growth_bytes_per_week=3e15,
            recovery_bytes_per_day=180e12,
        )
        assert report.conversion_bytes_per_day > report.recovery_bytes_per_day
