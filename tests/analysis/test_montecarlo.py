"""Tests for the Monte-Carlo reliability cross-check."""

import numpy as np
import pytest

from repro.analysis.montecarlo import simulate_stripe_mttdl
from repro.analysis.mttdl import mttdl_markov
from repro.errors import ConfigError


class TestAgainstMarkovModel:
    """The headline purpose: MC and the exact chain must agree."""

    @pytest.mark.parametrize(
        "n,r,lam,mus",
        [
            (4, 1, 0.2, [2.0]),
            (6, 2, 0.3, [3.0, 3.0]),
            (14, 4, 0.5, [2.0, 2.0, 2.0, 2.0]),
        ],
    )
    def test_mc_matches_markov(self, n, r, lam, mus):
        analytic = mttdl_markov(n, r, lam, mus)
        estimate = simulate_stripe_mttdl(
            n, r, lam, mus, trials=3_000, rng=np.random.default_rng(11)
        )
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= analytic <= high

    def test_faster_repair_longer_life_empirically(self):
        slow = simulate_stripe_mttdl(
            14, 4, 0.5, [1.0] * 4, trials=1_500,
            rng=np.random.default_rng(1),
        )
        fast = simulate_stripe_mttdl(
            14, 4, 0.5, [4.0] * 4, trials=1_500,
            rng=np.random.default_rng(1),
        )
        assert fast.mean > slow.mean

    def test_piggyback_rate_advantage_shows_up(self):
        """Scaled repair rates in the RS:piggyback ratio (10 : 7.64)
        produce a reliability ordering, empirically."""
        rng = np.random.default_rng(5)
        rs = simulate_stripe_mttdl(14, 4, 0.4, [2.0] * 4, trials=2_000, rng=rng)
        rng = np.random.default_rng(5)
        pb = simulate_stripe_mttdl(
            14, 4, 0.4, [2.0 * 10 / 7.643] * 4, trials=2_000, rng=rng
        )
        assert pb.mean > rs.mean


class TestMechanics:
    def test_no_redundancy_mean(self):
        estimate = simulate_stripe_mttdl(
            1, 0, 2.0, [], trials=4_000, rng=np.random.default_rng(3)
        )
        assert estimate.mean == pytest.approx(0.5, rel=0.1)

    def test_standard_error_shrinks_with_trials(self):
        small = simulate_stripe_mttdl(
            4, 1, 0.5, [1.0], trials=500, rng=np.random.default_rng(2)
        )
        large = simulate_stripe_mttdl(
            4, 1, 0.5, [1.0], trials=8_000, rng=np.random.default_rng(2)
        )
        assert large.standard_error < small.standard_error

    def test_deterministic_with_seeded_rng(self):
        a = simulate_stripe_mttdl(
            4, 1, 0.5, [1.0], trials=200, rng=np.random.default_rng(9)
        )
        b = simulate_stripe_mttdl(
            4, 1, 0.5, [1.0], trials=200, rng=np.random.default_rng(9)
        )
        assert a.mean == b.mean

    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate_stripe_mttdl(0, 0, 1.0, [])
        with pytest.raises(ConfigError):
            simulate_stripe_mttdl(4, 4, 1.0, [1.0] * 4)
        with pytest.raises(ConfigError):
            simulate_stripe_mttdl(4, 1, -1.0, [1.0])
        with pytest.raises(ConfigError):
            simulate_stripe_mttdl(4, 1, 1.0, [])
        with pytest.raises(ConfigError):
            simulate_stripe_mttdl(4, 1, 1.0, [1.0], trials=0)
