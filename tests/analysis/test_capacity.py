"""Tests for the codable-capacity analysis."""

import pytest

from repro.analysis.capacity import (
    OperatingPoint,
    codable_capacity_table,
    relative_traffic_per_coded_byte,
)
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.errors import ConfigError


class TestOperatingPoint:
    def test_paper_defaults(self):
        point = OperatingPoint()
        assert point.coded_bytes == 10e15
        assert point.recovery_bytes_per_day == 180e12

    def test_intensity(self):
        point = OperatingPoint(coded_bytes=2e12, recovery_bytes_per_day=1e12)
        assert point.traffic_intensity_per_day == pytest.approx(0.5)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            OperatingPoint(coded_bytes=0).traffic_intensity_per_day


class TestRelativeTraffic:
    def test_rs_vs_itself(self, rs_10_4):
        assert relative_traffic_per_coded_byte(rs_10_4, rs_10_4) == pytest.approx(
            1.0
        )

    def test_piggyback_fraction(self, piggyback_10_4, rs_10_4):
        relative = relative_traffic_per_coded_byte(piggyback_10_4, rs_10_4)
        assert relative == pytest.approx(107 / 140)  # 7.643/10


class TestCapacityTable:
    def test_piggyback_codes_more_data(self, rs_10_4, piggyback_10_4):
        rows = codable_capacity_table(
            [rs_10_4, piggyback_10_4], baseline=rs_10_4
        )
        rs_row, pb_row = rows
        assert rs_row.codable_bytes == pytest.approx(10e15)
        gain = pb_row.codable_bytes / rs_row.codable_bytes
        assert gain == pytest.approx(140 / 107)  # ~31% more

    def test_disk_savings_positive(self, rs_10_4, piggyback_10_4):
        rows = codable_capacity_table(
            [rs_10_4, piggyback_10_4], baseline=rs_10_4
        )
        for row in rows:
            # 1.4x coded storage vs 3x replication: big savings.
            logical = row.codable_bytes / row.storage_overhead
            assert row.disk_bytes_saved_vs_replication == pytest.approx(
                3.0 * logical - row.codable_bytes
            )
            assert row.disk_bytes_saved_vs_replication > 0

    def test_custom_budget_scales_linearly(self, rs_10_4):
        base = codable_capacity_table([rs_10_4], baseline=rs_10_4)[0]
        doubled = codable_capacity_table(
            [rs_10_4],
            baseline=rs_10_4,
            network_budget_bytes_per_day=2 * 180e12,
        )[0]
        assert doubled.codable_bytes == pytest.approx(2 * base.codable_bytes)

    def test_invalid_budget(self, rs_10_4):
        with pytest.raises(ConfigError):
            codable_capacity_table(
                [rs_10_4], baseline=rs_10_4, network_budget_bytes_per_day=0
            )
