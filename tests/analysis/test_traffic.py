"""Tests for cross-rack traffic projection."""

import pytest

from repro.analysis.traffic import estimate_cross_rack_savings
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode


class TestEstimate:
    def test_paper_projection(self, piggyback_10_4):
        """180 TB/day baseline: the paper projects >50 TB/day saved."""
        estimate = estimate_cross_rack_savings(
            piggyback_10_4, baseline_bytes_per_day=180e12
        )
        assert estimate.paper_method_savings_bytes_per_day == pytest.approx(
            54e12
        )
        assert estimate.paper_method_savings_bytes_per_day > 50e12
        # Exact plan-weighted fraction (uniform failures over 14 units).
        assert estimate.exact_fraction == pytest.approx(1 - 107 / 140)
        assert estimate.exact_savings_bytes_per_day == pytest.approx(
            (1 - 107 / 140) * 180e12
        )

    def test_projection_consistency(self, piggyback_10_4):
        estimate = estimate_cross_rack_savings(
            piggyback_10_4, baseline_bytes_per_day=100e12
        )
        assert (
            estimate.exact_projected_bytes_per_day
            + estimate.exact_savings_bytes_per_day
        ) == pytest.approx(estimate.baseline_bytes_per_day)

    def test_data_only_weights_hit_thirty_percent(self, piggyback_10_4):
        """Weighting failures toward data blocks recovers the ~30%+."""
        weights = [1.0] * 10 + [0.0] * 4
        estimate = estimate_cross_rack_savings(
            piggyback_10_4, baseline_bytes_per_day=180e12,
            failure_weights=weights,
        )
        assert estimate.exact_fraction == pytest.approx(0.33)

    def test_weight_length_checked(self, piggyback_10_4):
        with pytest.raises(ValueError):
            estimate_cross_rack_savings(
                piggyback_10_4, 1e12, failure_weights=[1.0] * 3
            )

    def test_rs_baseline_explicit(self, piggyback_10_4):
        explicit = estimate_cross_rack_savings(
            piggyback_10_4, 1e12, baseline_code=ReedSolomonCode(10, 4)
        )
        default = estimate_cross_rack_savings(piggyback_10_4, 1e12)
        assert explicit.exact_fraction == default.exact_fraction

    def test_as_dict_units(self, piggyback_10_4):
        info = estimate_cross_rack_savings(piggyback_10_4, 180e12).as_dict()
        assert info["baseline_TB_per_day"] == pytest.approx(180.0)
        assert info["paper_method_savings_TB_per_day"] == pytest.approx(54.0)
