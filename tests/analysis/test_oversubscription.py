"""Tests for the TOR-uplink utilisation model."""

import pytest

from repro.analysis.oversubscription import UplinkModel
from repro.cluster.config import SECONDS_PER_DAY
from repro.errors import ConfigError


class TestUplinkModel:
    def test_capacity_arithmetic(self):
        model = UplinkModel(racks=100, uplink_gbps=40.0)
        expected = 100 * 40e9 / 8 * SECONDS_PER_DAY
        assert model.cluster_uplink_bytes_per_day == pytest.approx(expected)

    def test_utilisation_fraction(self):
        model = UplinkModel(racks=100, uplink_gbps=40.0)
        # 180 TB/day against 43.2 PB/day capacity.
        util = model.utilisation(180e12)
        assert util == pytest.approx(180e12 / model.cluster_uplink_bytes_per_day)
        assert 0.003 < util < 0.006

    def test_series_and_report(self):
        model = UplinkModel(racks=10, uplink_gbps=10.0)
        daily = [1e12, 2e12, 4e12]
        series = model.utilisation_series(daily)
        assert len(series) == 3
        assert series == sorted(series)
        report = model.report("rs", daily)
        assert report["peak_uplink_util_%"] > report["median_uplink_util_%"]
        assert report["headroom_at_peak_x"] == pytest.approx(
            1.0 / max(series), rel=0.1
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            UplinkModel(racks=0)
        with pytest.raises(ConfigError):
            UplinkModel(uplink_gbps=0)
        with pytest.raises(ConfigError):
            UplinkModel(oversubscription=0.5)
        with pytest.raises(ConfigError):
            UplinkModel().utilisation(-1)
        with pytest.raises(ConfigError):
            UplinkModel().report("x", [])


class TestExperiment:
    def test_uplink_experiment(self):
        from repro.experiments import run_experiment

        result = run_experiment("ext_uplink", days=4.0)
        rs, pb = result.data["rs"], result.data["pb"]
        assert pb["median_uplink_util_%"] < rs["median_uplink_util_%"]
        assert pb["peak_uplink_util_%"] <= rs["peak_uplink_util_%"]
