"""Tests for text-report rendering."""

from repro.analysis.report import (
    format_bytes,
    format_value,
    paper_vs_measured,
    render_kv,
    render_series,
    render_table,
)


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(500) == "500 B"
        assert format_bytes(1500) == "1.50 KB"
        assert format_bytes(180e12) == "180.00 TB"
        assert format_bytes(2.5e15) == "2.50 PB"

    def test_decimal_not_binary(self):
        assert format_bytes(1000) == "1.00 KB"


class TestFormatValue:
    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_int_grouping(self):
        assert format_value(95500) == "95,500"

    def test_float_trimming(self):
        assert format_value(1.5) == "1.5"
        assert format_value(2.0) == "2"

    def test_tiny_float_scientific(self):
        assert "e" in format_value(1e-9)

    def test_string_passthrough(self):
        assert format_value("~30") == "~30"


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(
            [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}], title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].startswith("a")
        assert "222" in lines[4]

    def test_empty(self):
        assert "(no rows)" in render_table([], title="t")

    def test_column_subset(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cell_blank(self):
        text = render_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text


class TestOtherRenderers:
    def test_series(self):
        text = render_series("s", [5, 10])
        assert "day   0: 5" in text
        assert "day   1: 10" in text

    def test_kv(self):
        text = render_kv("block", {"median": 52.0, "max": 350})
        assert "median" in text and "350" in text

    def test_paper_vs_measured_with_notes(self):
        text = paper_vs_measured(
            [
                {"metric": "m1", "paper": 1, "measured": 2, "note": "n"},
                {"metric": "m2", "paper": 3, "measured": 4},
            ]
        )
        assert "note" in text.splitlines()[1]

    def test_paper_vs_measured_without_notes(self):
        text = paper_vs_measured([{"metric": "m", "paper": 1, "measured": 1}])
        assert "note" not in text.splitlines()[1]
