"""Run the executable examples embedded in module docstrings.

The public API's doc examples must stay correct -- they are part of the
documentation deliverable, so any drift fails here.
"""

import doctest

import pytest

import repro.cluster.events
import repro.cluster.simulation
import repro.cluster.topology
import repro.codes.crs
import repro.codes.lrc
import repro.codes.piggyback.code
import repro.codes.registry
import repro.codes.replication
import repro.codes.rs
import repro.striping.codec

MODULES = [
    repro.cluster.events,
    repro.cluster.topology,
    repro.codes.crs,
    repro.codes.lrc,
    repro.codes.piggyback.code,
    repro.codes.registry,
    repro.codes.replication,
    repro.codes.rs,
    repro.striping.codec,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "expected at least one doctest"
