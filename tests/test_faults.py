"""The chaos engine and the end-to-end fault-injection acceptance test.

The acceptance criterion of the robustness layer: under a seeded
``FaultPlan`` (bit-flips, truncations, a worker crash, a mid-recovery
node flap), encode + recover + scrub converge to byte-identical data
for each of the paper's codes, with zero leaked shared memory, every
corruption surfaced as a quarantine record, and the whole report
deterministic across two runs with the same seed.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, run_chaos_scenario

CODES = [
    ("rs", {"k": 4, "r": 2}),
    ("lrc", {"k": 4, "l": 2, "g": 2}),
    ("crs", {"k": 4, "r": 2}),
    ("piggyback", {"k": 4, "r": 2}),
]


class TestFaultPlanStreams:
    def test_rng_is_deterministic_per_scope(self):
        plan = FaultPlan(seed=9)
        assert plan.rng("a").integers(0, 1 << 30) == plan.rng("a").integers(
            0, 1 << 30
        )

    def test_rng_scopes_are_independent(self):
        plan = FaultPlan(seed=9)
        draws_a = plan.rng("a").integers(0, 1 << 30, size=8)
        draws_b = plan.rng("b").integers(0, 1 << 30, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_seed_changes_every_stream(self):
        a = FaultPlan(seed=1).rng("x").integers(0, 1 << 30, size=8)
        b = FaultPlan(seed=2).rng("x").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_corrupt_unit_indices_distinct_and_in_range(self):
        plan = FaultPlan(seed=9)
        units = plan.corrupt_unit_indices(20, num_stripes=30, width=6)
        assert len(units) == 20
        assert len(set(units)) == 20
        for stripe, slot in units:
            assert 0 <= stripe < 30
            assert 0 <= slot < 6

    def test_flap_events_exceed_the_flag_threshold(self):
        plan = FaultPlan(seed=9, node_flaps=4)
        events = plan.flap_events(
            num_nodes=50, days=3.0, threshold_seconds=900.0
        )
        assert len(events) == 4
        for event in events:
            assert 0 <= event.node < 50
            assert 0.0 <= event.time < 3.0 * 86_400.0
            assert event.duration > 900.0


@pytest.mark.parametrize("name,params", CODES, ids=[c[0] for c in CODES])
def test_acceptance_scenario_converges_and_is_deterministic(name, params):
    first = run_chaos_scenario(name, code_params=params)
    second = run_chaos_scenario(name, code_params=params)
    assert first == second
    assert first.clean
    assert first.data_intact
    assert first.pipeline_identical
    assert first.shm_leaked == 0
    # Every injected unit fault surfaced as a quarantine record.
    quarantined = {(sid, slot) for sid, slot, __ in first.quarantined}
    for fault in first.faults:
        assert (fault.stripe_id, fault.slot) in quarantined
    assert first.rounds_to_converge >= 1


def test_different_seed_changes_the_report():
    a = run_chaos_scenario("rs", seed=1, plan=FaultPlan(seed=1))
    b = run_chaos_scenario("rs", seed=2, plan=FaultPlan(seed=2))
    assert a.clean and b.clean
    assert a.faults != b.faults
