"""Tests for the Reed-Solomon code."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes.rs import ReedSolomonCode
from repro.errors import CodeConstructionError, DecodingError, RepairError
from tests.conftest import make_data


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(CodeConstructionError):
            ReedSolomonCode(0, 4)
        with pytest.raises(CodeConstructionError):
            ReedSolomonCode(10, 0)
        with pytest.raises(CodeConstructionError):
            ReedSolomonCode(200, 100)
        with pytest.raises(CodeConstructionError):
            ReedSolomonCode(10, 4, construction="unknown")

    def test_name(self):
        assert ReedSolomonCode(10, 4).name == "RS(10,4)"

    def test_is_mds_flag(self):
        assert ReedSolomonCode(4, 2).is_mds

    @pytest.mark.parametrize("construction", ["vandermonde", "cauchy"])
    def test_systematic_generator(self, construction):
        code = ReedSolomonCode(6, 3, construction=construction)
        assert np.array_equal(
            code.generator[:6], np.eye(6, dtype=np.uint8)
        )


class TestEncode:
    def test_systematic(self, rs_10_4, small_data):
        stripe = rs_10_4.encode(small_data)
        assert stripe.shape == (14, 64)
        assert np.array_equal(stripe[:10], small_data)

    def test_parity_is_linear(self, rs_10_4, rng):
        a = make_data(rng, 10, 32)
        b = make_data(rng, 10, 32)
        sum_stripe = rs_10_4.encode(a ^ b)
        assert np.array_equal(
            sum_stripe, rs_10_4.encode(a) ^ rs_10_4.encode(b)
        )

    def test_zero_data_zero_parity(self, rs_10_4):
        stripe = rs_10_4.encode(np.zeros((10, 16), dtype=np.uint8))
        assert not stripe.any()

    def test_single_byte_units(self, rs_10_4, rng):
        data = make_data(rng, 10, 1)
        stripe = rs_10_4.encode(data)
        assert stripe.shape == (14, 1)


class TestDecode:
    @pytest.mark.parametrize("k,r", [(2, 2), (3, 2), (4, 3)])
    def test_mds_exhaustive(self, rng, k, r):
        """Decode succeeds from EVERY k-subset of the stripe."""
        code = ReedSolomonCode(k, r)
        data = make_data(rng, k, 16)
        stripe = code.encode(data)
        for subset in combinations(range(k + r), k):
            available = {i: stripe[i] for i in subset}
            assert np.array_equal(code.decode(available), data), subset

    def test_production_parameters_sampled(self, rs_10_4, rng, small_data):
        stripe = rs_10_4.encode(small_data)
        for _ in range(50):
            subset = rng.choice(14, size=10, replace=False)
            available = {int(i): stripe[int(i)] for i in subset}
            assert np.array_equal(rs_10_4.decode(available), small_data)

    def test_all_data_nodes_shortcut(self, rs_10_4, small_data):
        stripe = rs_10_4.encode(small_data)
        available = {i: stripe[i] for i in range(10)}
        assert np.array_equal(rs_10_4.decode(available), small_data)

    def test_more_than_k_available(self, rs_10_4, small_data):
        stripe = rs_10_4.encode(small_data)
        available = {i: stripe[i] for i in range(14)}
        assert np.array_equal(rs_10_4.decode(available), small_data)

    def test_too_few_units(self, rs_10_4, small_data):
        stripe = rs_10_4.encode(small_data)
        with pytest.raises(DecodingError):
            rs_10_4.decode({i: stripe[i] for i in range(9)})

    def test_decode_empty(self, rs_10_4):
        with pytest.raises(DecodingError):
            rs_10_4.decode({})


class TestRepair:
    def test_repairs_any_node(self, rs_10_4, small_data):
        stripe = rs_10_4.encode(small_data)
        for failed in range(14):
            available = {i: stripe[i] for i in range(14) if i != failed}
            rebuilt, downloaded = rs_10_4.execute_repair(failed, available)
            assert np.array_equal(rebuilt, stripe[failed])
            assert downloaded == 10 * 64  # k full units, always

    def test_repair_plan_reads_k_full_units(self, rs_10_4):
        plan = rs_10_4.repair_plan(0)
        assert plan.num_connections == 10
        assert plan.units_downloaded == 10.0
        assert 0 not in plan.nodes_contacted

    def test_repair_plan_respects_availability(self, rs_10_4):
        available = [1, 2, 3, 5, 7, 8, 9, 10, 12, 13]
        plan = rs_10_4.repair_plan(0, available)
        assert set(plan.nodes_contacted) <= set(available)

    def test_repair_plan_insufficient_survivors(self, rs_10_4):
        with pytest.raises(RepairError):
            rs_10_4.repair_plan(0, range(1, 10))

    def test_repair_with_degraded_stripe(self, rs_10_4, small_data):
        """Two concurrent failures: repair one from the remaining 12."""
        stripe = rs_10_4.encode(small_data)
        available = {i: stripe[i] for i in range(14) if i not in (0, 7)}
        rebuilt, __ = rs_10_4.execute_repair(0, available)
        assert np.array_equal(rebuilt, stripe[0])

    def test_repair_rejects_multi_substripe_fetch(self, rs_10_4):
        with pytest.raises(RepairError):
            rs_10_4.repair(0, {1: {0: np.zeros(4, dtype=np.uint8),
                                   1: np.zeros(4, dtype=np.uint8)}})

    def test_repair_with_too_few_sources(self, rs_10_4):
        fetched = {
            i: {0: np.zeros(4, dtype=np.uint8)} for i in range(1, 6)
        }
        with pytest.raises(RepairError):
            rs_10_4.repair(0, fetched)


class TestConstructionEquivalence:
    @pytest.mark.parametrize("construction", ["vandermonde", "cauchy"])
    def test_roundtrip_both_constructions(self, rng, construction):
        code = ReedSolomonCode(5, 3, construction=construction)
        data = make_data(rng, 5, 20)
        stripe = code.encode(data)
        available = {i: stripe[i] for i in (0, 2, 4, 6, 7)}
        assert np.array_equal(code.decode(available), data)
