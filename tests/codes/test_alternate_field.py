"""Codes over non-default GF(2^8) moduli.

Production codecs differ in their field modulus; the whole stack must
work over any primitive polynomial, not just 0x11D.
"""

import numpy as np
import pytest

from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.gf.field import GF256
from repro.gf.tables import KNOWN_PRIMITIVE_POLYS
from tests.conftest import make_data


@pytest.mark.parametrize("poly", KNOWN_PRIMITIVE_POLYS[:3])
class TestAlternateFields:
    def test_rs_roundtrip(self, rng, poly):
        field = GF256(poly)
        code = ReedSolomonCode(6, 3, field=field)
        data = make_data(rng, 6, 16)
        stripe = code.encode(data)
        available = {i: stripe[i] for i in (1, 3, 4, 6, 7, 8)}
        assert np.array_equal(code.decode(available), data)

    def test_piggyback_roundtrip_and_repair(self, rng, poly):
        field = GF256(poly)
        code = PiggybackedRSCode(6, 3, field=field)
        data = make_data(rng, 6, 16)
        stripe = code.encode(data)
        for failed in range(9):
            available = {i: stripe[i] for i in range(9) if i != failed}
            rebuilt, __ = code.execute_repair(failed, available)
            assert np.array_equal(rebuilt, stripe[failed])

    def test_codewords_differ_across_fields(self, rng, poly):
        """Different moduli give different parities for the same data
        (they are genuinely different codes)."""
        if poly == 0x11D:
            pytest.skip("comparing against the default field")
        default = ReedSolomonCode(4, 2)
        alternate = ReedSolomonCode(4, 2, field=GF256(poly))
        data = make_data(rng, 4, 16)
        assert not np.array_equal(
            default.encode(data)[4:], alternate.encode(data)[4:]
        )


class TestFieldMixing:
    def test_piggyback_uses_its_field_throughout(self, rng):
        """Internal RS and piggyback arithmetic share the field."""
        field = GF256(0x12B)
        code = PiggybackedRSCode(4, 2, field=field)
        assert code._rs.field == field
        data = make_data(rng, 4, 8)
        stripe = code.encode(data)
        assert np.array_equal(
            code.decode({i: stripe[i] for i in (2, 3, 4, 5)}), data
        )
