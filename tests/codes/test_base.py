"""Tests for the ErasureCode base abstractions (plans, validation)."""

import numpy as np
import pytest

from repro.codes.base import RepairPlan, SymbolRequest, require_unit_shapes
from repro.codes.rs import ReedSolomonCode
from repro.errors import DecodingError, EncodingError, RepairError


class TestSymbolRequest:
    def test_fraction_of_unit(self):
        request = SymbolRequest(3, (0,))
        assert request.fraction_of_unit(2) == 0.5
        assert request.fraction_of_unit(1) == 1.0

    def test_empty_substripes_rejected(self):
        with pytest.raises(RepairError):
            SymbolRequest(0, ())

    def test_unsorted_substripes_rejected(self):
        with pytest.raises(RepairError):
            SymbolRequest(0, (1, 0))

    def test_duplicate_substripes_rejected(self):
        with pytest.raises(RepairError):
            SymbolRequest(0, (0, 0))


class TestRepairPlan:
    def make_plan(self):
        return RepairPlan(
            failed_node=2,
            requests=(
                SymbolRequest(0, (0, 1)),
                SymbolRequest(1, (1,)),
                SymbolRequest(3, (1,)),
            ),
            substripes_per_unit=2,
        )

    def test_nodes_contacted(self):
        assert self.make_plan().nodes_contacted == (0, 1, 3)

    def test_num_connections(self):
        assert self.make_plan().num_connections == 3

    def test_subunits_read(self):
        assert self.make_plan().subunits_read == 4

    def test_units_downloaded(self):
        assert self.make_plan().units_downloaded == 2.0

    def test_bytes_downloaded(self):
        assert self.make_plan().bytes_downloaded(100) == 200

    def test_bytes_downloaded_requires_divisible_unit(self):
        with pytest.raises(RepairError):
            self.make_plan().bytes_downloaded(101)

    def test_duplicate_node_rejected(self):
        with pytest.raises(RepairError):
            RepairPlan(
                failed_node=2,
                requests=(SymbolRequest(0, (0,)), SymbolRequest(0, (1,))),
                substripes_per_unit=2,
            )

    def test_reading_failed_node_rejected(self):
        with pytest.raises(RepairError):
            RepairPlan(
                failed_node=0,
                requests=(SymbolRequest(0, (0,)),),
            )


class TestValidation:
    def test_validate_data_units_shape(self, rs_10_4):
        with pytest.raises(EncodingError):
            rs_10_4.validate_data_units(np.zeros((9, 8), dtype=np.uint8))
        with pytest.raises(EncodingError):
            rs_10_4.validate_data_units(np.zeros(8, dtype=np.uint8))
        with pytest.raises(EncodingError):
            rs_10_4.validate_data_units(np.zeros((10, 0), dtype=np.uint8))

    def test_validate_data_units_converts_dtype(self, rs_10_4):
        data = np.zeros((10, 4), dtype=np.int64)
        out = rs_10_4.validate_data_units(data)
        assert out.dtype == np.uint8

    def test_validate_node_index(self, rs_10_4):
        with pytest.raises(RepairError):
            rs_10_4.validate_node_index(14)
        with pytest.raises(RepairError):
            rs_10_4.validate_node_index(-1)
        assert rs_10_4.validate_node_index(13) == 13

    def test_substripe_divisibility(self, piggyback_10_4):
        with pytest.raises(EncodingError):
            piggyback_10_4.validate_data_units(
                np.zeros((10, 7), dtype=np.uint8)
            )

    def test_split_and_join_roundtrip(self, piggyback_10_4, rng):
        unit = rng.integers(0, 256, 64, dtype=np.uint8)
        subunits = piggyback_10_4.split_unit(unit)
        assert len(subunits) == 2
        assert np.array_equal(piggyback_10_4.join_subunits(subunits), unit)

    def test_join_wrong_count(self, piggyback_10_4):
        with pytest.raises(EncodingError):
            piggyback_10_4.join_subunits([np.zeros(4, dtype=np.uint8)])

    def test_require_unit_shapes_mismatch(self, rs_10_4):
        units = {
            0: np.zeros(8, dtype=np.uint8),
            1: np.zeros(9, dtype=np.uint8),
        }
        with pytest.raises(DecodingError):
            require_unit_shapes(units, rs_10_4)

    def test_require_unit_shapes_empty(self, rs_10_4):
        with pytest.raises(DecodingError):
            require_unit_shapes({}, rs_10_4)


class TestDerivedProperties:
    def test_storage_overhead(self):
        assert ReedSolomonCode(10, 4).storage_overhead == pytest.approx(1.4)

    def test_n(self, rs_10_4):
        assert rs_10_4.n == 14

    def test_average_repair_downloads(self, rs_10_4, piggyback_10_4):
        assert rs_10_4.average_repair_download_units() == pytest.approx(10.0)
        assert piggyback_10_4.average_repair_download_units() == pytest.approx(
            107 / 14
        )
        assert piggyback_10_4.average_data_repair_download_units() == pytest.approx(
            6.7
        )

    def test_repr_is_name(self, rs_10_4):
        assert repr(rs_10_4) == rs_10_4.name == "RS(10,4)"

    def test_execute_repair_rejects_missing_source(self, rs_10_4, small_data):
        stripe = rs_10_4.encode(small_data)
        available = {i: stripe[i] for i in range(5)}  # too few for a plan
        with pytest.raises(RepairError):
            rs_10_4.execute_repair(13, available)
