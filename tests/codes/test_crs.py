"""Tests for the Cauchy bit-matrix RS codec."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.registry import create_code
from repro.errors import CodeConstructionError, DecodingError, RepairError
from tests.conftest import make_data


class TestConstruction:
    def test_name_and_params(self):
        code = CauchyBitmatrixRSCode(10, 4)
        assert code.name == "CauchyBitmatrixRS(10,4)"
        assert code.n == 14 and code.is_mds

    def test_expanded_shape(self):
        code = CauchyBitmatrixRSCode(4, 2)
        assert code.expanded.shape == (48, 32)
        assert set(np.unique(code.expanded)) <= {0, 1}

    def test_registered(self):
        assert create_code("crs", k=4, r=2).name == "CauchyBitmatrixRS(4,2)"

    def test_invalid_parameters(self):
        with pytest.raises(CodeConstructionError):
            CauchyBitmatrixRSCode(0, 2)
        with pytest.raises(CodeConstructionError):
            CauchyBitmatrixRSCode(200, 100)


class TestRoundtrip:
    @pytest.mark.parametrize("k,r", [(2, 2), (4, 2), (4, 3), (6, 3)])
    def test_mds_exhaustive(self, rng, k, r):
        code = CauchyBitmatrixRSCode(k, r)
        data = make_data(rng, k, 16)
        stripe = code.encode(data)
        for subset in combinations(range(k + r), k):
            available = {i: stripe[i] for i in subset}
            assert np.array_equal(code.decode(available), data), subset

    def test_systematic(self, rng):
        code = CauchyBitmatrixRSCode(4, 2)
        data = make_data(rng, 4, 24)
        stripe = code.encode(data)
        assert np.array_equal(stripe[:4], data)

    def test_production_parameters_sampled(self, rng):
        code = CauchyBitmatrixRSCode(10, 4)
        data = make_data(rng, 10, 32)
        stripe = code.encode(data)
        for _ in range(25):
            subset = rng.choice(14, size=10, replace=False)
            available = {int(i): stripe[int(i)] for i in subset}
            assert np.array_equal(code.decode(available), data)

    def test_unit_size_must_be_multiple_of_8(self, rng):
        code = CauchyBitmatrixRSCode(4, 2)
        with pytest.raises(Exception):
            code.encode(make_data(rng, 4, 12))

    def test_too_few_survivors(self, rng):
        code = CauchyBitmatrixRSCode(4, 2)
        stripe = code.encode(make_data(rng, 4, 8))
        with pytest.raises(DecodingError):
            code.decode({0: stripe[0], 1: stripe[1], 2: stripe[2]})


class TestRepair:
    def test_repairs_every_node(self, rng):
        code = CauchyBitmatrixRSCode(6, 3)
        data = make_data(rng, 6, 16)
        stripe = code.encode(data)
        for failed in range(9):
            available = {i: stripe[i] for i in range(9) if i != failed}
            rebuilt, downloaded = code.execute_repair(failed, available)
            assert np.array_equal(rebuilt, stripe[failed])
            assert downloaded == 6 * 16  # same economics as RS

    def test_repair_plan_reads_k_units(self):
        plan = CauchyBitmatrixRSCode(10, 4).repair_plan(3)
        assert plan.units_downloaded == 10.0

    def test_insufficient_survivors(self):
        with pytest.raises(RepairError):
            CauchyBitmatrixRSCode(4, 2).repair_plan(0, [1, 2, 3])


class TestVerify:
    def test_verify_stripe_detects_corruption(self, rng):
        code = CauchyBitmatrixRSCode(4, 2)
        stripe = code.encode(make_data(rng, 4, 16))
        assert code.verify_stripe(stripe)
        stripe[5, 3] ^= 1
        assert not code.verify_stripe(stripe)
