"""Backend equivalence: table-based RS vs bit-matrix CRS.

The two backends are different constructions over the same field, so
codewords differ -- but every *behavioural* contract must agree: MDS
decodability, repair-plan economics, verification semantics.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.rs import ReedSolomonCode

_PAIRS = {}


def get_pair(k, r):
    key = (k, r)
    if key not in _PAIRS:
        _PAIRS[key] = (ReedSolomonCode(k, r), CauchyBitmatrixRSCode(k, r))
    return _PAIRS[key]


params = st.tuples(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=3),
)


@given(params=params, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_same_erasure_patterns_decodable(params, seed):
    k, r = params
    rs, crs = get_pair(k, r)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
    rs_stripe = rs.encode(data)
    crs_stripe = crs.encode(data)
    survivors = rng.choice(k + r, size=k, replace=False)
    survivor_set = [int(s) for s in survivors]
    assert np.array_equal(
        rs.decode({i: rs_stripe[i] for i in survivor_set}), data
    )
    assert np.array_equal(
        crs.decode({i: crs_stripe[i] for i in survivor_set}), data
    )


@given(params=params, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_identical_repair_economics(params, seed):
    k, r = params
    rs, crs = get_pair(k, r)
    rng = np.random.default_rng(seed)
    failed = int(rng.integers(0, k + r))
    rs_plan = rs.repair_plan(failed)
    crs_plan = crs.repair_plan(failed)
    assert rs_plan.units_downloaded == crs_plan.units_downloaded
    assert rs_plan.num_connections == crs_plan.num_connections
    assert rs_plan.nodes_contacted == crs_plan.nodes_contacted


@given(params=params, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_both_detect_the_same_corruptions(params, seed):
    k, r = params
    rs, crs = get_pair(k, r)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
    row = int(rng.integers(0, k + r))
    col = int(rng.integers(0, 8))
    bit = 1 << int(rng.integers(0, 8))
    for code in (rs, crs):
        stripe = code.encode(data)
        assert code.verify_stripe(stripe)
        stripe[row, col] ^= bit
        assert not code.verify_stripe(stripe)
