"""Property-based tests for Piggybacked-RS invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode

_CODES = {}


def get_code(k, r):
    key = (k, r)
    if key not in _CODES:
        _CODES[key] = PiggybackedRSCode(k, r)
    return _CODES[key]


params = st.tuples(
    st.integers(min_value=2, max_value=8),  # k
    st.integers(min_value=2, max_value=4),  # r
)


@given(
    params=params,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_any_r_failures_decodable(params, seed):
    """The MDS property: erase any r units, decode the rest."""
    k, r = params
    code = get_code(k, r)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
    stripe = code.encode(data)
    erased = rng.choice(k + r, size=r, replace=False)
    available = {
        i: stripe[i] for i in range(k + r) if i not in set(erased.tolist())
    }
    assert np.array_equal(code.decode(available), data)


@given(
    params=params,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_repair_equals_reencode(params, seed):
    """Repairing any node reproduces exactly the encoder's output, and
    the executed byte count equals the plan's claim."""
    k, r = params
    code = get_code(k, r)
    rng = np.random.default_rng(seed)
    unit_size = 2 * int(rng.integers(1, 32))
    data = rng.integers(0, 256, size=(k, unit_size), dtype=np.uint8)
    stripe = code.encode(data)
    failed = int(rng.integers(0, k + r))
    available = {i: stripe[i] for i in range(k + r) if i != failed}
    plan = code.repair_plan(failed, available.keys())
    rebuilt, downloaded = code.execute_repair(failed, available, plan)
    assert np.array_equal(rebuilt, stripe[failed])
    assert downloaded == plan.bytes_downloaded(unit_size)


@given(
    params=params,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_never_worse_than_rs(params, seed):
    """No single-failure repair downloads more than the RS cost k."""
    k, r = params
    code = get_code(k, r)
    rng = np.random.default_rng(seed)
    node = int(rng.integers(0, k + r))
    assert code.repair_plan(node).units_downloaded <= k


@given(
    params=params,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_substripe_a_matches_plain_rs(params, seed):
    """Piggybacks live only in the second substripe of parities."""
    k, r = params
    code = get_code(k, r)
    rs = ReedSolomonCode(k, r)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 16), dtype=np.uint8)
    stripe = code.encode(data)
    rs_first = rs.encode(data[:, :8])
    assert np.array_equal(stripe[:, :8], rs_first)


@given(
    params=params,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    second_failure=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_repair_under_double_failure(params, seed, second_failure):
    """With two concurrent failures, repair of either still succeeds
    (possibly via the full-path fallback)."""
    k, r = params
    code = get_code(k, r)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
    stripe = code.encode(data)
    failed = int(rng.integers(0, k + r))
    other = second_failure % (k + r)
    if other == failed:
        other = (other + 1) % (k + r)
    available = {
        i: stripe[i] for i in range(k + r) if i not in (failed, other)
    }
    rebuilt, __ = code.execute_repair(failed, available)
    assert np.array_equal(rebuilt, stripe[failed])
