"""Tests for the LRC baseline (Section 5 related work)."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes.lrc import LRCCode
from repro.errors import CodeConstructionError, DecodingError, RepairError
from tests.conftest import make_data


class TestConstruction:
    def test_shape(self, lrc_10_2_2):
        assert lrc_10_2_2.k == 10
        assert lrc_10_2_2.r == 4
        assert lrc_10_2_2.n == 14
        assert lrc_10_2_2.group_size == 5

    def test_not_mds(self, lrc_10_2_2):
        assert not lrc_10_2_2.is_mds

    def test_same_overhead_as_rs_10_4(self, lrc_10_2_2):
        assert lrc_10_2_2.storage_overhead == pytest.approx(1.4)

    def test_invalid_parameters(self):
        with pytest.raises(CodeConstructionError):
            LRCCode(10, 3, 2)  # k not divisible by l
        with pytest.raises(CodeConstructionError):
            LRCCode(0, 1, 2)

    def test_group_layout(self, lrc_10_2_2):
        assert lrc_10_2_2.group_members(0) == [0, 1, 2, 3, 4]
        assert lrc_10_2_2.group_members(1) == [5, 6, 7, 8, 9]
        assert lrc_10_2_2.local_parity_node(0) == 10
        assert lrc_10_2_2.local_parity_node(1) == 11
        assert lrc_10_2_2.group_of_data_unit(7) == 1


class TestEncode:
    def test_local_parities_are_group_xor(self, lrc_10_2_2, small_data):
        stripe = lrc_10_2_2.encode(small_data)
        group0_xor = np.bitwise_xor.reduce(small_data[:5], axis=0)
        group1_xor = np.bitwise_xor.reduce(small_data[5:], axis=0)
        assert np.array_equal(stripe[10], group0_xor)
        assert np.array_equal(stripe[11], group1_xor)

    def test_systematic(self, lrc_10_2_2, small_data):
        stripe = lrc_10_2_2.encode(small_data)
        assert np.array_equal(stripe[:10], small_data)


class TestDecode:
    def test_decode_from_all_data(self, lrc_10_2_2, small_data):
        stripe = lrc_10_2_2.encode(small_data)
        assert np.array_equal(
            lrc_10_2_2.decode({i: stripe[i] for i in range(10)}), small_data
        )

    def test_decode_with_three_failures(self, lrc_10_2_2, rng):
        """LRC(10,2,2) tolerates any g+1 = 3 failures."""
        data = make_data(rng, 10, 16)
        stripe = lrc_10_2_2.encode(data)
        for erased in combinations(range(14), 3):
            available = {
                i: stripe[i] for i in range(14) if i not in erased
            }
            assert np.array_equal(lrc_10_2_2.decode(available), data), erased

    def test_some_four_failures_fatal(self, lrc_10_2_2, small_data):
        """Not MDS: e.g. losing a whole local group's worth of units
        from one group plus its parity can be unrecoverable."""
        stripe = lrc_10_2_2.encode(small_data)
        fatal = [0, 1, 2, 10]  # 3 members + local parity of group 0:
        # only 2 global parities remain to cover 3 unknowns.
        assert not lrc_10_2_2.tolerates(fatal)
        available = {i: stripe[i] for i in range(14) if i not in fatal}
        with pytest.raises(DecodingError):
            lrc_10_2_2.decode(available)

    def test_some_four_failures_survivable(self, lrc_10_2_2, small_data):
        stripe = lrc_10_2_2.encode(small_data)
        spread = [0, 5, 12, 13]  # one per group + both globals
        assert lrc_10_2_2.tolerates(spread)
        available = {i: stripe[i] for i in range(14) if i not in spread}
        assert np.array_equal(lrc_10_2_2.decode(available), small_data)


class TestRepair:
    def test_data_repair_is_local(self, lrc_10_2_2, small_data):
        stripe = lrc_10_2_2.encode(small_data)
        for failed in range(10):
            available = {i: stripe[i] for i in range(14) if i != failed}
            plan = lrc_10_2_2.repair_plan(failed, available.keys())
            assert plan.units_downloaded == 5.0  # group size
            rebuilt, downloaded = lrc_10_2_2.execute_repair(
                failed, available, plan
            )
            assert np.array_equal(rebuilt, stripe[failed])
            assert downloaded == 5 * 64

    def test_local_parity_repair_is_local(self, lrc_10_2_2, small_data):
        stripe = lrc_10_2_2.encode(small_data)
        for failed in (10, 11):
            available = {i: stripe[i] for i in range(14) if i != failed}
            plan = lrc_10_2_2.repair_plan(failed, available.keys())
            assert plan.units_downloaded == 5.0
            rebuilt, __ = lrc_10_2_2.execute_repair(failed, available, plan)
            assert np.array_equal(rebuilt, stripe[failed])

    def test_global_parity_repair_reads_k(self, lrc_10_2_2, small_data):
        stripe = lrc_10_2_2.encode(small_data)
        for failed in (12, 13):
            available = {i: stripe[i] for i in range(14) if i != failed}
            plan = lrc_10_2_2.repair_plan(failed, available.keys())
            assert plan.units_downloaded == 10.0
            rebuilt, __ = lrc_10_2_2.execute_repair(failed, available, plan)
            assert np.array_equal(rebuilt, stripe[failed])

    def test_local_repair_blocked_falls_back(self, lrc_10_2_2, small_data):
        """If a group member is also down, repair decodes globally."""
        stripe = lrc_10_2_2.encode(small_data)
        failed, blocked = 0, 1
        available = {
            i: stripe[i] for i in range(14) if i not in (failed, blocked)
        }
        plan = lrc_10_2_2.repair_plan(failed, available.keys())
        assert plan.units_downloaded == 10.0
        rebuilt, __ = lrc_10_2_2.execute_repair(failed, available, plan)
        assert np.array_equal(rebuilt, stripe[failed])

    def test_unrecoverable_pattern_raises(self, lrc_10_2_2):
        survivors = set(range(14)) - {0, 1, 2, 10}
        with pytest.raises(RepairError):
            lrc_10_2_2.repair_plan(0, survivors)


class TestToleranceCounting:
    def test_tolerates_all_three_failure_patterns(self, lrc_10_2_2):
        assert all(
            lrc_10_2_2.tolerates(pattern)
            for pattern in combinations(range(14), 3)
        )

    def test_four_failure_survival_rate(self, lrc_10_2_2):
        patterns = list(combinations(range(14), 4))
        survived = sum(1 for p in patterns if lrc_10_2_2.tolerates(p))
        # Known structural rate for this layout: most but not all.
        assert 0.7 < survived / len(patterns) < 1.0
