"""Tests for codec-level stripe verification (scrubbing support)."""

import numpy as np
import pytest

from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.replication import ReplicationCode
from repro.codes.rs import ReedSolomonCode

ALL_CODES = [
    ReedSolomonCode(10, 4),
    PiggybackedRSCode(10, 4),
    LRCCode(10, 2, 2),
    ReplicationCode(3),
]


@pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
class TestVerifyStripe:
    def make_stripe(self, code, rng):
        data = rng.integers(0, 256, size=(code.k, 32), dtype=np.uint8)
        return code.encode(data)

    def test_clean_stripe_verifies(self, code, rng):
        assert code.verify_stripe(self.make_stripe(code, rng))

    def test_corrupt_data_unit_detected(self, code, rng):
        stripe = self.make_stripe(code, rng)
        stripe[0, 5] ^= 0x01
        assert not code.verify_stripe(stripe)

    def test_corrupt_parity_unit_detected(self, code, rng):
        stripe = self.make_stripe(code, rng)
        stripe[code.k, 0] ^= 0xFF
        assert not code.verify_stripe(stripe)

    def test_wrong_unit_count_rejected(self, code, rng):
        stripe = self.make_stripe(code, rng)
        assert not code.verify_stripe(stripe[:-1])

    def test_single_bit_flip_anywhere_detected(self, code, rng):
        stripe = self.make_stripe(code, rng)
        row = int(rng.integers(0, code.n))
        col = int(rng.integers(0, 32))
        bit = 1 << int(rng.integers(0, 8))
        stripe[row, col] ^= bit
        assert not code.verify_stripe(stripe)


class TestPiggybackVerifySpecifics:
    def test_piggyback_tampering_detected(self, rng):
        """Stripping a piggyback (turning the stripe into plain RS
        parities) must fail verification."""
        code = PiggybackedRSCode(10, 4)
        rs = ReedSolomonCode(10, 4)
        data = rng.integers(0, 256, size=(10, 32), dtype=np.uint8)
        stripe = code.encode(data)
        rs_b = rs.encode(data[:, 16:])
        tampered = stripe.copy()
        tampered[11, 16:] = rs_b[11]  # remove parity 1's piggyback
        assert not code.verify_stripe(tampered)
