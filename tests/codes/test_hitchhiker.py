"""Tests for the Hitchhiker extension variants."""

import numpy as np
import pytest

from repro.codes.hitchhiker import (
    hitchhiker_nonxor,
    hitchhiker_partition,
    hitchhiker_xor,
)
from repro.errors import CodeConstructionError
from tests.conftest import make_data


class TestPartition:
    def test_production_shape(self):
        assert hitchhiker_partition(10, 4) == [[0, 1, 2], [3, 4, 5], [6, 7, 8, 9]]

    def test_smaller_groups_first(self):
        for k in range(2, 16):
            sizes = [len(g) for g in hitchhiker_partition(k, 4)]
            assert sizes == sorted(sizes)

    def test_requires_two_parities(self):
        with pytest.raises(CodeConstructionError):
            hitchhiker_partition(10, 1)


@pytest.mark.parametrize("factory", [hitchhiker_xor, hitchhiker_nonxor])
class TestVariants:
    def test_roundtrip_all_nodes(self, factory, rng):
        code = factory(10, 4)
        data = make_data(rng, 10, 32)
        stripe = code.encode(data)
        for failed in range(14):
            available = {i: stripe[i] for i in range(14) if i != failed}
            rebuilt, __ = code.execute_repair(failed, available)
            assert np.array_equal(rebuilt, stripe[failed])

    def test_decode_any_ten(self, factory, rng):
        code = factory(10, 4)
        data = make_data(rng, 10, 16)
        stripe = code.encode(data)
        for __ in range(30):
            subset = rng.choice(14, size=10, replace=False)
            available = {int(i): stripe[int(i)] for i in subset}
            assert np.array_equal(code.decode(available), data)

    def test_same_savings_as_piggyback(self, factory):
        code = factory(10, 4)
        assert code.average_data_repair_download_units() == pytest.approx(6.7)

    def test_variant_name(self, factory):
        code = factory(10, 4)
        assert "Hitchhiker" in code.name

    def test_mds_and_overhead(self, factory):
        code = factory(10, 4)
        assert code.is_mds
        assert code.storage_overhead == pytest.approx(1.4)


class TestNonXorSpecifics:
    def test_coefficients_not_all_ones(self):
        code = hitchhiker_nonxor(10, 4)
        nonzero = code.design.matrix[code.design.matrix != 0]
        assert set(nonzero.tolist()) != {1}

    def test_group_sizes_drive_costs(self):
        code = hitchhiker_xor(10, 4)
        units = [code.repair_download_units(i) for i in range(10)]
        # Groups of 3, 3, 4 -> costs 6.5, 6.5, 7.0.
        assert units == [6.5] * 6 + [7.0] * 4
