"""Tests for the code registry."""

import pytest

from repro.codes.registry import available_codes, create_code, register_code
from repro.codes.rs import ReedSolomonCode
from repro.errors import CodeConstructionError


class TestRegistry:
    def test_builtin_codes_registered(self):
        names = available_codes()
        for expected in ("rs", "piggyback", "replication", "lrc",
                         "hitchhiker-xor", "hitchhiker-nonxor"):
            assert expected in names

    def test_create_rs(self):
        code = create_code("rs", k=10, r=4)
        assert code.name == "RS(10,4)"

    def test_create_piggyback(self):
        code = create_code("piggyback", k=10, r=4)
        assert code.name == "PiggybackedRS(10,4)"

    def test_create_is_case_insensitive(self):
        assert create_code("RS", k=4, r=2).name == "RS(4,2)"

    def test_aliases_agree(self):
        a = create_code("rs", k=6, r=3)
        b = create_code("reed-solomon", k=6, r=3)
        assert a.name == b.name

    def test_unknown_code(self):
        with pytest.raises(CodeConstructionError):
            create_code("raptor", k=4, r=2)

    def test_register_custom(self):
        register_code("test-custom-rs", lambda: ReedSolomonCode(4, 2))
        assert "test-custom-rs" in available_codes()
        assert create_code("test-custom-rs").name == "RS(4,2)"

    def test_register_empty_name_rejected(self):
        with pytest.raises(CodeConstructionError):
            register_code("  ", lambda: ReedSolomonCode(4, 2))
