"""Property-based tests over *random* piggyback designs.

The framework claims safety for any disjoint grouping with any non-zero
GF(256) coefficients; these tests generate arbitrary designs and check
the invariants hold for all of them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.piggyback import PiggybackDesign, PiggybackedRSCode


@st.composite
def random_design(draw):
    """A random (k, r) plus a random disjoint piggyback assignment."""
    k = draw(st.integers(min_value=2, max_value=8))
    r = draw(st.integers(min_value=2, max_value=4))
    # Assign each data unit to a parity in [1, r) or to "no parity" (0).
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=r - 1),
            min_size=k,
            max_size=k,
        )
    )
    coefficients = draw(
        st.lists(
            st.integers(min_value=1, max_value=255), min_size=k, max_size=k
        )
    )
    matrix = np.zeros((r, k), dtype=np.uint8)
    for unit, (parity, coefficient) in enumerate(zip(assignment, coefficients)):
        if parity >= 1:
            matrix[parity, unit] = coefficient
    design = PiggybackDesign(k=k, r=r, matrix=matrix)
    return design


@given(design=random_design(), seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_any_design_is_mds(design, seed):
    """Every legal design tolerates any r erasures."""
    code = PiggybackedRSCode(design.k, design.r, design=design)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(design.k, 8), dtype=np.uint8)
    stripe = code.encode(data)
    erased = rng.choice(code.n, size=design.r, replace=False)
    available = {
        i: stripe[i] for i in range(code.n) if i not in set(erased.tolist())
    }
    assert np.array_equal(code.decode(available), data)


@given(design=random_design(), seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_any_design_repairs_every_node(design, seed):
    code = PiggybackedRSCode(design.k, design.r, design=design)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(design.k, 6), dtype=np.uint8)
    stripe = code.encode(data)
    failed = int(rng.integers(0, code.n))
    available = {i: stripe[i] for i in range(code.n) if i != failed}
    plan = code.repair_plan(failed, available.keys())
    rebuilt, downloaded = code.execute_repair(failed, available, plan)
    assert np.array_equal(rebuilt, stripe[failed])
    assert downloaded == plan.bytes_downloaded(6)
    # The plan cost agrees with the design's prediction for data nodes.
    if failed < design.k:
        assert plan.subunits_read == design.repair_subunits(failed)


@given(design=random_design())
@settings(max_examples=40, deadline=None)
def test_design_cost_prediction_bounds(design):
    """Predicted repair cost is between the toy optimum and full cost."""
    for unit in range(design.k):
        subunits = design.repair_subunits(unit)
        assert design.k + 1 <= subunits <= 2 * design.k
