"""Property-based tests for Reed-Solomon invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.rs import ReedSolomonCode

# Cache codes across examples: constructing generators is the slow part.
_CODES = {}


def get_code(k, r, construction="vandermonde"):
    key = (k, r, construction)
    if key not in _CODES:
        _CODES[key] = ReedSolomonCode(k, r, construction)
    return _CODES[key]


small_params = st.tuples(
    st.integers(min_value=1, max_value=6),  # k
    st.integers(min_value=1, max_value=4),  # r
)


@given(
    params=small_params,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    unit_size=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_decode_from_random_k_subset(params, seed, unit_size):
    k, r = params
    code = get_code(k, r)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, unit_size), dtype=np.uint8)
    stripe = code.encode(data)
    subset = rng.choice(k + r, size=k, replace=False)
    available = {int(i): stripe[int(i)] for i in subset}
    assert np.array_equal(code.decode(available), data)


@given(
    params=small_params,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_repair_equals_original(params, seed):
    k, r = params
    code = get_code(k, r)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
    stripe = code.encode(data)
    failed = int(rng.integers(0, k + r))
    available = {i: stripe[i] for i in range(k + r) if i != failed}
    rebuilt, downloaded = code.execute_repair(failed, available)
    assert np.array_equal(rebuilt, stripe[failed])
    assert downloaded == k * 8  # RS single repair always reads k units


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    failures=st.sets(st.integers(min_value=0, max_value=13), max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_production_code_tolerates_any_r_failures(seed, failures):
    code = get_code(10, 4)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(10, 4), dtype=np.uint8)
    stripe = code.encode(data)
    available = {i: stripe[i] for i in range(14) if i not in failures}
    assert np.array_equal(code.decode(available), data)


@given(
    params=small_params,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_encode_is_gf_linear(params, seed):
    k, r = params
    code = get_code(k, r)
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
    b = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
    assert np.array_equal(code.encode(a ^ b), code.encode(a) ^ code.encode(b))
