"""Tests for piggyback designs (grouping and coefficients)."""

import numpy as np
import pytest

from repro.codes.piggyback.design import (
    PiggybackDesign,
    default_partition,
    fig4_toy_design,
)
from repro.errors import CodeConstructionError


class TestDefaultPartition:
    def test_production_parameters(self):
        assert default_partition(10, 4) == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_covers_all_data_units_for_r_at_least_3(self):
        for k in range(1, 15):
            for r in range(3, 6):
                groups = default_partition(k, r)
                flattened = [i for group in groups for i in group]
                assert sorted(flattened) == list(range(k))

    def test_group_sizes_near_equal(self):
        for k in range(2, 20):
            for r in range(3, 6):
                sizes = [len(g) for g in default_partition(k, r)]
                assert max(sizes) - min(sizes) <= 1

    def test_r_equals_2_takes_half(self):
        assert default_partition(2, 2) == [[0]]
        assert default_partition(10, 2) == [[0, 1, 2, 3, 4]]
        assert default_partition(5, 2) == [[0, 1, 2]]

    def test_r_equals_1_has_no_piggyback(self):
        assert default_partition(10, 1) == []

    def test_invalid_parameters(self):
        with pytest.raises(CodeConstructionError):
            default_partition(0, 2)
        with pytest.raises(CodeConstructionError):
            default_partition(5, 0)


class TestPiggybackDesign:
    def test_xor_design_matrix(self):
        design = PiggybackDesign.xor_design(10, 4)
        assert design.matrix.shape == (4, 10)
        assert not design.matrix[0].any()  # parity 0 clean
        assert np.array_equal(design.matrix[1, :4], np.ones(4, dtype=np.uint8))
        assert np.array_equal(design.matrix[2, 4:7], np.ones(3, dtype=np.uint8))
        assert np.array_equal(design.matrix[3, 7:], np.ones(3, dtype=np.uint8))

    def test_groups_property(self):
        design = PiggybackDesign.xor_design(10, 4)
        assert design.groups == ((0, 1, 2, 3), (4, 5, 6), (7, 8, 9))

    def test_carrier_parity(self):
        design = PiggybackDesign.xor_design(10, 4)
        assert design.carrier_parity(0) == 1
        assert design.carrier_parity(5) == 2
        assert design.carrier_parity(9) == 3

    def test_group_of(self):
        design = PiggybackDesign.xor_design(10, 4)
        assert design.group_of(5) == (4, 5, 6)
        assert design.group_of(0) == (0, 1, 2, 3)

    def test_repair_subunits(self):
        design = PiggybackDesign.xor_design(10, 4)
        assert design.repair_subunits(0) == 14  # group of 4: 10 + 4
        assert design.repair_subunits(5) == 13  # group of 3: 10 + 3

    def test_unpiggybacked_unit_costs_full(self):
        design = PiggybackDesign.from_groups(4, 3, [[0], [1]])
        assert design.carrier_parity(3) is None
        assert design.group_of(3) == ()
        assert design.repair_subunits(3) == 8  # 2k

    def test_row_zero_must_be_clean(self):
        matrix = np.zeros((3, 4), dtype=np.uint8)
        matrix[0, 0] = 1
        with pytest.raises(CodeConstructionError):
            PiggybackDesign(k=4, r=3, matrix=matrix)

    def test_unit_on_two_parities_rejected(self):
        matrix = np.zeros((3, 4), dtype=np.uint8)
        matrix[1, 0] = 1
        matrix[2, 0] = 1
        with pytest.raises(CodeConstructionError):
            PiggybackDesign(k=4, r=3, matrix=matrix)

    def test_wrong_shape_rejected(self):
        with pytest.raises(CodeConstructionError):
            PiggybackDesign(k=4, r=3, matrix=np.zeros((2, 4), dtype=np.uint8))

    def test_from_groups_validation(self):
        with pytest.raises(CodeConstructionError):
            PiggybackDesign.from_groups(4, 3, [[0], [0]])  # duplicate unit
        with pytest.raises(CodeConstructionError):
            PiggybackDesign.from_groups(4, 3, [[4]])  # out of range
        with pytest.raises(CodeConstructionError):
            PiggybackDesign.from_groups(4, 3, [[0], [1], [2]])  # too many groups
        with pytest.raises(CodeConstructionError):
            PiggybackDesign.from_groups(4, 3, [[]])  # empty group
        with pytest.raises(CodeConstructionError):
            PiggybackDesign.from_groups(4, 3, [[0]], [[0]])  # zero coefficient
        with pytest.raises(CodeConstructionError):
            PiggybackDesign.from_groups(4, 3, [[0, 1]], [[1]])  # count mismatch

    def test_custom_coefficients(self):
        design = PiggybackDesign.from_groups(4, 3, [[0, 1]], [[2, 3]])
        assert design.coefficient(1, 0) == 2
        assert design.coefficient(1, 1) == 3

    def test_describe(self):
        info = PiggybackDesign.xor_design(10, 4).describe()
        assert info["k"] == 10 and info["r"] == 4
        assert info["piggybacked_units"] == 10

    def test_immutable(self):
        design = PiggybackDesign.xor_design(4, 3)
        with pytest.raises(Exception):
            design.k = 5


class TestFig4ToyDesign:
    def test_only_first_unit_piggybacked(self):
        design = fig4_toy_design()
        assert design.k == 2 and design.r == 2
        assert design.groups == ((0,),)
        assert design.carrier_parity(0) == 1
        assert design.carrier_parity(1) is None

    def test_repair_cost_matches_paper(self):
        design = fig4_toy_design()
        # Node 1 of the paper (our 0): 3 subunits instead of 4.
        assert design.repair_subunits(0) == 3
        assert design.repair_subunits(1) == 4
