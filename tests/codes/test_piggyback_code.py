"""Tests for the Piggybacked-RS code (the paper's contribution)."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes.piggyback import (
    PiggybackDesign,
    PiggybackedRSCode,
    fig4_toy_design,
)
from repro.codes.rs import ReedSolomonCode
from repro.errors import CodeConstructionError, DecodingError, RepairError
from tests.conftest import make_data


class TestConstruction:
    def test_name(self, piggyback_10_4):
        assert piggyback_10_4.name == "PiggybackedRS(10,4)"

    def test_two_substripes(self, piggyback_10_4):
        assert piggyback_10_4.substripes_per_unit == 2

    def test_same_storage_as_rs(self, piggyback_10_4, rs_10_4):
        assert piggyback_10_4.storage_overhead == rs_10_4.storage_overhead

    def test_design_mismatch_rejected(self):
        with pytest.raises(CodeConstructionError):
            PiggybackedRSCode(10, 4, design=PiggybackDesign.xor_design(8, 4))


class TestEncode:
    def test_systematic(self, piggyback_10_4, small_data):
        stripe = piggyback_10_4.encode(small_data)
        assert stripe.shape == (14, 64)
        assert np.array_equal(stripe[:10], small_data)

    def test_first_substripe_is_plain_rs(self, piggyback_10_4, rs_10_4, small_data):
        """The a-substripe carries no piggybacks: it must equal RS
        encoding of the first halves."""
        stripe = piggyback_10_4.encode(small_data)
        rs_stripe = rs_10_4.encode(small_data[:, :32])
        assert np.array_equal(stripe[:, :32], rs_stripe)

    def test_parity0_second_substripe_clean(self, piggyback_10_4, rs_10_4, small_data):
        stripe = piggyback_10_4.encode(small_data)
        rs_stripe = rs_10_4.encode(small_data[:, 32:])
        assert np.array_equal(stripe[10, 32:], rs_stripe[10])

    def test_piggybacked_parities_differ_from_rs(
        self, piggyback_10_4, rs_10_4, rng
    ):
        data = make_data(rng, 10, 64)
        stripe = piggyback_10_4.encode(data)
        rs_stripe = rs_10_4.encode(data[:, 32:])
        for parity in (11, 12, 13):
            assert not np.array_equal(stripe[parity, 32:], rs_stripe[parity])

    def test_piggyback_values(self, piggyback_10_4, small_data):
        """Parity j's second half = f_j(b) + XOR of its group's a halves."""
        stripe = piggyback_10_4.encode(small_data)
        rs = ReedSolomonCode(10, 4)
        b_parities = rs.encode(small_data[:, 32:])
        for parity_index, group in enumerate(piggyback_10_4.design.groups):
            node = 11 + parity_index
            expected = b_parities[node].copy()
            for member in group:
                expected ^= small_data[member, :32]
            assert np.array_equal(stripe[node, 32:], expected)

    def test_odd_unit_size_rejected(self, piggyback_10_4):
        with pytest.raises(Exception):
            piggyback_10_4.encode(np.zeros((10, 7), dtype=np.uint8))


class TestDecode:
    def test_mds_exhaustive_production(self, piggyback_10_4, rng):
        """Any 10 of the 14 units decode -- the code is MDS."""
        data = make_data(rng, 10, 16)
        stripe = piggyback_10_4.encode(data)
        for subset in combinations(range(14), 10):
            available = {i: stripe[i] for i in subset}
            assert np.array_equal(piggyback_10_4.decode(available), data)

    def test_mds_exhaustive_toy(self, rng):
        code = PiggybackedRSCode(2, 2, design=fig4_toy_design())
        data = make_data(rng, 2, 8)
        stripe = code.encode(data)
        for subset in combinations(range(4), 2):
            available = {i: stripe[i] for i in subset}
            assert np.array_equal(code.decode(available), data)

    def test_too_few_units(self, piggyback_10_4, small_data):
        stripe = piggyback_10_4.encode(small_data)
        with pytest.raises(DecodingError):
            piggyback_10_4.decode({i: stripe[i] for i in range(9)})


class TestRepair:
    def test_every_node_repairs_correctly(self, piggyback_10_4, small_data):
        stripe = piggyback_10_4.encode(small_data)
        for failed in range(14):
            available = {i: stripe[i] for i in range(14) if i != failed}
            rebuilt, __ = piggyback_10_4.execute_repair(failed, available)
            assert np.array_equal(rebuilt, stripe[failed]), failed

    def test_data_repair_downloads_match_design(self, piggyback_10_4, small_data):
        stripe = piggyback_10_4.encode(small_data)
        unit_size = 64
        for failed in range(10):
            available = {i: stripe[i] for i in range(14) if i != failed}
            __, downloaded = piggyback_10_4.execute_repair(failed, available)
            expected_subunits = piggyback_10_4.design.repair_subunits(failed)
            assert downloaded == expected_subunits * (unit_size // 2)

    def test_parity_repair_costs_full(self, piggyback_10_4, small_data):
        stripe = piggyback_10_4.encode(small_data)
        for failed in range(10, 14):
            available = {i: stripe[i] for i in range(14) if i != failed}
            __, downloaded = piggyback_10_4.execute_repair(failed, available)
            assert downloaded == 10 * 64

    def test_data_repair_connects_to_k_plus_1(self, piggyback_10_4):
        # k-1 data nodes + clean parity + carrier parity = k + 1.
        for failed in range(10):
            plan = piggyback_10_4.repair_plan(failed)
            assert plan.num_connections == 11

    def test_repair_plan_savings_production(self, piggyback_10_4):
        """The headline numbers: 30-35% per data node."""
        units = [
            piggyback_10_4.repair_plan(node).units_downloaded
            for node in range(14)
        ]
        assert units[:4] == [7.0] * 4      # group of 4: (10+4)/2
        assert units[4:10] == [6.5] * 6    # groups of 3: (10+3)/2
        assert units[10:] == [10.0] * 4    # parities: RS cost

    def test_fallback_when_piggyback_source_down(self, piggyback_10_4, small_data):
        """A second failure hitting the carrier parity forces the full
        path -- repair still succeeds, at RS cost."""
        stripe = piggyback_10_4.encode(small_data)
        failed, carrier = 0, 11  # node 0's carrier parity is 11
        available = {
            i: stripe[i] for i in range(14) if i not in (failed, carrier)
        }
        plan = piggyback_10_4.repair_plan(failed, available.keys())
        assert plan.units_downloaded == 10.0  # full-path cost
        rebuilt, __ = piggyback_10_4.execute_repair(failed, available, plan)
        assert np.array_equal(rebuilt, stripe[failed])

    def test_fallback_when_group_member_down(self, piggyback_10_4, small_data):
        stripe = piggyback_10_4.encode(small_data)
        failed, member = 0, 1  # same group
        available = {
            i: stripe[i] for i in range(14) if i not in (failed, member)
        }
        plan = piggyback_10_4.repair_plan(failed, available.keys())
        assert plan.units_downloaded == 10.0
        rebuilt, __ = piggyback_10_4.execute_repair(failed, available, plan)
        assert np.array_equal(rebuilt, stripe[failed])

    def test_piggyback_path_survives_unrelated_second_failure(
        self, piggyback_10_4, small_data
    ):
        """A second failure outside the repair's sources keeps the cheap
        path available."""
        stripe = piggyback_10_4.encode(small_data)
        failed, unrelated = 0, 13  # parity 13 is not used for node 0
        available = {
            i: stripe[i] for i in range(14) if i not in (failed, unrelated)
        }
        plan = piggyback_10_4.repair_plan(failed, available.keys())
        assert plan.units_downloaded == 7.0
        rebuilt, __ = piggyback_10_4.execute_repair(failed, available, plan)
        assert np.array_equal(rebuilt, stripe[failed])

    def test_repair_insufficient_survivors(self, piggyback_10_4):
        with pytest.raises(RepairError):
            piggyback_10_4.repair_plan(0, range(1, 10))

    def test_repair_missing_fetched_source(self, piggyback_10_4, small_data):
        stripe = piggyback_10_4.encode(small_data)
        plan = piggyback_10_4.repair_plan(0)
        # Drop one required source from the fetch.
        fetched = {}
        for request in plan.requests[:-1]:
            subs = piggyback_10_4.split_unit(stripe[request.node])
            fetched[request.node] = {s: subs[s] for s in request.substripes}
        with pytest.raises(RepairError):
            piggyback_10_4.repair(0, fetched)


class TestArbitraryParameters:
    """The paper stresses the framework supports arbitrary (k, r)."""

    @pytest.mark.parametrize("k,r", [(2, 2), (3, 2), (4, 3), (5, 4), (6, 5), (12, 4)])
    def test_roundtrip_and_repair(self, rng, k, r):
        code = PiggybackedRSCode(k, r)
        data = make_data(rng, k, 16)
        stripe = code.encode(data)
        for failed in range(k + r):
            available = {i: stripe[i] for i in range(k + r) if i != failed}
            rebuilt, __ = code.execute_repair(failed, available)
            assert np.array_equal(rebuilt, stripe[failed])
        # Decode from the last k units (hardest systematic case).
        available = {i: stripe[i] for i in range(r, k + r)}
        assert np.array_equal(code.decode(available), data)

    @pytest.mark.parametrize("k,r", [(4, 3), (8, 4), (10, 4)])
    def test_savings_positive_for_data_nodes(self, k, r):
        code = PiggybackedRSCode(k, r)
        assert code.average_data_repair_download_units() < k
