"""Tests for the code-layer memoisation of decode matrices and plans.

The cluster replays the same few failure patterns constantly (98.08% of
degraded stripes miss exactly one unit, Section 2.2), so codes memoise
the inverted decoding matrix per survivor selection and the repair plan
per (failed node, survivor set).  These tests pin down correctness of
the keying: different survivor sets must never share cached state, and
cached results must stay byte-identical to uncached decoding.
"""

import numpy as np
import pytest

from repro.codes.base import MEMO_CAP
from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.lrc import LRCCode
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode


def stripe_for(code, width=64, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(code.k, width), dtype=np.uint8)
    return data, code.encode(data)


class TestDecodeMatrixCache:
    @pytest.mark.parametrize(
        "make_code",
        [
            lambda: ReedSolomonCode(10, 4),
            lambda: CauchyBitmatrixRSCode(6, 3),
            lambda: LRCCode(10, 2, 2),
        ],
        ids=["rs", "crs", "lrc"],
    )
    def test_distinct_survivor_sets_decode_correctly(self, make_code):
        """Cached matrices must be keyed by survivor selection, not shared."""
        code = make_code()
        data, stripe = stripe_for(code)
        # Three different erasure patterns, interleaved twice each, so a
        # wrongly-shared cache entry would corrupt the second pass.
        patterns = [(0,), (1,), (0, 1)]
        for _ in range(2):
            for erased in patterns:
                available = {
                    i: stripe[i] for i in range(code.n) if i not in erased
                }
                assert np.array_equal(code.decode(available), data), erased

    def test_cache_populates_per_selection(self):
        code = ReedSolomonCode(6, 3)
        data, stripe = stripe_for(code)
        code.decode({i: stripe[i] for i in range(1, code.n)})
        code.decode({i: stripe[i] for i in range(2, code.n)})
        cache = code.__dict__["_decode_matrix_cache"]
        assert len(cache) == 2
        # Keys are the sorted chosen-survivor tuples.
        assert all(isinstance(key, tuple) for key in cache)

    def test_all_data_available_skips_cache(self):
        code = ReedSolomonCode(6, 3)
        data, stripe = stripe_for(code)
        code.decode({i: stripe[i] for i in range(code.k)})
        assert "_decode_matrix_cache" not in code.__dict__

    def test_cached_matrix_is_read_only(self):
        code = ReedSolomonCode(6, 3)
        __, stripe = stripe_for(code)
        code.decode({i: stripe[i] for i in range(1, code.n)})
        (matrix,) = code.__dict__["_decode_matrix_cache"].values()
        with pytest.raises(ValueError):
            matrix[0, 0] = 1

    def test_cache_stays_bounded(self):
        code = ReedSolomonCode(4, 2)
        data, stripe = stripe_for(code)
        for erased in [(0,), (1,), (2,), (3,)]:
            available = {i: stripe[i] for i in range(code.n) if i not in erased}
            assert np.array_equal(code.decode(available), data)
        assert len(code.__dict__["_decode_matrix_cache"]) <= MEMO_CAP


class TestRepairPlanCache:
    def test_same_key_returns_same_plan(self):
        code = PiggybackedRSCode(10, 4)
        first = code.repair_plan_cached(3)
        second = code.repair_plan_cached(3)
        assert first is second

    def test_explicit_survivors_key_separately(self):
        code = ReedSolomonCode(10, 4)
        implicit = code.repair_plan_cached(0)
        explicit = code.repair_plan_cached(0, tuple(range(1, code.n)))
        # Same semantics, distinct cache keys -- both must be valid plans.
        assert implicit.failed_node == explicit.failed_node == 0
        assert len(code.__dict__["_repair_plan_cache"]) == 2

    def test_different_survivor_sets_get_different_plans(self):
        code = ReedSolomonCode(10, 4)
        all_alive = code.repair_plan_cached(0, tuple(range(1, 14)))
        degraded = code.repair_plan_cached(0, tuple(range(2, 14)))
        assert all_alive.nodes_contacted != degraded.nodes_contacted

    def test_cached_plan_repairs_correctly(self):
        code = PiggybackedRSCode(10, 4)
        __, stripe = stripe_for(code)
        available = {i: stripe[i] for i in range(1, code.n)}
        for _ in range(2):  # second pass hits the cache
            rebuilt, __ = code.execute_repair(0, available)
            assert np.array_equal(rebuilt, stripe[0])


class TestAverageDownloadMemoisation:
    def test_values_unchanged_by_memoisation(self):
        rs = ReedSolomonCode(10, 4)
        assert rs.average_repair_download_units() == pytest.approx(10.0)
        assert rs.average_repair_download_units() == pytest.approx(10.0)

    def test_plans_not_rebuilt_on_second_call(self):
        code = PiggybackedRSCode(10, 4)
        calls = []
        original = type(code).repair_plan

        def counting(self, failed_node, available_nodes=None):
            calls.append(failed_node)
            return original(self, failed_node, available_nodes)

        type(code).repair_plan = counting
        try:
            first = code.average_repair_download_units()
            after_first = len(calls)
            assert after_first == code.n
            second = code.average_repair_download_units()
            assert len(calls) == after_first  # memoised: no new plans
            assert first == second
            # The per-node plans were cached too, so the data-average
            # reuses them without planning again.
            code.average_data_repair_download_units()
            assert len(calls) == after_first
        finally:
            type(code).repair_plan = original
