"""Property-based tests for LRC invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.lrc import LRCCode

_CODES = {}


def get_code(k, l, g):
    key = (k, l, g)
    if key not in _CODES:
        _CODES[key] = LRCCode(k, l, g)
    return _CODES[key]


@st.composite
def lrc_params(draw):
    l = draw(st.integers(min_value=1, max_value=3))
    group = draw(st.integers(min_value=2, max_value=4))
    g = draw(st.integers(min_value=1, max_value=3))
    return l * group, l, g


@given(
    params=lrc_params(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_tolerates_any_g_plus_1(params, seed):
    """Azure's LRC guarantee: any g + 1 failures are recoverable."""
    k, l, g = params
    code = get_code(k, l, g)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
    stripe = code.encode(data)
    erased = rng.choice(code.n, size=min(g + 1, code.n - k), replace=False)
    erased_set = set(int(e) for e in erased)
    assert code.tolerates(erased_set)
    available = {i: stripe[i] for i in range(code.n) if i not in erased_set}
    assert np.array_equal(code.decode(available), data)


@given(
    params=lrc_params(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_single_failure_repair_is_local_and_correct(params, seed):
    k, l, g = params
    code = get_code(k, l, g)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 8), dtype=np.uint8)
    stripe = code.encode(data)
    failed = int(rng.integers(0, code.n))
    available = {i: stripe[i] for i in range(code.n) if i != failed}
    plan = code.repair_plan(failed, available.keys())
    rebuilt, __ = code.execute_repair(failed, available, plan)
    assert np.array_equal(rebuilt, stripe[failed])
    if failed < k + l:
        assert plan.units_downloaded == code.group_size + (
            0 if failed >= k else 0
        )
    else:
        assert plan.units_downloaded == k


@given(
    params=lrc_params(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_tolerates_agrees_with_decode(params, seed):
    """tolerates() must never disagree with an actual decode attempt."""
    k, l, g = params
    code = get_code(k, l, g)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 4), dtype=np.uint8)
    stripe = code.encode(data)
    failures = rng.choice(code.n, size=min(g + l, code.n - 1), replace=False)
    failure_set = set(int(f) for f in failures)
    available = {i: stripe[i] for i in range(code.n) if i not in failure_set}
    if code.tolerates(failure_set):
        assert np.array_equal(code.decode(available), data)
    else:
        try:
            decoded = code.decode(available)
        except Exception:
            return  # correctly refused
        assert not np.array_equal(decoded, data)
