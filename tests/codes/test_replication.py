"""Tests for the replication baseline."""

import numpy as np
import pytest

from repro.codes.replication import ReplicationCode
from repro.errors import CodeConstructionError, DecodingError, RepairError


class TestConstruction:
    def test_default_hdfs_shape(self):
        code = ReplicationCode(3)
        assert code.k == 1 and code.r == 2 and code.n == 3

    def test_storage_overhead(self):
        assert ReplicationCode(3).storage_overhead == 3.0

    def test_invalid(self):
        with pytest.raises(CodeConstructionError):
            ReplicationCode(0)

    def test_name(self):
        assert ReplicationCode(3).name == "Replication(x3)"


class TestRoundtrip:
    def test_encode_repeats(self, rng):
        code = ReplicationCode(3)
        data = rng.integers(0, 256, size=(1, 16), dtype=np.uint8)
        stripe = code.encode(data)
        assert stripe.shape == (3, 16)
        for replica in stripe:
            assert np.array_equal(replica, data[0])

    def test_decode_from_any_single_replica(self, rng):
        code = ReplicationCode(3)
        data = rng.integers(0, 256, size=(1, 16), dtype=np.uint8)
        stripe = code.encode(data)
        for node in range(3):
            assert np.array_equal(code.decode({node: stripe[node]}), data)

    def test_decode_empty_raises(self):
        with pytest.raises(DecodingError):
            ReplicationCode(3).decode({})


class TestRepair:
    def test_repair_downloads_one_unit(self, rng):
        code = ReplicationCode(3)
        data = rng.integers(0, 256, size=(1, 32), dtype=np.uint8)
        stripe = code.encode(data)
        for failed in range(3):
            available = {i: stripe[i] for i in range(3) if i != failed}
            rebuilt, downloaded = code.execute_repair(failed, available)
            assert np.array_equal(rebuilt, stripe[failed])
            assert downloaded == 32  # exactly one unit: the paper's contrast

    def test_repair_plan_single_connection(self):
        plan = ReplicationCode(3).repair_plan(1)
        assert plan.num_connections == 1
        assert plan.units_downloaded == 1.0

    def test_no_survivors(self):
        with pytest.raises(RepairError):
            ReplicationCode(2).repair_plan(0, [0])

    def test_repair_returns_copy(self, rng):
        code = ReplicationCode(2)
        data = rng.integers(0, 256, size=(1, 8), dtype=np.uint8)
        stripe = code.encode(data)
        rebuilt = code.repair(1, {0: {0: stripe[0]}})
        rebuilt[0] ^= 0xFF
        assert not np.array_equal(rebuilt, stripe[0])
