"""The fused batch operations are byte-identical to the scalar loops.

Every code with a batched fast path (RS, CRS, LRC, Piggybacked-RS) must
produce, for any batch of stripes, exactly the bytes the scalar
per-stripe ``encode`` / ``decode`` / ``execute_repair`` calls produce --
the scalar implementations are the oracles.  Hypothesis drives widths
(including ragged alignment multiples), survivor patterns, and failed
nodes; byte accounting from ``execute_repair_batch`` must equal the sum
of the scalar plans' bytes.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.codes.crs import CauchyBitmatrixRSCode
from repro.codes.lrc import LRCCode
from repro.codes.piggyback.code import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode

CODES = {
    "rs": lambda: ReedSolomonCode(6, 3),
    "lrc": lambda: LRCCode(6, 2, 2),
    "piggyback": lambda: PiggybackedRSCode(6, 3),
    "crs": lambda: CauchyBitmatrixRSCode(6, 3),
}


@st.composite
def batch_cases(draw):
    """(code key, stripe batch, survivor set, failed node)."""
    key = draw(st.sampled_from(sorted(CODES)))
    code = CODES[key]()
    stripes = draw(st.integers(min_value=1, max_value=5))
    # Width must be a positive multiple of the code's unit alignment;
    # odd multiples exercise the unaligned kernel fallbacks.
    multiple = draw(st.integers(min_value=1, max_value=9))
    width = code.unit_alignment * multiple
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(stripes, code.k, width), dtype=np.uint8)
    failed = draw(st.integers(min_value=0, max_value=code.n - 1))
    extra_erasures = draw(st.integers(min_value=0, max_value=code.r - 1))
    others = [node for node in range(code.n) if node != failed]
    erased = draw(
        st.permutations(others).map(lambda p: sorted(p[:extra_erasures]))
    )
    survivors = [
        node for node in others if node not in set(erased)
    ]
    return key, code, data, failed, survivors


def _stripe_units(code, data):
    """Scalar-encoded full stripes, one (n, w) matrix per batch row."""
    return [code.encode(data[t]) for t in range(data.shape[0])]


@given(batch_cases())
@settings(max_examples=40, deadline=None)
def test_encode_batch_matches_scalar(case):
    _, code, data, __, ___ = case
    batch = code.encode_batch(data)
    for t, expected in enumerate(_stripe_units(code, data)):
        assert np.array_equal(batch[t], expected)


@given(batch_cases())
@settings(max_examples=40, deadline=None)
def test_decode_batch_matches_scalar(case):
    _, code, data, __, survivors = case
    stripes_units = _stripe_units(code, data)
    available = {
        node: np.stack([units[node] for units in stripes_units])
        for node in survivors
    }
    try:  # not every erasure pattern is recoverable (e.g. LRC past g+1)
        code.decode({node: stripes_units[0][node] for node in survivors})
    except Exception:
        assume(False)
    decoded = code.decode_batch(available)
    for t in range(data.shape[0]):
        expected = code.decode(
            {node: stripes_units[t][node] for node in survivors}
        )
        assert np.array_equal(decoded[t], expected)
        assert np.array_equal(decoded[t], data[t])


@given(batch_cases())
@settings(max_examples=40, deadline=None)
def test_execute_repair_batch_matches_scalar(case):
    _, code, data, failed, survivors = case
    stripes_units = _stripe_units(code, data)
    available = {
        node: np.stack([units[node] for units in stripes_units])
        for node in survivors
    }
    try:  # not every erasure pattern is recoverable (e.g. LRC past g+1)
        plan = code.repair_plan_cached(failed, survivors)
    except Exception:
        assume(False)
    rebuilt, batch_bytes = code.execute_repair_batch(
        failed, available, plan
    )
    scalar_bytes = 0
    for t in range(data.shape[0]):
        unit, nbytes = code.execute_repair(
            failed,
            {node: stripes_units[t][node] for node in survivors},
            plan,
        )
        assert np.array_equal(rebuilt[t], unit)
        assert np.array_equal(rebuilt[t], stripes_units[t][failed])
        scalar_bytes += nbytes
    assert batch_bytes == scalar_bytes


@pytest.mark.parametrize("key", sorted(CODES))
def test_fused_batch_paths_are_installed(key):
    """Guards against silently falling back to the scalar default."""
    assert CODES[key]().has_fused_batch


@pytest.mark.parametrize("key", sorted(CODES))
def test_batch_accepts_row_view_sequences(key):
    """Per-node units may be lists of row views, not just (s, w) arrays."""
    code = CODES[key]()
    rng = np.random.default_rng(11)
    width = code.unit_alignment * 6
    data = rng.integers(0, 256, size=(3, code.k, width), dtype=np.uint8)
    stripes_units = _stripe_units(code, data)
    survivors = list(range(1, code.n))
    available = {
        node: [units[node] for units in stripes_units] for node in survivors
    }
    rebuilt, _ = code.execute_repair_batch(0, available)
    for t in range(3):
        assert np.array_equal(rebuilt[t], stripes_units[t][0])
