"""Shared process-parallelism policy.

The file pipeline (:mod:`repro.striping.pipeline`) and the experiment
sweep runner (:mod:`repro.cluster.sweep`) make the same decision --
"should this work shard across a process pool?" -- under the same
conventions: an explicit ``parallel=`` argument wins, the
``REPRO_PARALLEL`` environment variable can force serial execution, and
single-task or single-CPU situations never spawn.  This module is the
one implementation both import, so the conventions cannot drift.

``REPRO_PARALLEL`` accepts exactly ``"1"`` (allow pools, the default)
and ``"0"`` (force serial).  Anything else -- ``off``, ``no``,
``false`` -- raises :class:`~repro.errors.ConfigError` instead of being
silently read as "parallel on": a kill switch that only *looks* engaged
is worse than no kill switch.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional

from repro.errors import ConfigError

#: Environment variable holding the serial/parallel kill switch.
PARALLEL_ENV = "REPRO_PARALLEL"


def parallel_env_enabled(
    env: Optional[Mapping[str, str]] = None,
) -> bool:
    """Whether ``REPRO_PARALLEL`` permits process pools.

    Unset (or empty) means yes.  ``"1"`` means yes, ``"0"`` means no,
    and every other value raises :class:`ConfigError` loudly.
    """
    raw = (env if env is not None else os.environ).get(PARALLEL_ENV)
    if raw is None or raw == "" or raw == "1":
        return True
    if raw == "0":
        return False
    raise ConfigError(
        f"{PARALLEL_ENV}={raw!r} is not a valid value; use '1' to allow "
        f"process pools or '0' to force serial execution"
    )


def decide_parallel(
    num_tasks: int,
    parallel: Optional[bool],
    env: Optional[Mapping[str, str]] = None,
) -> bool:
    """Decide whether ``num_tasks`` independent tasks should use a pool.

    ``parallel`` is the caller's explicit request: ``True``/``False``
    win over everything except the trivial one-task case.  ``None``
    consults ``REPRO_PARALLEL`` and then auto-detects (multiple tasks
    and more than one CPU).
    """
    if parallel is not None:
        return parallel and num_tasks > 1
    if not parallel_env_enabled(env):
        return False
    return num_tasks > 1 and (os.cpu_count() or 1) > 1
