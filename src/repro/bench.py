"""Benchmark harness: timed codec workloads and backend comparisons.

Shared by the pytest benchmark suite (``benchmarks/``), the ``repro
bench`` CLI subcommand, and the CI backend-matrix job.  Three concerns
live here so every consumer reports numbers the same way:

- :func:`bench_meta` -- the environment block stamped into
  ``BENCH_codec.json`` (interpreter, numpy, selected GF backend and
  the availability of the others, CPU count).  Throughput numbers are
  meaningless without it; the committed baselines were measured on a
  different machine than yours.
- :func:`time_workload` -- repeated timing that reports **median**
  alongside mean and best.  Acceptance comparisons use the median: on
  shared/virtualised CI hosts the mean is polluted by one-off page
  faults and the best-of is too forgiving of flukes.
- :func:`run_backend_comparison` -- the same workloads executed under
  every *available* kernel backend (via
  :func:`repro.gf.backends.use_backend`), with numpy -- the oracle --
  always included as the denominator.  Fresh code objects are built
  per backend so no memoised plan smuggles one backend's kernels into
  another's run.
"""

from __future__ import annotations

import os
import platform
import time
from statistics import mean, median
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.gf import backends

#: Environment flag the CI smoke path sets to shrink workloads.
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def smoke_mode(env=None) -> bool:
    value = (env if env is not None else os.environ).get(SMOKE_ENV, "")
    return value not in ("", "0")


def bench_meta() -> Dict[str, object]:
    """Environment block for benchmark reports (JSON-safe)."""
    active = backends.active_backend()
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "gf_backend": active.name,
        "gf_backend_tier": active.tier_description,
        "gf_backends": backends.backend_statuses(),
    }


def time_workload(
    fn: Callable[[], object], rounds: int = 5
) -> Dict[str, float]:
    """Run ``fn`` ``rounds`` times; report mean/median/best seconds."""
    if rounds < 1:
        rounds = 1
    times: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "mean_s": mean(times),
        "median_s": median(times),
        "best_s": min(times),
        "rounds": rounds,
    }


# ----------------------------------------------------------------------
# Comparison workloads
# ----------------------------------------------------------------------


def _rs_file_encode(unit_size: int) -> Callable[[], object]:
    from repro.codes.rs import ReedSolomonCode
    from repro.striping.pipeline import encode_file

    code = ReedSolomonCode(10, 4)
    rng = np.random.default_rng(2013)
    data = rng.integers(0, 256, 10 * unit_size * 4, dtype=np.uint8)
    return lambda: encode_file(
        code, data, unit_size, name="bench", parallel=False
    )


def _crs_encode(unit_size: int) -> Callable[[], object]:
    from repro.codes.crs import CauchyBitmatrixRSCode

    code = CauchyBitmatrixRSCode(10, 4)
    rng = np.random.default_rng(2013)
    data = rng.integers(0, 256, (10, unit_size), dtype=np.uint8)
    return lambda: code.encode(data)


def _crs_decode(unit_size: int) -> Callable[[], object]:
    from repro.codes.crs import CauchyBitmatrixRSCode

    code = CauchyBitmatrixRSCode(10, 4)
    rng = np.random.default_rng(2013)
    data = rng.integers(0, 256, (10, unit_size), dtype=np.uint8)
    stripe = code.encode(data)
    survivors = {i: stripe[i] for i in list(range(2, 10)) + [10, 11]}
    return lambda: code.decode(survivors)


def _rs_file_repair(unit_size: int) -> Callable[[], object]:
    """Compiled whole-file repair: bind once, replay per run.

    The steady-state shape the repair data plane runs in production:
    executors are bound to the survivor buffers at compile time, so the
    timed region is the fused native waves themselves.  The bytes
    factor is the *rebuilt* bytes -- the recovery-rate quantity -- not
    the 10x larger download.
    """
    from repro.codes.rs import ReedSolomonCode
    from repro.striping.pipeline import CompiledFileRepair, _ShardGeometry

    code = ReedSolomonCode(10, 4)
    # Keep the survivor working set small enough to stay cache-resident
    # on modest hosts: 4 stripes of unit_size-wide units.
    stripes = 4
    file_size = code.k * unit_size * stripes
    rng = np.random.default_rng(2013)
    geometry = _ShardGeometry(code, "bench", file_size, unit_size)
    shards = {}
    data = rng.integers(
        0, 256, (stripes, code.k, unit_size), dtype=np.uint8
    )
    parities = np.stack(
        [code.encode(data[t])[code.k :] for t in range(stripes)]
    )
    for slot in range(code.n):
        if slot == 0:
            continue
        if slot < code.k:
            shards[slot] = np.ascontiguousarray(data[:, slot, :]).reshape(-1)
        else:
            shards[slot] = np.ascontiguousarray(
                parities[:, slot - code.k, :]
            ).reshape(-1)
    compiled = CompiledFileRepair(
        code, shards, 0, unit_size, file_size, name="bench"
    )
    assert compiled.out_size == geometry.shard_size(0)
    return compiled.run


#: name -> (builder(unit_size) -> thunk, bytes processed per run factor)
WORKLOADS = {
    "RS(10,4).file_encode": (_rs_file_encode, 10 * 4),
    "RS(10,4).file_repair": (_rs_file_repair, 4),
    "CRS(10,4).encode": (_crs_encode, 10),
    "CRS(10,4).decode": (_crs_decode, 10),
}


def run_backend_comparison(
    unit_size: Optional[int] = None,
    rounds: Optional[int] = None,
    backend_names: Optional[List[str]] = None,
) -> List[Dict[str, object]]:
    """Time every workload under every available backend.

    Returns one row per (workload, backend) with throughput and the
    ratio against the numpy oracle for the same workload.  Unavailable
    backends are reported with the probe's failure reason instead of
    numbers, so the table documents *why* a tier is missing rather
    than silently shrinking.
    """
    smoke = smoke_mode()
    if unit_size is None:
        unit_size = 1 << 14 if smoke else 1 << 20
    if rounds is None:
        # Enough repeats that the median is a real median: with 1-2
        # rounds it degenerates to the (noise-prone) single sample the
        # report claims to guard against.
        rounds = 3 if smoke else 9
    statuses = backends.backend_statuses()
    if backend_names is None:
        # Oracle first so every later row can cite its ratio.
        backend_names = ["numpy"] + [
            n for n in backends.AUTO_ORDER if n != "numpy"
        ]
    rows: List[Dict[str, object]] = []
    oracle: Dict[str, float] = {}
    for backend_name in backend_names:
        status = statuses.get(backend_name, "unknown backend")
        if not status.startswith("available"):
            for workload in WORKLOADS:
                rows.append(
                    {
                        "workload": workload,
                        "backend": backend_name,
                        "MB_per_s": None,
                        "median_ms": None,
                        "vs_numpy": None,
                        "rounds": 0,
                        "note": status,
                    }
                )
            continue
        with backends.use_backend(backend_name):
            for workload, (builder, bytes_factor) in WORKLOADS.items():
                fn = builder(unit_size)
                fn()  # warm caches, schedules and JIT outside the clock
                stats = time_workload(fn, rounds)
                nbytes = bytes_factor * unit_size
                mb_per_s = nbytes / stats["median_s"] / 1e6
                if backend_name == "numpy":
                    oracle[workload] = mb_per_s
                base = oracle.get(workload)
                rows.append(
                    {
                        "workload": workload,
                        "backend": backend_name,
                        "MB_per_s": round(mb_per_s, 1),
                        "median_ms": round(stats["median_s"] * 1e3, 3),
                        "vs_numpy": (
                            round(mb_per_s / base, 2) if base else None
                        ),
                        "rounds": stats["rounds"],
                        "note": "",
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Simulator comparison (sharded epoch engine vs the serial oracle)
# ----------------------------------------------------------------------


def simulator_bench_config(smoke: Optional[bool] = None):
    """The config both simulator engines are timed on.

    Hashed destination draws (the order-independent mode both engines
    share) at production block density; smoke mode shrinks the cluster
    and the horizon so CI finishes in seconds.
    """
    from repro.cluster.config import ClusterConfig

    if smoke is None:
        smoke = smoke_mode()
    if smoke:
        return ClusterConfig(
            num_racks=24,
            nodes_per_rack=10,
            stripes_per_node=20.0,
            days=6.0,
            seed=8,
            destination_draws="hashed",
        )
    return ClusterConfig(
        stripes_per_node=60.0,
        days=40.0,
        seed=8,
        destination_draws="hashed",
    )


def _simulation_fingerprint(result) -> tuple:
    """Order-invariant summary of everything a simulation reports.

    Used to prove the sharded engine's merged counters equal the serial
    oracle's bit-for-bit on the benched config.
    """
    stats, meter = result.stats, result.meter
    return (
        tuple(result.unavailability_events_per_day),
        tuple(result.blocks_recovered_per_day),
        tuple(result.cross_rack_bytes_per_day),
        tuple(sorted(result.degraded_histogram.items())),
        stats.blocks_recovered,
        stats.bytes_downloaded,
        stats.unrecoverable_units,
        stats.flagged_events_recovered,
        stats.flagged_events_skipped,
        stats.cancelled_recoveries,
        stats.queue_wait_us,
        stats.urgent_wait_us,
        stats.deferred_repairs,
        stats.promoted_repairs,
        stats.queue_peak_depth,
        stats.spare_placements,
        meter.total_bytes,
        meter.cross_rack_bytes,
        meter.intra_rack_bytes,
        meter.num_transfers,
        tuple(sorted(meter.cross_rack_bytes_by_day.items())),
        tuple(sorted(meter.bytes_by_switch.items())),
    )


def run_simulator_comparison(
    rounds: Optional[int] = None,
    workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    config=None,
) -> Dict[str, object]:
    """Time the sharded epoch engine against the serial oracle.

    Both engines are constructed outside the clock each round (the
    timed region is ``run()``; for the sharded engine that includes
    timeline resolution and shard construction -- its real per-run
    cost).  The two trajectories are also compared outright: a speedup
    over a *different* answer would be meaningless.
    """
    from repro.cluster.shard import ShardedSimulation
    from repro.cluster.simulation import WarehouseSimulation

    smoke = smoke_mode()
    if config is None:
        config = simulator_bench_config(smoke)
    if rounds is None:
        rounds = 1 if smoke else 3

    state: Dict[str, object] = {}

    def run_oracle():
        state["oracle"] = WarehouseSimulation(config).run()

    def run_sharded():
        simulation = ShardedSimulation(
            config, num_shards=num_shards, workers=workers
        )
        state["workers"] = simulation.num_workers
        state["num_shards"] = simulation.num_shards
        state["sharded"] = simulation.run()

    run_oracle()  # warm plan/layout caches outside the clock
    oracle_stats = time_workload(run_oracle, rounds)
    run_sharded()
    sharded_stats = time_workload(run_sharded, rounds)

    identical = _simulation_fingerprint(
        state["oracle"]
    ) == _simulation_fingerprint(state["sharded"])
    days = float(config.days)
    oracle_days_per_s = days / oracle_stats["median_s"]
    sharded_days_per_s = days / sharded_stats["median_s"]
    report = {
        "days": days,
        "num_nodes": config.num_nodes,
        "num_stripes": config.num_stripes,
        "code": config.code_name,
        "destination_draws": config.destination_draws,
        "rounds": rounds,
        "workers": state["workers"],
        "num_shards": state["num_shards"],
        "oracle": dict(oracle_stats, days_per_s=oracle_days_per_s),
        "sharded": dict(sharded_stats, days_per_s=sharded_days_per_s),
        "speedup_median": sharded_days_per_s / oracle_days_per_s,
        "identical": identical,
    }
    if config.repair_scheduler_active:
        stats = state["sharded"].stats
        report["queue"] = {
            "deferred": stats.deferred_repairs,
            "promoted": stats.promoted_repairs,
            "peak_depth": stats.queue_peak_depth,
            "cancelled": stats.cancelled_recoveries,
            "urgent_wait_s": round(stats.urgent_wait_us / 1e6, 1),
        }
    return report


def throttled_bench_config(smoke: Optional[bool] = None):
    """The simulator bench config under the full repair-policy stack.

    Same cluster and horizon as :func:`simulator_bench_config`, with a
    recovery pipe sized to stay contended (a standing backlog the
    scheduler must actually order) plus priority queues and lazy
    repair -- the most event-dense configuration the DES path has.
    """
    from dataclasses import replace

    base = simulator_bench_config(smoke)
    return replace(
        base,
        recovery_bandwidth_bytes_per_sec=12e6 if smoke_mode() else 400e6,
        repair_queue_discipline="priority",
        lazy_repair=True,
        lazy_repair_delay_seconds=7200.0,
    )


def run_throttled_comparison(
    rounds: Optional[int] = None,
) -> Dict[str, object]:
    """Time throttled-recovery (repair-policy DES) vs the serial oracle.

    The sharded engine runs this coordinator-driven (worker processes
    degrade away), so the measurement is the scheduler's event-loop
    overhead on top of the epoch engine, not parallel speedup.
    """
    return run_simulator_comparison(
        rounds=rounds, config=throttled_bench_config()
    )
