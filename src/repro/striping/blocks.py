"""Blocks and files: the HDFS data model the paper's cluster uses.

Files (immutable once written, Section 2.1) are partitioned into blocks
of at most :data:`DEFAULT_BLOCK_SIZE` (256 MB in production; tests use
small sizes).  The final block of a file is usually shorter -- this tail
population is why the cluster's mean recovery transfer is below
``10 x 256 MB`` per block, and the simulator's calibrated block-size mix
models exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import EncodingError

#: Production HDFS block size in the warehouse cluster (Section 2.1).
DEFAULT_BLOCK_SIZE = 256 * 1024 * 1024


@dataclass
class Block:
    """One HDFS block: an identifier, a size, and (optionally) a payload.

    The cluster simulator works with metadata-only blocks
    (``payload is None``); the codec layer and the integration tests
    carry real payloads.

    Attributes
    ----------
    block_id:
        Globally unique identifier.
    size:
        Logical byte size.  When a payload is present its length must
        equal ``size``.
    payload:
        Optional ``uint8`` array with the block contents.
    checksum:
        Optional CRC32C of the payload, attached when the block is
        stored by the raid path (see :mod:`repro.striping.checksum`).
        Kept alongside the payload so a reader can verify the bytes it
        is about to serve without consulting the stripe registry.
    """

    block_id: str
    size: int
    payload: Optional[np.ndarray] = None
    checksum: Optional[int] = None

    def __post_init__(self):
        if self.size < 0:
            raise EncodingError(f"block {self.block_id} has negative size")
        if self.payload is not None:
            self.payload = np.asarray(self.payload, dtype=np.uint8)
            if self.payload.ndim != 1:
                raise EncodingError(
                    f"block {self.block_id} payload must be 1-d bytes"
                )
            if self.payload.shape[0] != self.size:
                raise EncodingError(
                    f"block {self.block_id}: size {self.size} != payload "
                    f"length {self.payload.shape[0]}"
                )

    @property
    def has_payload(self) -> bool:
        return self.payload is not None

    def compute_checksum(self) -> int:
        """CRC32C of the payload (which must be present)."""
        from repro.striping.checksum import crc32c

        if self.payload is None:
            raise EncodingError(
                f"block {self.block_id} has no payload to checksum"
            )
        return crc32c(self.payload)

    def attach_checksum(self) -> "Block":
        """Compute and record the payload's CRC32C; returns ``self``."""
        self.checksum = self.compute_checksum()
        return self

    def verify_checksum(self) -> Optional[bool]:
        """Payload-vs-checksum verdict; None when either is absent."""
        if self.payload is None or self.checksum is None:
            return None
        return self.compute_checksum() == self.checksum


@dataclass
class LogicalFile:
    """A file as the namenode sees it: a name and an ordered block list."""

    name: str
    blocks: List[Block] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Total logical size in bytes."""
        return sum(block.size for block in self.blocks)

    @property
    def block_ids(self) -> List[str]:
        return [block.block_id for block in self.blocks]


def chunk_bytes(
    name: str,
    data: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> LogicalFile:
    """Partition a byte buffer into a :class:`LogicalFile` of blocks.

    The final block holds the remainder and may be shorter (it is never
    zero-length unless the file itself is empty, in which case the file
    has a single empty block so it still participates in striping).

    Block payloads are *views* into ``data`` (no copy); callers that
    need ownership -- e.g. the namenode ingesting user bytes -- must
    copy first.
    """
    if block_size <= 0:
        raise EncodingError(f"block size must be positive, got {block_size}")
    data = np.asarray(data, dtype=np.uint8).reshape(-1)
    blocks: List[Block] = []
    if data.size == 0:
        blocks.append(Block(block_id=f"{name}/blk_0", size=0, payload=data))
    else:
        for index, start in enumerate(range(0, data.size, block_size)):
            chunk = data[start : start + block_size]
            blocks.append(
                Block(
                    block_id=f"{name}/blk_{index}",
                    size=int(chunk.size),
                    payload=chunk,
                )
            )
    return LogicalFile(name=name, blocks=blocks)
