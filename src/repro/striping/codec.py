"""Applying an erasure code across real block payloads.

:class:`StripeCodec` bridges the pure-math code layer and the block
layer: it pads block payloads to a common width (a multiple of the code's
substripe count), runs encode/decode/repair, and strips the padding on
the way out.  It is the piece a real HDFS-RAID "raid node" would run, and
the integration tests drive end-to-end byte-identical recovery through
it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.codes.base import ErasureCode, RepairPlan
from repro.errors import EncodingError, RepairError
from repro.striping.blocks import Block
from repro.striping.layout import StripeLayout


class StripeCodec:
    """Encode/decode/repair block-level stripes with a given code.

    Parameters
    ----------
    code:
        Any :class:`~repro.codes.base.ErasureCode`.  The codec enforces
        that payload widths are padded to a multiple of the code's
        ``substripes_per_unit``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.codes.rs import ReedSolomonCode
    >>> from repro.striping.blocks import chunk_bytes
    >>> from repro.striping.layout import group_into_stripes
    >>> data = np.arange(1000, dtype=np.uint8)
    >>> file = chunk_bytes("f", data, block_size=300)
    >>> stripes = group_into_stripes(file.blocks, k=4, r=2)
    >>> codec = StripeCodec(ReedSolomonCode(4, 2))
    >>> parities = codec.encode_stripe(stripes[0], file.blocks[:4])
    >>> len(parities)
    2
    """

    def __init__(self, code: ErasureCode):
        self.code = code
        # Encode-path scratch: the (k, padded_width) data matrix is
        # rebuilt for every stripe of a file, always at the same shape,
        # so keep one buffer and refill it instead of reallocating.
        self._data_buffer: Optional[np.ndarray] = None
        # Shared read-only zero units for virtual padding slots, keyed
        # by padded width.
        self._zero_units: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Width and padding helpers
    # ------------------------------------------------------------------

    def padded_width(self, layout: StripeLayout) -> int:
        """Stripe width rounded up to the code's unit alignment."""
        width = layout.stripe_width
        alignment = self.code.unit_alignment
        if width == 0:
            return alignment
        return ((width + alignment - 1) // alignment) * alignment

    def _pad(self, payload: np.ndarray, width: int) -> np.ndarray:
        payload = np.asarray(payload, dtype=np.uint8).reshape(-1)
        if payload.shape[0] > width:
            raise EncodingError(
                f"payload of {payload.shape[0]} bytes exceeds stripe "
                f"width {width}"
            )
        if payload.shape[0] == width:
            return payload
        padded = np.zeros(width, dtype=np.uint8)
        padded[: payload.shape[0]] = payload
        return padded

    def _zero_unit(self, width: int) -> np.ndarray:
        """Shared all-zeros unit for virtual padding slots (read-only)."""
        zeros = self._zero_units.get(width)
        if zeros is None:
            zeros = np.zeros(width, dtype=np.uint8)
            zeros.setflags(write=False)
            self._zero_units[width] = zeros
        return zeros

    def _data_matrix(
        self, layout: StripeLayout, data_blocks: Sequence[Optional[Block]]
    ) -> np.ndarray:
        if len(data_blocks) != layout.k:
            raise EncodingError(
                f"stripe {layout.stripe_id}: expected {layout.k} data "
                f"blocks (None for virtual), got {len(data_blocks)}"
            )
        width = self.padded_width(layout)
        matrix = self._data_buffer
        if matrix is None or matrix.shape != (layout.k, width):
            matrix = self._data_buffer = np.empty(
                (layout.k, width), dtype=np.uint8
            )
        matrix[...] = 0
        for slot, block in enumerate(data_blocks):
            expected_id = layout.data_block_ids[slot]
            if expected_id is None:
                if block is not None:
                    raise EncodingError(
                        f"stripe {layout.stripe_id}: slot {slot} is virtual "
                        f"but a block was supplied"
                    )
                continue
            if block is None:
                raise EncodingError(
                    f"stripe {layout.stripe_id}: missing payload for slot "
                    f"{slot} ({expected_id})"
                )
            if block.block_id != expected_id:
                raise EncodingError(
                    f"stripe {layout.stripe_id}: slot {slot} expects block "
                    f"{expected_id}, got {block.block_id}"
                )
            if not block.has_payload:
                raise EncodingError(
                    f"block {block.block_id} has no payload to encode"
                )
            payload = np.asarray(block.payload, dtype=np.uint8).reshape(-1)
            if payload.shape[0] > width:
                raise EncodingError(
                    f"payload of {payload.shape[0]} bytes exceeds stripe "
                    f"width {width}"
                )
            matrix[slot, : payload.shape[0]] = payload
        return matrix

    # ------------------------------------------------------------------
    # Encode / decode / repair
    # ------------------------------------------------------------------

    def encode_stripe(
        self, layout: StripeLayout, data_blocks: Sequence[Optional[Block]]
    ) -> List[Block]:
        """Produce the ``r`` parity blocks of a stripe.

        ``data_blocks`` supplies payloads for the real slots (None for
        virtual padding slots).  Parity blocks are full stripe-width.
        """
        matrix = self._data_matrix(layout, data_blocks)
        stripe_units = self.code.encode(matrix)
        width = self.padded_width(layout)
        parities = []
        for j in range(layout.r):
            parities.append(
                Block(
                    block_id=layout.parity_block_ids[j],
                    size=width,
                    payload=stripe_units[layout.k + j],
                )
            )
        return parities

    def decode_stripe(
        self,
        layout: StripeLayout,
        available: Mapping[int, Block],
    ) -> List[Block]:
        """Recover all real data blocks from surviving stripe members.

        ``available`` maps stripe slot index (0..n-1) to surviving
        blocks; virtual slots may be synthesised as zeros and need not
        (and cannot) be supplied.
        """
        width = self.padded_width(layout)
        units: Dict[int, np.ndarray] = {}
        for slot, block in available.items():
            slot = int(slot)
            if not 0 <= slot < layout.n:
                raise RepairError(f"slot {slot} outside stripe of {layout.n}")
            if not block.has_payload:
                raise RepairError(f"block {block.block_id} has no payload")
            units[slot] = self._pad(block.payload, width)
        # Virtual data slots are known zeros; give the decoder that
        # knowledge for free (it costs no transfer).
        for slot in range(layout.k):
            if layout.data_block_ids[slot] is None and slot not in units:
                units[slot] = self._zero_unit(width)
        data = self.code.decode(units)
        restored = []
        for slot in range(layout.k):
            block_id = layout.data_block_ids[slot]
            if block_id is None:
                continue
            size = layout.data_sizes[slot]
            restored.append(
                Block(block_id=block_id, size=size, payload=data[slot][:size])
            )
        return restored

    def repair_block(
        self,
        layout: StripeLayout,
        failed_slot: int,
        available: Mapping[int, Block],
    ) -> Tuple[Block, int, "RepairPlan"]:
        """Rebuild one stripe member.

        Returns ``(block, bytes_read, plan)``: the rebuilt block, the
        bytes the repair transferred at the padded stripe width (the
        quantity the paper's cross-rack measurements aggregate; reads of
        virtual zero-padding slots are free and excluded), and the
        executed plan so callers can attribute the transfers to nodes.
        """
        failed_slot = int(failed_slot)
        if not 0 <= failed_slot < layout.n:
            raise RepairError(f"slot {failed_slot} outside stripe")
        if failed_slot < layout.k and layout.data_block_ids[failed_slot] is None:
            raise RepairError("virtual padding slots are never repaired")
        width = self.padded_width(layout)
        units: Dict[int, np.ndarray] = {}
        for slot, block in available.items():
            slot = int(slot)
            if slot == failed_slot:
                continue
            if not block.has_payload:
                raise RepairError(f"block {block.block_id} has no payload")
            units[slot] = self._pad(block.payload, width)
        virtual_slots = set()
        for slot in range(layout.k):
            if layout.data_block_ids[slot] is None:
                virtual_slots.add(slot)
                if slot not in units:
                    units[slot] = self._zero_unit(width)
        plan = self.code.repair_plan(failed_slot, units.keys())
        rebuilt_unit, bytes_read = self.code.execute_repair(
            failed_slot, units, plan
        )
        # Virtual padding blocks are known zeros: nothing is transferred
        # for them, so deduct their share from the metered bytes.
        subunit_bytes = width // self.code.substripes_per_unit
        for request in plan.requests:
            if request.node in virtual_slots:
                bytes_read -= len(request.substripes) * subunit_bytes
        if failed_slot < layout.k:
            block_id = layout.data_block_ids[failed_slot]
            size = layout.data_sizes[failed_slot]
        else:
            block_id = layout.parity_block_ids[failed_slot - layout.k]
            size = width
        assert block_id is not None
        return (
            Block(block_id=block_id, size=size, payload=rebuilt_unit[:size]),
            bytes_read,
            plan,
        )
