"""Applying an erasure code across real block payloads.

:class:`StripeCodec` bridges the pure-math code layer and the block
layer: it pads block payloads to a common width (a multiple of the code's
substripe count), runs encode/decode/repair, and strips the padding on
the way out.  It is the piece a real HDFS-RAID "raid node" would run, and
the integration tests drive end-to-end byte-identical recovery through
it.

The batched entry points (:meth:`StripeCodec.encode_stripes`,
:meth:`StripeCodec.repair_blocks`) group many stripes and dispatch each
group through the code layer's fused batch kernels:

- encode groups by **padded width**; a run of full stripes chunked from
  one contiguous buffer is recognised and encoded as a zero-copy
  ``(s, k, w)`` view of the file bytes;
- repair groups by **(padded width, failed slot, survivor-slot set)** --
  the paper's Section 2.2 skew (98.08% of degraded stripes miss exactly
  one unit) means a whole recovery wave typically collapses into a
  handful of groups, each sharing one cached plan and repair kernel.

Scalar ``encode_stripe`` / ``repair_block`` are retained unchanged as
the equivalence oracles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.codes.base import ErasureCode, RepairPlan
from repro.errors import EncodingError, RepairError
from repro.observability import metrics, span
from repro.striping.blocks import Block
from repro.striping.checksum import crc32c_batch
from repro.striping.layout import StripeLayout

#: Max distinct padded widths whose shared zero-units / pad scratch we
#: keep alive.  Real workloads see one width (the block size) plus the
#: occasional ragged tail; interleaving more widths than this just
#: recycles the oldest buffers.
ZERO_UNIT_CACHE_CAP = 8


class StripeCodec:
    """Encode/decode/repair block-level stripes with a given code.

    Parameters
    ----------
    code:
        Any :class:`~repro.codes.base.ErasureCode`.  The codec enforces
        that payload widths are padded to a multiple of the code's
        ``substripes_per_unit``.
    attach_checksums:
        When True, parity blocks produced by the encode paths carry a
        CRC32C of their payload (computed in one batched pass per
        stripe group).  Off by default so the throughput benches pay
        nothing; the raid node turns it on, because stored units are
        exactly what the integrity layer must be able to verify later.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.codes.rs import ReedSolomonCode
    >>> from repro.striping.blocks import chunk_bytes
    >>> from repro.striping.layout import group_into_stripes
    >>> data = np.arange(1000, dtype=np.uint8)
    >>> file = chunk_bytes("f", data, block_size=300)
    >>> stripes = group_into_stripes(file.blocks, k=4, r=2)
    >>> codec = StripeCodec(ReedSolomonCode(4, 2))
    >>> parities = codec.encode_stripe(stripes[0], file.blocks[:4])
    >>> len(parities)
    2
    """

    def __init__(self, code: ErasureCode, attach_checksums: bool = False):
        self.code = code
        self.attach_checksums = attach_checksums
        # Encode-path scratch: the (k, padded_width) data matrix is
        # rebuilt for every stripe of a file, always at the same shape,
        # so keep one buffer and refill it instead of reallocating.
        self._data_buffer: Optional[np.ndarray] = None
        # Shared read-only zero units for virtual padding slots, an LRU
        # over padded widths (bounded -- interleaved widths used to grow
        # this dict without limit).
        self._zero_units: "OrderedDict[int, np.ndarray]" = OrderedDict()
        # Pad scratch: one (n, width) buffer reused across calls so
        # padding survivors does not reallocate per payload.  Rows are
        # handed out per operation via _begin_padding/_pad; the code
        # layer always returns freshly-allocated results, so recycling
        # these input rows never aliases anything a caller holds.
        self._pad_scratch: Optional[np.ndarray] = None
        self._pad_rows_used = 0

    # ------------------------------------------------------------------
    # Width and padding helpers
    # ------------------------------------------------------------------

    def padded_width(self, layout: StripeLayout) -> int:
        """Stripe width rounded up to the code's unit alignment."""
        width = layout.stripe_width
        alignment = self.code.unit_alignment
        if width == 0:
            return alignment
        return ((width + alignment - 1) // alignment) * alignment

    def _begin_padding(self, width: int) -> None:
        """Reset the pad scratch for one encode/decode/repair operation."""
        if self._pad_scratch is None or self._pad_scratch.shape[1] != width:
            self._pad_scratch = np.empty(
                (self.code.n, width), dtype=np.uint8
            )
        self._pad_rows_used = 0

    def _pad(self, payload: np.ndarray, width: int) -> np.ndarray:
        payload = np.asarray(payload, dtype=np.uint8).reshape(-1)
        if payload.shape[0] > width:
            raise EncodingError(
                f"payload of {payload.shape[0]} bytes exceeds stripe "
                f"width {width}"
            )
        if payload.shape[0] == width:
            return payload
        scratch = self._pad_scratch
        if (
            scratch is None
            or scratch.shape[1] != width
            or self._pad_rows_used >= scratch.shape[0]
        ):
            # Outside a _begin_padding window (or more short payloads
            # than stripe slots): fall back to a fresh allocation.
            padded = np.zeros(width, dtype=np.uint8)
            padded[: payload.shape[0]] = payload
            return padded
        row = scratch[self._pad_rows_used]
        self._pad_rows_used += 1
        row[:] = 0
        row[: payload.shape[0]] = payload
        return row

    def _zero_unit(self, width: int) -> np.ndarray:
        """Shared all-zeros unit for virtual padding slots (read-only)."""
        zeros = self._zero_units.get(width)
        if zeros is None:
            zeros = np.zeros(width, dtype=np.uint8)
            zeros.setflags(write=False)
            while len(self._zero_units) >= ZERO_UNIT_CACHE_CAP:
                self._zero_units.popitem(last=False)
            self._zero_units[width] = zeros
        else:
            self._zero_units.move_to_end(width)
        return zeros

    def _fill_data_matrix(
        self,
        layout: StripeLayout,
        data_blocks: Sequence[Optional[Block]],
        matrix: np.ndarray,
    ) -> None:
        """Validate one stripe's data blocks and fill ``matrix`` in place."""
        width = matrix.shape[1]
        matrix[...] = 0
        for slot, block in enumerate(data_blocks):
            expected_id = layout.data_block_ids[slot]
            if expected_id is None:
                if block is not None:
                    raise EncodingError(
                        f"stripe {layout.stripe_id}: slot {slot} is virtual "
                        f"but a block was supplied"
                    )
                continue
            if block is None:
                raise EncodingError(
                    f"stripe {layout.stripe_id}: missing payload for slot "
                    f"{slot} ({expected_id})"
                )
            if block.block_id != expected_id:
                raise EncodingError(
                    f"stripe {layout.stripe_id}: slot {slot} expects block "
                    f"{expected_id}, got {block.block_id}"
                )
            if not block.has_payload:
                raise EncodingError(
                    f"block {block.block_id} has no payload to encode"
                )
            payload = np.asarray(block.payload, dtype=np.uint8).reshape(-1)
            if payload.shape[0] > width:
                raise EncodingError(
                    f"payload of {payload.shape[0]} bytes exceeds stripe "
                    f"width {width}"
                )
            matrix[slot, : payload.shape[0]] = payload

    def _data_matrix(
        self, layout: StripeLayout, data_blocks: Sequence[Optional[Block]]
    ) -> np.ndarray:
        if len(data_blocks) != layout.k:
            raise EncodingError(
                f"stripe {layout.stripe_id}: expected {layout.k} data "
                f"blocks (None for virtual), got {len(data_blocks)}"
            )
        width = self.padded_width(layout)
        matrix = self._data_buffer
        if matrix is None or matrix.shape != (layout.k, width):
            matrix = self._data_buffer = np.empty(
                (layout.k, width), dtype=np.uint8
            )
        self._fill_data_matrix(layout, data_blocks, matrix)
        return matrix

    # ------------------------------------------------------------------
    # Encode / decode / repair (scalar oracles)
    # ------------------------------------------------------------------

    def encode_stripe(
        self, layout: StripeLayout, data_blocks: Sequence[Optional[Block]]
    ) -> List[Block]:
        """Produce the ``r`` parity blocks of a stripe.

        ``data_blocks`` supplies payloads for the real slots (None for
        virtual padding slots).  Parity blocks are full stripe-width.
        """
        matrix = self._data_matrix(layout, data_blocks)
        stripe_units = self.code.encode(matrix)
        width = self.padded_width(layout)
        m = metrics()
        if m is not None:
            m.inc("codec.encode.calls")
            m.inc("codec.encode.stripes")
            m.inc("codec.encode.data_bytes", layout.k * width)
            m.inc("codec.encode.parity_bytes", layout.r * width)
        parities = []
        for j in range(layout.r):
            parities.append(
                Block(
                    block_id=layout.parity_block_ids[j],
                    size=width,
                    payload=stripe_units[layout.k + j],
                )
            )
        if self.attach_checksums:
            checksums = crc32c_batch(
                np.stack([parity.payload for parity in parities])
            )
            for parity, checksum in zip(parities, checksums):
                parity.checksum = int(checksum)
        return parities

    def decode_stripe(
        self,
        layout: StripeLayout,
        available: Mapping[int, Block],
    ) -> List[Block]:
        """Recover all real data blocks from surviving stripe members.

        ``available`` maps stripe slot index (0..n-1) to surviving
        blocks; virtual slots may be synthesised as zeros and need not
        (and cannot) be supplied.
        """
        width = self.padded_width(layout)
        self._begin_padding(width)
        units: Dict[int, np.ndarray] = {}
        for slot, block in available.items():
            slot = int(slot)
            if not 0 <= slot < layout.n:
                raise RepairError(f"slot {slot} outside stripe of {layout.n}")
            if not block.has_payload:
                raise RepairError(f"block {block.block_id} has no payload")
            units[slot] = self._pad(block.payload, width)
        # Virtual data slots are known zeros; give the decoder that
        # knowledge for free (it costs no transfer).
        for slot in range(layout.k):
            if layout.data_block_ids[slot] is None and slot not in units:
                units[slot] = self._zero_unit(width)
        data = self.code.decode(units)
        restored = []
        for slot in range(layout.k):
            block_id = layout.data_block_ids[slot]
            if block_id is None:
                continue
            size = layout.data_sizes[slot]
            restored.append(
                Block(block_id=block_id, size=size, payload=data[slot][:size])
            )
        return restored

    def repair_block(
        self,
        layout: StripeLayout,
        failed_slot: int,
        available: Mapping[int, Block],
        exclude_slots: Sequence[int] = (),
    ) -> Tuple[Block, int, "RepairPlan"]:
        """Rebuild one stripe member.

        Returns ``(block, bytes_read, plan)``: the rebuilt block, the
        bytes the repair transferred at the padded stripe width (the
        quantity the paper's cross-rack measurements aggregate; reads of
        virtual zero-padding slots are free and excluded), and the
        executed plan so callers can attribute the transfers to nodes.

        ``exclude_slots`` names survivors that must not be read -- the
        integrity layer quarantines checksum-mismatched units and
        retries through here.  The plan then goes through
        :meth:`~repro.codes.base.ErasureCode.repair_plan_retry`, which
        reports the quarantined slots by name if the remaining
        survivors cannot rebuild the unit.
        """
        failed_slot = int(failed_slot)
        if not 0 <= failed_slot < layout.n:
            raise RepairError(f"slot {failed_slot} outside stripe")
        if failed_slot < layout.k and layout.data_block_ids[failed_slot] is None:
            raise RepairError("virtual padding slots are never repaired")
        excluded = {int(slot) for slot in exclude_slots}
        width = self.padded_width(layout)
        self._begin_padding(width)
        units: Dict[int, np.ndarray] = {}
        for slot, block in available.items():
            slot = int(slot)
            if slot == failed_slot or slot in excluded:
                continue
            if not block.has_payload:
                raise RepairError(f"block {block.block_id} has no payload")
            units[slot] = self._pad(block.payload, width)
        virtual_slots = set()
        for slot in range(layout.k):
            if layout.data_block_ids[slot] is None:
                virtual_slots.add(slot)
                if slot not in units and slot not in excluded:
                    units[slot] = self._zero_unit(width)
        if excluded:
            plan = self.code.repair_plan_retry(
                failed_slot, set(units.keys()) | excluded, excluded
            )
        else:
            plan = self.code.repair_plan(failed_slot, units.keys())
        rebuilt_unit, bytes_read = self.code.execute_repair(
            failed_slot, units, plan
        )
        # Virtual padding blocks are known zeros: nothing is transferred
        # for them, so deduct their share from the metered bytes.
        subunit_bytes = width // self.code.substripes_per_unit
        for request in plan.requests:
            if request.node in virtual_slots:
                bytes_read -= len(request.substripes) * subunit_bytes
        if failed_slot < layout.k:
            block_id = layout.data_block_ids[failed_slot]
            size = layout.data_sizes[failed_slot]
        else:
            block_id = layout.parity_block_ids[failed_slot - layout.k]
            size = width
        assert block_id is not None
        m = metrics()
        if m is not None:
            m.inc("codec.repair.calls")
            m.inc("codec.repair.blocks")
            m.inc("codec.repair.bytes_read", bytes_read)
        return (
            Block(block_id=block_id, size=size, payload=rebuilt_unit[:size]),
            bytes_read,
            plan,
        )

    # ------------------------------------------------------------------
    # Batched entry points
    # ------------------------------------------------------------------

    @staticmethod
    def _contiguous_batch_view(
        payload_rows: List[List[np.ndarray]], width: int
    ) -> Optional[np.ndarray]:
        """A zero-copy ``(s, k, w)`` view over adjacent full payloads.

        Files chunked by :func:`~repro.striping.blocks.chunk_bytes` hand
        every stripe views into one contiguous buffer, in order; when
        that holds (verified pointer-by-pointer), the whole group is one
        reshape of the underlying bytes and encode touches the file data
        exactly once, with no staging copy.
        """
        first = payload_rows[0][0]
        expected = first.__array_interface__["data"][0]
        for row_group in payload_rows:
            for payload in row_group:
                if (
                    payload.dtype != np.uint8
                    or payload.ndim != 1
                    or payload.shape[0] != width
                    or not payload.flags.c_contiguous
                    or payload.__array_interface__["data"][0] != expected
                ):
                    return None
                expected += width
        return np.lib.stride_tricks.as_strided(
            first,
            shape=(len(payload_rows), len(payload_rows[0]), width),
            strides=(len(payload_rows[0]) * width, width, 1),
        )

    def _probe_fast_stripe(
        self,
        width: int,
        layout: StripeLayout,
        blocks: Sequence[Optional[Block]],
    ) -> Optional[Tuple[np.ndarray, int]]:
        """(first payload, its address) when the stripe's data is one
        contiguous full-width run; None sends it to the staging path."""
        if layout.real_data_count != layout.k or any(
            size != width for size in layout.data_sizes
        ):
            return None
        first: Optional[np.ndarray] = None
        start = expected = 0
        for slot, block in enumerate(blocks):
            if block is None or not block.has_payload:
                return None
            if block.block_id != layout.data_block_ids[slot]:
                raise EncodingError(
                    f"stripe {layout.stripe_id}: slot {slot} expects block "
                    f"{layout.data_block_ids[slot]}, got {block.block_id}"
                )
            payload = np.asarray(block.payload)
            if (
                payload.dtype != np.uint8
                or payload.ndim != 1
                or payload.shape[0] != width
                or not payload.flags.c_contiguous
            ):
                return None
            address = payload.__array_interface__["data"][0]
            if first is None:
                first = payload
                start = address
            elif address != expected:
                return None
            expected = address + width
        assert first is not None
        return first, start

    def encode_stripes(
        self,
        layouts: Sequence[StripeLayout],
        data_blocks: Sequence[Sequence[Optional[Block]]],
    ) -> List[List[Block]]:
        """Batched :meth:`encode_stripe`: many layouts at once.

        Stripes are grouped by padded width and each group is encoded
        with one fused ``parity_batch`` call; results come back in input
        order and are byte-identical to the scalar path.
        """
        if len(layouts) != len(data_blocks):
            raise EncodingError(
                f"{len(layouts)} layouts but {len(data_blocks)} block lists"
            )
        results: List[Optional[List[Block]]] = [None] * len(layouts)
        groups: "OrderedDict[int, List[int]]" = OrderedDict()
        for index, layout in enumerate(layouts):
            if len(data_blocks[index]) != layout.k:
                raise EncodingError(
                    f"stripe {layout.stripe_id}: expected {layout.k} data "
                    f"blocks (None for virtual), got {len(data_blocks[index])}"
                )
            groups.setdefault(self.padded_width(layout), []).append(index)
        m = metrics()
        if m is not None:
            m.inc("codec.encode.calls")
            m.inc("codec.encode.stripes", len(layouts))
            m.inc("codec.encode.groups", len(groups))
            for width, indices in groups.items():
                total_k = sum(layouts[i].k for i in indices)
                total_r = sum(layouts[i].r for i in indices)
                m.inc("codec.encode.data_bytes", total_k * width)
                m.inc("codec.encode.parity_bytes", total_r * width)
        with span("codec.encode_stripes"):
            return self._encode_groups(layouts, data_blocks, groups, results)

    def _encode_groups(
        self,
        layouts: Sequence[StripeLayout],
        data_blocks: Sequence[Sequence[Optional[Block]]],
        groups: "OrderedDict[int, List[int]]",
        results: List[Optional[List[Block]]],
    ) -> List[List[Block]]:
        for width, indices in groups.items():
            group_layouts = [layouts[i] for i in indices]
            group_blocks = [data_blocks[i] for i in indices]
            parity_batch = self._encode_group(width, group_layouts, group_blocks)
            checksums: Optional[np.ndarray] = None
            if self.attach_checksums:
                # One vectorised pass over every parity row of the group.
                checksums = crc32c_batch(
                    parity_batch.reshape(-1, width)
                ).reshape(parity_batch.shape[:2])
            for position, index in enumerate(indices):
                layout = layouts[index]
                results[index] = [
                    Block(
                        block_id=layout.parity_block_ids[j],
                        size=width,
                        payload=parity_batch[position, j],
                        checksum=(
                            int(checksums[position, j])
                            if checksums is not None
                            else None
                        ),
                    )
                    for j in range(layout.r)
                ]
        return results  # type: ignore[return-value]

    def _encode_group(
        self,
        width: int,
        layouts: Sequence[StripeLayout],
        data_blocks: Sequence[Sequence[Optional[Block]]],
    ) -> np.ndarray:
        """Parity units ``(s, r, w)`` for one same-width stripe group.

        Maximal runs of full stripes whose payloads sit back-to-back in
        memory (what :func:`~repro.striping.blocks.chunk_bytes` always
        produces) are encoded straight off a zero-copy ``(s, k, w)``
        view; only ragged/padded stripes go through a staging copy, so
        one tail stripe never forces the whole file onto the slow path.
        """
        stripes = len(layouts)
        code = self.code
        out = np.empty((stripes, code.r, width), dtype=np.uint8)
        fast = [
            self._probe_fast_stripe(width, layout, blocks)
            for layout, blocks in zip(layouts, data_blocks)
        ]
        staged_indices: List[int] = []
        t = 0
        while t < stripes:
            probe = fast[t]
            if probe is None:
                staged_indices.append(t)
                t += 1
                continue
            stop = t
            while (
                stop + 1 < stripes
                and fast[stop + 1] is not None
                and fast[stop + 1][1]  # type: ignore[index]
                == fast[stop][1] + code.k * width  # type: ignore[index]
            ):
                stop += 1
            view = np.lib.stride_tricks.as_strided(
                probe[0],
                shape=(stop - t + 1, code.k, width),
                strides=(code.k * width, width, 1),
            )
            code.parity_batch(view, out=out[t : stop + 1])
            t = stop + 1
        if staged_indices:
            staged = np.empty(
                (len(staged_indices), code.k, width), dtype=np.uint8
            )
            for i, index in enumerate(staged_indices):
                self._fill_data_matrix(
                    layouts[index], data_blocks[index], staged[i]
                )
            parities = code.parity_batch(staged)
            for i, index in enumerate(staged_indices):
                out[index] = parities[i]
        m = metrics()
        if m is not None:
            m.inc("codec.encode.staged_stripes", len(staged_indices))
            m.inc(
                "codec.encode.fast_path_stripes",
                stripes - len(staged_indices),
            )
        return out

    def repair_blocks(
        self,
        requests: Sequence[Tuple[StripeLayout, int, Mapping[int, Block]]],
    ) -> List[Tuple[Block, int, RepairPlan]]:
        """Batched :meth:`repair_block`: many degraded stripes at once.

        ``requests`` is a sequence of ``(layout, failed_slot,
        available)`` triples.  Stripes are grouped by ``(padded width,
        failed slot, survivor-slot set)`` -- the key that fixes the plan
        and the repair kernel -- and each group runs one fused
        ``execute_repair_batch``.  Full-width survivor payloads are
        passed as zero-copy views.  Results come back in input order,
        byte-identical (blocks, byte counts, plans) to the scalar path.
        """
        results: List[Optional[Tuple[Block, int, RepairPlan]]] = [None] * len(
            requests
        )
        groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
        unit_maps: List[Dict[int, Block]] = []
        for index, (layout, failed_slot, available) in enumerate(requests):
            failed_slot = int(failed_slot)
            if not 0 <= failed_slot < layout.n:
                raise RepairError(f"slot {failed_slot} outside stripe")
            if (
                failed_slot < layout.k
                and layout.data_block_ids[failed_slot] is None
            ):
                raise RepairError("virtual padding slots are never repaired")
            width = self.padded_width(layout)
            survivors: Dict[int, Block] = {}
            for slot, block in available.items():
                slot = int(slot)
                if slot == failed_slot:
                    continue
                if not 0 <= slot < layout.n:
                    raise RepairError(
                        f"slot {slot} outside stripe of {layout.n}"
                    )
                if not block.has_payload:
                    raise RepairError(
                        f"block {block.block_id} has no payload"
                    )
                survivors[slot] = block
            virtual_slots = tuple(
                slot
                for slot in range(layout.k)
                if layout.data_block_ids[slot] is None
            )
            unit_maps.append(survivors)
            key = (
                width,
                failed_slot,
                tuple(sorted(set(survivors) | set(virtual_slots))),
                virtual_slots,
            )
            groups.setdefault(key, []).append(index)
        m = metrics()
        if m is not None:
            m.inc("codec.repair.calls")
            m.inc("codec.repair.blocks", len(requests))
            m.inc("codec.repair.groups", len(groups))
        with span("codec.repair_blocks"):
            self._repair_groups(requests, groups, unit_maps, results)
        if m is not None:
            m.inc(
                "codec.repair.bytes_read",
                sum(result[1] for result in results if result is not None),
            )
        return results  # type: ignore[return-value]

    def _repair_groups(
        self,
        requests: Sequence[Tuple[StripeLayout, int, Mapping[int, Block]]],
        groups: "OrderedDict[tuple, List[int]]",
        unit_maps: List[Dict[int, Block]],
        results: List[Optional[Tuple[Block, int, RepairPlan]]],
    ) -> None:
        for (width, failed_slot, slots, virtual_slots), indices in groups.items():
            available_rows: Dict[int, List[np.ndarray]] = {}
            zero_unit = self._zero_unit(width)
            for slot in slots:
                if slot in virtual_slots:
                    available_rows[slot] = [zero_unit] * len(indices)
                    continue
                rows = []
                for index in indices:
                    payload = np.asarray(
                        unit_maps[index][slot].payload, dtype=np.uint8
                    ).reshape(-1)
                    if payload.shape[0] != width:
                        if payload.shape[0] > width:
                            raise EncodingError(
                                f"payload of {payload.shape[0]} bytes "
                                f"exceeds stripe width {width}"
                            )
                        padded = np.zeros(width, dtype=np.uint8)
                        padded[: payload.shape[0]] = payload
                        payload = padded
                    rows.append(payload)
                available_rows[slot] = rows
            plan = self.code.repair_plan_cached(failed_slot, slots)
            rebuilt, _ = self.code.execute_repair_batch(
                failed_slot, available_rows, plan
            )
            subunit_bytes = width // self.code.substripes_per_unit
            bytes_read = plan.bytes_downloaded(width)
            for request in plan.requests:
                if request.node in virtual_slots:
                    bytes_read -= len(request.substripes) * subunit_bytes
            for position, index in enumerate(indices):
                layout = requests[index][0]
                if failed_slot < layout.k:
                    block_id = layout.data_block_ids[failed_slot]
                    size = layout.data_sizes[failed_slot]
                else:
                    block_id = layout.parity_block_ids[failed_slot - layout.k]
                    size = width
                assert block_id is not None
                results[index] = (
                    Block(
                        block_id=block_id,
                        size=size,
                        payload=rebuilt[position, :size],
                    ),
                    bytes_read,
                    plan,
                )
