"""Grouping blocks into block-level stripes (Fig. 2).

The RAID policy groups a file's data blocks into sets of ``k`` (10 in
production).  A set shorter than ``k`` (the tail of a file, or a small
file) is padded with *virtual* zero blocks for encoding; virtual blocks
are never stored, and decoding reproduces them as zeros.  Within one
stripe all blocks are encoded over a common *stripe width* -- the largest
member's size -- with shorter members zero-extended, again without
storing the padding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import EncodingError
from repro.striping.blocks import Block


@dataclass(frozen=True)
class StripeLayout:
    """Static description of one block-level stripe.

    Attributes
    ----------
    stripe_id:
        Identifier, unique within a namenode.
    k, r:
        Code parameters the stripe is encoded with.
    data_block_ids:
        Exactly ``k`` entries; ``None`` marks a virtual (zero-padding)
        block that is not stored anywhere.
    parity_block_ids:
        Exactly ``r`` entries, always real.
    data_sizes:
        Logical size of each data slot (0 for virtual blocks).
    """

    stripe_id: str
    k: int
    r: int
    data_block_ids: tuple
    parity_block_ids: tuple
    data_sizes: tuple

    def __post_init__(self):
        if len(self.data_block_ids) != self.k:
            raise EncodingError(
                f"stripe {self.stripe_id}: expected {self.k} data slots, "
                f"got {len(self.data_block_ids)}"
            )
        if len(self.parity_block_ids) != self.r:
            raise EncodingError(
                f"stripe {self.stripe_id}: expected {self.r} parity slots, "
                f"got {len(self.parity_block_ids)}"
            )
        if len(self.data_sizes) != self.k:
            raise EncodingError(
                f"stripe {self.stripe_id}: expected {self.k} data sizes"
            )

    @property
    def n(self) -> int:
        return self.k + self.r

    @property
    def stripe_width(self) -> int:
        """Common encoding width: the largest member block's size."""
        return max(self.data_sizes) if self.data_sizes else 0

    @property
    def real_data_count(self) -> int:
        """Number of non-virtual data blocks."""
        return sum(1 for b in self.data_block_ids if b is not None)

    @property
    def logical_size(self) -> int:
        """Bytes of real user data covered by the stripe."""
        return sum(self.data_sizes)

    @property
    def physical_size(self) -> int:
        """Bytes actually stored: real data blocks plus parity blocks.

        Every parity block is as large as the stripe width.
        """
        return self.logical_size + self.r * self.stripe_width

    def all_block_ids(self) -> List[Optional[str]]:
        """Data slots followed by parity slots (virtual slots as None)."""
        return list(self.data_block_ids) + list(self.parity_block_ids)


def group_into_stripes(
    blocks: Sequence[Block],
    k: int,
    r: int,
    stripe_prefix: str = "stripe",
) -> List[StripeLayout]:
    """Group data blocks into (k, r) stripes, padding the final group.

    Blocks are taken in order, ``k`` at a time, matching how the RAID
    policy walks a directory's files (Section 2.1: "blocks are grouped
    into sets of 10 blocks each").
    """
    if k < 1 or r < 0:
        raise EncodingError(f"invalid stripe parameters k={k}, r={r}")
    stripes: List[StripeLayout] = []
    for stripe_index, start in enumerate(range(0, len(blocks), k)):
        members = list(blocks[start : start + k])
        stripe_id = f"{stripe_prefix}_{stripe_index}"
        data_ids: List[Optional[str]] = [b.block_id for b in members]
        sizes = [b.size for b in members]
        while len(data_ids) < k:
            data_ids.append(None)
            sizes.append(0)
        parity_ids = tuple(f"{stripe_id}/parity_{j}" for j in range(r))
        stripes.append(
            StripeLayout(
                stripe_id=stripe_id,
                k=k,
                r=r,
                data_block_ids=tuple(data_ids),
                parity_block_ids=parity_ids,
                data_sizes=tuple(sizes),
            )
        )
    return stripes
