"""HDFS-style block and stripe layout (Fig. 2 of the paper).

A file is partitioned into 256 MB blocks; blocks are grouped into sets of
``k`` and encoded into ``r`` parity blocks; one byte at corresponding
offsets of the ``k`` data blocks produces the corresponding byte of each
parity block (the *byte-level stripe*), and the ``k + r`` blocks together
form the *block-level stripe* placed on distinct racks.

- :mod:`repro.striping.blocks` -- blocks, files, chunking;
- :mod:`repro.striping.layout` -- grouping blocks into stripes and
  padding rules;
- :mod:`repro.striping.codec` -- applying any
  :class:`~repro.codes.base.ErasureCode` across real block payloads.
"""

from repro.striping.blocks import Block, LogicalFile, chunk_bytes
from repro.striping.codec import StripeCodec
from repro.striping.layout import StripeLayout, group_into_stripes

__all__ = [
    "Block",
    "LogicalFile",
    "chunk_bytes",
    "StripeLayout",
    "group_into_stripes",
    "StripeCodec",
]
