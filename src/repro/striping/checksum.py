"""CRC32C (Castagnoli) checksums for stored stripe units.

Production HDFS detects silent corruption with per-chunk checksums; this
module is the codec-level equivalent.  Every stored unit gets a CRC32C
attached at encode time, the read/repair paths verify it, and the
scrubber uses it to *locate* corruption directly instead of solving
parity equations (which remain available as the fallback oracle --
see :meth:`repro.cluster.scrubber.Scrubber.locate_corruption`).

Two implementations share one table:

- :func:`crc32c` -- plain bytewise table CRC over one buffer; the
  reference implementation and the convenience entry point.
- :func:`crc32c_batch` -- one CRC per *row* of a ``(rows, width)``
  matrix, vectorised **across rows** (CRC is sequential within a
  buffer, but independent buffers advance in lock-step, so each byte
  position is one numpy gather over all rows).  An optional ``lengths``
  array lets rows of different logical lengths share the matrix: a row
  stops participating once its length is exhausted.  This is the path
  the scrubber and raid node use to verify whole stripes at once.

The polynomial is the Castagnoli polynomial (reflected ``0x82F63B78``),
init and xor-out ``0xFFFFFFFF`` -- identical to the crc32c of iSCSI,
ext4, and the HDFS ``CRC32C`` checksum type, so values here can be
compared against any standard implementation
(``crc32c(b"123456789") == 0xE3069283``).

When the compiled GF kernel backend is available its ``crc32c`` /
``crc32c_rows`` entry points take over (SSE4.2 hardware CRC or C
slicing-by-8) -- the repair and degraded-read pipelines verify every
rebuilt unit, so checksum speed is on the recovery-rate critical path.
The Python implementations remain the oracle the property tests pin
the native values against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import EncodingError

#: Reflected Castagnoli polynomial.
_POLY = np.uint32(0x82F63B78)

_TABLE: Optional[np.ndarray] = None
_TABLE_LIST: Optional[list] = None

_NATIVE: Optional[object] = None
_NATIVE_PROBED = False


def _native():
    """The compiled CRC kernel provider, or None (probed once).

    Independent of the *selected* GF backend: CRC values are
    backend-invariant math, so the fastest available implementation is
    always correct to use even while a test pins GF work to numpy.
    """
    global _NATIVE, _NATIVE_PROBED
    if not _NATIVE_PROBED:
        _NATIVE_PROBED = True
        try:
            from repro.gf import backends

            backend = backends.native_backend()
            if hasattr(backend, "crc32c") and hasattr(backend, "crc32c_rows"):
                _NATIVE = backend
        except Exception:
            _NATIVE = None
    return _NATIVE


def _table() -> np.ndarray:
    """The 256-entry bytewise CRC32C table (built once, with numpy)."""
    global _TABLE, _TABLE_LIST
    if _TABLE is None:
        crc = np.arange(256, dtype=np.uint32)
        for _ in range(8):
            crc = np.where(crc & 1, (crc >> 1) ^ _POLY, crc >> 1)
        crc.setflags(write=False)
        _TABLE = crc
        _TABLE_LIST = crc.tolist()
    return _TABLE


def _as_bytes(data) -> bytes:
    if isinstance(data, (bytes, bytearray, memoryview)):
        return bytes(data)
    array = np.asarray(data)
    if array.dtype != np.uint8:
        raise EncodingError(
            f"checksums are defined over uint8 payloads, got {array.dtype}"
        )
    return np.ascontiguousarray(array.reshape(-1)).tobytes()


def _as_contiguous_u8(data) -> np.ndarray:
    if isinstance(data, (bytes, bytearray, memoryview)):
        return np.frombuffer(memoryview(data).cast("B"), dtype=np.uint8)
    array = np.asarray(data)
    if array.dtype != np.uint8:
        raise EncodingError(
            f"checksums are defined over uint8 payloads, got {array.dtype}"
        )
    return np.ascontiguousarray(array.reshape(-1))


def crc32c(data, value: int = 0) -> int:
    """CRC32C of one byte buffer (``bytes`` or 1-d ``uint8`` array).

    ``value`` chains a previous :func:`crc32c` result so a buffer can be
    checksummed in pieces: ``crc32c(b, crc32c(a)) == crc32c(a + b)``.
    """
    native = _native()
    if native is not None:
        return native.crc32c(_as_contiguous_u8(data), value)
    _table()
    table = _TABLE_LIST
    assert table is not None
    crc = (int(value) ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in _as_bytes(data):
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32c_reference(data, value: int = 0) -> int:
    """The pure-Python bytewise CRC32C (the oracle for the native path)."""
    _table()
    table = _TABLE_LIST
    assert table is not None
    crc = (int(value) ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in _as_bytes(data):
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32c_batch(
    rows: Union[np.ndarray, Sequence[np.ndarray]],
    lengths: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """CRC32C of every row of a uint8 matrix, vectorised across rows.

    Parameters
    ----------
    rows:
        ``(num_rows, width)`` uint8 array, or a sequence of equal-width
        1-d uint8 rows (stacked internally).
    lengths:
        Optional per-row logical lengths (``<= width``).  Row ``i``'s
        CRC covers only its first ``lengths[i]`` bytes -- the trailing
        matrix cells are ignored, so short payloads can share a padded
        matrix without their padding leaking into the digest.

    Returns
    -------
    ``(num_rows,)`` uint32 array; ``crc32c_batch(m)[i] == crc32c(m[i])``
    (the property tests pin this equivalence).
    """
    matrix = np.asarray(rows)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.ndim != 2:
        raise EncodingError(
            f"expected a (rows, width) matrix, got shape {matrix.shape}"
        )
    if matrix.dtype != np.uint8:
        raise EncodingError(
            f"checksums are defined over uint8 payloads, got {matrix.dtype}"
        )
    num_rows, width = matrix.shape
    if lengths is not None:
        length_arr = np.asarray(lengths, dtype=np.int64)
        if length_arr.shape != (num_rows,):
            raise EncodingError(
                f"lengths of shape {length_arr.shape} do not match "
                f"{num_rows} rows"
            )
        if length_arr.size and (
            length_arr.min() < 0 or length_arr.max() > width
        ):
            raise EncodingError(
                f"row lengths must lie in [0, {width}]"
            )
    native = _native()
    if native is not None:
        matrix = np.ascontiguousarray(matrix)
        if lengths is None:
            row_lengths = [width] * num_rows
        else:
            row_lengths = [int(n) for n in length_arr]
        return native.crc32c_rows(list(matrix), row_lengths)
    table = _table()
    crc = np.full(num_rows, 0xFFFFFFFF, dtype=np.uint32)
    if lengths is None:
        for col in range(width):
            crc = table[(crc ^ matrix[:, col]) & 0xFF] ^ (crc >> np.uint32(8))
    else:
        for col in range(int(length_arr.max(initial=0))):
            live = col < length_arr
            step = table[(crc ^ matrix[:, col]) & 0xFF] ^ (crc >> np.uint32(8))
            crc = np.where(live, step, crc)
    return crc ^ np.uint32(0xFFFFFFFF)
