"""Shared-memory file-encode pipeline with self-healing workers.

Raiding a cold file (Section 2.1) is embarrassingly parallel across
stripes, but a naive process pool would pickle every 256 MiB of block
payload through the task queue and lose more than it gains.  This module
shards the stripes of one file across a :class:`ProcessPoolExecutor`
while keeping **all payload bytes in two** ``multiprocessing.shared_memory``
**segments** -- one holding the file, one receiving the parities.  The
only things pickled are the (tiny) shard descriptors: shm names, the
code object (fresh, empty caches), and stripe index ranges.

Workers rebuild their stripe layouts deterministically from the shared
file bytes (``chunk_bytes`` + ``group_into_stripes`` are pure functions
of the byte count), encode their contiguous stripe range through
:meth:`StripeCodec.encode_stripes` -- hitting the zero-copy ``(s, k, w)``
fast path directly on the shared segment -- and write parity units to
fixed per-stripe offsets.  Results are therefore byte-identical and
identically ordered whether the pipeline runs serial or parallel, with
any worker count -- **and under any fault schedule**: shard writes are
idempotent (fixed offsets, full overwrite), so a shard can be retried
any number of times without affecting the output.

Self-healing: each shard is an independently-tracked future with a
progress timeout.  A worker death (``BrokenProcessPool``) or a stalled
pool triggers a bounded retry with backoff on a fresh pool; after
:data:`MAX_POOL_DEATHS` pool losses the remaining shards are encoded
serially in-process, so ``encode_file`` returns correct bytes even when
every worker the OS gives us dies.  Both shared-memory segments are
unlinked on every exit path.  Worker-side Python errors are wrapped in
:class:`~repro.errors.PipelineError` naming the shard and stripe range
-- they indicate a real bug, not an infrastructure fault, and are
raised rather than retried.

Fault injection: pass a :class:`~repro.faults.FaultPlan` (or set
``REPRO_CHAOS`` -- see :meth:`~repro.faults.FaultPlan.from_env`) and
the plan's worker crashes (real ``os._exit`` in the pool process) and
straggler delays are injected into the shard schedule.  Because the
pipeline self-heals, chaotic output remains byte-identical to serial
output; the chaos tests assert exactly that.

Conventions match :mod:`repro.cluster.sweep` via the shared
:func:`repro.parallel.decide_parallel`: ``REPRO_PARALLEL=0`` forces
serial execution (junk values are rejected loudly), auto-detection
declines to spawn on single-CPU hosts, and sandboxes that refuse
process spawning or shared memory degrade to the serial path instead
of failing.
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time as time_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.base import ErasureCode
from repro.errors import EncodingError, PipelineError
from repro.faults import FaultPlan
from repro.observability import get_logger, metrics, span
from repro.parallel import decide_parallel as _decide_parallel
from repro.striping.blocks import Block, LogicalFile, chunk_bytes
from repro.striping.codec import StripeCodec
from repro.striping.layout import StripeLayout, group_into_stripes

#: Pool losses tolerated before the remaining shards go serial.
MAX_POOL_DEATHS = 2

#: Default per-wait progress timeout (seconds).  Generous: it only
#: exists to unstick a genuinely hung pool, not to police slow shards.
DEFAULT_PROGRESS_TIMEOUT = 300.0

#: Backoff base between pool restarts (seconds, doubled per death).
RETRY_BACKOFF_SECONDS = 0.05


def _data_slot_lists(
    layouts: Sequence[StripeLayout], blocks: Sequence[Block]
) -> List[List[Optional[Block]]]:
    """Per-stripe data-slot lists (None for virtual slots), in order."""
    slot_lists: List[List[Optional[Block]]] = []
    cursor = 0
    for layout in layouts:
        slots: List[Optional[Block]] = []
        for block_id in layout.data_block_ids:
            if block_id is None:
                slots.append(None)
            else:
                slots.append(blocks[cursor])
                cursor += 1
        slot_lists.append(slots)
    return slot_lists


@dataclass
class EncodeResult:
    """Outcome of :func:`encode_file`.

    Attributes
    ----------
    file:
        The chunked logical file (blocks are views into the caller's
        data in serial mode, or into a private copy in parallel mode).
    layouts:
        One :class:`StripeLayout` per stripe, in file order.
    parities:
        ``parities[t]`` holds stripe ``t``'s ``r`` parity blocks.
    parallel_used, shards:
        Whether a process pool actually ran, and with how many shards
        (1 when serial) -- observability for the determinism tests and
        the benchmark harness.
    retries:
        Shard attempts beyond the first (pool deaths and stalls trigger
        resubmission on a fresh pool).
    serial_fallback_shards:
        Shards that were ultimately encoded in-process after the pool
        died :data:`MAX_POOL_DEATHS` times.
    """

    file: LogicalFile
    layouts: List[StripeLayout]
    parities: List[List[Block]]
    parallel_used: bool
    shards: int
    retries: int = 0
    serial_fallback_shards: int = 0

    @property
    def parity_bytes(self) -> int:
        return sum(p.size for row in self.parities for p in row)


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to encode stripes [start, stop)."""

    shard: int
    in_name: str
    out_name: str
    code_blob: bytes
    file_name: str
    file_size: int
    block_size: int
    start: int
    stop: int
    out_offsets: Tuple[int, ...]
    #: Chaos: crash (os._exit) while ``attempt < crash_attempts``.
    crash: bool = False
    crash_attempts: int = 0
    #: Chaos: straggler delay before encoding, in seconds.
    delay: float = 0.0


def _worker_encode_shard(task: _ShardTask, attempt: int = 0) -> int:
    """Encode one shard of the shared file (module-level so it pickles).

    Returns the shard index as a bare acknowledgement -- no payload
    bytes ever cross the task queue.  Output writes are idempotent
    (fixed offsets, full overwrite), so any attempt may be retried.
    """
    import multiprocessing
    from multiprocessing import resource_tracker, shared_memory

    if task.crash and attempt < task.crash_attempts:
        # Injected chaos: die the way a real worker dies -- no cleanup,
        # no exception, the parent just sees a broken pool.
        os._exit(17)
    if task.delay > 0:
        time_module.sleep(task.delay)

    shm_in = shared_memory.SharedMemory(name=task.in_name)
    shm_out = shared_memory.SharedMemory(name=task.out_name)
    try:
        # The parent owns both segments.  Under "spawn" each worker has
        # its own resource tracker, which would try to reclaim them at
        # worker exit -- undo the attach-time registration.  Under
        # "fork" the tracker process is shared with the parent and its
        # name cache is a set, so unregistering here would strip the
        # parent's own entry; leave it alone.
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            for shm in (shm_in, shm_out):
                try:
                    resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
                except (KeyError, ValueError, AttributeError):
                    # Unknown name / already unregistered / tracker API
                    # drift: the registration we are undoing is gone,
                    # which is the state we wanted.
                    pass
        try:
            code: ErasureCode = pickle.loads(task.code_blob)
            codec = StripeCodec(code)
            data = np.ndarray(
                (task.file_size,), dtype=np.uint8, buffer=shm_in.buf
            )
            file = chunk_bytes(task.file_name, data, block_size=task.block_size)
            layouts = group_into_stripes(
                file.blocks,
                code.k,
                code.r,
                stripe_prefix=f"{task.file_name}/stripe",
            )
            slot_lists = _data_slot_lists(layouts, file.blocks)
            parities = codec.encode_stripes(
                layouts[task.start : task.stop],
                slot_lists[task.start : task.stop],
            )
            out = np.ndarray(
                (shm_out.size,), dtype=np.uint8, buffer=shm_out.buf
            )
            for layout, offset, parity_blocks in zip(
                layouts[task.start : task.stop], task.out_offsets, parities
            ):
                width = codec.padded_width(layout)
                for j, parity in enumerate(parity_blocks):
                    out[offset + j * width : offset + (j + 1) * width] = (
                        parity.payload
                    )
        except Exception as exc:
            # A worker-side Python error is a real bug in the encode
            # path, not an infrastructure fault; surface it with the
            # shard context instead of a bare pickled traceback.
            raise PipelineError(
                f"shard {task.shard} (stripes {task.start}..{task.stop}) "
                f"failed on the worker: {type(exc).__name__}: {exc}"
            ) from exc
    finally:
        shm_in.close()
        shm_out.close()
    return task.shard


def encode_file(
    code: ErasureCode,
    data,
    block_size: int,
    *,
    name: str = "file",
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    progress_timeout: float = DEFAULT_PROGRESS_TIMEOUT,
) -> EncodeResult:
    """Chunk ``data`` into blocks and compute every stripe's parities.

    Serial mode encodes in-process through the codec's fused batch path
    (zero staging copies for the full stripes).  Parallel mode shards
    the stripes over a process pool with payloads in shared memory,
    retrying dead or stalled pools and falling back to in-process
    encoding if the pool keeps dying.  Both modes return byte-identical
    parities in file order.

    ``fault_plan`` injects worker crashes and straggler delays into the
    pooled path (``None`` consults ``REPRO_CHAOS``); the self-healing
    machinery must still produce identical bytes.  ``progress_timeout``
    bounds how long a wave may go without any shard completing before
    the pool is declared stuck.
    """
    if block_size <= 0:
        raise EncodingError(f"block size must be positive, got {block_size}")
    if progress_timeout <= 0:
        raise EncodingError(
            f"progress timeout must be positive, got {progress_timeout}"
        )
    data = np.ascontiguousarray(
        np.asarray(data, dtype=np.uint8).reshape(-1)
    )
    with span("pipeline.encode_file"):
        result = _encode_file_impl(
            code,
            data,
            block_size,
            name,
            parallel,
            max_workers,
            fault_plan,
            progress_timeout,
        )
    m = metrics()
    if m is not None:
        m.inc("pipeline.files")
        m.inc("pipeline.data_bytes", int(data.size))
        m.inc("pipeline.stripes", len(result.layouts))
        m.inc("pipeline.shards", result.shards)
        m.inc("pipeline.retries", result.retries)
        m.inc(
            "pipeline.serial_fallback_shards", result.serial_fallback_shards
        )
        m.inc(
            "pipeline.parallel_runs"
            if result.parallel_used
            else "pipeline.serial_runs"
        )
    return result


def _encode_file_impl(
    code: ErasureCode,
    data: np.ndarray,
    block_size: int,
    name: str,
    parallel: Optional[bool],
    max_workers: Optional[int],
    fault_plan: Optional[FaultPlan],
    progress_timeout: float,
) -> EncodeResult:
    file = chunk_bytes(name, data, block_size=block_size)
    layouts = group_into_stripes(
        file.blocks, code.k, code.r, stripe_prefix=f"{name}/stripe"
    )
    slot_lists = _data_slot_lists(layouts, file.blocks)
    stripes = len(layouts)
    if not _decide_parallel(stripes, parallel):
        codec = StripeCodec(code)
        parities = codec.encode_stripes(layouts, slot_lists)
        return EncodeResult(file, layouts, parities, False, 1)
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    result = _encode_file_pooled(
        code,
        data,
        block_size,
        name,
        file,
        layouts,
        max_workers,
        fault_plan,
        progress_timeout,
    )
    if result is not None:
        return result
    # Pool or shared memory unavailable: degrade to serial.
    get_logger("repro.pipeline").warning(
        "pool-unavailable-serial-fallback", file=name, stripes=stripes
    )
    codec = StripeCodec(code)
    parities = codec.encode_stripes(layouts, slot_lists)
    return EncodeResult(file, layouts, parities, False, 1)


def _encode_shard_serially(
    task: _ShardTask,
    code: ErasureCode,
    layouts: List[StripeLayout],
    slot_lists: List[List[Optional[Block]]],
    out: np.ndarray,
) -> None:
    """In-process fallback: encode one shard into the output buffer.

    Uses the parent's already-chunked layouts/blocks and the same fixed
    offsets a worker would have written, so the result is
    indistinguishable from a pooled shard.
    """
    codec = StripeCodec(code)
    parities = codec.encode_stripes(
        layouts[task.start : task.stop], slot_lists[task.start : task.stop]
    )
    for layout, offset, parity_blocks in zip(
        layouts[task.start : task.stop], task.out_offsets, parities
    ):
        width = codec.padded_width(layout)
        for j, parity in enumerate(parity_blocks):
            out[offset + j * width : offset + (j + 1) * width] = parity.payload


def _encode_file_pooled(
    code: ErasureCode,
    data: np.ndarray,
    block_size: int,
    name: str,
    file: LogicalFile,
    layouts: List[StripeLayout],
    max_workers: Optional[int],
    fault_plan: Optional[FaultPlan],
    progress_timeout: float,
) -> Optional[EncodeResult]:
    """Self-healing process-pool encode; None when this host cannot
    run a pool at all (no shared memory / no process spawning)."""
    from multiprocessing import shared_memory

    codec = StripeCodec(code)
    widths = [codec.padded_width(layout) for layout in layouts]
    offsets = np.concatenate(
        ([0], np.cumsum([code.r * width for width in widths]))
    ).astype(np.int64)
    out_total = int(offsets[-1])
    stripes = len(layouts)
    workers = max_workers or min(stripes, os.cpu_count() or 1)
    workers = max(1, min(workers, stripes))
    bounds = np.linspace(0, stripes, workers + 1).astype(int)
    code_blob = pickle.dumps(code)  # __getstate__ drops memoised caches
    shm_in = shm_out = None
    retries = 0
    serial_fallback_shards = 0
    try:
        shm_in = shared_memory.SharedMemory(
            create=True, size=max(1, data.size)
        )
        shm_out = shared_memory.SharedMemory(
            create=True, size=max(1, out_total)
        )
        m = metrics()
        if m is not None:
            m.inc("pipeline.shm_created", 2)
            m.inc(
                "pipeline.shm_bytes", max(1, data.size) + max(1, out_total)
            )
        np.ndarray((data.size,), dtype=np.uint8, buffer=shm_in.buf)[:] = data
        spans = [
            (int(bounds[w]), int(bounds[w + 1]))
            for w in range(workers)
            if int(bounds[w]) < int(bounds[w + 1])
        ]
        shard_faults = (
            fault_plan.worker_faults(len(spans))
            if fault_plan is not None
            else None
        )
        tasks = []
        for shard, (start, stop) in enumerate(spans):
            fault = shard_faults[shard] if shard_faults is not None else None
            tasks.append(
                _ShardTask(
                    shard=shard,
                    in_name=shm_in.name,
                    out_name=shm_out.name,
                    code_blob=code_blob,
                    file_name=name,
                    file_size=int(data.size),
                    block_size=block_size,
                    start=start,
                    stop=stop,
                    out_offsets=tuple(
                        int(offsets[t]) for t in range(start, stop)
                    ),
                    crash=fault.crash if fault is not None else False,
                    crash_attempts=(
                        fault_plan.crash_attempts
                        if fault is not None and fault.crash
                        else 0
                    ),
                    delay=fault.delay if fault is not None else 0.0,
                )
            )
        try:
            retries, serial_fallback_shards = _run_shards_self_healing(
                tasks, layouts, file, code, shm_out, progress_timeout
            )
        except (OSError, PermissionError, ImportError):
            return None
        parity_bytes = np.ndarray(
            (out_total,), dtype=np.uint8, buffer=shm_out.buf
        ).copy()
    except (OSError, PermissionError, ImportError):
        return None
    finally:
        m = metrics()
        for shm in (shm_in, shm_out):
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except (OSError, FileNotFoundError):
                    pass
                else:
                    if m is not None:
                        m.inc("pipeline.shm_unlinked")
    parities: List[List[Block]] = []
    for t, layout in enumerate(layouts):
        width = widths[t]
        row = []
        for j in range(code.r):
            lo = int(offsets[t]) + j * width
            row.append(
                Block(
                    block_id=layout.parity_block_ids[j],
                    size=width,
                    payload=parity_bytes[lo : lo + width],
                )
            )
        parities.append(row)
    return EncodeResult(
        file,
        layouts,
        parities,
        True,
        len(tasks),
        retries=retries,
        serial_fallback_shards=serial_fallback_shards,
    )


def _run_shards_self_healing(
    tasks: List[_ShardTask],
    layouts: List[StripeLayout],
    file: LogicalFile,
    code: ErasureCode,
    shm_out,
    progress_timeout: float,
) -> Tuple[int, int]:
    """Run every shard to completion, surviving pool deaths and stalls.

    Returns ``(retries, serial_fallback_shards)``.  Raises
    :class:`PipelineError` for worker-side Python errors (bugs are not
    retried) and propagates pool-creation failures to the caller's
    degrade-to-serial handling.
    """
    pending: Dict[int, int] = {task.shard: 0 for task in tasks}  # shard -> attempt
    by_shard = {task.shard: task for task in tasks}
    retries = 0
    pool_deaths = 0
    pool: Optional[ProcessPoolExecutor] = None
    futures: Dict[object, int] = {}
    submit_times: Dict[object, float] = {}
    m = metrics()

    def _restart_pool() -> None:
        """Kill the pool; every still-pending shard becomes a retry."""
        nonlocal pool, pool_deaths, retries
        assert pool is not None
        pool.shutdown(wait=False, cancel_futures=True)
        pool = None
        futures.clear()
        submit_times.clear()
        pool_deaths += 1
        for shard in pending:
            pending[shard] += 1
            retries += 1
        if m is not None:
            m.inc("pipeline.pool_rebuilds")
            m.inc("pipeline.shard_retries", len(pending))
        time_module.sleep(RETRY_BACKOFF_SECONDS * (2 ** (pool_deaths - 1)))

    try:
        while pending:
            if pool_deaths >= MAX_POOL_DEATHS:
                # The pool has died repeatedly: stop trusting workers
                # and finish the remaining shards in-process.  Shard
                # writes are idempotent, so partially-encoded shards
                # are simply overwritten.
                get_logger("repro.pipeline").warning(
                    "pool-deaths-exhausted-serial-fallback",
                    pool_deaths=pool_deaths,
                    remaining_shards=len(pending),
                )
                slot_lists = _data_slot_lists(layouts, file.blocks)
                out = np.ndarray(
                    (shm_out.size,), dtype=np.uint8, buffer=shm_out.buf
                )
                for shard in sorted(pending):
                    _encode_shard_serially(
                        by_shard[shard], code, layouts, slot_lists, out
                    )
                serial_count = len(pending)
                pending.clear()
                return retries, serial_count
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=len(pending))
                futures = {
                    pool.submit(
                        _worker_encode_shard, by_shard[shard], attempt
                    ): shard
                    for shard, attempt in sorted(pending.items())
                }
                if m is not None:
                    now = time_module.perf_counter()
                    for future in futures:
                        submit_times[future] = now
            done, __ = wait(
                futures, timeout=progress_timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # No shard finished inside the window: the pool is
                # stuck.  Kill it and retry what is left.
                if m is not None:
                    m.inc("pipeline.pool_stalls")
                get_logger("repro.pipeline").warning(
                    "pool-stalled",
                    timeout_seconds=progress_timeout,
                    pending_shards=len(pending),
                )
                _restart_pool()
                continue
            broken = False
            for future in done:
                shard = futures.pop(future)
                error = future.exception()
                if error is None:
                    pending.pop(shard, None)
                    if m is not None:
                        started = submit_times.pop(future, None)
                        if started is not None:
                            m.observe(
                                "pipeline.shard_seconds",
                                time_module.perf_counter() - started,
                            )
                elif isinstance(error, PipelineError):
                    raise error
                elif isinstance(error, BrokenProcessPool):
                    broken = True
                else:
                    raise PipelineError(
                        f"shard {shard} failed in the pool: "
                        f"{type(error).__name__}: {error}"
                    ) from error
            if broken:
                # A worker died; every sibling future on this pool is
                # (or will be) broken too.  Restart from scratch with
                # whatever is still pending.
                _restart_pool()
        return retries, 0
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Overlapped streaming encode (read || encode || write)
# ----------------------------------------------------------------------
#
# ``encode_file`` holds the whole file in memory and runs its phases
# back to back: read everything, encode everything, hand back parities.
# For cold-raid ingest the phases have different bottlenecks (disk,
# CPU, disk), so running them in sequence leaves each resource idle two
# thirds of the time.  ``encode_stream`` pipelines them with three
# threads and bounded queues:
#
#     reader --(work)--> encoder --(parity)--> writer
#        ^------(free buffer pool)----'
#
# The native kernel backends release the GIL inside their C/JIT calls,
# so the reader and writer genuinely overlap the encode thread.  Chunks
# are whole stripes (``chunk_stripes * k * block_size`` bytes), which
# makes the streamed parity byte-identical to ``encode_file`` on the
# same bytes: every chunk boundary is a stripe boundary, and the final
# ragged chunk pads exactly like the file tail would.

#: Streaming chunk-size target; chunks round up to whole stripes.
STREAM_CHUNK_TARGET_BYTES = 8 * 1024 * 1024

#: Poll interval for queue operations while shutting down on error.
_STREAM_POLL_SECONDS = 0.05


@dataclass
class StreamEncodeResult:
    """Outcome of :func:`encode_stream`.

    Attributes
    ----------
    stripes, chunks, data_bytes, parity_bytes:
        Work accounted: stripes encoded, chunks pipelined, source bytes
        consumed and parity bytes produced.
    wall_seconds, encode_seconds:
        End-to-end wall time and the part spent inside the codec.
    read_wait_seconds, write_wait_seconds:
        Encoder stalls: waiting for the reader to produce a chunk /
        waiting for the writer to drain one.  High read wait means the
        source is the bottleneck; high write wait, the sink.
    """

    stripes: int
    chunks: int
    data_bytes: int
    parity_bytes: int
    wall_seconds: float
    encode_seconds: float
    read_wait_seconds: float
    write_wait_seconds: float

    @property
    def occupancy(self) -> float:
        """Fraction of wall time the encoder was doing codec work."""
        if self.wall_seconds <= 0:
            return 0.0
        return min(self.encode_seconds / self.wall_seconds, 1.0)


def _iter_source_chunks(source, chunk_size: int, free_buffers):
    """Yield ``(array, length, owned)`` chunks from ``source``.

    ``source`` may be a filesystem path, a readable binary file object,
    or a bytes-like object.  File sources fill pool buffers taken from
    the ``free_buffers`` queue (``owned=True``: the encoder returns them
    after use); bytes-like sources yield zero-copy views
    (``owned=False``).
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, "rb") as handle:
            yield from _iter_file_chunks(handle, chunk_size, free_buffers)
    elif hasattr(source, "readinto") or hasattr(source, "read"):
        yield from _iter_file_chunks(source, chunk_size, free_buffers)
    else:
        data = np.frombuffer(memoryview(source).cast("B"), dtype=np.uint8)
        if data.size == 0:
            yield data, 0, False
            return
        for start in range(0, data.size, chunk_size):
            view = data[start : start + chunk_size]
            yield view, int(view.size), False


def _iter_file_chunks(handle, chunk_size: int, free_buffers):
    """Fill pool buffers from a file object until EOF."""
    produced = False
    while True:
        buffer = free_buffers.get()
        view = memoryview(buffer)
        filled = 0
        while filled < chunk_size:
            if hasattr(handle, "readinto"):
                n = handle.readinto(view[filled:chunk_size])
                n = 0 if n is None else int(n)
            else:
                piece = handle.read(chunk_size - filled)
                n = len(piece) if piece else 0
                if n:
                    view[filled : filled + n] = piece
            if n == 0:
                break
            filled += n
        if filled == 0:
            free_buffers.put(buffer)
            if not produced:
                # Empty source: one empty chunk, so the stream encodes
                # the same single empty-block stripe ``encode_file``
                # produces for b"".
                yield np.empty(0, dtype=np.uint8), 0, False
            return
        produced = True
        yield buffer, filled, True
        if filled < chunk_size:
            return


def encode_stream(
    code: ErasureCode,
    source,
    sink,
    block_size: int,
    *,
    name: str = "file",
    chunk_stripes: Optional[int] = None,
    queue_depth: int = 2,
) -> StreamEncodeResult:
    """Encode a byte stream with reads, encodes and writes overlapped.

    ``source`` is a path, a readable binary file object, or a
    bytes-like object; ``sink`` is a path, a writable binary file
    object, or None to discard parities (benchmarking).  Parity bytes
    are written in file order -- for each stripe, its ``r`` parity
    payloads back to back -- and are byte-identical to what
    :func:`encode_file` computes for the same bytes and ``block_size``.

    ``chunk_stripes`` sets the pipeline granularity (default: whole
    stripes totalling about :data:`STREAM_CHUNK_TARGET_BYTES`);
    ``queue_depth`` bounds each inter-thread queue, so memory use is
    ``O(queue_depth * chunk_stripes * k * block_size)``.
    """
    if block_size <= 0:
        raise EncodingError(f"block size must be positive, got {block_size}")
    if queue_depth < 1:
        raise EncodingError(f"queue depth must be >= 1, got {queue_depth}")
    stripe_bytes = code.k * block_size
    if chunk_stripes is None:
        chunk_stripes = max(
            1, -(-STREAM_CHUNK_TARGET_BYTES // stripe_bytes)
        )
    if chunk_stripes < 1:
        raise EncodingError(
            f"chunk_stripes must be >= 1, got {chunk_stripes}"
        )
    chunk_size = chunk_stripes * stripe_bytes

    codec = StripeCodec(code)
    free_buffers: "queue.Queue[np.ndarray]" = queue.Queue()
    for _ in range(queue_depth + 1):
        free_buffers.put(np.empty(chunk_size, dtype=np.uint8))
    work_q: "queue.Queue" = queue.Queue(maxsize=queue_depth)
    write_q: "queue.Queue" = queue.Queue(maxsize=queue_depth)
    stop = threading.Event()
    errors: List[BaseException] = []

    def _put(q, item) -> bool:
        """Put with stop-polling; False when the stream is aborting."""
        while not stop.is_set():
            try:
                q.put(item, timeout=_STREAM_POLL_SECONDS)
                return True
            except queue.Full:
                continue
        return False

    def reader() -> None:
        try:
            for chunk in _iter_source_chunks(source, chunk_size, free_buffers):
                if not _put(work_q, chunk):
                    return
        except Exception as exc:
            errors.append(exc)
            stop.set()
        finally:
            _put(work_q, None)

    def writer() -> None:
        handle = None
        close = False
        try:
            if sink is None:
                pass
            elif isinstance(sink, (str, os.PathLike)):
                handle = open(sink, "wb")
                close = True
            else:
                handle = sink
            while True:
                try:
                    item = write_q.get(timeout=_STREAM_POLL_SECONDS)
                except queue.Empty:
                    if stop.is_set():
                        return
                    continue
                if item is None:
                    return
                if handle is not None:
                    for payload in item:
                        handle.write(memoryview(payload))
        except Exception as exc:
            errors.append(exc)
            stop.set()
            # Keep draining so the encoder never blocks on a full queue.
            while True:
                try:
                    if write_q.get_nowait() is None:
                        return
                except queue.Empty:
                    return
        finally:
            if close and handle is not None:
                handle.close()

    start_wall = time_module.perf_counter()
    encode_seconds = 0.0
    read_wait = 0.0
    write_wait = 0.0
    stripes = 0
    chunks = 0
    data_bytes = 0
    parity_bytes = 0

    reader_thread = threading.Thread(
        target=reader, name="repro-stream-reader", daemon=True
    )
    writer_thread = threading.Thread(
        target=writer, name="repro-stream-writer", daemon=True
    )
    with span("pipeline.encode_stream"):
        reader_thread.start()
        writer_thread.start()
        try:
            while True:
                t0 = time_module.perf_counter()
                # Poll rather than block: a reader that died after
                # ``stop`` was set may never deliver its sentinel.
                item = None
                while True:
                    try:
                        item = work_q.get(timeout=_STREAM_POLL_SECONDS)
                        break
                    except queue.Empty:
                        if stop.is_set():
                            break
                read_wait += time_module.perf_counter() - t0
                if item is None:
                    break
                buffer, length, owned = item
                t0 = time_module.perf_counter()
                chunk_name = f"{name}/chunk_{chunks}"
                file = chunk_bytes(
                    chunk_name, buffer[:length], block_size=block_size
                )
                layouts = group_into_stripes(
                    file.blocks,
                    code.k,
                    code.r,
                    stripe_prefix=f"{chunk_name}/stripe",
                )
                slot_lists = _data_slot_lists(layouts, file.blocks)
                parities = codec.encode_stripes(layouts, slot_lists)
                flat = [p.payload for row in parities for p in row]
                encode_seconds += time_module.perf_counter() - t0
                if owned:
                    free_buffers.put(buffer)
                chunks += 1
                stripes += len(layouts)
                data_bytes += length
                parity_bytes += sum(int(p.size) for p in flat)
                t0 = time_module.perf_counter()
                if not _put(write_q, flat):
                    break
                write_wait += time_module.perf_counter() - t0
        except BaseException:
            stop.set()
            raise
        finally:
            _put(write_q, None)
            if stop.is_set():
                # Unstick a reader blocked on the buffer pool.
                free_buffers.put(np.empty(0, dtype=np.uint8))
            reader_thread.join()
            writer_thread.join()
    wall = time_module.perf_counter() - start_wall
    if errors:
        first = errors[0]
        if isinstance(first, PipelineError):
            raise first
        raise PipelineError(
            f"streaming encode of {name!r} failed: "
            f"{type(first).__name__}: {first}"
        ) from first
    result = StreamEncodeResult(
        stripes=stripes,
        chunks=chunks,
        data_bytes=data_bytes,
        parity_bytes=parity_bytes,
        wall_seconds=wall,
        encode_seconds=encode_seconds,
        read_wait_seconds=read_wait,
        write_wait_seconds=write_wait,
    )
    m = metrics()
    if m is not None:
        m.inc("pipeline.overlap.files")
        m.inc("pipeline.overlap.chunks", result.chunks)
        m.inc("pipeline.overlap.stripes", result.stripes)
        m.inc("pipeline.overlap.data_bytes", result.data_bytes)
        m.inc("pipeline.overlap.parity_bytes", result.parity_bytes)
        m.observe("pipeline.overlap.read_wait_seconds", read_wait)
        m.observe("pipeline.overlap.write_wait_seconds", write_wait)
        m.set_gauge("pipeline.overlap.occupancy", result.occupancy)
    return result
