"""Shared-memory file-encode pipeline.

Raiding a cold file (Section 2.1) is embarrassingly parallel across
stripes, but a naive process pool would pickle every 256 MiB of block
payload through the task queue and lose more than it gains.  This module
shards the stripes of one file across a :class:`ProcessPoolExecutor`
while keeping **all payload bytes in two** ``multiprocessing.shared_memory``
**segments** -- one holding the file, one receiving the parities.  The
only things pickled are the (tiny) shard descriptors: shm names, the
code object (fresh, empty caches), and stripe index ranges.

Workers rebuild their stripe layouts deterministically from the shared
file bytes (``chunk_bytes`` + ``group_into_stripes`` are pure functions
of the byte count), encode their contiguous stripe range through
:meth:`StripeCodec.encode_stripes` -- hitting the zero-copy ``(s, k, w)``
fast path directly on the shared segment -- and write parity units to
fixed per-stripe offsets.  Results are therefore byte-identical and
identically ordered whether the pipeline runs serial or parallel, with
any worker count.

Conventions match :mod:`repro.cluster.sweep`: ``REPRO_PARALLEL=0``
forces serial execution, auto-detection declines to spawn on single-CPU
hosts, and sandboxes that refuse process spawning or shared memory
degrade to the serial path instead of failing.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.base import ErasureCode
from repro.errors import EncodingError
from repro.striping.blocks import Block, LogicalFile, chunk_bytes
from repro.striping.codec import StripeCodec
from repro.striping.layout import StripeLayout, group_into_stripes


def _decide_parallel(num_tasks: int, parallel: Optional[bool]) -> bool:
    """Same decision rule as :func:`repro.cluster.sweep._decide_parallel`."""
    if parallel is not None:
        return parallel and num_tasks > 1
    if os.environ.get("REPRO_PARALLEL", "1") == "0":
        return False
    return num_tasks > 1 and (os.cpu_count() or 1) > 1


def _data_slot_lists(
    layouts: Sequence[StripeLayout], blocks: Sequence[Block]
) -> List[List[Optional[Block]]]:
    """Per-stripe data-slot lists (None for virtual slots), in order."""
    slot_lists: List[List[Optional[Block]]] = []
    cursor = 0
    for layout in layouts:
        slots: List[Optional[Block]] = []
        for block_id in layout.data_block_ids:
            if block_id is None:
                slots.append(None)
            else:
                slots.append(blocks[cursor])
                cursor += 1
        slot_lists.append(slots)
    return slot_lists


@dataclass
class EncodeResult:
    """Outcome of :func:`encode_file`.

    Attributes
    ----------
    file:
        The chunked logical file (blocks are views into the caller's
        data in serial mode, or into a private copy in parallel mode).
    layouts:
        One :class:`StripeLayout` per stripe, in file order.
    parities:
        ``parities[t]`` holds stripe ``t``'s ``r`` parity blocks.
    parallel_used, shards:
        Whether a process pool actually ran, and with how many shards
        (1 when serial) -- observability for the determinism tests and
        the benchmark harness.
    """

    file: LogicalFile
    layouts: List[StripeLayout]
    parities: List[List[Block]]
    parallel_used: bool
    shards: int

    @property
    def parity_bytes(self) -> int:
        return sum(p.size for row in self.parities for p in row)


def _worker_encode_shard(
    task: Tuple[str, str, bytes, str, int, int, int, int, List[int]],
) -> bool:
    """Encode stripes [start, stop) of the shared file (module-level so
    it pickles).  Returns True as a bare acknowledgement -- no payload
    bytes ever cross the task queue."""
    import multiprocessing
    from multiprocessing import resource_tracker, shared_memory

    (
        in_name,
        out_name,
        code_blob,
        file_name,
        file_size,
        block_size,
        start,
        stop,
        out_offsets,
    ) = task
    code: ErasureCode = pickle.loads(code_blob)
    codec = StripeCodec(code)
    shm_in = shared_memory.SharedMemory(name=in_name)
    shm_out = shared_memory.SharedMemory(name=out_name)
    try:
        # The parent owns both segments.  Under "spawn" each worker has
        # its own resource tracker, which would try to reclaim them at
        # worker exit -- undo the attach-time registration.  Under
        # "fork" the tracker process is shared with the parent and its
        # name cache is a set, so unregistering here would strip the
        # parent's own entry; leave it alone.
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            for shm in (shm_in, shm_out):
                try:
                    resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
                except Exception:
                    pass
        data = np.ndarray((file_size,), dtype=np.uint8, buffer=shm_in.buf)
        file = chunk_bytes(file_name, data, block_size=block_size)
        layouts = group_into_stripes(
            file.blocks, code.k, code.r, stripe_prefix=f"{file_name}/stripe"
        )
        slot_lists = _data_slot_lists(layouts, file.blocks)
        parities = codec.encode_stripes(
            layouts[start:stop], slot_lists[start:stop]
        )
        out = np.ndarray((shm_out.size,), dtype=np.uint8, buffer=shm_out.buf)
        for layout, offset, parity_blocks in zip(
            layouts[start:stop], out_offsets, parities
        ):
            width = codec.padded_width(layout)
            for j, parity in enumerate(parity_blocks):
                out[offset + j * width : offset + (j + 1) * width] = (
                    parity.payload
                )
    finally:
        shm_in.close()
        shm_out.close()
    return True


def encode_file(
    code: ErasureCode,
    data,
    block_size: int,
    *,
    name: str = "file",
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> EncodeResult:
    """Chunk ``data`` into blocks and compute every stripe's parities.

    Serial mode encodes in-process through the codec's fused batch path
    (zero staging copies for the full stripes).  Parallel mode shards
    the stripes over a process pool with payloads in shared memory.
    Both modes return byte-identical parities in file order.
    """
    if block_size <= 0:
        raise EncodingError(f"block size must be positive, got {block_size}")
    data = np.ascontiguousarray(
        np.asarray(data, dtype=np.uint8).reshape(-1)
    )
    file = chunk_bytes(name, data, block_size=block_size)
    layouts = group_into_stripes(
        file.blocks, code.k, code.r, stripe_prefix=f"{name}/stripe"
    )
    slot_lists = _data_slot_lists(layouts, file.blocks)
    stripes = len(layouts)
    if not _decide_parallel(stripes, parallel):
        codec = StripeCodec(code)
        parities = codec.encode_stripes(layouts, slot_lists)
        return EncodeResult(file, layouts, parities, False, 1)
    result = _encode_file_pooled(
        code, data, block_size, name, file, layouts, max_workers
    )
    if result is not None:
        return result
    # Pool or shared memory unavailable: degrade to serial.
    codec = StripeCodec(code)
    parities = codec.encode_stripes(layouts, slot_lists)
    return EncodeResult(file, layouts, parities, False, 1)


def _encode_file_pooled(
    code: ErasureCode,
    data: np.ndarray,
    block_size: int,
    name: str,
    file: LogicalFile,
    layouts: List[StripeLayout],
    max_workers: Optional[int],
) -> Optional[EncodeResult]:
    """Process-pool encode; None when this host cannot run it."""
    from multiprocessing import shared_memory

    codec = StripeCodec(code)
    widths = [codec.padded_width(layout) for layout in layouts]
    offsets = np.concatenate(
        ([0], np.cumsum([code.r * width for width in widths]))
    ).astype(np.int64)
    out_total = int(offsets[-1])
    stripes = len(layouts)
    workers = max_workers or min(stripes, os.cpu_count() or 1)
    workers = max(1, min(workers, stripes))
    bounds = np.linspace(0, stripes, workers + 1).astype(int)
    code_blob = pickle.dumps(code)  # __getstate__ drops memoised caches
    shm_in = shm_out = None
    try:
        shm_in = shared_memory.SharedMemory(
            create=True, size=max(1, data.size)
        )
        shm_out = shared_memory.SharedMemory(
            create=True, size=max(1, out_total)
        )
        np.ndarray((data.size,), dtype=np.uint8, buffer=shm_in.buf)[:] = data
        tasks = []
        for w in range(workers):
            start, stop = int(bounds[w]), int(bounds[w + 1])
            if start == stop:
                continue
            tasks.append(
                (
                    shm_in.name,
                    shm_out.name,
                    code_blob,
                    name,
                    int(data.size),
                    block_size,
                    start,
                    stop,
                    [int(offsets[t]) for t in range(start, stop)],
                )
            )
        with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
            list(pool.map(_worker_encode_shard, tasks))
        parity_bytes = np.ndarray(
            (out_total,), dtype=np.uint8, buffer=shm_out.buf
        ).copy()
    except (OSError, PermissionError, ImportError):
        return None
    finally:
        for shm in (shm_in, shm_out):
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except (OSError, FileNotFoundError):
                    pass
    parities: List[List[Block]] = []
    for t, layout in enumerate(layouts):
        width = widths[t]
        row = []
        for j in range(code.r):
            lo = int(offsets[t]) + j * width
            row.append(
                Block(
                    block_id=layout.parity_block_ids[j],
                    size=width,
                    payload=parity_bytes[lo : lo + width],
                )
            )
        parities.append(row)
    return EncodeResult(file, layouts, parities, True, len(bounds) - 1)
