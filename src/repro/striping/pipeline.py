"""Shared-memory file-encode pipeline with self-healing workers.

Raiding a cold file (Section 2.1) is embarrassingly parallel across
stripes, but a naive process pool would pickle every 256 MiB of block
payload through the task queue and lose more than it gains.  This module
shards the stripes of one file across a :class:`ProcessPoolExecutor`
while keeping **all payload bytes in two** ``multiprocessing.shared_memory``
**segments** -- one holding the file, one receiving the parities.  The
only things pickled are the (tiny) shard descriptors: shm names, the
code object (fresh, empty caches), and stripe index ranges.

Workers rebuild their stripe layouts deterministically from the shared
file bytes (``chunk_bytes`` + ``group_into_stripes`` are pure functions
of the byte count), encode their contiguous stripe range through
:meth:`StripeCodec.encode_stripes` -- hitting the zero-copy ``(s, k, w)``
fast path directly on the shared segment -- and write parity units to
fixed per-stripe offsets.  Results are therefore byte-identical and
identically ordered whether the pipeline runs serial or parallel, with
any worker count -- **and under any fault schedule**: shard writes are
idempotent (fixed offsets, full overwrite), so a shard can be retried
any number of times without affecting the output.

Self-healing: each shard is an independently-tracked future with a
progress timeout.  A worker death (``BrokenProcessPool``) or a stalled
pool triggers a bounded retry with backoff on a fresh pool; after
:data:`MAX_POOL_DEATHS` pool losses the remaining shards are encoded
serially in-process, so ``encode_file`` returns correct bytes even when
every worker the OS gives us dies.  Both shared-memory segments are
unlinked on every exit path.  Worker-side Python errors are wrapped in
:class:`~repro.errors.PipelineError` naming the shard and stripe range
-- they indicate a real bug, not an infrastructure fault, and are
raised rather than retried.

Fault injection: pass a :class:`~repro.faults.FaultPlan` (or set
``REPRO_CHAOS`` -- see :meth:`~repro.faults.FaultPlan.from_env`) and
the plan's worker crashes (real ``os._exit`` in the pool process) and
straggler delays are injected into the shard schedule.  Because the
pipeline self-heals, chaotic output remains byte-identical to serial
output; the chaos tests assert exactly that.

Conventions match :mod:`repro.cluster.sweep` via the shared
:func:`repro.parallel.decide_parallel`: ``REPRO_PARALLEL=0`` forces
serial execution (junk values are rejected loudly), auto-detection
declines to spawn on single-CPU hosts, and sandboxes that refuse
process spawning or shared memory degrade to the serial path instead
of failing.
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time as time_module
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.codes.base import ErasureCode
from repro.errors import (
    CorruptionError,
    EncodingError,
    PipelineError,
    RepairError,
)
from repro.faults import FaultPlan
from repro.observability import get_logger, metrics, span
from repro.parallel import decide_parallel as _decide_parallel
from repro.striping.blocks import Block, LogicalFile, chunk_bytes
from repro.striping.checksum import crc32c, crc32c_batch
from repro.striping.codec import StripeCodec
from repro.striping.layout import StripeLayout, group_into_stripes

#: Pool losses tolerated before the remaining shards go serial.
MAX_POOL_DEATHS = 2

#: Default per-wait progress timeout (seconds).  Generous: it only
#: exists to unstick a genuinely hung pool, not to police slow shards.
DEFAULT_PROGRESS_TIMEOUT = 300.0

#: Backoff base between pool restarts (seconds, doubled per death).
RETRY_BACKOFF_SECONDS = 0.05


def _data_slot_lists(
    layouts: Sequence[StripeLayout], blocks: Sequence[Block]
) -> List[List[Optional[Block]]]:
    """Per-stripe data-slot lists (None for virtual slots), in order."""
    slot_lists: List[List[Optional[Block]]] = []
    cursor = 0
    for layout in layouts:
        slots: List[Optional[Block]] = []
        for block_id in layout.data_block_ids:
            if block_id is None:
                slots.append(None)
            else:
                slots.append(blocks[cursor])
                cursor += 1
        slot_lists.append(slots)
    return slot_lists


@dataclass
class EncodeResult:
    """Outcome of :func:`encode_file`.

    Attributes
    ----------
    file:
        The chunked logical file (blocks are views into the caller's
        data in serial mode, or into a private copy in parallel mode).
    layouts:
        One :class:`StripeLayout` per stripe, in file order.
    parities:
        ``parities[t]`` holds stripe ``t``'s ``r`` parity blocks.
    parallel_used, shards:
        Whether a process pool actually ran, and with how many shards
        (1 when serial) -- observability for the determinism tests and
        the benchmark harness.
    retries:
        Shard attempts beyond the first (pool deaths and stalls trigger
        resubmission on a fresh pool).
    serial_fallback_shards:
        Shards that were ultimately encoded in-process after the pool
        died :data:`MAX_POOL_DEATHS` times.
    """

    file: LogicalFile
    layouts: List[StripeLayout]
    parities: List[List[Block]]
    parallel_used: bool
    shards: int
    retries: int = 0
    serial_fallback_shards: int = 0

    @property
    def parity_bytes(self) -> int:
        return sum(p.size for row in self.parities for p in row)


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to encode stripes [start, stop)."""

    shard: int
    in_name: str
    out_name: str
    code_blob: bytes
    file_name: str
    file_size: int
    block_size: int
    start: int
    stop: int
    out_offsets: Tuple[int, ...]
    #: Chaos: crash (os._exit) while ``attempt < crash_attempts``.
    crash: bool = False
    crash_attempts: int = 0
    #: Chaos: straggler delay before encoding, in seconds.
    delay: float = 0.0


def _attach_worker_shm(in_name: str, out_name: str):
    """Attach a worker to the parent's two shared-memory segments.

    The parent owns both segments.  Under "spawn" each worker has its
    own resource tracker, which would try to reclaim them at worker
    exit -- undo the attach-time registration.  Under "fork" the
    tracker process is shared with the parent and its name cache is a
    set, so unregistering here would strip the parent's own entry;
    leave it alone.
    """
    import multiprocessing
    from multiprocessing import resource_tracker, shared_memory

    shm_in = shared_memory.SharedMemory(name=in_name)
    shm_out = shared_memory.SharedMemory(name=out_name)
    if multiprocessing.get_start_method(allow_none=True) != "fork":
        for shm in (shm_in, shm_out):
            try:
                resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
            except (KeyError, ValueError, AttributeError):
                # Unknown name / already unregistered / tracker API
                # drift: the registration we are undoing is gone,
                # which is the state we wanted.
                pass
    return shm_in, shm_out


def _worker_encode_shard(task: _ShardTask, attempt: int = 0) -> int:
    """Encode one shard of the shared file (module-level so it pickles).

    Returns the shard index as a bare acknowledgement -- no payload
    bytes ever cross the task queue.  Output writes are idempotent
    (fixed offsets, full overwrite), so any attempt may be retried.
    """
    if task.crash and attempt < task.crash_attempts:
        # Injected chaos: die the way a real worker dies -- no cleanup,
        # no exception, the parent just sees a broken pool.
        os._exit(17)
    if task.delay > 0:
        time_module.sleep(task.delay)

    shm_in, shm_out = _attach_worker_shm(task.in_name, task.out_name)
    try:
        try:
            code: ErasureCode = pickle.loads(task.code_blob)
            codec = StripeCodec(code)
            data = np.ndarray(
                (task.file_size,), dtype=np.uint8, buffer=shm_in.buf
            )
            file = chunk_bytes(task.file_name, data, block_size=task.block_size)
            layouts = group_into_stripes(
                file.blocks,
                code.k,
                code.r,
                stripe_prefix=f"{task.file_name}/stripe",
            )
            slot_lists = _data_slot_lists(layouts, file.blocks)
            parities = codec.encode_stripes(
                layouts[task.start : task.stop],
                slot_lists[task.start : task.stop],
            )
            out = np.ndarray(
                (shm_out.size,), dtype=np.uint8, buffer=shm_out.buf
            )
            for layout, offset, parity_blocks in zip(
                layouts[task.start : task.stop], task.out_offsets, parities
            ):
                width = codec.padded_width(layout)
                for j, parity in enumerate(parity_blocks):
                    out[offset + j * width : offset + (j + 1) * width] = (
                        parity.payload
                    )
        except Exception as exc:
            # A worker-side Python error is a real bug in the encode
            # path, not an infrastructure fault; surface it with the
            # shard context instead of a bare pickled traceback.
            raise PipelineError(
                f"shard {task.shard} (stripes {task.start}..{task.stop}) "
                f"failed on the worker: {type(exc).__name__}: {exc}"
            ) from exc
    finally:
        shm_in.close()
        shm_out.close()
    return task.shard


def encode_file(
    code: ErasureCode,
    data,
    block_size: int,
    *,
    name: str = "file",
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    progress_timeout: float = DEFAULT_PROGRESS_TIMEOUT,
) -> EncodeResult:
    """Chunk ``data`` into blocks and compute every stripe's parities.

    Serial mode encodes in-process through the codec's fused batch path
    (zero staging copies for the full stripes).  Parallel mode shards
    the stripes over a process pool with payloads in shared memory,
    retrying dead or stalled pools and falling back to in-process
    encoding if the pool keeps dying.  Both modes return byte-identical
    parities in file order.

    ``fault_plan`` injects worker crashes and straggler delays into the
    pooled path (``None`` consults ``REPRO_CHAOS``); the self-healing
    machinery must still produce identical bytes.  ``progress_timeout``
    bounds how long a wave may go without any shard completing before
    the pool is declared stuck.
    """
    if block_size <= 0:
        raise EncodingError(f"block size must be positive, got {block_size}")
    if progress_timeout <= 0:
        raise EncodingError(
            f"progress timeout must be positive, got {progress_timeout}"
        )
    data = np.ascontiguousarray(
        np.asarray(data, dtype=np.uint8).reshape(-1)
    )
    with span("pipeline.encode_file"):
        result = _encode_file_impl(
            code,
            data,
            block_size,
            name,
            parallel,
            max_workers,
            fault_plan,
            progress_timeout,
        )
    m = metrics()
    if m is not None:
        m.inc("pipeline.files")
        m.inc("pipeline.data_bytes", int(data.size))
        m.inc("pipeline.stripes", len(result.layouts))
        m.inc("pipeline.shards", result.shards)
        m.inc("pipeline.retries", result.retries)
        m.inc(
            "pipeline.serial_fallback_shards", result.serial_fallback_shards
        )
        m.inc(
            "pipeline.parallel_runs"
            if result.parallel_used
            else "pipeline.serial_runs"
        )
    return result


def _encode_file_impl(
    code: ErasureCode,
    data: np.ndarray,
    block_size: int,
    name: str,
    parallel: Optional[bool],
    max_workers: Optional[int],
    fault_plan: Optional[FaultPlan],
    progress_timeout: float,
) -> EncodeResult:
    file = chunk_bytes(name, data, block_size=block_size)
    layouts = group_into_stripes(
        file.blocks, code.k, code.r, stripe_prefix=f"{name}/stripe"
    )
    slot_lists = _data_slot_lists(layouts, file.blocks)
    stripes = len(layouts)
    if not _decide_parallel(stripes, parallel):
        codec = StripeCodec(code)
        parities = codec.encode_stripes(layouts, slot_lists)
        return EncodeResult(file, layouts, parities, False, 1)
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    result = _encode_file_pooled(
        code,
        data,
        block_size,
        name,
        file,
        layouts,
        max_workers,
        fault_plan,
        progress_timeout,
    )
    if result is not None:
        return result
    # Pool or shared memory unavailable: degrade to serial.
    get_logger("repro.pipeline").warning(
        "pool-unavailable-serial-fallback", file=name, stripes=stripes
    )
    codec = StripeCodec(code)
    parities = codec.encode_stripes(layouts, slot_lists)
    return EncodeResult(file, layouts, parities, False, 1)


def _encode_shard_serially(
    task: _ShardTask,
    code: ErasureCode,
    layouts: List[StripeLayout],
    slot_lists: List[List[Optional[Block]]],
    out: np.ndarray,
) -> None:
    """In-process fallback: encode one shard into the output buffer.

    Uses the parent's already-chunked layouts/blocks and the same fixed
    offsets a worker would have written, so the result is
    indistinguishable from a pooled shard.
    """
    codec = StripeCodec(code)
    parities = codec.encode_stripes(
        layouts[task.start : task.stop], slot_lists[task.start : task.stop]
    )
    for layout, offset, parity_blocks in zip(
        layouts[task.start : task.stop], task.out_offsets, parities
    ):
        width = codec.padded_width(layout)
        for j, parity in enumerate(parity_blocks):
            out[offset + j * width : offset + (j + 1) * width] = parity.payload


def _encode_file_pooled(
    code: ErasureCode,
    data: np.ndarray,
    block_size: int,
    name: str,
    file: LogicalFile,
    layouts: List[StripeLayout],
    max_workers: Optional[int],
    fault_plan: Optional[FaultPlan],
    progress_timeout: float,
) -> Optional[EncodeResult]:
    """Self-healing process-pool encode; None when this host cannot
    run a pool at all (no shared memory / no process spawning)."""
    from multiprocessing import shared_memory

    codec = StripeCodec(code)
    widths = [codec.padded_width(layout) for layout in layouts]
    offsets = np.concatenate(
        ([0], np.cumsum([code.r * width for width in widths]))
    ).astype(np.int64)
    out_total = int(offsets[-1])
    stripes = len(layouts)
    workers = max_workers or min(stripes, os.cpu_count() or 1)
    workers = max(1, min(workers, stripes))
    bounds = np.linspace(0, stripes, workers + 1).astype(int)
    code_blob = pickle.dumps(code)  # __getstate__ drops memoised caches
    shm_in = shm_out = None
    retries = 0
    serial_fallback_shards = 0
    try:
        shm_in = shared_memory.SharedMemory(
            create=True, size=max(1, data.size)
        )
        shm_out = shared_memory.SharedMemory(
            create=True, size=max(1, out_total)
        )
        m = metrics()
        if m is not None:
            m.inc("pipeline.shm_created", 2)
            m.inc(
                "pipeline.shm_bytes", max(1, data.size) + max(1, out_total)
            )
        np.ndarray((data.size,), dtype=np.uint8, buffer=shm_in.buf)[:] = data
        spans = [
            (int(bounds[w]), int(bounds[w + 1]))
            for w in range(workers)
            if int(bounds[w]) < int(bounds[w + 1])
        ]
        shard_faults = (
            fault_plan.worker_faults(len(spans))
            if fault_plan is not None
            else None
        )
        tasks = []
        for shard, (start, stop) in enumerate(spans):
            fault = shard_faults[shard] if shard_faults is not None else None
            tasks.append(
                _ShardTask(
                    shard=shard,
                    in_name=shm_in.name,
                    out_name=shm_out.name,
                    code_blob=code_blob,
                    file_name=name,
                    file_size=int(data.size),
                    block_size=block_size,
                    start=start,
                    stop=stop,
                    out_offsets=tuple(
                        int(offsets[t]) for t in range(start, stop)
                    ),
                    crash=fault.crash if fault is not None else False,
                    crash_attempts=(
                        fault_plan.crash_attempts
                        if fault is not None and fault.crash
                        else 0
                    ),
                    delay=fault.delay if fault is not None else 0.0,
                )
            )
        serial_state: Dict[str, object] = {}

        def _encode_serially(task: _ShardTask) -> int:
            if not serial_state:
                serial_state["slots"] = _data_slot_lists(layouts, file.blocks)
                serial_state["out"] = np.ndarray(
                    (shm_out.size,), dtype=np.uint8, buffer=shm_out.buf
                )
            _encode_shard_serially(
                task,
                code,
                layouts,
                serial_state["slots"],  # type: ignore[arg-type]
                serial_state["out"],  # type: ignore[arg-type]
            )
            return task.shard

        try:
            retries, serial_fallback_shards, _ = _run_shards_self_healing(
                tasks, _worker_encode_shard, _encode_serially, progress_timeout
            )
        except (OSError, PermissionError, ImportError):
            return None
        parity_bytes = np.ndarray(
            (out_total,), dtype=np.uint8, buffer=shm_out.buf
        ).copy()
    except (OSError, PermissionError, ImportError):
        return None
    finally:
        m = metrics()
        for shm in (shm_in, shm_out):
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except (OSError, FileNotFoundError):
                    pass
                else:
                    if m is not None:
                        m.inc("pipeline.shm_unlinked")
    parities: List[List[Block]] = []
    for t, layout in enumerate(layouts):
        width = widths[t]
        row = []
        for j in range(code.r):
            lo = int(offsets[t]) + j * width
            row.append(
                Block(
                    block_id=layout.parity_block_ids[j],
                    size=width,
                    payload=parity_bytes[lo : lo + width],
                )
            )
        parities.append(row)
    return EncodeResult(
        file,
        layouts,
        parities,
        True,
        len(tasks),
        retries=retries,
        serial_fallback_shards=serial_fallback_shards,
    )


def _run_shards_self_healing(
    tasks: Sequence,
    worker_fn: Callable,
    serial_fn: Callable,
    progress_timeout: float,
) -> Tuple[int, int, Dict[int, object]]:
    """Run every shard to completion, surviving pool deaths and stalls.

    Task-agnostic: ``worker_fn(task, attempt)`` runs in the pool and
    ``serial_fn(task)`` is the in-process fallback once the pool has
    died :data:`MAX_POOL_DEATHS` times; both encode and repair shards
    ride the same machinery.  Tasks need only a ``shard`` attribute.

    Returns ``(retries, serial_fallback_shards, results)`` where
    ``results`` maps shard index to the worker's (or fallback's) return
    value.  Raises :class:`PipelineError` for worker-side Python errors
    (bugs are not retried) and propagates pool-creation failures to the
    caller's degrade-to-serial handling.
    """
    pending: Dict[int, int] = {task.shard: 0 for task in tasks}  # shard -> attempt
    by_shard = {task.shard: task for task in tasks}
    results: Dict[int, object] = {}
    retries = 0
    pool_deaths = 0
    pool: Optional[ProcessPoolExecutor] = None
    futures: Dict[object, int] = {}
    submit_times: Dict[object, float] = {}
    m = metrics()

    def _restart_pool() -> None:
        """Kill the pool; every still-pending shard becomes a retry."""
        nonlocal pool, pool_deaths, retries
        assert pool is not None
        pool.shutdown(wait=False, cancel_futures=True)
        pool = None
        futures.clear()
        submit_times.clear()
        pool_deaths += 1
        for shard in pending:
            pending[shard] += 1
            retries += 1
        if m is not None:
            m.inc("pipeline.pool_rebuilds")
            m.inc("pipeline.shard_retries", len(pending))
        time_module.sleep(RETRY_BACKOFF_SECONDS * (2 ** (pool_deaths - 1)))

    try:
        while pending:
            if pool_deaths >= MAX_POOL_DEATHS:
                # The pool has died repeatedly: stop trusting workers
                # and finish the remaining shards in-process.  Shard
                # writes are idempotent, so partially-encoded shards
                # are simply overwritten.
                get_logger("repro.pipeline").warning(
                    "pool-deaths-exhausted-serial-fallback",
                    pool_deaths=pool_deaths,
                    remaining_shards=len(pending),
                )
                for shard in sorted(pending):
                    results[shard] = serial_fn(by_shard[shard])
                serial_count = len(pending)
                pending.clear()
                return retries, serial_count, results
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=len(pending))
                futures = {
                    pool.submit(worker_fn, by_shard[shard], attempt): shard
                    for shard, attempt in sorted(pending.items())
                }
                if m is not None:
                    now = time_module.perf_counter()
                    for future in futures:
                        submit_times[future] = now
            done, __ = wait(
                futures, timeout=progress_timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # No shard finished inside the window: the pool is
                # stuck.  Kill it and retry what is left.
                if m is not None:
                    m.inc("pipeline.pool_stalls")
                get_logger("repro.pipeline").warning(
                    "pool-stalled",
                    timeout_seconds=progress_timeout,
                    pending_shards=len(pending),
                )
                _restart_pool()
                continue
            broken = False
            for future in done:
                shard = futures.pop(future)
                error = future.exception()
                if error is None:
                    pending.pop(shard, None)
                    results[shard] = future.result()
                    if m is not None:
                        started = submit_times.pop(future, None)
                        if started is not None:
                            m.observe(
                                "pipeline.shard_seconds",
                                time_module.perf_counter() - started,
                            )
                elif isinstance(error, PipelineError):
                    raise error
                elif isinstance(error, BrokenProcessPool):
                    broken = True
                else:
                    raise PipelineError(
                        f"shard {shard} failed in the pool: "
                        f"{type(error).__name__}: {error}"
                    ) from error
            if broken:
                # A worker died; every sibling future on this pool is
                # (or will be) broken too.  Restart from scratch with
                # whatever is still pending.
                _restart_pool()
        return retries, 0, results
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Overlapped streaming encode (read || encode || write)
# ----------------------------------------------------------------------
#
# ``encode_file`` holds the whole file in memory and runs its phases
# back to back: read everything, encode everything, hand back parities.
# For cold-raid ingest the phases have different bottlenecks (disk,
# CPU, disk), so running them in sequence leaves each resource idle two
# thirds of the time.  ``encode_stream`` pipelines them with three
# threads and bounded queues:
#
#     reader --(work)--> encoder --(parity)--> writer
#        ^------(free buffer pool)----'
#
# The native kernel backends release the GIL inside their C/JIT calls,
# so the reader and writer genuinely overlap the encode thread.  Chunks
# are whole stripes (``chunk_stripes * k * block_size`` bytes), which
# makes the streamed parity byte-identical to ``encode_file`` on the
# same bytes: every chunk boundary is a stripe boundary, and the final
# ragged chunk pads exactly like the file tail would.

#: Streaming chunk-size target; chunks round up to whole stripes.
STREAM_CHUNK_TARGET_BYTES = 8 * 1024 * 1024

#: Poll interval for queue operations while shutting down on error.
_STREAM_POLL_SECONDS = 0.05


@dataclass
class StreamEncodeResult:
    """Outcome of :func:`encode_stream`.

    Attributes
    ----------
    stripes, chunks, data_bytes, parity_bytes:
        Work accounted: stripes encoded, chunks pipelined, source bytes
        consumed and parity bytes produced.
    wall_seconds, encode_seconds:
        End-to-end wall time and the part spent inside the codec.
    read_wait_seconds, write_wait_seconds:
        Encoder stalls: waiting for the reader to produce a chunk /
        waiting for the writer to drain one.  High read wait means the
        source is the bottleneck; high write wait, the sink.
    """

    stripes: int
    chunks: int
    data_bytes: int
    parity_bytes: int
    wall_seconds: float
    encode_seconds: float
    read_wait_seconds: float
    write_wait_seconds: float

    @property
    def occupancy(self) -> float:
        """Fraction of wall time the encoder was doing codec work."""
        if self.wall_seconds <= 0:
            return 0.0
        return min(self.encode_seconds / self.wall_seconds, 1.0)


def _iter_source_chunks(source, chunk_size: int, free_buffers):
    """Yield ``(array, length, owned)`` chunks from ``source``.

    ``source`` may be a filesystem path, a readable binary file object,
    or a bytes-like object.  File sources fill pool buffers taken from
    the ``free_buffers`` queue (``owned=True``: the encoder returns them
    after use); bytes-like sources yield zero-copy views
    (``owned=False``).
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, "rb") as handle:
            yield from _iter_file_chunks(handle, chunk_size, free_buffers)
    elif hasattr(source, "readinto") or hasattr(source, "read"):
        yield from _iter_file_chunks(source, chunk_size, free_buffers)
    else:
        data = np.frombuffer(memoryview(source).cast("B"), dtype=np.uint8)
        if data.size == 0:
            yield data, 0, False
            return
        for start in range(0, data.size, chunk_size):
            view = data[start : start + chunk_size]
            yield view, int(view.size), False


def _iter_file_chunks(handle, chunk_size: int, free_buffers):
    """Fill pool buffers from a file object until EOF."""
    produced = False
    while True:
        buffer = free_buffers.get()
        view = memoryview(buffer)
        filled = 0
        while filled < chunk_size:
            if hasattr(handle, "readinto"):
                n = handle.readinto(view[filled:chunk_size])
                n = 0 if n is None else int(n)
            else:
                piece = handle.read(chunk_size - filled)
                n = len(piece) if piece else 0
                if n:
                    view[filled : filled + n] = piece
            if n == 0:
                break
            filled += n
        if filled == 0:
            free_buffers.put(buffer)
            if not produced:
                # Empty source: one empty chunk, so the stream encodes
                # the same single empty-block stripe ``encode_file``
                # produces for b"".
                yield np.empty(0, dtype=np.uint8), 0, False
            return
        produced = True
        yield buffer, filled, True
        if filled < chunk_size:
            return


def encode_stream(
    code: ErasureCode,
    source,
    sink,
    block_size: int,
    *,
    name: str = "file",
    chunk_stripes: Optional[int] = None,
    queue_depth: int = 2,
) -> StreamEncodeResult:
    """Encode a byte stream with reads, encodes and writes overlapped.

    ``source`` is a path, a readable binary file object, or a
    bytes-like object; ``sink`` is a path, a writable binary file
    object, or None to discard parities (benchmarking).  Parity bytes
    are written in file order -- for each stripe, its ``r`` parity
    payloads back to back -- and are byte-identical to what
    :func:`encode_file` computes for the same bytes and ``block_size``.

    ``chunk_stripes`` sets the pipeline granularity (default: whole
    stripes totalling about :data:`STREAM_CHUNK_TARGET_BYTES`);
    ``queue_depth`` bounds each inter-thread queue, so memory use is
    ``O(queue_depth * chunk_stripes * k * block_size)``.
    """
    if block_size <= 0:
        raise EncodingError(f"block size must be positive, got {block_size}")
    if queue_depth < 1:
        raise EncodingError(f"queue depth must be >= 1, got {queue_depth}")
    stripe_bytes = code.k * block_size
    if chunk_stripes is None:
        chunk_stripes = max(
            1, -(-STREAM_CHUNK_TARGET_BYTES // stripe_bytes)
        )
    if chunk_stripes < 1:
        raise EncodingError(
            f"chunk_stripes must be >= 1, got {chunk_stripes}"
        )
    chunk_size = chunk_stripes * stripe_bytes

    codec = StripeCodec(code)
    free_buffers: "queue.Queue[np.ndarray]" = queue.Queue()
    for _ in range(queue_depth + 1):
        free_buffers.put(np.empty(chunk_size, dtype=np.uint8))
    work_q: "queue.Queue" = queue.Queue(maxsize=queue_depth)
    write_q: "queue.Queue" = queue.Queue(maxsize=queue_depth)
    stop = threading.Event()
    errors: List[BaseException] = []

    def _put(q, item) -> bool:
        """Put with stop-polling; False when the stream is aborting."""
        while not stop.is_set():
            try:
                q.put(item, timeout=_STREAM_POLL_SECONDS)
                return True
            except queue.Full:
                continue
        return False

    def reader() -> None:
        try:
            for chunk in _iter_source_chunks(source, chunk_size, free_buffers):
                if not _put(work_q, chunk):
                    return
        except Exception as exc:
            errors.append(exc)
            stop.set()
        finally:
            _put(work_q, None)

    def writer() -> None:
        handle = None
        close = False
        try:
            if sink is None:
                pass
            elif isinstance(sink, (str, os.PathLike)):
                handle = open(sink, "wb")
                close = True
            else:
                handle = sink
            while True:
                try:
                    item = write_q.get(timeout=_STREAM_POLL_SECONDS)
                except queue.Empty:
                    if stop.is_set():
                        return
                    continue
                if item is None:
                    return
                if handle is not None:
                    for payload in item:
                        handle.write(memoryview(payload))
        except Exception as exc:
            errors.append(exc)
            stop.set()
            # Keep draining so the encoder never blocks on a full queue.
            while True:
                try:
                    if write_q.get_nowait() is None:
                        return
                except queue.Empty:
                    return
        finally:
            if close and handle is not None:
                handle.close()

    start_wall = time_module.perf_counter()
    encode_seconds = 0.0
    read_wait = 0.0
    write_wait = 0.0
    stripes = 0
    chunks = 0
    data_bytes = 0
    parity_bytes = 0

    reader_thread = threading.Thread(
        target=reader, name="repro-stream-reader", daemon=True
    )
    writer_thread = threading.Thread(
        target=writer, name="repro-stream-writer", daemon=True
    )
    with span("pipeline.encode_stream"):
        reader_thread.start()
        writer_thread.start()
        try:
            while True:
                t0 = time_module.perf_counter()
                # Poll rather than block: a reader that died after
                # ``stop`` was set may never deliver its sentinel.
                item = None
                while True:
                    try:
                        item = work_q.get(timeout=_STREAM_POLL_SECONDS)
                        break
                    except queue.Empty:
                        if stop.is_set():
                            break
                read_wait += time_module.perf_counter() - t0
                if item is None:
                    break
                buffer, length, owned = item
                t0 = time_module.perf_counter()
                chunk_name = f"{name}/chunk_{chunks}"
                file = chunk_bytes(
                    chunk_name, buffer[:length], block_size=block_size
                )
                layouts = group_into_stripes(
                    file.blocks,
                    code.k,
                    code.r,
                    stripe_prefix=f"{chunk_name}/stripe",
                )
                slot_lists = _data_slot_lists(layouts, file.blocks)
                parities = codec.encode_stripes(layouts, slot_lists)
                flat = [p.payload for row in parities for p in row]
                encode_seconds += time_module.perf_counter() - t0
                if owned:
                    free_buffers.put(buffer)
                chunks += 1
                stripes += len(layouts)
                data_bytes += length
                parity_bytes += sum(int(p.size) for p in flat)
                t0 = time_module.perf_counter()
                if not _put(write_q, flat):
                    break
                write_wait += time_module.perf_counter() - t0
        except BaseException:
            stop.set()
            raise
        finally:
            _put(write_q, None)
            if stop.is_set():
                # Unstick a reader blocked on the buffer pool.
                free_buffers.put(np.empty(0, dtype=np.uint8))
            reader_thread.join()
            writer_thread.join()
    wall = time_module.perf_counter() - start_wall
    if errors:
        first = errors[0]
        if isinstance(first, PipelineError):
            raise first
        raise PipelineError(
            f"streaming encode of {name!r} failed: "
            f"{type(first).__name__}: {first}"
        ) from first
    result = StreamEncodeResult(
        stripes=stripes,
        chunks=chunks,
        data_bytes=data_bytes,
        parity_bytes=parity_bytes,
        wall_seconds=wall,
        encode_seconds=encode_seconds,
        read_wait_seconds=read_wait,
        write_wait_seconds=write_wait,
    )
    m = metrics()
    if m is not None:
        m.inc("pipeline.overlap.files")
        m.inc("pipeline.overlap.chunks", result.chunks)
        m.inc("pipeline.overlap.stripes", result.stripes)
        m.inc("pipeline.overlap.data_bytes", result.data_bytes)
        m.inc("pipeline.overlap.parity_bytes", result.parity_bytes)
        m.observe("pipeline.overlap.read_wait_seconds", read_wait)
        m.observe("pipeline.overlap.write_wait_seconds", write_wait)
        m.set_gauge("pipeline.overlap.occupancy", result.occupancy)
    return result


# ----------------------------------------------------------------------
# Repair and degraded-read data path: compiled plans + streaming
# ----------------------------------------------------------------------
#
# Rebuilding a failed shard is the operation the paper measures in the
# wild (180 TB/day of recovery traffic, Section 3); here it gets the
# same treatment the encode path already has.  Three entry points share
# one core:
#
# - ``repair_stream``   -- reader || rebuild || writer over survivor
#                          shard streams, mirroring ``encode_stream``;
# - ``repair_file``     -- whole-file repair of in-memory shards,
#                          serial or over the self-healing process pool;
# - ``decode_file``     -- streaming degraded read: recover the original
#                          file bytes from any >= k surviving shards.
#
# The core (:class:`_StripeRebuilder`) runs every uniform full-width
# run of stripes through ``ErasureCode.bind_repair_batch`` -- the whole
# survivor wave is one pre-marshalled native kernel call -- and drops
# to the scalar oracle path only for ragged tail stripes and checksum
# quarantine retries.  Checksum semantics mirror the raid node's
# optimistic repair: rebuild first, verify the rebuilt unit, and only
# on mismatch checksum the survivors, quarantine the corrupt ones,
# re-plan and retry (raising :class:`~repro.errors.CorruptionError`
# when the rebuilt unit fails but every survivor verifies).

#: Shared read-only zero units for virtual padding slots (small LRU).
_ZERO_UNITS: "OrderedDict[int, np.ndarray]" = OrderedDict()

_ZERO_UNIT_CAP = 8


def _shared_zero_unit(width: int) -> np.ndarray:
    zeros = _ZERO_UNITS.get(width)
    if zeros is None:
        zeros = np.zeros(width, dtype=np.uint8)
        zeros.setflags(write=False)
        while len(_ZERO_UNITS) >= _ZERO_UNIT_CAP:
            _ZERO_UNITS.popitem(last=False)
        _ZERO_UNITS[width] = zeros
    else:
        _ZERO_UNITS.move_to_end(width)
    return zeros


class _ShardGeometry:
    """Stored-shard geometry of one striped file, from metadata alone.

    Shard layout is a pure function of ``(name, file_size, block_size)``
    -- the same determinism the pooled encoder exploits -- so repair
    and degraded read can slice survivor shards without ever seeing the
    original file bytes.  A *shard* here is one stripe slot's stored
    bytes across every stripe of the file, back to back: data slots
    store their logical (untrimmed-but-unpadded) block bytes, parity
    slots store the full padded width, and virtual padding slots store
    nothing.
    """

    def __init__(
        self, code: ErasureCode, name: str, file_size: int, block_size: int
    ):
        if block_size <= 0:
            raise EncodingError(
                f"block size must be positive, got {block_size}"
            )
        if file_size < 0:
            raise EncodingError(f"file size must be >= 0, got {file_size}")
        self.code = code
        self.name = name
        self.file_size = int(file_size)
        self.block_size = int(block_size)
        if file_size == 0:
            sizes = [0]
        else:
            full, tail = divmod(self.file_size, self.block_size)
            sizes = [self.block_size] * full + ([tail] if tail else [])
        blocks = [
            Block(block_id=f"{name}/blk_{i}", size=size)
            for i, size in enumerate(sizes)
        ]
        self.layouts = group_into_stripes(
            blocks, code.k, code.r, stripe_prefix=f"{name}/stripe"
        )
        alignment = code.unit_alignment
        self.widths: List[int] = []
        for layout in self.layouts:
            width = layout.stripe_width
            padded = (
                alignment
                if width == 0
                else ((width + alignment - 1) // alignment) * alignment
            )
            self.widths.append(padded)
        self.stripes = len(self.layouts)
        self.max_width = max(self.widths)
        # Leading run of "uniform" stripes -- k real full-size blocks at
        # one shared padded width.  The fused batch kernels run here;
        # anything past it (at most the final stripe group) is ragged.
        uniform = 0
        for layout in self.layouts:
            if all(
                block_id is not None for block_id in layout.data_block_ids
            ) and all(size == self.block_size for size in layout.data_sizes):
                uniform += 1
            else:
                break
        self.uniform_stripes = uniform
        self._offsets: Dict[int, List[int]] = {}

    def is_virtual(self, t: int, slot: int) -> bool:
        layout = self.layouts[t]
        return slot < layout.k and layout.data_block_ids[slot] is None

    def stored_size(self, t: int, slot: int) -> int:
        """Bytes slot ``slot`` stores for stripe ``t`` (0 if virtual)."""
        layout = self.layouts[t]
        if slot < layout.k:
            if layout.data_block_ids[slot] is None:
                return 0
            return int(layout.data_sizes[slot])
        return self.widths[t]

    def shard_offsets(self, slot: int) -> List[int]:
        """Cumulative stored offsets; ``[stripes]`` is the shard size."""
        offsets = self._offsets.get(slot)
        if offsets is None:
            offsets = [0]
            for t in range(self.stripes):
                offsets.append(offsets[-1] + self.stored_size(t, slot))
            self._offsets[slot] = offsets
        return offsets

    def shard_size(self, slot: int) -> int:
        return self.shard_offsets(slot)[self.stripes]


class _StripeRebuilder:
    """Rebuilds one failed slot stripe by stripe, with integrity checks.

    The shared core of :func:`repair_stream`,
    :class:`CompiledFileRepair` and the pooled repair workers.  Uniform
    full-width runs go through the code's fused batch executors (one
    native call per survivor wave); ragged tail stripes and checksum
    quarantine retries use the scalar oracle path.  Accounting
    (``bytes_read``, ``crc_mismatches``, ``quarantined``) accumulates
    on the instance between :meth:`reset` calls.

    ``checksums`` maps slot index to a per-stripe sequence of CRC32C
    values over each stripe's *stored* bytes.  Verification is strictly
    opt-in: with no checksums the rebuild path never touches a CRC.
    """

    def __init__(
        self,
        code: ErasureCode,
        geometry: _ShardGeometry,
        failed_slot: int,
        slots,
        checksums=None,
    ):
        self.code = code
        self.geometry = geometry
        self.failed_slot = code.validate_node_index(failed_slot)
        self.slots = tuple(sorted(int(slot) for slot in slots))
        for slot in self.slots:
            code.validate_node_index(slot)
        if self.failed_slot in self.slots:
            raise RepairError(
                f"slot {self.failed_slot} cannot be its own repair source"
            )
        self.checksums: Dict[int, List[int]] = {}
        for slot, values in (checksums or {}).items():
            values = list(values)
            if len(values) != geometry.stripes:
                raise RepairError(
                    f"checksums for slot {slot} cover {len(values)} stripes,"
                    f" expected {geometry.stripes}"
                )
            self.checksums[int(slot)] = values
        self.reset()

    def reset(self) -> None:
        self.bytes_read = 0
        self.crc_mismatches = 0
        self.quarantined: List[Tuple[int, int]] = []

    def bind_uniform(
        self, rows_by_slot: Mapping[int, list], out: np.ndarray
    ):
        """Compile one uniform wave against fixed buffers."""
        plan = self.code.repair_plan_cached(self.failed_slot, self.slots)
        return self.code.bind_repair_batch(
            self.failed_slot, rows_by_slot, out, plan
        )

    def repair_uniform_run(
        self,
        t0: int,
        rows_by_slot: Mapping[int, list],
        out: np.ndarray,
        executor=None,
    ) -> None:
        """Repair uniform stripes ``[t0, t0 + len(out))`` into ``out``."""
        stripes, width = out.shape
        plan = self.code.repair_plan_cached(self.failed_slot, self.slots)
        if executor is None:
            executor = self.code.bind_repair_batch(
                self.failed_slot, rows_by_slot, out, plan
            )
        executor()
        self.bytes_read += stripes * plan.bytes_downloaded(width)
        expected = self.checksums.get(self.failed_slot)
        if expected is None:
            return
        size = self.geometry.stored_size(t0, self.failed_slot)
        actual = crc32c_batch(out, lengths=[size] * stripes)
        wanted = np.asarray(expected[t0 : t0 + stripes], dtype=np.uint32)
        for i in np.nonzero(actual != wanted)[0]:
            i = int(i)
            units = {
                slot: np.asarray(rows[i])
                for slot, rows in rows_by_slot.items()
            }
            out[i] = self._quarantine_retry(t0 + i, units, frozenset())

    def repair_stripe(self, t: int, units: Mapping[int, np.ndarray]):
        """Scalar repair of stripe ``t``; returns the rebuilt unit.

        ``units`` holds width-padded rows for the provided non-virtual
        slots; virtual padding slots are synthesised as shared zeros.
        """
        layout = self.geometry.layouts[t]
        width = self.geometry.widths[t]
        units = dict(units)
        virtual = frozenset(
            slot
            for slot in range(layout.k)
            if layout.data_block_ids[slot] is None
        )
        for slot in virtual:
            if slot != self.failed_slot:
                units.setdefault(slot, _shared_zero_unit(width))
        plan = self.code.repair_plan_cached(self.failed_slot, units.keys())
        rebuilt, _ = self.code.execute_repair(self.failed_slot, units, plan)
        self.bytes_read += self._plan_bytes(plan, width, virtual)
        expected = self.checksums.get(self.failed_slot)
        if expected is not None:
            size = self.geometry.stored_size(t, self.failed_slot)
            if crc32c(rebuilt[:size]) != expected[t]:
                rebuilt = self._quarantine_retry(t, units, virtual)
        return rebuilt

    def _quarantine_retry(self, t, units, virtual) -> np.ndarray:
        """Optimistic-repair fallback after a rebuilt-unit mismatch.

        Mirrors the raid node's integrity loop: checksum the survivors,
        quarantine the corrupt ones, re-plan over the rest, retry; the
        stripe is unrecoverable only when the rebuilt unit fails its
        checksum while every surviving source verifies.
        """
        self.crc_mismatches += 1
        m = metrics()
        if m is not None:
            m.inc("pipeline.repair.crc_mismatches")
        units = dict(units)
        width = self.geometry.widths[t]
        size = self.geometry.stored_size(t, self.failed_slot)
        expected = self.checksums[self.failed_slot][t]
        excluded: set = set()
        while True:
            corrupt = [
                slot
                for slot in sorted(units)
                if slot not in virtual
                and self._survivor_corrupt(t, slot, units[slot])
            ]
            if not corrupt:
                raise CorruptionError(
                    f"stripe {t}: rebuilt unit for slot {self.failed_slot} "
                    f"fails its checksum but every surviving source verifies"
                )
            for slot in corrupt:
                units.pop(slot)
                excluded.add(slot)
                self.quarantined.append((t, slot))
                if m is not None:
                    m.inc("pipeline.repair.quarantined_units")
            plan = self.code.repair_plan_retry(
                self.failed_slot, set(units) | excluded, excluded
            )
            rebuilt, _ = self.code.execute_repair(
                self.failed_slot, units, plan
            )
            self.bytes_read += self._plan_bytes(plan, width, virtual)
            if crc32c(rebuilt[:size]) == expected:
                return rebuilt

    def _survivor_corrupt(self, t: int, slot: int, row) -> bool:
        values = self.checksums.get(slot)
        if values is None:
            return False
        size = self.geometry.stored_size(t, slot)
        return crc32c(np.asarray(row)[:size]) != values[t]

    def _plan_bytes(self, plan, width: int, virtual) -> int:
        """Metered bytes for one executed plan (virtual reads are free)."""
        bytes_read = plan.bytes_downloaded(width)
        subunit = width // self.code.substripes_per_unit
        for request in plan.requests:
            if request.node in virtual:
                bytes_read -= len(request.substripes) * subunit
        return bytes_read


class _ShardBufferSet:
    """One pooled unit of stream memory: survivor row buffers, an
    output buffer and (for repair) the fused executor bound to them.

    Binding the executor to the pool buffers once means steady-state
    chunks pay no per-chunk Python marshalling: the reader refills the
    same memory and the cached executor replays the whole survivor wave
    as a single native call.
    """

    def __init__(self, capacity: int, width: int):
        self.capacity = capacity
        self.width = width
        self.slot_buffers: Dict[int, np.ndarray] = {}
        self.out = np.empty((capacity, max(1, width)), dtype=np.uint8)
        self.executor = None
        self.executor_stripes = 0
        #: True while every row of the current chunk lives in
        #: ``slot_buffers`` at canonical offsets (row ``i`` at
        #: ``i * width``) -- the precondition for executor reuse.
        self.pooled = False

    def slot_buffer(self, slot: int) -> np.ndarray:
        buffer = self.slot_buffers.get(slot)
        if buffer is None:
            buffer = np.empty(self.capacity * max(1, self.width), dtype=np.uint8)
            self.slot_buffers[slot] = buffer
        return buffer


def _read_exact(handle, view: memoryview, slot: int) -> None:
    """Fill ``view`` from ``handle`` completely or fail loudly."""
    filled = 0
    total = len(view)
    while filled < total:
        if hasattr(handle, "readinto"):
            n = handle.readinto(view[filled:])
            n = 0 if n is None else int(n)
        else:
            piece = handle.read(total - filled)
            n = len(piece) if piece else 0
            if n:
                view[filled : filled + n] = piece
        if n == 0:
            raise PipelineError(
                f"survivor source for slot {slot} ended after "
                f"{filled} of {total} expected bytes"
            )
        filled += n


def _stream_shards(
    geometry: _ShardGeometry,
    sources: Mapping[int, object],
    sink,
    name: str,
    chunk_stripes: int,
    queue_depth: int,
    rebuild_chunk: Callable,
):
    """Reader -> rebuild -> writer scaffolding over survivor shards.

    The shared driver behind :func:`repair_stream` and
    :func:`decode_file`.  ``rebuild_chunk(t0, t1, rows_by_slot, bufset)``
    runs on the main thread and returns the byte views to emit for
    stripes ``[t0, t1)``; rows handed to it are width-padded per-stripe
    views (``None`` in stripes where the slot is virtual), either
    zero-copy into bytes-like sources or into pooled buffers refilled
    by the reader thread.

    Returns ``(stripes, chunks, emitted_bytes, wall, rebuild_seconds,
    read_wait, write_wait)``.
    """
    slots = sorted(int(slot) for slot in sources)
    width = geometry.max_width
    free_sets: "queue.Queue[_ShardBufferSet]" = queue.Queue()
    for _ in range(queue_depth + 1):
        free_sets.put(_ShardBufferSet(chunk_stripes, width))
    work_q: "queue.Queue" = queue.Queue(maxsize=queue_depth)
    write_q: "queue.Queue" = queue.Queue(maxsize=queue_depth)
    stop = threading.Event()
    errors: List[BaseException] = []

    def _put(q, item) -> bool:
        while not stop.is_set():
            try:
                q.put(item, timeout=_STREAM_POLL_SECONDS)
                return True
            except queue.Full:
                continue
        return False

    def _take_bufset() -> Optional[_ShardBufferSet]:
        while not stop.is_set():
            try:
                return free_sets.get(timeout=_STREAM_POLL_SECONDS)
            except queue.Empty:
                continue
        return None

    def reader() -> None:
        handles: Dict[int, object] = {}
        views: Dict[int, np.ndarray] = {}
        cursors: Dict[int, int] = {}
        opened: List[object] = []
        try:
            for slot in slots:
                source = sources[slot]
                if isinstance(source, (str, os.PathLike)):
                    handle = open(source, "rb")
                    opened.append(handle)
                    handles[slot] = handle
                elif hasattr(source, "readinto") or hasattr(source, "read"):
                    handles[slot] = source
                else:
                    view = np.frombuffer(
                        memoryview(source).cast("B"), dtype=np.uint8
                    )
                    expected = geometry.shard_size(slot)
                    if view.size != expected:
                        raise PipelineError(
                            f"shard for slot {slot} holds {view.size} bytes,"
                            f" expected {expected}"
                        )
                    views[slot] = view
                    cursors[slot] = 0
            for t0 in range(0, geometry.stripes, chunk_stripes):
                t1 = min(t0 + chunk_stripes, geometry.stripes)
                bufset = _take_bufset()
                if bufset is None:
                    return
                bufset.pooled = True
                rows_by_slot: Dict[int, List[Optional[np.ndarray]]] = {}
                for slot in slots:
                    rows: List[Optional[np.ndarray]] = []
                    if slot in views:
                        view = views[slot]
                        cursor = cursors[slot]
                        for i, t in enumerate(range(t0, t1)):
                            if geometry.is_virtual(t, slot):
                                rows.append(None)
                                continue
                            size = geometry.stored_size(t, slot)
                            stripe_width = geometry.widths[t]
                            if size == stripe_width:
                                rows.append(view[cursor : cursor + size])
                                bufset.pooled = False
                            else:
                                # Short stored row: stage it padded.
                                buffer = bufset.slot_buffer(slot)
                                row = buffer[
                                    i * width : i * width + stripe_width
                                ]
                                row[:size] = view[cursor : cursor + size]
                                row[size:] = 0
                                rows.append(row)
                            cursor += size
                        cursors[slot] = cursor
                    else:
                        handle = handles[slot]
                        buffer = bufset.slot_buffer(slot)
                        contiguous = all(
                            not geometry.is_virtual(t, slot)
                            and geometry.stored_size(t, slot)
                            == geometry.widths[t]
                            == width
                            for t in range(t0, t1)
                        )
                        if contiguous:
                            run = t1 - t0
                            flat = buffer[: run * width]
                            _read_exact(handle, memoryview(flat), slot)
                            rows = [
                                buffer[i * width : (i + 1) * width]
                                for i in range(run)
                            ]
                        else:
                            for i, t in enumerate(range(t0, t1)):
                                if geometry.is_virtual(t, slot):
                                    rows.append(None)
                                    continue
                                size = geometry.stored_size(t, slot)
                                stripe_width = geometry.widths[t]
                                row = buffer[
                                    i * width : i * width + stripe_width
                                ]
                                if size:
                                    _read_exact(
                                        handle, memoryview(row[:size]), slot
                                    )
                                row[size:] = 0
                                rows.append(row)
                    rows_by_slot[slot] = rows
                if not _put(work_q, (t0, t1, rows_by_slot, bufset)):
                    return
        except Exception as exc:
            errors.append(exc)
            stop.set()
        finally:
            for handle in opened:
                handle.close()
            _put(work_q, None)

    def writer() -> None:
        handle = None
        close = False
        try:
            if sink is None:
                pass
            elif isinstance(sink, (str, os.PathLike)):
                handle = open(sink, "wb")
                close = True
            else:
                handle = sink
            while True:
                try:
                    item = write_q.get(timeout=_STREAM_POLL_SECONDS)
                except queue.Empty:
                    if stop.is_set():
                        return
                    continue
                if item is None:
                    return
                payloads, bufset = item
                if handle is not None:
                    for payload in payloads:
                        handle.write(memoryview(payload))
                # The payloads may be views into the buffer set; only
                # now is it safe to hand the memory back to the reader.
                free_sets.put(bufset)
        except Exception as exc:
            errors.append(exc)
            stop.set()
            while True:
                try:
                    item = write_q.get_nowait()
                except queue.Empty:
                    return
                if item is None:
                    return
                free_sets.put(item[1])
        finally:
            if close and handle is not None:
                handle.close()

    start_wall = time_module.perf_counter()
    rebuild_seconds = 0.0
    read_wait = 0.0
    write_wait = 0.0
    stripes = 0
    chunks = 0
    emitted_bytes = 0

    reader_thread = threading.Thread(
        target=reader, name="repro-repair-reader", daemon=True
    )
    writer_thread = threading.Thread(
        target=writer, name="repro-repair-writer", daemon=True
    )
    reader_thread.start()
    writer_thread.start()
    try:
        while True:
            t0 = time_module.perf_counter()
            item = None
            while True:
                try:
                    item = work_q.get(timeout=_STREAM_POLL_SECONDS)
                    break
                except queue.Empty:
                    if stop.is_set():
                        break
            read_wait += time_module.perf_counter() - t0
            if item is None:
                break
            lo, hi, rows_by_slot, bufset = item
            t0 = time_module.perf_counter()
            payloads = rebuild_chunk(lo, hi, rows_by_slot, bufset)
            rebuild_seconds += time_module.perf_counter() - t0
            chunks += 1
            stripes += hi - lo
            emitted_bytes += sum(int(np.asarray(p).size) for p in payloads)
            t0 = time_module.perf_counter()
            if not _put(write_q, (payloads, bufset)):
                break
            write_wait += time_module.perf_counter() - t0
    except BaseException:
        stop.set()
        raise
    finally:
        _put(write_q, None)
        if stop.is_set():
            # Unstick a reader blocked on the buffer-set pool.
            free_sets.put(_ShardBufferSet(1, 1))
        reader_thread.join()
        writer_thread.join()
    wall = time_module.perf_counter() - start_wall
    if errors:
        first = errors[0]
        if isinstance(first, PipelineError):
            raise first
        raise PipelineError(
            f"streaming reconstruction of {name!r} failed: "
            f"{type(first).__name__}: {first}"
        ) from first
    return (
        stripes,
        chunks,
        emitted_bytes,
        wall,
        rebuild_seconds,
        read_wait,
        write_wait,
    )


@dataclass
class StreamRepairResult:
    """Outcome of :func:`repair_stream`.

    ``bytes_read`` is the plan-metered repair traffic (virtual-slot
    reads are free), the quantity the paper's cross-rack measurements
    aggregate; ``rebuilt_bytes`` is the failed shard's stored size.
    """

    stripes: int
    chunks: int
    rebuilt_bytes: int
    bytes_read: int
    crc_mismatches: int
    quarantined: Tuple[Tuple[int, int], ...]
    wall_seconds: float
    repair_seconds: float
    read_wait_seconds: float
    write_wait_seconds: float

    @property
    def occupancy(self) -> float:
        """Fraction of wall time spent inside the repair kernels."""
        if self.wall_seconds <= 0:
            return 0.0
        return min(self.repair_seconds / self.wall_seconds, 1.0)


@dataclass
class StreamDecodeResult:
    """Outcome of :func:`decode_file` (streaming degraded read)."""

    stripes: int
    chunks: int
    data_bytes: int
    bytes_read: int
    crc_mismatches: int
    quarantined: Tuple[Tuple[int, int], ...]
    wall_seconds: float
    decode_seconds: float
    read_wait_seconds: float
    write_wait_seconds: float

    @property
    def occupancy(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return min(self.decode_seconds / self.wall_seconds, 1.0)


def _stream_geometry_args(
    code: ErasureCode,
    block_size: int,
    file_size: int,
    name: str,
    chunk_stripes: Optional[int],
    queue_depth: int,
) -> Tuple[_ShardGeometry, int]:
    if queue_depth < 1:
        raise EncodingError(f"queue depth must be >= 1, got {queue_depth}")
    geometry = _ShardGeometry(code, name, file_size, block_size)
    if chunk_stripes is None:
        stripe_bytes = code.k * block_size
        chunk_stripes = max(1, -(-STREAM_CHUNK_TARGET_BYTES // stripe_bytes))
    if chunk_stripes < 1:
        raise EncodingError(
            f"chunk_stripes must be >= 1, got {chunk_stripes}"
        )
    return geometry, chunk_stripes


def repair_stream(
    code: ErasureCode,
    sources: Mapping[int, object],
    sink,
    block_size: int,
    failed_slot: int,
    file_size: int,
    *,
    name: str = "file",
    checksums: Optional[Mapping[int, Sequence[int]]] = None,
    chunk_stripes: Optional[int] = None,
    queue_depth: int = 2,
) -> StreamRepairResult:
    """Rebuild one failed shard from survivor shard streams.

    ``sources`` maps survivor slot index to that slot's stored shard --
    a path, a readable binary file object, or a bytes-like object (read
    zero-copy).  ``sink`` receives the failed shard's stored bytes in
    stripe order (path, writable file object, or None to discard).  The
    rebuilt bytes are byte-identical to what the batched
    :meth:`~repro.striping.codec.StripeCodec.repair_blocks` path
    produces for the same stripes.

    Reads, repair kernels and writes overlap via bounded queues, and
    full-size uniform chunks reuse a fused repair executor bound to the
    pooled buffers -- the steady-state chunk cost is one native call.

    ``checksums`` (slot -> per-stripe CRC32C of stored bytes) arms the
    optimistic integrity loop: every rebuilt unit is verified, and a
    mismatch triggers survivor checksumming, quarantine-and-retry, or
    :class:`~repro.errors.CorruptionError` if the survivors all verify.
    """
    geometry, chunk_stripes = _stream_geometry_args(
        code, block_size, file_size, name, chunk_stripes, queue_depth
    )
    failed_slot = code.validate_node_index(failed_slot)
    if failed_slot in {int(slot) for slot in sources}:
        raise RepairError(
            f"slot {failed_slot} cannot be its own repair source"
        )
    rebuilder = _StripeRebuilder(
        code, geometry, failed_slot, sources.keys(), checksums
    )
    m = metrics()

    def rebuild_chunk(t0, t1, rows_by_slot, bufset):
        payloads: List[np.ndarray] = []
        uniform_until = min(t1, geometry.uniform_stripes)
        if uniform_until > t0:
            run = uniform_until - t0
            out = bufset.out[:run]
            uniform_rows = {
                slot: rows[:run] for slot, rows in rows_by_slot.items()
            }
            executor = None
            if (
                bufset.pooled
                and bufset.executor is not None
                and bufset.executor_stripes == run
            ):
                executor = bufset.executor
                if m is not None:
                    m.inc("pipeline.repair.bound_wave_reuses")
            elif bufset.pooled:
                executor = rebuilder.bind_uniform(uniform_rows, out)
                bufset.executor = executor
                bufset.executor_stripes = run
                if m is not None:
                    m.inc("pipeline.repair.bound_waves")
            rebuilder.repair_uniform_run(t0, uniform_rows, out, executor)
            size = geometry.stored_size(t0, failed_slot)
            payloads.extend(out[i, :size] for i in range(run))
        for t in range(max(t0, uniform_until), t1):
            if geometry.is_virtual(t, failed_slot):
                continue
            units = {
                slot: rows[t - t0]
                for slot, rows in rows_by_slot.items()
                if rows[t - t0] is not None
            }
            rebuilt = rebuilder.repair_stripe(t, units)
            payloads.append(rebuilt[: geometry.stored_size(t, failed_slot)])
        return payloads

    with span("pipeline.repair_stream"):
        stripes, chunks, emitted, wall, rebuild_s, read_wait, write_wait = (
            _stream_shards(
                geometry,
                sources,
                sink,
                name,
                chunk_stripes,
                queue_depth,
                rebuild_chunk,
            )
        )
    result = StreamRepairResult(
        stripes=stripes,
        chunks=chunks,
        rebuilt_bytes=emitted,
        bytes_read=rebuilder.bytes_read,
        crc_mismatches=rebuilder.crc_mismatches,
        quarantined=tuple(rebuilder.quarantined),
        wall_seconds=wall,
        repair_seconds=rebuild_s,
        read_wait_seconds=read_wait,
        write_wait_seconds=write_wait,
    )
    if m is not None:
        m.inc("pipeline.repair.streams")
        m.inc("pipeline.repair.stripes", result.stripes)
        m.inc("pipeline.repair.rebuilt_bytes", result.rebuilt_bytes)
        m.inc("pipeline.repair.bytes_read", result.bytes_read)
        m.observe("pipeline.repair.read_wait_seconds", read_wait)
        m.observe("pipeline.repair.write_wait_seconds", write_wait)
        m.set_gauge("pipeline.repair.occupancy", result.occupancy)
    return result


def decode_file(
    code: ErasureCode,
    sources: Mapping[int, object],
    sink,
    block_size: int,
    file_size: int,
    *,
    name: str = "file",
    checksums: Optional[Mapping[int, Sequence[int]]] = None,
    chunk_stripes: Optional[int] = None,
    queue_depth: int = 2,
) -> StreamDecodeResult:
    """Streaming degraded read: recover the original file bytes.

    ``sources`` maps surviving slot index to that slot's stored shard
    (any mix of data and parity slots; each stripe needs ``k``
    recoverable units).  ``sink`` receives the file's bytes in order,
    byte-identical to the data the batched
    :meth:`~repro.striping.codec.StripeCodec.decode_stripe` path
    restores.  ``checksums`` arms per-stripe verification of the
    decoded data units with the same quarantine-and-retry semantics as
    :func:`repair_stream`.
    """
    geometry, chunk_stripes = _stream_geometry_args(
        code, block_size, file_size, name, chunk_stripes, queue_depth
    )
    checks = {
        int(slot): list(values) for slot, values in (checksums or {}).items()
    }
    for slot, values in checks.items():
        if len(values) != geometry.stripes:
            raise RepairError(
                f"checksums for slot {slot} cover {len(values)} stripes,"
                f" expected {geometry.stripes}"
            )
    state = {"crc_mismatches": 0}
    quarantined: List[Tuple[int, int]] = []
    m = metrics()

    def _verify_failures(t, data, layout) -> bool:
        """True when some real data unit fails its checksum."""
        for slot in range(layout.k):
            if layout.data_block_ids[slot] is None:
                continue
            values = checks.get(slot)
            if values is None:
                continue
            size = geometry.stored_size(t, slot)
            if crc32c(np.asarray(data[slot])[:size]) != values[t]:
                return True
        return False

    def _decode_retry(t, units):
        """Drop corrupt survivors (located by checksum) and re-decode."""
        state["crc_mismatches"] += 1
        if m is not None:
            m.inc("pipeline.decode.crc_mismatches")
        layout = geometry.layouts[t]
        units = dict(units)
        excluded: set = set()
        while True:
            corrupt = [
                slot
                for slot in sorted(units)
                if not geometry.is_virtual(t, slot)
                and checks.get(slot) is not None
                and crc32c(
                    np.asarray(units[slot])[: geometry.stored_size(t, slot)]
                )
                != checks[slot][t]
            ]
            if not corrupt:
                raise CorruptionError(
                    f"stripe {t}: decoded data fails its checksums but "
                    f"every surviving source verifies"
                )
            for slot in corrupt:
                units.pop(slot)
                excluded.add(slot)
                quarantined.append((t, slot))
                if m is not None:
                    m.inc("pipeline.decode.quarantined_units")
            data = code.decode(units)
            if not _verify_failures(t, data, layout):
                return data

    def rebuild_chunk(t0, t1, rows_by_slot, bufset):
        payloads: List[np.ndarray] = []
        uniform_until = min(t1, geometry.uniform_stripes)
        if uniform_until > t0:
            run = uniform_until - t0
            uniform_rows = {
                slot: rows[:run] for slot, rows in rows_by_slot.items()
            }
            data = code.decode_batch(uniform_rows)
            bad: set = set()
            size = geometry.block_size
            for slot in range(code.k):
                values = checks.get(slot)
                if values is None:
                    continue
                actual = crc32c_batch(data[:, slot, :], lengths=[size] * run)
                wanted = np.asarray(
                    values[t0 : t0 + run], dtype=np.uint32
                )
                bad.update(int(i) for i in np.nonzero(actual != wanted)[0])
            for i in sorted(bad):
                units = {
                    slot: np.asarray(rows[i])
                    for slot, rows in uniform_rows.items()
                }
                data[i] = _decode_retry(t0 + i, units)
            for i in range(run):
                for slot in range(code.k):
                    payloads.append(data[i, slot, :size])
        for t in range(max(t0, uniform_until), t1):
            layout = geometry.layouts[t]
            width = geometry.widths[t]
            units = {
                slot: rows[t - t0]
                for slot, rows in rows_by_slot.items()
                if rows[t - t0] is not None
            }
            for slot in range(layout.k):
                if layout.data_block_ids[slot] is None:
                    units.setdefault(slot, _shared_zero_unit(width))
            data = code.decode(units)
            if _verify_failures(t, data, layout):
                data = _decode_retry(t, units)
            for slot in range(layout.k):
                if layout.data_block_ids[slot] is None:
                    continue
                payloads.append(data[slot][: layout.data_sizes[slot]])
        return payloads

    with span("pipeline.decode_file"):
        stripes, chunks, emitted, wall, rebuild_s, read_wait, write_wait = (
            _stream_shards(
                geometry,
                sources,
                sink,
                name,
                chunk_stripes,
                queue_depth,
                rebuild_chunk,
            )
        )
    slots = [int(slot) for slot in sources]
    bytes_read = sum(
        geometry.stored_size(t, slot)
        for slot in slots
        for t in range(geometry.stripes)
    )
    result = StreamDecodeResult(
        stripes=stripes,
        chunks=chunks,
        data_bytes=emitted,
        bytes_read=bytes_read,
        crc_mismatches=state["crc_mismatches"],
        quarantined=tuple(quarantined),
        wall_seconds=wall,
        decode_seconds=rebuild_s,
        read_wait_seconds=read_wait,
        write_wait_seconds=write_wait,
    )
    if m is not None:
        m.inc("pipeline.decode.files")
        m.inc("pipeline.decode.stripes", result.stripes)
        m.inc("pipeline.decode.data_bytes", result.data_bytes)
        m.inc("pipeline.decode.bytes_read", result.bytes_read)
        m.observe("pipeline.decode.read_wait_seconds", read_wait)
        m.observe("pipeline.decode.write_wait_seconds", write_wait)
        m.set_gauge("pipeline.decode.occupancy", result.occupancy)
    return result


# ----------------------------------------------------------------------
# Whole-file repair: compiled plans, serial or pooled
# ----------------------------------------------------------------------


@dataclass
class CompiledRepairStats:
    """One :meth:`CompiledFileRepair.run` execution's accounting."""

    stripes: int
    bytes_read: int
    rebuilt_bytes: int
    crc_mismatches: int
    quarantined: Tuple[Tuple[int, int], ...]


class CompiledFileRepair:
    """A whole-file repair compiled to pre-bound native kernel waves.

    For a degraded file whose survivor shards are already in memory,
    every uniform full-width wave is bound once to the shard buffers
    via :meth:`~repro.codes.base.ErasureCode.bind_repair_batch`;
    :meth:`run` then replays the waves as single native calls over the
    *current* shard contents, plus scalar handling for ragged tail
    stripes.  Compile once, run per repair: steady state is exactly the
    fused kernels with no per-stripe Python work.  This is the shape
    the repair benchmarks measure, and the pooled parallel path ships
    per-stripe-range instances of it to the workers.

    When a shard's stored row width differs from the padded stripe
    width (block sizes not divisible by the code's unit alignment), the
    wave stages survivors into padded scratch buffers on every run --
    still fused, just with a copy tax.
    """

    def __init__(
        self,
        code: ErasureCode,
        shards: Mapping[int, object],
        failed_slot: int,
        block_size: int,
        file_size: int,
        *,
        name: str = "file",
        checksums: Optional[Mapping[int, Sequence[int]]] = None,
        wave_stripes: Optional[int] = None,
        start: int = 0,
        stop: Optional[int] = None,
        out: Optional[np.ndarray] = None,
    ):
        self.code = code
        self.geometry = _ShardGeometry(code, name, file_size, block_size)
        geometry = self.geometry
        self.failed_slot = code.validate_node_index(failed_slot)
        stop = geometry.stripes if stop is None else int(stop)
        if not 0 <= start <= stop <= geometry.stripes:
            raise RepairError(
                f"stripe range [{start}, {stop}) outside file of "
                f"{geometry.stripes} stripes"
            )
        self.start = int(start)
        self.stop = stop
        self.shard_views: Dict[int, np.ndarray] = {}
        for slot, shard in sorted(shards.items()):
            slot = int(slot)
            if slot == self.failed_slot:
                continue
            if isinstance(shard, np.ndarray):
                view = np.ascontiguousarray(
                    shard.reshape(-1).view(np.uint8)
                )
            else:
                view = np.frombuffer(
                    memoryview(shard).cast("B"), dtype=np.uint8
                )
            expected = geometry.shard_size(slot)
            if view.size != expected:
                raise RepairError(
                    f"shard for slot {slot} holds {view.size} bytes, "
                    f"expected {expected}"
                )
            self.shard_views[slot] = view
        self.rebuilder = _StripeRebuilder(
            code, geometry, failed_slot, self.shard_views.keys(), checksums
        )
        offsets = geometry.shard_offsets(self.failed_slot)
        self.out_size = offsets[self.stop] - offsets[self.start]
        if out is None:
            out = np.empty(self.out_size, dtype=np.uint8)
        else:
            out = out.reshape(-1).view(np.uint8)
            if out.size != self.out_size:
                raise RepairError(
                    f"output buffer holds {out.size} bytes, expected "
                    f"{self.out_size}"
                )
        self.out = out
        self._compile(wave_stripes)

    def _compile(self, wave_stripes: Optional[int]) -> None:
        geometry = self.geometry
        failed = self.failed_slot
        uniform_stop = min(self.stop, geometry.uniform_stripes)
        self._waves: List[Tuple] = []
        self._tail: List[int] = [
            t
            for t in range(max(self.start, uniform_stop), self.stop)
            if not geometry.is_virtual(t, failed)
        ]
        if uniform_stop <= self.start:
            return
        width = geometry.max_width
        run = uniform_stop - self.start
        wave = run if wave_stripes is None else max(1, int(wave_stripes))
        out_offsets = geometry.shard_offsets(failed)
        failed_stored = geometry.stored_size(self.start, failed)
        for w0 in range(self.start, uniform_stop, wave):
            w1 = min(w0 + wave, uniform_stop)
            stripes = w1 - w0
            rows_by_slot: Dict[int, List[np.ndarray]] = {}
            refreshes: List[Tuple[np.ndarray, np.ndarray]] = []
            for slot, view in self.shard_views.items():
                stored = geometry.stored_size(w0, slot)
                lo = geometry.shard_offsets(slot)[w0]
                if stored == width:
                    rows_by_slot[slot] = [
                        view[lo + i * width : lo + (i + 1) * width]
                        for i in range(stripes)
                    ]
                else:
                    staging = np.zeros((stripes, width), dtype=np.uint8)
                    source = view[lo : lo + stripes * stored].reshape(
                        stripes, stored
                    )
                    refreshes.append((staging[:, :stored], source))
                    rows_by_slot[slot] = [staging[i] for i in range(stripes)]
            out_lo = out_offsets[w0] - out_offsets[self.start]
            writeback = None
            if failed_stored == width:
                out_matrix = self.out[
                    out_lo : out_lo + stripes * width
                ].reshape(stripes, width)
            else:
                out_matrix = np.empty((stripes, width), dtype=np.uint8)
                writeback = self.out[
                    out_lo : out_lo + stripes * failed_stored
                ].reshape(stripes, failed_stored)
            executor = self.rebuilder.bind_uniform(rows_by_slot, out_matrix)
            self._waves.append(
                (w0, rows_by_slot, out_matrix, executor, refreshes, writeback)
            )

    def run(self) -> CompiledRepairStats:
        """Execute the compiled repair against current shard contents."""
        rebuilder = self.rebuilder
        rebuilder.reset()
        geometry = self.geometry
        failed = self.failed_slot
        m = metrics()
        for w0, rows_by_slot, out_matrix, executor, refreshes, writeback in (
            self._waves
        ):
            for staging, source in refreshes:
                staging[:] = source
            rebuilder.repair_uniform_run(w0, rows_by_slot, out_matrix, executor)
            if writeback is not None:
                writeback[:] = out_matrix[:, : writeback.shape[1]]
            if m is not None:
                m.inc("pipeline.repair.compiled_waves")
        out_offsets = geometry.shard_offsets(failed)
        base = out_offsets[self.start]
        for t in self._tail:
            units = {}
            for slot, view in self.shard_views.items():
                if geometry.is_virtual(t, slot):
                    continue
                width = geometry.widths[t]
                stored = geometry.stored_size(t, slot)
                lo = geometry.shard_offsets(slot)[t]
                if stored == width:
                    units[slot] = view[lo : lo + width]
                else:
                    row = np.zeros(width, dtype=np.uint8)
                    row[:stored] = view[lo : lo + stored]
                    units[slot] = row
            rebuilt = rebuilder.repair_stripe(t, units)
            size = geometry.stored_size(t, failed)
            lo = out_offsets[t] - base
            self.out[lo : lo + size] = rebuilt[:size]
        return CompiledRepairStats(
            stripes=self.stop - self.start,
            bytes_read=rebuilder.bytes_read,
            rebuilt_bytes=self.out_size,
            crc_mismatches=rebuilder.crc_mismatches,
            quarantined=tuple(rebuilder.quarantined),
        )


def compile_file_repair(
    code: ErasureCode,
    shards: Mapping[int, object],
    failed_slot: int,
    block_size: int,
    file_size: int,
    **kwargs,
) -> CompiledFileRepair:
    """Compile a whole-file repair plan (see :class:`CompiledFileRepair`)."""
    return CompiledFileRepair(
        code, shards, failed_slot, block_size, file_size, **kwargs
    )


@dataclass
class FileRepairResult:
    """Outcome of :func:`repair_file`."""

    rebuilt: np.ndarray
    stripes: int
    bytes_read: int
    crc_mismatches: int
    quarantined: Tuple[Tuple[int, int], ...]
    parallel_used: bool
    shards: int
    retries: int = 0
    serial_fallback_shards: int = 0

    @property
    def rebuilt_bytes(self) -> int:
        return int(self.rebuilt.size)


@dataclass(frozen=True)
class _RepairShardTask:
    """Everything one worker needs to repair stripes [start, stop)."""

    shard: int
    in_name: str
    out_name: str
    code_blob: bytes
    checks_blob: bytes
    file_name: str
    file_size: int
    block_size: int
    failed_slot: int
    slots: Tuple[int, ...]
    in_offsets: Tuple[int, ...]
    start: int
    stop: int


def _worker_repair_shard(task: _RepairShardTask, attempt: int = 0):
    """Repair one stripe range of the shared shards (pickles cleanly).

    Returns ``(bytes_read, crc_mismatches, quarantined)``; the rebuilt
    bytes land at fixed offsets of the output segment, so retries are
    idempotent exactly like encode shards.
    """
    shm_in, shm_out = _attach_worker_shm(task.in_name, task.out_name)
    try:
        try:
            code: ErasureCode = pickle.loads(task.code_blob)
            checksums = pickle.loads(task.checks_blob)
            geometry = _ShardGeometry(
                code, task.file_name, task.file_size, task.block_size
            )
            base = np.ndarray((shm_in.size,), dtype=np.uint8, buffer=shm_in.buf)
            shards = {}
            for slot, offset in zip(task.slots, task.in_offsets):
                size = geometry.shard_size(slot)
                shards[slot] = base[offset : offset + size]
            offsets = geometry.shard_offsets(task.failed_slot)
            out = np.ndarray(
                (shm_out.size,), dtype=np.uint8, buffer=shm_out.buf
            )
            window = out[offsets[task.start] : offsets[task.stop]]
            compiled = CompiledFileRepair(
                code,
                shards,
                task.failed_slot,
                task.block_size,
                task.file_size,
                name=task.file_name,
                checksums=checksums,
                start=task.start,
                stop=task.stop,
                out=window,
            )
            stats = compiled.run()
        except (CorruptionError, RepairError):
            raise
        except Exception as exc:
            raise PipelineError(
                f"repair shard {task.shard} (stripes {task.start}.."
                f"{task.stop}) failed on the worker: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
    finally:
        shm_in.close()
        shm_out.close()
    return stats.bytes_read, stats.crc_mismatches, stats.quarantined


def repair_file(
    code: ErasureCode,
    shards: Mapping[int, object],
    failed_slot: int,
    block_size: int,
    file_size: int,
    *,
    name: str = "file",
    checksums: Optional[Mapping[int, Sequence[int]]] = None,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    progress_timeout: float = DEFAULT_PROGRESS_TIMEOUT,
) -> FileRepairResult:
    """Rebuild one failed shard of a whole file held in memory.

    Serial mode compiles the repair once (:class:`CompiledFileRepair`)
    and executes it; parallel mode shards the stripe ranges over the
    same self-healing process pool the encoder uses, with survivor
    shards and the rebuilt output in shared memory.  Both modes return
    byte-identical rebuilt bytes, equal to the streamed and batched
    repair paths.
    """
    geometry = _ShardGeometry(code, name, file_size, block_size)
    failed_slot = code.validate_node_index(failed_slot)
    with span("pipeline.repair_file"):
        result = _repair_file_impl(
            code,
            geometry,
            shards,
            failed_slot,
            block_size,
            file_size,
            name,
            checksums,
            parallel,
            max_workers,
            progress_timeout,
        )
    m = metrics()
    if m is not None:
        m.inc("pipeline.repair.files")
        m.inc("pipeline.repair.stripes", result.stripes)
        m.inc("pipeline.repair.rebuilt_bytes", result.rebuilt_bytes)
        m.inc("pipeline.repair.bytes_read", result.bytes_read)
        m.inc(
            "pipeline.repair.parallel_runs"
            if result.parallel_used
            else "pipeline.repair.serial_runs"
        )
    return result


def _repair_file_impl(
    code,
    geometry,
    shards,
    failed_slot,
    block_size,
    file_size,
    name,
    checksums,
    parallel,
    max_workers,
    progress_timeout,
) -> FileRepairResult:
    if not _decide_parallel(geometry.stripes, parallel):
        return _repair_file_serial(
            code, shards, failed_slot, block_size, file_size, name, checksums
        )
    result = _repair_file_pooled(
        code,
        geometry,
        shards,
        failed_slot,
        block_size,
        file_size,
        name,
        checksums,
        max_workers,
        progress_timeout,
    )
    if result is not None:
        return result
    get_logger("repro.pipeline").warning(
        "repair-pool-unavailable-serial-fallback",
        file=name,
        stripes=geometry.stripes,
    )
    return _repair_file_serial(
        code, shards, failed_slot, block_size, file_size, name, checksums
    )


def _repair_file_serial(
    code, shards, failed_slot, block_size, file_size, name, checksums
) -> FileRepairResult:
    compiled = CompiledFileRepair(
        code,
        shards,
        failed_slot,
        block_size,
        file_size,
        name=name,
        checksums=checksums,
    )
    stats = compiled.run()
    return FileRepairResult(
        rebuilt=compiled.out,
        stripes=stats.stripes,
        bytes_read=stats.bytes_read,
        crc_mismatches=stats.crc_mismatches,
        quarantined=stats.quarantined,
        parallel_used=False,
        shards=1,
    )


def _repair_file_pooled(
    code,
    geometry: _ShardGeometry,
    shards,
    failed_slot,
    block_size,
    file_size,
    name,
    checksums,
    max_workers,
    progress_timeout,
) -> Optional[FileRepairResult]:
    """Self-healing pooled repair; None when this host cannot pool."""
    from multiprocessing import shared_memory

    stripes = geometry.stripes
    slots = sorted(int(slot) for slot in shards if int(slot) != failed_slot)
    sizes = {slot: geometry.shard_size(slot) for slot in slots}
    in_offsets: Dict[int, int] = {}
    cursor = 0
    for slot in slots:
        in_offsets[slot] = cursor
        cursor += sizes[slot]
    out_offsets = geometry.shard_offsets(failed_slot)
    out_total = out_offsets[stripes]
    workers = max_workers or min(stripes, os.cpu_count() or 1)
    workers = max(1, min(workers, stripes))
    bounds = np.linspace(0, stripes, workers + 1).astype(int)
    code_blob = pickle.dumps(code)
    checks_blob = pickle.dumps(checksums)
    shm_in = shm_out = None
    try:
        shm_in = shared_memory.SharedMemory(create=True, size=max(1, cursor))
        shm_out = shared_memory.SharedMemory(
            create=True, size=max(1, out_total)
        )
        m = metrics()
        if m is not None:
            m.inc("pipeline.shm_created", 2)
            m.inc("pipeline.shm_bytes", max(1, cursor) + max(1, out_total))
        base = np.ndarray((max(1, cursor),), dtype=np.uint8, buffer=shm_in.buf)
        parent_views = {}
        for slot in slots:
            shard = shards[slot]
            view = (
                shard.reshape(-1).view(np.uint8)
                if isinstance(shard, np.ndarray)
                else np.frombuffer(memoryview(shard).cast("B"), dtype=np.uint8)
            )
            if view.size != sizes[slot]:
                raise RepairError(
                    f"shard for slot {slot} holds {view.size} bytes, "
                    f"expected {sizes[slot]}"
                )
            lo = in_offsets[slot]
            base[lo : lo + sizes[slot]] = view
            parent_views[slot] = base[lo : lo + sizes[slot]]
        spans = [
            (int(bounds[w]), int(bounds[w + 1]))
            for w in range(workers)
            if int(bounds[w]) < int(bounds[w + 1])
        ]
        tasks = [
            _RepairShardTask(
                shard=shard,
                in_name=shm_in.name,
                out_name=shm_out.name,
                code_blob=code_blob,
                checks_blob=checks_blob,
                file_name=name,
                file_size=int(file_size),
                block_size=int(block_size),
                failed_slot=int(failed_slot),
                slots=tuple(slots),
                in_offsets=tuple(in_offsets[slot] for slot in slots),
                start=start,
                stop=stop,
            )
            for shard, (start, stop) in enumerate(spans)
        ]

        def _repair_serially(task: _RepairShardTask):
            out = np.ndarray(
                (shm_out.size,), dtype=np.uint8, buffer=shm_out.buf
            )
            window = out[out_offsets[task.start] : out_offsets[task.stop]]
            compiled = CompiledFileRepair(
                code,
                parent_views,
                failed_slot,
                block_size,
                file_size,
                name=name,
                checksums=checksums,
                start=task.start,
                stop=task.stop,
                out=window,
            )
            stats = compiled.run()
            return stats.bytes_read, stats.crc_mismatches, stats.quarantined

        try:
            retries, serial_fallback_shards, results = (
                _run_shards_self_healing(
                    tasks,
                    _worker_repair_shard,
                    _repair_serially,
                    progress_timeout,
                )
            )
        except (OSError, PermissionError, ImportError):
            return None
        rebuilt = np.ndarray(
            (out_total,), dtype=np.uint8, buffer=shm_out.buf
        ).copy()
    except (OSError, PermissionError, ImportError):
        return None
    finally:
        m = metrics()
        for shm in (shm_in, shm_out):
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except (OSError, FileNotFoundError):
                    pass
                else:
                    if m is not None:
                        m.inc("pipeline.shm_unlinked")
    bytes_read = sum(int(value[0]) for value in results.values())
    crc_mismatches = sum(int(value[1]) for value in results.values())
    quarantined = tuple(
        sorted(entry for value in results.values() for entry in value[2])
    )
    return FileRepairResult(
        rebuilt=rebuilt,
        stripes=stripes,
        bytes_read=bytes_read,
        crc_mismatches=crc_mismatches,
        quarantined=quarantined,
        parallel_used=True,
        shards=len(tasks),
        retries=retries,
        serial_fallback_shards=serial_fallback_shards,
    )
