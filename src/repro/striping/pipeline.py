"""Shared-memory file-encode pipeline with self-healing workers.

Raiding a cold file (Section 2.1) is embarrassingly parallel across
stripes, but a naive process pool would pickle every 256 MiB of block
payload through the task queue and lose more than it gains.  This module
shards the stripes of one file across a :class:`ProcessPoolExecutor`
while keeping **all payload bytes in two** ``multiprocessing.shared_memory``
**segments** -- one holding the file, one receiving the parities.  The
only things pickled are the (tiny) shard descriptors: shm names, the
code object (fresh, empty caches), and stripe index ranges.

Workers rebuild their stripe layouts deterministically from the shared
file bytes (``chunk_bytes`` + ``group_into_stripes`` are pure functions
of the byte count), encode their contiguous stripe range through
:meth:`StripeCodec.encode_stripes` -- hitting the zero-copy ``(s, k, w)``
fast path directly on the shared segment -- and write parity units to
fixed per-stripe offsets.  Results are therefore byte-identical and
identically ordered whether the pipeline runs serial or parallel, with
any worker count -- **and under any fault schedule**: shard writes are
idempotent (fixed offsets, full overwrite), so a shard can be retried
any number of times without affecting the output.

Self-healing: each shard is an independently-tracked future with a
progress timeout.  A worker death (``BrokenProcessPool``) or a stalled
pool triggers a bounded retry with backoff on a fresh pool; after
:data:`MAX_POOL_DEATHS` pool losses the remaining shards are encoded
serially in-process, so ``encode_file`` returns correct bytes even when
every worker the OS gives us dies.  Both shared-memory segments are
unlinked on every exit path.  Worker-side Python errors are wrapped in
:class:`~repro.errors.PipelineError` naming the shard and stripe range
-- they indicate a real bug, not an infrastructure fault, and are
raised rather than retried.

Fault injection: pass a :class:`~repro.faults.FaultPlan` (or set
``REPRO_CHAOS`` -- see :meth:`~repro.faults.FaultPlan.from_env`) and
the plan's worker crashes (real ``os._exit`` in the pool process) and
straggler delays are injected into the shard schedule.  Because the
pipeline self-heals, chaotic output remains byte-identical to serial
output; the chaos tests assert exactly that.

Conventions match :mod:`repro.cluster.sweep` via the shared
:func:`repro.parallel.decide_parallel`: ``REPRO_PARALLEL=0`` forces
serial execution (junk values are rejected loudly), auto-detection
declines to spawn on single-CPU hosts, and sandboxes that refuse
process spawning or shared memory degrade to the serial path instead
of failing.
"""

from __future__ import annotations

import os
import pickle
import time as time_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.base import ErasureCode
from repro.errors import EncodingError, PipelineError
from repro.faults import FaultPlan
from repro.observability import get_logger, metrics, span
from repro.parallel import decide_parallel as _decide_parallel
from repro.striping.blocks import Block, LogicalFile, chunk_bytes
from repro.striping.codec import StripeCodec
from repro.striping.layout import StripeLayout, group_into_stripes

#: Pool losses tolerated before the remaining shards go serial.
MAX_POOL_DEATHS = 2

#: Default per-wait progress timeout (seconds).  Generous: it only
#: exists to unstick a genuinely hung pool, not to police slow shards.
DEFAULT_PROGRESS_TIMEOUT = 300.0

#: Backoff base between pool restarts (seconds, doubled per death).
RETRY_BACKOFF_SECONDS = 0.05


def _data_slot_lists(
    layouts: Sequence[StripeLayout], blocks: Sequence[Block]
) -> List[List[Optional[Block]]]:
    """Per-stripe data-slot lists (None for virtual slots), in order."""
    slot_lists: List[List[Optional[Block]]] = []
    cursor = 0
    for layout in layouts:
        slots: List[Optional[Block]] = []
        for block_id in layout.data_block_ids:
            if block_id is None:
                slots.append(None)
            else:
                slots.append(blocks[cursor])
                cursor += 1
        slot_lists.append(slots)
    return slot_lists


@dataclass
class EncodeResult:
    """Outcome of :func:`encode_file`.

    Attributes
    ----------
    file:
        The chunked logical file (blocks are views into the caller's
        data in serial mode, or into a private copy in parallel mode).
    layouts:
        One :class:`StripeLayout` per stripe, in file order.
    parities:
        ``parities[t]`` holds stripe ``t``'s ``r`` parity blocks.
    parallel_used, shards:
        Whether a process pool actually ran, and with how many shards
        (1 when serial) -- observability for the determinism tests and
        the benchmark harness.
    retries:
        Shard attempts beyond the first (pool deaths and stalls trigger
        resubmission on a fresh pool).
    serial_fallback_shards:
        Shards that were ultimately encoded in-process after the pool
        died :data:`MAX_POOL_DEATHS` times.
    """

    file: LogicalFile
    layouts: List[StripeLayout]
    parities: List[List[Block]]
    parallel_used: bool
    shards: int
    retries: int = 0
    serial_fallback_shards: int = 0

    @property
    def parity_bytes(self) -> int:
        return sum(p.size for row in self.parities for p in row)


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to encode stripes [start, stop)."""

    shard: int
    in_name: str
    out_name: str
    code_blob: bytes
    file_name: str
    file_size: int
    block_size: int
    start: int
    stop: int
    out_offsets: Tuple[int, ...]
    #: Chaos: crash (os._exit) while ``attempt < crash_attempts``.
    crash: bool = False
    crash_attempts: int = 0
    #: Chaos: straggler delay before encoding, in seconds.
    delay: float = 0.0


def _worker_encode_shard(task: _ShardTask, attempt: int = 0) -> int:
    """Encode one shard of the shared file (module-level so it pickles).

    Returns the shard index as a bare acknowledgement -- no payload
    bytes ever cross the task queue.  Output writes are idempotent
    (fixed offsets, full overwrite), so any attempt may be retried.
    """
    import multiprocessing
    from multiprocessing import resource_tracker, shared_memory

    if task.crash and attempt < task.crash_attempts:
        # Injected chaos: die the way a real worker dies -- no cleanup,
        # no exception, the parent just sees a broken pool.
        os._exit(17)
    if task.delay > 0:
        time_module.sleep(task.delay)

    shm_in = shared_memory.SharedMemory(name=task.in_name)
    shm_out = shared_memory.SharedMemory(name=task.out_name)
    try:
        # The parent owns both segments.  Under "spawn" each worker has
        # its own resource tracker, which would try to reclaim them at
        # worker exit -- undo the attach-time registration.  Under
        # "fork" the tracker process is shared with the parent and its
        # name cache is a set, so unregistering here would strip the
        # parent's own entry; leave it alone.
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            for shm in (shm_in, shm_out):
                try:
                    resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
                except (KeyError, ValueError, AttributeError):
                    # Unknown name / already unregistered / tracker API
                    # drift: the registration we are undoing is gone,
                    # which is the state we wanted.
                    pass
        try:
            code: ErasureCode = pickle.loads(task.code_blob)
            codec = StripeCodec(code)
            data = np.ndarray(
                (task.file_size,), dtype=np.uint8, buffer=shm_in.buf
            )
            file = chunk_bytes(task.file_name, data, block_size=task.block_size)
            layouts = group_into_stripes(
                file.blocks,
                code.k,
                code.r,
                stripe_prefix=f"{task.file_name}/stripe",
            )
            slot_lists = _data_slot_lists(layouts, file.blocks)
            parities = codec.encode_stripes(
                layouts[task.start : task.stop],
                slot_lists[task.start : task.stop],
            )
            out = np.ndarray(
                (shm_out.size,), dtype=np.uint8, buffer=shm_out.buf
            )
            for layout, offset, parity_blocks in zip(
                layouts[task.start : task.stop], task.out_offsets, parities
            ):
                width = codec.padded_width(layout)
                for j, parity in enumerate(parity_blocks):
                    out[offset + j * width : offset + (j + 1) * width] = (
                        parity.payload
                    )
        except Exception as exc:
            # A worker-side Python error is a real bug in the encode
            # path, not an infrastructure fault; surface it with the
            # shard context instead of a bare pickled traceback.
            raise PipelineError(
                f"shard {task.shard} (stripes {task.start}..{task.stop}) "
                f"failed on the worker: {type(exc).__name__}: {exc}"
            ) from exc
    finally:
        shm_in.close()
        shm_out.close()
    return task.shard


def encode_file(
    code: ErasureCode,
    data,
    block_size: int,
    *,
    name: str = "file",
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    progress_timeout: float = DEFAULT_PROGRESS_TIMEOUT,
) -> EncodeResult:
    """Chunk ``data`` into blocks and compute every stripe's parities.

    Serial mode encodes in-process through the codec's fused batch path
    (zero staging copies for the full stripes).  Parallel mode shards
    the stripes over a process pool with payloads in shared memory,
    retrying dead or stalled pools and falling back to in-process
    encoding if the pool keeps dying.  Both modes return byte-identical
    parities in file order.

    ``fault_plan`` injects worker crashes and straggler delays into the
    pooled path (``None`` consults ``REPRO_CHAOS``); the self-healing
    machinery must still produce identical bytes.  ``progress_timeout``
    bounds how long a wave may go without any shard completing before
    the pool is declared stuck.
    """
    if block_size <= 0:
        raise EncodingError(f"block size must be positive, got {block_size}")
    if progress_timeout <= 0:
        raise EncodingError(
            f"progress timeout must be positive, got {progress_timeout}"
        )
    data = np.ascontiguousarray(
        np.asarray(data, dtype=np.uint8).reshape(-1)
    )
    with span("pipeline.encode_file"):
        result = _encode_file_impl(
            code,
            data,
            block_size,
            name,
            parallel,
            max_workers,
            fault_plan,
            progress_timeout,
        )
    m = metrics()
    if m is not None:
        m.inc("pipeline.files")
        m.inc("pipeline.data_bytes", int(data.size))
        m.inc("pipeline.stripes", len(result.layouts))
        m.inc("pipeline.shards", result.shards)
        m.inc("pipeline.retries", result.retries)
        m.inc(
            "pipeline.serial_fallback_shards", result.serial_fallback_shards
        )
        m.inc(
            "pipeline.parallel_runs"
            if result.parallel_used
            else "pipeline.serial_runs"
        )
    return result


def _encode_file_impl(
    code: ErasureCode,
    data: np.ndarray,
    block_size: int,
    name: str,
    parallel: Optional[bool],
    max_workers: Optional[int],
    fault_plan: Optional[FaultPlan],
    progress_timeout: float,
) -> EncodeResult:
    file = chunk_bytes(name, data, block_size=block_size)
    layouts = group_into_stripes(
        file.blocks, code.k, code.r, stripe_prefix=f"{name}/stripe"
    )
    slot_lists = _data_slot_lists(layouts, file.blocks)
    stripes = len(layouts)
    if not _decide_parallel(stripes, parallel):
        codec = StripeCodec(code)
        parities = codec.encode_stripes(layouts, slot_lists)
        return EncodeResult(file, layouts, parities, False, 1)
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    result = _encode_file_pooled(
        code,
        data,
        block_size,
        name,
        file,
        layouts,
        max_workers,
        fault_plan,
        progress_timeout,
    )
    if result is not None:
        return result
    # Pool or shared memory unavailable: degrade to serial.
    get_logger("repro.pipeline").warning(
        "pool-unavailable-serial-fallback", file=name, stripes=stripes
    )
    codec = StripeCodec(code)
    parities = codec.encode_stripes(layouts, slot_lists)
    return EncodeResult(file, layouts, parities, False, 1)


def _encode_shard_serially(
    task: _ShardTask,
    code: ErasureCode,
    layouts: List[StripeLayout],
    slot_lists: List[List[Optional[Block]]],
    out: np.ndarray,
) -> None:
    """In-process fallback: encode one shard into the output buffer.

    Uses the parent's already-chunked layouts/blocks and the same fixed
    offsets a worker would have written, so the result is
    indistinguishable from a pooled shard.
    """
    codec = StripeCodec(code)
    parities = codec.encode_stripes(
        layouts[task.start : task.stop], slot_lists[task.start : task.stop]
    )
    for layout, offset, parity_blocks in zip(
        layouts[task.start : task.stop], task.out_offsets, parities
    ):
        width = codec.padded_width(layout)
        for j, parity in enumerate(parity_blocks):
            out[offset + j * width : offset + (j + 1) * width] = parity.payload


def _encode_file_pooled(
    code: ErasureCode,
    data: np.ndarray,
    block_size: int,
    name: str,
    file: LogicalFile,
    layouts: List[StripeLayout],
    max_workers: Optional[int],
    fault_plan: Optional[FaultPlan],
    progress_timeout: float,
) -> Optional[EncodeResult]:
    """Self-healing process-pool encode; None when this host cannot
    run a pool at all (no shared memory / no process spawning)."""
    from multiprocessing import shared_memory

    codec = StripeCodec(code)
    widths = [codec.padded_width(layout) for layout in layouts]
    offsets = np.concatenate(
        ([0], np.cumsum([code.r * width for width in widths]))
    ).astype(np.int64)
    out_total = int(offsets[-1])
    stripes = len(layouts)
    workers = max_workers or min(stripes, os.cpu_count() or 1)
    workers = max(1, min(workers, stripes))
    bounds = np.linspace(0, stripes, workers + 1).astype(int)
    code_blob = pickle.dumps(code)  # __getstate__ drops memoised caches
    shm_in = shm_out = None
    retries = 0
    serial_fallback_shards = 0
    try:
        shm_in = shared_memory.SharedMemory(
            create=True, size=max(1, data.size)
        )
        shm_out = shared_memory.SharedMemory(
            create=True, size=max(1, out_total)
        )
        m = metrics()
        if m is not None:
            m.inc("pipeline.shm_created", 2)
            m.inc(
                "pipeline.shm_bytes", max(1, data.size) + max(1, out_total)
            )
        np.ndarray((data.size,), dtype=np.uint8, buffer=shm_in.buf)[:] = data
        spans = [
            (int(bounds[w]), int(bounds[w + 1]))
            for w in range(workers)
            if int(bounds[w]) < int(bounds[w + 1])
        ]
        shard_faults = (
            fault_plan.worker_faults(len(spans))
            if fault_plan is not None
            else None
        )
        tasks = []
        for shard, (start, stop) in enumerate(spans):
            fault = shard_faults[shard] if shard_faults is not None else None
            tasks.append(
                _ShardTask(
                    shard=shard,
                    in_name=shm_in.name,
                    out_name=shm_out.name,
                    code_blob=code_blob,
                    file_name=name,
                    file_size=int(data.size),
                    block_size=block_size,
                    start=start,
                    stop=stop,
                    out_offsets=tuple(
                        int(offsets[t]) for t in range(start, stop)
                    ),
                    crash=fault.crash if fault is not None else False,
                    crash_attempts=(
                        fault_plan.crash_attempts
                        if fault is not None and fault.crash
                        else 0
                    ),
                    delay=fault.delay if fault is not None else 0.0,
                )
            )
        try:
            retries, serial_fallback_shards = _run_shards_self_healing(
                tasks, layouts, file, code, shm_out, progress_timeout
            )
        except (OSError, PermissionError, ImportError):
            return None
        parity_bytes = np.ndarray(
            (out_total,), dtype=np.uint8, buffer=shm_out.buf
        ).copy()
    except (OSError, PermissionError, ImportError):
        return None
    finally:
        m = metrics()
        for shm in (shm_in, shm_out):
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except (OSError, FileNotFoundError):
                    pass
                else:
                    if m is not None:
                        m.inc("pipeline.shm_unlinked")
    parities: List[List[Block]] = []
    for t, layout in enumerate(layouts):
        width = widths[t]
        row = []
        for j in range(code.r):
            lo = int(offsets[t]) + j * width
            row.append(
                Block(
                    block_id=layout.parity_block_ids[j],
                    size=width,
                    payload=parity_bytes[lo : lo + width],
                )
            )
        parities.append(row)
    return EncodeResult(
        file,
        layouts,
        parities,
        True,
        len(tasks),
        retries=retries,
        serial_fallback_shards=serial_fallback_shards,
    )


def _run_shards_self_healing(
    tasks: List[_ShardTask],
    layouts: List[StripeLayout],
    file: LogicalFile,
    code: ErasureCode,
    shm_out,
    progress_timeout: float,
) -> Tuple[int, int]:
    """Run every shard to completion, surviving pool deaths and stalls.

    Returns ``(retries, serial_fallback_shards)``.  Raises
    :class:`PipelineError` for worker-side Python errors (bugs are not
    retried) and propagates pool-creation failures to the caller's
    degrade-to-serial handling.
    """
    pending: Dict[int, int] = {task.shard: 0 for task in tasks}  # shard -> attempt
    by_shard = {task.shard: task for task in tasks}
    retries = 0
    pool_deaths = 0
    pool: Optional[ProcessPoolExecutor] = None
    futures: Dict[object, int] = {}
    submit_times: Dict[object, float] = {}
    m = metrics()

    def _restart_pool() -> None:
        """Kill the pool; every still-pending shard becomes a retry."""
        nonlocal pool, pool_deaths, retries
        assert pool is not None
        pool.shutdown(wait=False, cancel_futures=True)
        pool = None
        futures.clear()
        submit_times.clear()
        pool_deaths += 1
        for shard in pending:
            pending[shard] += 1
            retries += 1
        if m is not None:
            m.inc("pipeline.pool_rebuilds")
            m.inc("pipeline.shard_retries", len(pending))
        time_module.sleep(RETRY_BACKOFF_SECONDS * (2 ** (pool_deaths - 1)))

    try:
        while pending:
            if pool_deaths >= MAX_POOL_DEATHS:
                # The pool has died repeatedly: stop trusting workers
                # and finish the remaining shards in-process.  Shard
                # writes are idempotent, so partially-encoded shards
                # are simply overwritten.
                get_logger("repro.pipeline").warning(
                    "pool-deaths-exhausted-serial-fallback",
                    pool_deaths=pool_deaths,
                    remaining_shards=len(pending),
                )
                slot_lists = _data_slot_lists(layouts, file.blocks)
                out = np.ndarray(
                    (shm_out.size,), dtype=np.uint8, buffer=shm_out.buf
                )
                for shard in sorted(pending):
                    _encode_shard_serially(
                        by_shard[shard], code, layouts, slot_lists, out
                    )
                serial_count = len(pending)
                pending.clear()
                return retries, serial_count
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=len(pending))
                futures = {
                    pool.submit(
                        _worker_encode_shard, by_shard[shard], attempt
                    ): shard
                    for shard, attempt in sorted(pending.items())
                }
                if m is not None:
                    now = time_module.perf_counter()
                    for future in futures:
                        submit_times[future] = now
            done, __ = wait(
                futures, timeout=progress_timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # No shard finished inside the window: the pool is
                # stuck.  Kill it and retry what is left.
                if m is not None:
                    m.inc("pipeline.pool_stalls")
                get_logger("repro.pipeline").warning(
                    "pool-stalled",
                    timeout_seconds=progress_timeout,
                    pending_shards=len(pending),
                )
                _restart_pool()
                continue
            broken = False
            for future in done:
                shard = futures.pop(future)
                error = future.exception()
                if error is None:
                    pending.pop(shard, None)
                    if m is not None:
                        started = submit_times.pop(future, None)
                        if started is not None:
                            m.observe(
                                "pipeline.shard_seconds",
                                time_module.perf_counter() - started,
                            )
                elif isinstance(error, PipelineError):
                    raise error
                elif isinstance(error, BrokenProcessPool):
                    broken = True
                else:
                    raise PipelineError(
                        f"shard {shard} failed in the pool: "
                        f"{type(error).__name__}: {error}"
                    ) from error
            if broken:
                # A worker died; every sibling future on this pool is
                # (or will be) broken too.  Restart from scratch with
                # whatever is still pending.
                _restart_pool()
        return retries, 0
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
