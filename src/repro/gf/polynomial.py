"""Univariate polynomials over GF(2^8).

Reed-Solomon codes are, in their classical presentation, evaluations of a
degree < k message polynomial at k + r distinct points; decoding from any k
symbols is Lagrange interpolation.  The matrix formulation in
:mod:`repro.codes.rs` is what the bulk data path uses, but this module
provides the polynomial view for cross-validation in tests and for
completeness of the substrate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import FieldError
from repro.gf.field import DEFAULT_FIELD, GF256


class GFPolynomial:
    """A polynomial over GF(2^8), stored as a coefficient list.

    ``coefficients[i]`` is the coefficient of ``x**i``.  The zero
    polynomial is represented by an empty coefficient list and has degree
    -1 by convention.
    """

    def __init__(
        self,
        coefficients: Iterable[int] = (),
        field: Optional[GF256] = None,
    ):
        self.field = field if field is not None else DEFAULT_FIELD
        coeffs: List[int] = [int(c) for c in coefficients]
        for c in coeffs:
            if not 0 <= c <= 255:
                raise FieldError(f"coefficient {c} outside GF(256)")
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        self.coefficients: List[int] = coeffs

    # ------------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial; -1 for the zero polynomial."""
        return len(self.coefficients) - 1

    def is_zero(self) -> bool:
        return not self.coefficients

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GFPolynomial)
            and self.coefficients == other.coefficients
            and self.field == other.field
        )

    def __hash__(self) -> int:
        return hash((tuple(self.coefficients), self.field))

    def __repr__(self) -> str:
        return f"GFPolynomial({self.coefficients})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: "GFPolynomial") -> "GFPolynomial":
        longer, shorter = self.coefficients, other.coefficients
        if len(longer) < len(shorter):
            longer, shorter = shorter, longer
        summed = list(longer)
        for i, c in enumerate(shorter):
            summed[i] ^= c
        return GFPolynomial(summed, self.field)

    # Subtraction is addition in characteristic 2.
    __sub__ = __add__

    def __mul__(self, other: "GFPolynomial") -> "GFPolynomial":
        if self.is_zero() or other.is_zero():
            return GFPolynomial((), self.field)
        gf = self.field
        product = [0] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            if not a:
                continue
            for j, b in enumerate(other.coefficients):
                if b:
                    product[i + j] ^= gf.mul(a, b)
        return GFPolynomial(product, self.field)

    def scale(self, scalar: int) -> "GFPolynomial":
        """Multiply every coefficient by a field scalar."""
        gf = self.field
        return GFPolynomial(
            (gf.mul(scalar, c) for c in self.coefficients), self.field
        )

    def divmod(self, divisor: "GFPolynomial"):
        """Polynomial long division; returns ``(quotient, remainder)``."""
        if divisor.is_zero():
            raise FieldError("polynomial division by zero")
        gf = self.field
        remainder = list(self.coefficients)
        quotient = [0] * max(len(remainder) - divisor.degree, 0)
        lead_inv = gf.inv(divisor.coefficients[-1])
        for shift in range(len(remainder) - divisor.degree - 1, -1, -1):
            factor = gf.mul(remainder[shift + divisor.degree], lead_inv)
            if factor:
                quotient[shift] = factor
                for i, c in enumerate(divisor.coefficients):
                    remainder[shift + i] ^= gf.mul(factor, c)
        return (
            GFPolynomial(quotient, self.field),
            GFPolynomial(remainder, self.field),
        )

    def __floordiv__(self, divisor: "GFPolynomial") -> "GFPolynomial":
        return self.divmod(divisor)[0]

    def __mod__(self, divisor: "GFPolynomial") -> "GFPolynomial":
        return self.divmod(divisor)[1]

    # ------------------------------------------------------------------
    # Evaluation and interpolation
    # ------------------------------------------------------------------

    def evaluate(self, x: int) -> int:
        """Evaluate the polynomial at a point via Horner's rule."""
        gf = self.field
        result = 0
        for c in reversed(self.coefficients):
            result = gf.add(gf.mul(result, x), c)
        return int(result)

    def evaluate_many(self, xs: Sequence[int]) -> np.ndarray:
        """Evaluate at several points; returns a ``uint8`` array."""
        return np.array([self.evaluate(int(x)) for x in xs], dtype=np.uint8)

    @classmethod
    def interpolate(
        cls,
        xs: Sequence[int],
        ys: Sequence[int],
        field: Optional[GF256] = None,
    ) -> "GFPolynomial":
        """Lagrange interpolation through ``(xs[i], ys[i])`` points.

        The ``xs`` must be distinct; the result has degree < ``len(xs)``.
        """
        gf = field if field is not None else DEFAULT_FIELD
        if len(xs) != len(ys):
            raise FieldError("interpolate needs equally many x and y values")
        if len(set(int(x) for x in xs)) != len(xs):
            raise FieldError("interpolation points must be distinct")
        total = cls((), gf)
        for i, (xi, yi) in enumerate(zip(xs, ys)):
            if not yi:
                continue
            # Basis polynomial: prod_{j != i} (x + x_j) / (x_i + x_j).
            basis = cls((1,), gf)
            denominator = 1
            for j, xj in enumerate(xs):
                if j == i:
                    continue
                basis = basis * cls((int(xj), 1), gf)
                denominator = gf.mul(denominator, gf.add(int(xi), int(xj)))
            scalar = gf.mul(int(yi), gf.inv(denominator))
            total = total + basis.scale(scalar)
        return total
