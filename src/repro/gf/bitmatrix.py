"""Bit-matrix representation of GF(2^8) operations (Cauchy-RS technique).

Production Reed-Solomon codecs (Jerasure's Cauchy-RS, the HDFS-RAID
lineage) often avoid field multiplications entirely: every GF(2^8)
element ``e`` acts on the 8-bit vector space as an 8x8 binary matrix
``M(e)``, so a generator matrix over GF(2^8) expands to a binary matrix
and encoding becomes pure XOR of bit *strips* -- each unit is split into
8 equal packets and parity packets are XORs of selected data packets.

This module provides the expansion and the strip scheduling;
:mod:`repro.codes.crs` builds a full erasure code on top.  The matrices
act on vectors ``v`` whose bit ``j`` is packet ``j``:

    bits(e * v) = M(e) @ bits(v)   over GF(2),

with column ``j`` of ``M(e)`` equal to ``bits(e * x^j)``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import FieldError
from repro.gf.field import DEFAULT_FIELD, GF256

#: Bits per field element / packets per unit.
W = 8


def element_to_bitmatrix(
    element: int, field: Optional[GF256] = None
) -> np.ndarray:
    """The 8x8 GF(2) matrix of multiplication by ``element``.

    Row ``i``, column ``j`` is bit ``i`` of ``element * x^j``.
    """
    gf = field if field is not None else DEFAULT_FIELD
    element = int(element)
    if not 0 <= element <= 255:
        raise FieldError(f"element {element} outside GF(256)")
    matrix = np.zeros((W, W), dtype=np.uint8)
    for j in range(W):
        product = gf.mul(element, 1 << j)
        for i in range(W):
            matrix[i, j] = (product >> i) & 1
    return matrix


def expand_generator(
    generator: np.ndarray, field: Optional[GF256] = None
) -> np.ndarray:
    """Expand an ``(n, k)`` GF(2^8) matrix to ``(8n, 8k)`` over GF(2)."""
    generator = np.asarray(generator, dtype=np.uint8)
    if generator.ndim != 2:
        raise FieldError(f"expected 2-d generator, got shape {generator.shape}")
    rows, cols = generator.shape
    expanded = np.zeros((rows * W, cols * W), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            expanded[i * W : (i + 1) * W, j * W : (j + 1) * W] = (
                element_to_bitmatrix(int(generator[i, j]), field)
            )
    return expanded


def verify_bitmatrix_action(
    element: int, value: int, field: Optional[GF256] = None
) -> bool:
    """Cross-check: M(e) @ bits(v) == bits(e * v).  Used by tests."""
    gf = field if field is not None else DEFAULT_FIELD
    matrix = element_to_bitmatrix(element, field)
    bits = np.array([(value >> i) & 1 for i in range(W)], dtype=np.uint8)
    product_bits = matrix @ bits % 2
    product = sum(int(b) << i for i, b in enumerate(product_bits))
    return product == gf.mul(element, value)


def strip_schedule(expanded_row: np.ndarray) -> List[int]:
    """Source strip indices XORed to produce one output strip.

    ``expanded_row`` is one row of the expanded binary generator; the
    schedule lists the set bit positions (input strip indices).
    """
    return [int(i) for i in np.flatnonzero(expanded_row)]


def xor_encode_strips(
    expanded: np.ndarray, strips: np.ndarray
) -> np.ndarray:
    """Apply a binary matrix to a stack of strips by pure XOR.

    Parameters
    ----------
    expanded:
        ``(out_strips, in_strips)`` binary matrix.
    strips:
        ``(in_strips, strip_len)`` uint8 payload strips.

    Returns
    -------
    ``(out_strips, strip_len)`` output strips.
    """
    expanded = np.asarray(expanded, dtype=np.uint8)
    strips = np.asarray(strips, dtype=np.uint8)
    if expanded.shape[1] != strips.shape[0]:
        raise FieldError(
            f"matrix of {expanded.shape[1]} inputs cannot consume "
            f"{strips.shape[0]} strips"
        )
    out = np.zeros((expanded.shape[0], strips.shape[1]), dtype=np.uint8)
    for row_index in range(expanded.shape[0]):
        sources = np.flatnonzero(expanded[row_index])
        if sources.size:
            np.bitwise_xor.reduce(strips[sources], axis=0, out=out[row_index])
    return out


def xor_count(expanded: np.ndarray) -> int:
    """Total XOR operations per strip-length of an encoding schedule.

    The classic Cauchy-RS cost metric: ones in the parity rows minus one
    per non-empty row (the first source is a copy, not an XOR).
    """
    expanded = np.asarray(expanded, dtype=np.uint8)
    ones = int(expanded.sum())
    nonempty_rows = int((expanded.sum(axis=1) > 0).sum())
    return max(ones - nonempty_rows, 0)
