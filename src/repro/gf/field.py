"""Vectorised GF(2^8) field operations.

:class:`GF256` wraps the log/antilog tables from :mod:`repro.gf.tables`
and exposes element-wise field arithmetic on numpy ``uint8`` arrays (and on
plain ints, which are treated as 0-d arrays).  Addition in GF(2^8) is XOR;
multiplication and division are table lookups.

A single module-level :data:`DEFAULT_FIELD` instance (the ``0x11D`` field)
is shared by all codes in the library, so the tables are built exactly once
per process.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import FieldError
from repro.gf import tables

ArrayLike = Union[int, np.ndarray]


class GF256:
    """Arithmetic in GF(2^8) with numpy-vectorised operations.

    Parameters
    ----------
    primitive_poly:
        Irreducible modulus polynomial (see
        :data:`repro.gf.tables.DEFAULT_PRIMITIVE_POLY`).

    Notes
    -----
    All binary operations accept ints or ``uint8`` arrays and broadcast
    like numpy.  Results are returned as ``uint8`` arrays (or Python ints
    when both operands are scalars), values always in ``[0, 255]``.
    """

    def __init__(self, primitive_poly: int = tables.DEFAULT_PRIMITIVE_POLY):
        self.primitive_poly = primitive_poly
        self._exp, self._log = tables.build_tables(primitive_poly)
        # Inverse table: inv[a] = a^(254) = exp[255 - log[a]].
        self._inv = np.zeros(tables.FIELD_SIZE, dtype=np.uint8)
        for a in range(1, tables.FIELD_SIZE):
            self._inv[a] = self._exp[tables.GROUP_ORDER - self._log[a]]

    # ------------------------------------------------------------------
    # Normalisation helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _as_array(value: ArrayLike) -> np.ndarray:
        arr = np.asarray(value)
        if arr.dtype != np.uint8:
            if np.any((arr < 0) | (arr > 255)):
                raise FieldError(
                    "GF(256) elements must be integers in [0, 255]"
                )
            arr = arr.astype(np.uint8)
        return arr

    @staticmethod
    def _maybe_scalar(result: np.ndarray, *operands: ArrayLike):
        if all(np.isscalar(op) or np.ndim(op) == 0 for op in operands):
            return int(result)
        return result

    # ------------------------------------------------------------------
    # Field operations
    # ------------------------------------------------------------------

    def add(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Element-wise field addition (XOR)."""
        result = np.bitwise_xor(self._as_array(a), self._as_array(b))
        return self._maybe_scalar(result, a, b)

    # Subtraction equals addition in characteristic 2.
    sub = add

    def mul(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Element-wise field multiplication via log/antilog tables."""
        arr_a = self._as_array(a)
        arr_b = self._as_array(b)
        logs = self._log[arr_a] + self._log[arr_b]
        result = self._exp[logs]
        zero_mask = (arr_a == 0) | (arr_b == 0)
        result = np.where(zero_mask, np.uint8(0), result)
        return self._maybe_scalar(result, a, b)

    def div(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Element-wise field division ``a / b``.

        Raises
        ------
        FieldError
            If any element of ``b`` is zero.
        """
        arr_a = self._as_array(a)
        arr_b = self._as_array(b)
        if np.any(arr_b == 0):
            raise FieldError("division by zero in GF(256)")
        logs = self._log[arr_a] - self._log[arr_b] + tables.GROUP_ORDER
        result = self._exp[logs]
        result = np.where(arr_a == 0, np.uint8(0), result)
        return self._maybe_scalar(result, a, b)

    def inv(self, a: ArrayLike) -> ArrayLike:
        """Element-wise multiplicative inverse.

        Raises
        ------
        FieldError
            If any element is zero.
        """
        arr = self._as_array(a)
        if np.any(arr == 0):
            raise FieldError("zero has no multiplicative inverse in GF(256)")
        result = self._inv[arr]
        return self._maybe_scalar(result, a)

    def pow(self, a: ArrayLike, exponent: int) -> ArrayLike:
        """Element-wise exponentiation ``a ** exponent``.

        Negative exponents are supported for non-zero bases.  ``0 ** 0``
        is defined as 1 (the empty product), matching polynomial
        evaluation conventions.
        """
        arr = self._as_array(a)
        exponent = int(exponent)
        if exponent == 0:
            result = np.ones_like(arr)
            return self._maybe_scalar(result, a)
        if exponent < 0:
            return self.pow(self.inv(arr), -exponent)
        logs = (self._log[arr].astype(np.int64) * exponent) % tables.GROUP_ORDER
        result = self._exp[logs]
        result = np.where(arr == 0, np.uint8(0), result)
        return self._maybe_scalar(result, a)

    def exp(self, power: ArrayLike) -> ArrayLike:
        """Return the generator (element 2) raised to ``power``."""
        powers = np.asarray(power, dtype=np.int64) % tables.GROUP_ORDER
        result = self._exp[powers]
        return self._maybe_scalar(result, power)

    def log(self, a: ArrayLike) -> ArrayLike:
        """Discrete logarithm base 2 of non-zero elements.

        Raises
        ------
        FieldError
            If any element is zero.
        """
        arr = self._as_array(a)
        if np.any(arr == 0):
            raise FieldError("log of zero is undefined in GF(256)")
        result = self._log[arr]
        if all(np.isscalar(op) or np.ndim(op) == 0 for op in (a,)):
            return int(result)
        return result

    # ------------------------------------------------------------------
    # Bulk helpers used by the codecs
    # ------------------------------------------------------------------

    def scale(self, coefficient: int, payload: np.ndarray) -> np.ndarray:
        """Multiply every byte of ``payload`` by a scalar coefficient.

        This is the inner loop of systematic encoding: a parity byte
        stream is a linear combination of data byte streams.  A scalar of
        0 returns zeros; a scalar of 1 returns a copy.
        """
        payload = self._as_array(payload)
        coefficient = int(coefficient)
        if not 0 <= coefficient <= 255:
            raise FieldError("coefficient must be in [0, 255]")
        if coefficient == 0:
            return np.zeros_like(payload)
        if coefficient == 1:
            return payload.copy()
        logs = self._log[payload] + self._log[coefficient]
        result = self._exp[logs]
        return np.where(payload == 0, np.uint8(0), result)

    def addmul(
        self, accumulator: np.ndarray, coefficient: int, payload: np.ndarray
    ) -> None:
        """In-place ``accumulator ^= coefficient * payload``.

        ``accumulator`` must be a ``uint8`` array of the same shape as
        ``payload``.  This fused operation is what block encoders loop
        over, one data block per iteration.
        """
        if accumulator.shape != np.shape(payload):
            raise FieldError("addmul operands must have identical shapes")
        np.bitwise_xor(
            accumulator, self.scale(coefficient, payload), out=accumulator
        )

    def dot(self, coefficients: np.ndarray, payloads: np.ndarray) -> np.ndarray:
        """Linear combination of byte streams.

        Parameters
        ----------
        coefficients:
            1-d array of ``n`` field scalars.
        payloads:
            2-d array of shape ``(n, length)``; row ``i`` is a byte
            stream.

        Returns
        -------
        The byte stream ``sum_i coefficients[i] * payloads[i]``.
        """
        coefficients = self._as_array(coefficients)
        payloads = self._as_array(payloads)
        if payloads.ndim != 2 or coefficients.ndim != 1:
            raise FieldError("dot expects a 1-d coefficient vector and 2-d payloads")
        if coefficients.shape[0] != payloads.shape[0]:
            raise FieldError(
                f"coefficient count {coefficients.shape[0]} does not match "
                f"payload count {payloads.shape[0]}"
            )
        result = np.zeros(payloads.shape[1], dtype=np.uint8)
        for coefficient, payload in zip(coefficients, payloads):
            self.addmul(result, int(coefficient), payload)
        return result

    def __repr__(self) -> str:
        return f"GF256(primitive_poly={self.primitive_poly:#x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF256)
            and other.primitive_poly == self.primitive_poly
        )

    def __hash__(self) -> int:
        return hash(("GF256", self.primitive_poly))


#: Shared default field instance (modulus ``0x11D``).
DEFAULT_FIELD = GF256()
