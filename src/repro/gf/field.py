"""Vectorised GF(2^8) field operations.

:class:`GF256` wraps the log/antilog tables from :mod:`repro.gf.tables`
and exposes element-wise field arithmetic on numpy ``uint8`` arrays (and on
plain ints, which are treated as 0-d arrays).  Addition in GF(2^8) is XOR;
multiplication is a single gather into a precomputed 256x256 product
table (64 KiB per field), which is zero-correct by construction and needs
no masking passes.  The log/antilog path is retained as the reference
implementation (``mul_reference``, ``scale_reference``, ``dot_reference``)
that property tests compare the table-driven kernels against.

The bulk kernels (:meth:`GF256.scale`, :meth:`GF256.dot`,
:meth:`GF256.matmul`) accept preallocated ``out=`` buffers and process
payloads in cache-sized chunks so the gather + XOR-reduce stays hot in L2.

A single module-level :data:`DEFAULT_FIELD` instance (the ``0x11D`` field)
is shared by all codes in the library, so the tables are built exactly once
per process.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import FieldError
from repro.gf import tables

ArrayLike = Union[int, np.ndarray]

#: Chunk length (bytes) for the fused gather-then-XOR kernels.  256 KiB
#: keeps the scratch buffer plus the accumulator slice resident in L2
#: while amortising the Python-level loop over megabyte payloads.
KERNEL_CHUNK = 1 << 18

#: Minimum payload bytes before :meth:`GF256.scale` / :meth:`GF256.dot`
#: / :meth:`GF256.matmul` divert to a native kernel backend
#: (:mod:`repro.gf.backends`).  Below this the FFI pointer marshalling
#: costs more than the SIMD win; the numpy kernels handle small inputs.
NATIVE_MIN_BYTES = 1 << 12


def _native_backend_for(*arrays: np.ndarray, row_views: bool = False):
    """The active native backend when every array qualifies, else None.

    Qualification: ``uint8`` dtype, C-contiguous layout, and at least
    :data:`NATIVE_MIN_BYTES` of payload in the last array (the one
    whose length drives the kernel).  With ``row_views=True`` a 2-d
    array only needs each *row* to be a contiguous byte run
    (``strides[-1] == 1``) -- the backend kernels consume per-row
    pointers, so column-sliced views like ``data[:, :half]`` (the
    piggyback substripe projections) dispatch natively instead of
    falling back to the numpy gathers.  Callers that flatten whole
    arrays (``scale``) must keep the strict check.  The numpy code
    paths below remain byte-identical oracles for whatever this
    declines.
    """
    for array in arrays:
        if array.dtype != np.uint8:
            return None
        if array.flags.c_contiguous:
            continue
        if not (
            row_views
            and array.ndim == 2
            and (array.shape[-1] <= 1 or array.strides[-1] == array.itemsize)
        ):
            return None
    if arrays and arrays[-1].size < NATIVE_MIN_BYTES:
        return None
    from repro.gf import backends

    return backends.native_backend()


class GF256:
    """Arithmetic in GF(2^8) with numpy-vectorised operations.

    Parameters
    ----------
    primitive_poly:
        Irreducible modulus polynomial (see
        :data:`repro.gf.tables.DEFAULT_PRIMITIVE_POLY`).

    Notes
    -----
    All binary operations accept ints or ``uint8`` arrays and broadcast
    like numpy.  Results are returned as ``uint8`` arrays (or Python ints
    when both operands are scalars), values always in ``[0, 255]``.
    """

    def __init__(self, primitive_poly: int = tables.DEFAULT_PRIMITIVE_POLY):
        self.primitive_poly = primitive_poly
        self._exp, self._log = tables.build_tables(primitive_poly)
        # Inverse table: inv[a] = a^(254) = exp[255 - log[a]].
        self._inv = np.zeros(tables.FIELD_SIZE, dtype=np.uint8)
        for a in range(1, tables.FIELD_SIZE):
            self._inv[a] = self._exp[tables.GROUP_ORDER - self._log[a]]
        # Full 256x256 product table: one gather per multiply, zero rows
        # and columns included so no mask pass is ever needed.
        self._prod = tables.build_product_table(self._exp, self._log)
        self._prod.setflags(write=False)

    # ------------------------------------------------------------------
    # Normalisation helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _as_array(value: ArrayLike) -> np.ndarray:
        arr = np.asarray(value)
        if arr.dtype != np.uint8:
            if np.any((arr < 0) | (arr > 255)):
                raise FieldError(
                    "GF(256) elements must be integers in [0, 255]"
                )
            arr = arr.astype(np.uint8)
        return arr

    @staticmethod
    def _maybe_scalar(result: np.ndarray, *operands: ArrayLike):
        if all(np.isscalar(op) or np.ndim(op) == 0 for op in operands):
            return int(result)
        return result

    # ------------------------------------------------------------------
    # Field operations
    # ------------------------------------------------------------------

    def add(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Element-wise field addition (XOR)."""
        result = np.bitwise_xor(self._as_array(a), self._as_array(b))
        return self._maybe_scalar(result, a, b)

    # Subtraction equals addition in characteristic 2.
    sub = add

    def mul(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Element-wise field multiplication: one product-table gather."""
        arr_a = self._as_array(a)
        arr_b = self._as_array(b)
        result = self._prod[arr_a, arr_b]
        return self._maybe_scalar(result, a, b)

    def mul_reference(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Reference multiply via the log/antilog path with zero masking.

        Kept (not used on any hot path) so property tests can assert the
        product-table kernel is byte-identical to the textbook route.
        """
        arr_a = self._as_array(a)
        arr_b = self._as_array(b)
        logs = self._log[arr_a] + self._log[arr_b]
        result = self._exp[logs]
        zero_mask = (arr_a == 0) | (arr_b == 0)
        result = np.where(zero_mask, np.uint8(0), result)
        return self._maybe_scalar(result, a, b)

    def div(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Element-wise field division ``a / b``.

        Raises
        ------
        FieldError
            If any element of ``b`` is zero.
        """
        arr_a = self._as_array(a)
        arr_b = self._as_array(b)
        if np.any(arr_b == 0):
            raise FieldError("division by zero in GF(256)")
        logs = self._log[arr_a] - self._log[arr_b] + tables.GROUP_ORDER
        result = self._exp[logs]
        result = np.where(arr_a == 0, np.uint8(0), result)
        return self._maybe_scalar(result, a, b)

    def inv(self, a: ArrayLike) -> ArrayLike:
        """Element-wise multiplicative inverse.

        Raises
        ------
        FieldError
            If any element is zero.
        """
        arr = self._as_array(a)
        if np.any(arr == 0):
            raise FieldError("zero has no multiplicative inverse in GF(256)")
        result = self._inv[arr]
        return self._maybe_scalar(result, a)

    def pow(self, a: ArrayLike, exponent: int) -> ArrayLike:
        """Element-wise exponentiation ``a ** exponent``.

        Negative exponents are supported for non-zero bases.  ``0 ** 0``
        is defined as 1 (the empty product), matching polynomial
        evaluation conventions.
        """
        arr = self._as_array(a)
        exponent = int(exponent)
        if exponent == 0:
            result = np.ones_like(arr)
            return self._maybe_scalar(result, a)
        if exponent < 0:
            return self.pow(self.inv(arr), -exponent)
        # Build a 256-entry power table (0^e = 0 baked in), then gather:
        # zero-correct with no mask pass over the operand array.
        pow_table = np.zeros(tables.FIELD_SIZE, dtype=np.uint8)
        logs = self._log[1:].astype(np.int64) * exponent
        pow_table[1:] = self._exp[logs % tables.GROUP_ORDER]
        result = pow_table[arr]
        return self._maybe_scalar(result, a)

    def exp(self, power: ArrayLike) -> ArrayLike:
        """Return the generator (element 2) raised to ``power``."""
        powers = np.asarray(power, dtype=np.int64) % tables.GROUP_ORDER
        result = self._exp[powers]
        return self._maybe_scalar(result, power)

    def log(self, a: ArrayLike) -> ArrayLike:
        """Discrete logarithm base 2 of non-zero elements.

        Raises
        ------
        FieldError
            If any element is zero.
        """
        arr = self._as_array(a)
        if np.any(arr == 0):
            raise FieldError("log of zero is undefined in GF(256)")
        result = self._log[arr]
        if all(np.isscalar(op) or np.ndim(op) == 0 for op in (a,)):
            return int(result)
        return result

    # ------------------------------------------------------------------
    # Bulk helpers used by the codecs
    # ------------------------------------------------------------------

    def scale(
        self,
        coefficient: int,
        payload: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Multiply every byte of ``payload`` by a scalar coefficient.

        This is the inner loop of systematic encoding: a parity byte
        stream is a linear combination of data byte streams.  A scalar of
        0 returns zeros; a scalar of 1 returns a copy.  The product-table
        row makes the general case a single gather, zero-correct with no
        mask pass.  ``out``, when given, receives the result in place
        (it must be ``uint8`` and payload-shaped, and must not alias
        ``payload``).
        """
        payload = self._as_array(payload)
        coefficient = int(coefficient)
        if not 0 <= coefficient <= 255:
            raise FieldError("coefficient must be in [0, 255]")
        if out is None:
            if coefficient == 0:
                return np.zeros_like(payload)
            if coefficient == 1:
                return payload.copy()
            backend = _native_backend_for(payload)
            if backend is not None:
                out = np.empty_like(payload)
                backend.matmul(
                    self,
                    np.array([[coefficient]], dtype=np.uint8),
                    [payload.reshape(-1)],
                    [out.reshape(-1)],
                )
                return out
            return self._prod[coefficient][payload]
        if out.shape != payload.shape or out.dtype != np.uint8:
            raise FieldError("scale out= must be uint8 and payload-shaped")
        if coefficient == 0:
            out[...] = 0
        elif coefficient == 1:
            np.copyto(out, payload)
        else:
            backend = _native_backend_for(payload, out)
            if backend is not None:
                backend.matmul(
                    self,
                    np.array([[coefficient]], dtype=np.uint8),
                    [payload.reshape(-1)],
                    [out.reshape(-1)],
                )
            else:
                np.take(self._prod[coefficient], payload, out=out)
        return out

    def scale_reference(self, coefficient: int, payload: np.ndarray) -> np.ndarray:
        """Reference scale via the log/antilog path (property-test oracle)."""
        payload = self._as_array(payload)
        coefficient = int(coefficient)
        if not 0 <= coefficient <= 255:
            raise FieldError("coefficient must be in [0, 255]")
        if coefficient == 0:
            return np.zeros_like(payload)
        if coefficient == 1:
            return payload.copy()
        logs = self._log[payload] + self._log[coefficient]
        result = self._exp[logs]
        return np.where(payload == 0, np.uint8(0), result)

    def addmul(
        self,
        accumulator: np.ndarray,
        coefficient: int,
        payload: np.ndarray,
        scratch: Optional[np.ndarray] = None,
    ) -> None:
        """In-place ``accumulator ^= coefficient * payload``.

        ``accumulator`` must be a ``uint8`` array of the same shape as
        ``payload``.  This fused operation is what block encoders loop
        over, one data block per iteration.  ``scratch``, when given, is
        a flat ``uint8`` buffer of at least ``payload.size`` elements that
        the intermediate product is gathered into, so repeated calls
        allocate nothing.
        """
        if accumulator.shape != np.shape(payload):
            raise FieldError("addmul operands must have identical shapes")
        payload = self._as_array(payload)
        coefficient = int(coefficient)
        if not 0 <= coefficient <= 255:
            raise FieldError("coefficient must be in [0, 255]")
        if coefficient == 0:
            return
        if coefficient == 1:
            np.bitwise_xor(accumulator, payload, out=accumulator)
            return
        row = self._prod[coefficient]
        if scratch is None:
            np.bitwise_xor(accumulator, row[payload], out=accumulator)
        else:
            product = scratch[: payload.size].reshape(payload.shape)
            np.take(row, payload, out=product)
            np.bitwise_xor(accumulator, product, out=accumulator)

    def dot(
        self,
        coefficients: np.ndarray,
        payloads: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Linear combination of byte streams.

        Parameters
        ----------
        coefficients:
            1-d array of ``n`` field scalars.
        payloads:
            2-d array of shape ``(n, length)``; row ``i`` is a byte
            stream.
        out:
            Optional preallocated ``uint8`` result buffer of shape
            ``(length,)``; must not alias ``payloads``.

        Returns
        -------
        The byte stream ``sum_i coefficients[i] * payloads[i]``.
        """
        coefficients = self._as_array(coefficients)
        payloads = self._as_array(payloads)
        if payloads.ndim != 2 or coefficients.ndim != 1:
            raise FieldError("dot expects a 1-d coefficient vector and 2-d payloads")
        if coefficients.shape[0] != payloads.shape[0]:
            raise FieldError(
                f"coefficient count {coefficients.shape[0]} does not match "
                f"payload count {payloads.shape[0]}"
            )
        length = payloads.shape[1]
        if out is None:
            out = np.empty(length, dtype=np.uint8)
        elif out.shape != (length,) or out.dtype != np.uint8:
            raise FieldError("dot out= must be uint8 of shape (length,)")
        backend = _native_backend_for(payloads, out, row_views=True)
        if backend is not None:
            backend.matmul(
                self,
                np.ascontiguousarray(coefficients).reshape(1, -1),
                list(payloads),
                [out],
            )
            return out
        out[...] = 0
        self._accumulate_rows(coefficients, payloads, out)
        return out

    def dot_reference(
        self, coefficients: np.ndarray, payloads: np.ndarray
    ) -> np.ndarray:
        """Reference dot built on :meth:`scale_reference` (test oracle)."""
        coefficients = self._as_array(coefficients)
        payloads = self._as_array(payloads)
        if payloads.ndim != 2 or coefficients.ndim != 1:
            raise FieldError("dot expects a 1-d coefficient vector and 2-d payloads")
        if coefficients.shape[0] != payloads.shape[0]:
            raise FieldError(
                f"coefficient count {coefficients.shape[0]} does not match "
                f"payload count {payloads.shape[0]}"
            )
        result = np.zeros(payloads.shape[1], dtype=np.uint8)
        for coefficient, payload in zip(coefficients, payloads):
            np.bitwise_xor(
                result, self.scale_reference(int(coefficient), payload), out=result
            )
        return result

    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fused matrix product over the field: ``(m, n) @ (n, p)``.

        ``a`` is a small coefficient matrix; ``b`` may be a wide payload
        matrix (``p`` in the megabytes).  Each output row accumulates
        product-table gathers chunk by chunk (:data:`KERNEL_CHUNK`
        columns at a time) so the scratch buffer and the accumulator
        slice stay cache-resident.  ``out``, when given, must be a
        ``uint8`` array of shape ``(m, p)`` that does not alias ``b``;
        it is zero-filled and returned.
        """
        a = self._as_array(a)
        b = self._as_array(b)
        if a.ndim != 2 or b.ndim != 2:
            raise FieldError("matmul expects 2-d operands")
        if a.shape[1] != b.shape[0]:
            raise FieldError(
                f"cannot multiply {a.shape} by {b.shape}: inner dimensions differ"
            )
        m, p = a.shape[0], b.shape[1]
        if out is None:
            out = np.empty((m, p), dtype=np.uint8)
        elif out.shape != (m, p) or out.dtype != np.uint8:
            raise FieldError("matmul out= must be uint8 of shape (m, p)")
        backend = _native_backend_for(b, out, row_views=True) if m else None
        if backend is not None:
            backend.matmul(self, np.ascontiguousarray(a), list(b), list(out))
            return out
        out[...] = 0
        for i in range(m):
            self._accumulate_rows(a[i], b, out[i])
        return out

    def _accumulate_rows(
        self, coefficients: np.ndarray, payloads: np.ndarray, accumulator: np.ndarray
    ) -> None:
        """``accumulator ^= sum_j coefficients[j] * payloads[j]``, chunked.

        The shared kernel behind :meth:`dot` and :meth:`matmul`: for each
        cache-sized column chunk, gather each payload row through its
        coefficient's product-table row into one scratch buffer and XOR
        it into the accumulator slice.  Zero coefficients are skipped,
        unit coefficients XOR directly.
        """
        length = payloads.shape[1]
        prod = self._prod
        scratch = np.empty(min(KERNEL_CHUNK, length), dtype=np.uint8)
        for start in range(0, length, KERNEL_CHUNK):
            stop = min(start + KERNEL_CHUNK, length)
            segment_scratch = scratch[: stop - start]
            acc = accumulator[start:stop]
            for j in range(payloads.shape[0]):
                coefficient = coefficients[j]
                if coefficient == 0:
                    continue
                segment = payloads[j, start:stop]
                if coefficient == 1:
                    np.bitwise_xor(acc, segment, out=acc)
                else:
                    np.take(prod[coefficient], segment, out=segment_scratch)
                    np.bitwise_xor(acc, segment_scratch, out=acc)

    def __repr__(self) -> str:
        return f"GF256(primitive_poly={self.primitive_poly:#x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF256)
            and other.primitive_poly == self.primitive_poly
        )

    def __hash__(self) -> int:
        return hash(("GF256", self.primitive_poly))


#: Shared default field instance (modulus ``0x11D``).
DEFAULT_FIELD = GF256()
