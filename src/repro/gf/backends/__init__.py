"""Pluggable GF(2^8) kernel-backend registry.

The GF layer (:mod:`repro.gf.field`, :mod:`repro.gf.packed`, the XOR
schedules behind :mod:`repro.gf.bitmatrix`) dispatches its bulk kernels
through exactly one *active backend*, selected lazily on first use:

1. ``cffi`` -- compiled C with SIMD tiers (GFNI/AVX-512 down to plain
   scalar), built lazily and cached per machine;
2. ``numba`` -- JIT product-table kernels, when numba is installed;
3. ``numpy`` -- the original chunked-gather kernels, always available
   and the *oracle* every other backend is property-tested against.

Auto-selection walks that order and takes the first tier whose probe
succeeds.  ``REPRO_GF_BACKEND`` overrides it, following the
``REPRO_PARALLEL`` convention from :mod:`repro.parallel`: the accepted
values are exactly ``numpy``, ``cffi``, ``numba`` and ``auto`` (unset /
empty mean auto), anything else raises
:class:`~repro.errors.ConfigError` loudly, and naming a backend whose
dependencies are missing is also a loud :class:`ConfigError` -- an
explicitly requested backend must never silently degrade.  Silent
degradation is reserved for auto mode, where it is the whole point.

Probe results (constructed backends *and* failure reasons) are cached
for the life of the process; :func:`backend_statuses` reports both so
``repro bench`` and the CI backend-matrix job can show exactly which
tiers this host can run and why the others cannot.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional

from repro.errors import BackendUnavailable, ConfigError
from repro.gf.backends.base import KernelBackend
from repro.observability import metrics

__all__ = [
    "BACKEND_ENV",
    "AUTO_ORDER",
    "KernelBackend",
    "BackendUnavailable",
    "active_backend",
    "backend_env_choice",
    "backend_statuses",
    "native_backend",
    "reset_backend_state",
    "select_backend",
    "use_backend",
]

#: Environment variable naming the backend to use.
BACKEND_ENV = "REPRO_GF_BACKEND"

#: Auto-selection order: fastest tier first, oracle last.
AUTO_ORDER = ("cffi", "numba", "numpy")

#: Names accepted by the env var / :func:`select_backend`.
VALID_BACKENDS = ("numpy", "cffi", "numba")

_instances: Dict[str, KernelBackend] = {}
_failures: Dict[str, str] = {}
_active: Optional[KernelBackend] = None


def backend_env_choice(
    env: Optional[Mapping[str, str]] = None,
) -> Optional[str]:
    """The backend ``REPRO_GF_BACKEND`` names, or None for auto.

    Unset, empty and ``"auto"`` all mean auto-selection.  Any value
    outside :data:`VALID_BACKENDS` raises :class:`ConfigError` instead
    of being silently read as auto -- a pin that only *looks* engaged is
    worse than no pin (same rationale as ``REPRO_PARALLEL``).
    """
    raw = (env if env is not None else os.environ).get(BACKEND_ENV)
    if raw is None or raw == "" or raw == "auto":
        return None
    if raw in VALID_BACKENDS:
        return raw
    raise ConfigError(
        f"{BACKEND_ENV}={raw!r} is not a valid value; use one of "
        f"{', '.join(VALID_BACKENDS)} or 'auto'"
    )


def _probe(name: str) -> KernelBackend:
    """Construct (once) the named backend or raise BackendUnavailable."""
    backend = _instances.get(name)
    if backend is not None:
        return backend
    if name in _failures:
        raise BackendUnavailable(_failures[name])
    try:
        if name == "numpy":
            from repro.gf.backends.numpy_backend import NumpyBackend as cls
        elif name == "cffi":
            from repro.gf.backends.cffi_backend import CffiBackend as cls
        elif name == "numba":
            from repro.gf.backends.numba_backend import NumbaBackend as cls
        else:
            raise ConfigError(f"unknown GF backend {name!r}")
        backend = cls()
    except BackendUnavailable as exc:
        _failures[name] = str(exc)
        raise
    except ConfigError:
        raise
    except Exception as exc:
        # A probe bug must degrade like a missing dependency, never
        # break import of the GF layer.
        _failures[name] = f"{type(exc).__name__}: {exc}"
        raise BackendUnavailable(_failures[name]) from exc
    _instances[name] = backend
    return backend


def select_backend(
    name: Optional[str] = None,
    env: Optional[Mapping[str, str]] = None,
) -> KernelBackend:
    """Resolve a backend: explicit ``name`` > env var > auto order.

    Explicit requests (by argument or env var) raise
    :class:`ConfigError` when the backend is unavailable; auto mode
    falls through :data:`AUTO_ORDER` and always terminates at numpy.
    """
    requested = name if name is not None else backend_env_choice(env)
    if requested is not None:
        if requested == "auto":
            requested = None
        elif requested not in VALID_BACKENDS:
            raise ConfigError(
                f"unknown GF backend {requested!r}; use one of "
                f"{', '.join(VALID_BACKENDS)} or 'auto'"
            )
    if requested is not None:
        try:
            return _probe(requested)
        except BackendUnavailable as exc:
            raise ConfigError(
                f"GF backend {requested!r} was requested explicitly "
                f"(argument or {BACKEND_ENV}) but is unavailable: {exc}"
            ) from exc
    for candidate in AUTO_ORDER:
        try:
            return _probe(candidate)
        except BackendUnavailable:
            continue
    raise AssertionError("the numpy backend must always be constructible")


def active_backend() -> KernelBackend:
    """The process-wide backend, selecting (and logging) on first call."""
    global _active
    if _active is None:
        _active = select_backend()
        m = metrics()
        if m is not None:
            m.inc(f"gf.backend.selected.{_active.name}")
    return _active


def native_backend() -> Optional[KernelBackend]:
    """The active backend when it is native, else None.

    The GF layer's dispatch guard: numpy's kernels *are* the fallback
    code paths, so diverting to the numpy backend object would only add
    a hop.
    """
    backend = active_backend()
    return backend if backend.is_native else None


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily pin the active backend (tests, bench comparisons).

    Raises :class:`ConfigError` if the named backend is unavailable on
    this host.
    """
    global _active
    previous = _active
    _active = select_backend(name)
    try:
        yield _active
    finally:
        _active = previous


def reset_backend_state(forget_probes: bool = False) -> None:
    """Clear the selection (and optionally probe results).

    Test hook: ``forget_probes=True`` also drops cached instances and
    failure records so monkeypatched probes / env vars take effect.
    """
    global _active
    _active = None
    if forget_probes:
        _instances.clear()
        _failures.clear()


def backend_statuses() -> Dict[str, str]:
    """Probe every tier and report availability with reasons."""
    statuses: Dict[str, str] = {}
    for name in AUTO_ORDER:
        try:
            backend = _probe(name)
            statuses[name] = f"available ({backend.tier_description})"
        except BackendUnavailable as exc:
            statuses[name] = f"unavailable: {exc}"
    return statuses
