"""The numpy kernel backend: always available, and the oracle.

This backend is the exact algorithm the GF layer ran before the backend
engine existed -- chunked product-table gathers XOR-reduced into the
accumulator (:meth:`repro.gf.field.GF256._accumulate_rows`) -- restated
over row sequences.  It has two jobs:

- **fallback**: it is constructible on any host that can import numpy,
  so backend selection always terminates;
- **oracle**: the hypothesis equivalence suites compare every other
  backend against it, and the GF layer's own numpy code paths stay in
  place as the reference implementation.

Because the GF layer's non-dispatched code *is* this algorithm, the
registry marks it ``is_native = False`` and the dispatch guards skip the
extra hop; the class still implements the full kernel interface so
``use_backend("numpy")`` and the equivalence tests can drive it
directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.gf.backends.base import KernelBackend

#: Column chunk for the gather+XOR loops; matches the field kernels'
#: cache-sizing rationale (see :data:`repro.gf.field.KERNEL_CHUNK`).
_CHUNK = 1 << 18


class NumpyBackend(KernelBackend):
    """Chunked product-table gather kernels (the reference tier)."""

    name = "numpy"
    is_native = False

    @property
    def tier_description(self) -> str:
        return "numpy product-table gathers (oracle)"

    def matmul(
        self,
        field,
        coeffs: np.ndarray,
        rows_in: Sequence[np.ndarray],
        rows_out: Sequence[np.ndarray],
        accumulate: bool = False,
    ) -> None:
        prod = field._prod
        if not rows_out:
            return
        length = rows_out[0].shape[0]
        scratch = np.empty(min(_CHUNK, length), dtype=np.uint8)
        for start in range(0, length, _CHUNK):
            stop = min(start + _CHUNK, length)
            seg_scratch = scratch[: stop - start]
            for i, out_row in enumerate(rows_out):
                acc = out_row[start:stop]
                if not accumulate:
                    acc[...] = 0
                for j, in_row in enumerate(rows_in):
                    coefficient = coeffs[i, j]
                    if coefficient == 0:
                        continue
                    segment = in_row[start:stop]
                    if coefficient == 1:
                        np.bitwise_xor(acc, segment, out=acc)
                    else:
                        np.take(prod[coefficient], segment, out=seg_scratch)
                        np.bitwise_xor(acc, seg_scratch, out=acc)

    def xor_rows(
        self,
        sources: Sequence[np.ndarray],
        dst: np.ndarray,
        accumulate: bool = False,
    ) -> None:
        if not sources:
            if not accumulate:
                dst[...] = 0
            return
        start = 0
        if not accumulate:
            np.copyto(dst, sources[0])
            start = 1
        for source in sources[start:]:
            np.bitwise_xor(dst, source, out=dst)
