"""Compiled C kernel backend (cffi, lazily built, SIMD-tiered).

The C module is compiled once per machine on first use and cached under
``~/.cache/repro-gf`` (override with ``REPRO_GF_CACHE_DIR``), so every
later process -- including pipeline pool workers -- just dlopens the
shared object.  The source selects its inner loop at *compile* time from
what ``-march=native`` exposes:

- tier 3: GFNI + AVX-512 -- ``GF2P8AFFINEQB`` multiplies 64 bytes by a
  constant per instruction.  The affine qword for coefficient ``c`` is
  the bit-matrix of multiplication by ``c``
  (:func:`repro.gf.bitmatrix.element_to_bitmatrix`) packed byte ``b`` =
  row ``7 - b``, bit ``j`` = ``M[7-b][j]`` -- which is how the GFNI
  affine transform expects a GF(2) matrix, and works for *any* field
  modulus, not just the AES polynomial;
- tier 2: GFNI + AVX2 -- same instruction at 32 bytes per step;
- tier 1: AVX2 ``PSHUFB`` -- classic split-table multiply: two 16-entry
  nibble tables per coefficient, two shuffles and a XOR per 32 bytes;
- tier 0: scalar product-table loop (any compiler, no SIMD flags).

All tiers share a scalar tail so any length is handled exactly.  The
tables are built on the Python side from the field's own product table /
bit matrices and passed by pointer per call, so one compiled module
serves every :class:`~repro.gf.field.GF256` instance.

cffi releases the GIL around API-mode calls, which is what lets the
overlapped file pipeline (:func:`repro.striping.pipeline.encode_stream`)
encode while its reader and writer threads move bytes.

Construction raises :class:`~repro.errors.BackendUnavailable` when cffi
is missing or no working C compiler exists; the registry then falls
through to the next tier.  A host whose compiler lacks
``-march=native`` support is retried with plain ``-O3`` (tier 0).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import BackendUnavailable
from repro.gf.backends.base import KernelBackend

#: Environment variable overriding the compiled-module cache directory.
CACHE_DIR_ENV = "REPRO_GF_CACHE_DIR"

_CDEF = """
int gf_kernel_tier(void);
void gf_matmul(const uint64_t* affine, const uint8_t* nib,
               const uint8_t* prod, const uint8_t* coeffs,
               size_t m, size_t n,
               const uint8_t* const* rows_in, uint8_t* const* rows_out,
               size_t length, int accumulate);
void gf_matmul_batch(const uint64_t* affine, const uint8_t* nib,
                     const uint8_t* prod, const uint8_t* coeffs,
                     size_t m, size_t n, size_t batch,
                     const uint8_t* const* rows_in, uint8_t* const* rows_out,
                     size_t length, int accumulate);
void gf_xor_rows(const uint8_t* const* sources, size_t count,
                 uint8_t* dst, size_t length, int accumulate);
uint32_t crc32c_one(const uint8_t* data, size_t length, uint32_t value);
void crc32c_rows(const uint8_t* const* rows, const uint64_t* lengths,
                 size_t count, uint32_t* out);
"""

_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>
#include <string.h>

#if defined(__GFNI__) && defined(__AVX512F__)
#include <immintrin.h>
#define GF_TIER 3
#elif defined(__GFNI__) && defined(__AVX2__)
#include <immintrin.h>
#define GF_TIER 2
#elif defined(__AVX2__)
#include <immintrin.h>
#define GF_TIER 1
#else
#define GF_TIER 0
#endif

int gf_kernel_tier(void) { return GF_TIER; }

/* Scalar product-table kernel: correctness baseline and vector tail. */
static void gf_matmul_scalar(const uint8_t* prod, const uint8_t* coeffs,
                             size_t m, size_t n,
                             const uint8_t* const* rows_in,
                             uint8_t* const* rows_out,
                             size_t start, size_t length, int accumulate) {
    size_t i, j, p;
    for (i = 0; i < m; i++) {
        uint8_t* out = rows_out[i];
        const uint8_t* crow = coeffs + i * n;
        if (!accumulate) memset(out + start, 0, length - start);
        for (j = 0; j < n; j++) {
            uint8_t c = crow[j];
            const uint8_t* src;
            if (!c) continue;
            src = rows_in[j];
            if (c == 1) {
                for (p = start; p < length; p++) out[p] ^= src[p];
            } else {
                const uint8_t* row = prod + (size_t)c * 256;
                for (p = start; p < length; p++) out[p] ^= row[src[p]];
            }
        }
    }
}

#if GF_TIER == 3
/* Single-output-row kernel, unrolled four 64-byte blocks deep.  A
 * repair matmul (m == 1) is one serial XOR/affine chain per block --
 * the dependency chain, not the load ports, is the bottleneck -- so
 * four independent accumulators recover the instruction-level
 * parallelism that the m > 1 encode shape gets for free from its
 * independent output rows. */
static size_t gf_row_avx512_u4(const uint64_t* affine,
                               const uint8_t* coeffs, size_t n,
                               const uint8_t* const* rows_in,
                               uint8_t* out, size_t length,
                               int accumulate) {
    size_t pos = 0, j;
    for (; pos + 256 <= length; pos += 256) {
        __m512i a0, a1, a2, a3;
        if (accumulate) {
            a0 = _mm512_loadu_si512((const void*)(out + pos));
            a1 = _mm512_loadu_si512((const void*)(out + pos + 64));
            a2 = _mm512_loadu_si512((const void*)(out + pos + 128));
            a3 = _mm512_loadu_si512((const void*)(out + pos + 192));
        } else {
            a0 = _mm512_setzero_si512();
            a1 = a0; a2 = a0; a3 = a0;
        }
        for (j = 0; j < n; j++) {
            uint8_t c = coeffs[j];
            const uint8_t* src;
            if (!c) continue;
            src = rows_in[j] + pos;
            if (c == 1) {
                a0 = _mm512_xor_si512(a0, _mm512_loadu_si512((const void*)src));
                a1 = _mm512_xor_si512(a1, _mm512_loadu_si512((const void*)(src + 64)));
                a2 = _mm512_xor_si512(a2, _mm512_loadu_si512((const void*)(src + 128)));
                a3 = _mm512_xor_si512(a3, _mm512_loadu_si512((const void*)(src + 192)));
            } else {
                __m512i q = _mm512_set1_epi64((long long)affine[c]);
                a0 = _mm512_xor_si512(a0, _mm512_gf2p8affine_epi64_epi8(
                    _mm512_loadu_si512((const void*)src), q, 0));
                a1 = _mm512_xor_si512(a1, _mm512_gf2p8affine_epi64_epi8(
                    _mm512_loadu_si512((const void*)(src + 64)), q, 0));
                a2 = _mm512_xor_si512(a2, _mm512_gf2p8affine_epi64_epi8(
                    _mm512_loadu_si512((const void*)(src + 128)), q, 0));
                a3 = _mm512_xor_si512(a3, _mm512_gf2p8affine_epi64_epi8(
                    _mm512_loadu_si512((const void*)(src + 192)), q, 0));
            }
        }
        _mm512_storeu_si512((void*)(out + pos), a0);
        _mm512_storeu_si512((void*)(out + pos + 64), a1);
        _mm512_storeu_si512((void*)(out + pos + 128), a2);
        _mm512_storeu_si512((void*)(out + pos + 192), a3);
    }
    return pos;
}
#endif

static void gf_matmul_one(const uint64_t* affine, const uint8_t* nib,
                          const uint8_t* prod, const uint8_t* coeffs,
                          size_t m, size_t n,
                          const uint8_t* const* rows_in,
                          uint8_t* const* rows_out,
                          size_t length, int accumulate) {
    size_t pos = 0;
#if GF_TIER == 3
    if (m == 1) {
        pos = gf_row_avx512_u4(affine, coeffs, n, rows_in, rows_out[0],
                               length, accumulate);
    }
    for (; pos + 64 <= length; pos += 64) {
        size_t i, j;
        for (i = 0; i < m; i++) {
            __m512i acc = accumulate
                ? _mm512_loadu_si512((const void*)(rows_out[i] + pos))
                : _mm512_setzero_si512();
            const uint8_t* crow = coeffs + i * n;
            for (j = 0; j < n; j++) {
                uint8_t c = crow[j];
                __m512i d;
                if (!c) continue;
                d = _mm512_loadu_si512((const void*)(rows_in[j] + pos));
                if (c == 1) {
                    acc = _mm512_xor_si512(acc, d);
                } else {
                    acc = _mm512_xor_si512(
                        acc,
                        _mm512_gf2p8affine_epi64_epi8(
                            d, _mm512_set1_epi64((long long)affine[c]), 0));
                }
            }
            _mm512_storeu_si512((void*)(rows_out[i] + pos), acc);
        }
    }
#elif GF_TIER == 2
    for (; pos + 32 <= length; pos += 32) {
        size_t i, j;
        for (i = 0; i < m; i++) {
            __m256i acc = accumulate
                ? _mm256_loadu_si256((const __m256i*)(rows_out[i] + pos))
                : _mm256_setzero_si256();
            const uint8_t* crow = coeffs + i * n;
            for (j = 0; j < n; j++) {
                uint8_t c = crow[j];
                __m256i d;
                if (!c) continue;
                d = _mm256_loadu_si256((const __m256i*)(rows_in[j] + pos));
                if (c == 1) {
                    acc = _mm256_xor_si256(acc, d);
                } else {
                    acc = _mm256_xor_si256(
                        acc,
                        _mm256_gf2p8affine_epi64_epi8(
                            d, _mm256_set1_epi64x((long long)affine[c]), 0));
                }
            }
            _mm256_storeu_si256((__m256i*)(rows_out[i] + pos), acc);
        }
    }
#elif GF_TIER == 1
    {
        const __m256i maskf = _mm256_set1_epi8(0x0f);
        for (; pos + 32 <= length; pos += 32) {
            size_t i, j;
            for (i = 0; i < m; i++) {
                __m256i acc = accumulate
                    ? _mm256_loadu_si256((const __m256i*)(rows_out[i] + pos))
                    : _mm256_setzero_si256();
                const uint8_t* crow = coeffs + i * n;
                for (j = 0; j < n; j++) {
                    uint8_t c = crow[j];
                    __m256i d, tlo, thi, lo, hi;
                    const uint8_t* t;
                    if (!c) continue;
                    d = _mm256_loadu_si256((const __m256i*)(rows_in[j] + pos));
                    if (c == 1) { acc = _mm256_xor_si256(acc, d); continue; }
                    t = nib + (size_t)c * 32;
                    tlo = _mm256_broadcastsi128_si256(
                        _mm_loadu_si128((const __m128i*)t));
                    thi = _mm256_broadcastsi128_si256(
                        _mm_loadu_si128((const __m128i*)(t + 16)));
                    lo = _mm256_and_si256(d, maskf);
                    hi = _mm256_and_si256(_mm256_srli_epi16(d, 4), maskf);
                    acc = _mm256_xor_si256(
                        acc,
                        _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                                         _mm256_shuffle_epi8(thi, hi)));
                }
                _mm256_storeu_si256((__m256i*)(rows_out[i] + pos), acc);
            }
        }
    }
#endif
    if (pos < length) {
        gf_matmul_scalar(prod, coeffs, m, n, rows_in, rows_out,
                         pos, length, accumulate);
    }
    (void)affine; (void)nib;
}

void gf_matmul(const uint64_t* affine, const uint8_t* nib,
               const uint8_t* prod, const uint8_t* coeffs,
               size_t m, size_t n,
               const uint8_t* const* rows_in, uint8_t* const* rows_out,
               size_t length, int accumulate) {
    gf_matmul_one(affine, nib, prod, coeffs, m, n, rows_in, rows_out,
                  length, accumulate);
}

/* One FFI crossing per survivor wave: apply the same (m, n) matrix to
 * `batch` row sets laid out back-to-back in the pointer arrays
 * (element b's inputs at rows_in + b*n, outputs at rows_out + b*m). */
void gf_matmul_batch(const uint64_t* affine, const uint8_t* nib,
                     const uint8_t* prod, const uint8_t* coeffs,
                     size_t m, size_t n, size_t batch,
                     const uint8_t* const* rows_in, uint8_t* const* rows_out,
                     size_t length, int accumulate) {
    size_t b;
    for (b = 0; b < batch; b++) {
        gf_matmul_one(affine, nib, prod, coeffs, m, n,
                      rows_in + b * n, rows_out + b * m,
                      length, accumulate);
    }
}

/* CRC32C (Castagnoli, reflected 0x82F63B78): the per-unit integrity
 * checksum of the striping layer.  The SSE4.2 hardware instruction
 * computes exactly this polynomial; hosts without it get slicing-by-8
 * over tables built on first use.  Semantics match the Python
 * reference in repro.striping.checksum (init/xorout 0xFFFFFFFF,
 * `value` chains a previous digest). */

#if defined(__SSE4_2__) && defined(__x86_64__)
#include <nmmintrin.h>
#else

static uint32_t crc32c_tab[8][256];
static int crc32c_tab_ready = 0;

static void crc32c_tab_init(void) {
    uint32_t i, j, crc;
    if (crc32c_tab_ready) return;
    for (i = 0; i < 256; i++) {
        crc = i;
        for (j = 0; j < 8; j++)
            crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
        crc32c_tab[0][i] = crc;
    }
    for (i = 0; i < 256; i++) {
        crc = crc32c_tab[0][i];
        for (j = 1; j < 8; j++) {
            crc = crc32c_tab[0][crc & 0xFFu] ^ (crc >> 8);
            crc32c_tab[j][i] = crc;
        }
    }
    crc32c_tab_ready = 1;
}

static int crc32c_little_endian(void) {
    const uint32_t probe = 1;
    uint8_t first;
    memcpy(&first, &probe, 1);
    return first == 1;
}
#endif

uint32_t crc32c_one(const uint8_t* data, size_t length, uint32_t value) {
    size_t p = 0;
    uint32_t crc = value ^ 0xFFFFFFFFu;
#if defined(__SSE4_2__) && defined(__x86_64__)
    {
        uint64_t wide = crc;
        for (; p + 8 <= length; p += 8) {
            uint64_t chunk;
            memcpy(&chunk, data + p, 8);
            wide = _mm_crc32_u64(wide, chunk);
        }
        crc = (uint32_t)wide;
        for (; p < length; p++)
            crc = _mm_crc32_u8(crc, data[p]);
        return crc ^ 0xFFFFFFFFu;
    }
#else
    crc32c_tab_init();
    if (crc32c_little_endian()) {
        for (; p + 8 <= length; p += 8) {
            uint32_t lo, hi;
            memcpy(&lo, data + p, 4);
            memcpy(&hi, data + p + 4, 4);
            lo ^= crc;
            crc = crc32c_tab[7][lo & 0xFFu]
                ^ crc32c_tab[6][(lo >> 8) & 0xFFu]
                ^ crc32c_tab[5][(lo >> 16) & 0xFFu]
                ^ crc32c_tab[4][lo >> 24]
                ^ crc32c_tab[3][hi & 0xFFu]
                ^ crc32c_tab[2][(hi >> 8) & 0xFFu]
                ^ crc32c_tab[1][(hi >> 16) & 0xFFu]
                ^ crc32c_tab[0][hi >> 24];
        }
    }
    for (; p < length; p++)
        crc = crc32c_tab[0][(crc ^ data[p]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
#endif
}

/* One FFI crossing per verification wave: independent CRCs over
 * `count` rows with per-row logical lengths. */
void crc32c_rows(const uint8_t* const* rows, const uint64_t* lengths,
                 size_t count, uint32_t* out) {
    size_t i;
    for (i = 0; i < count; i++)
        out[i] = crc32c_one(rows[i], (size_t)lengths[i], 0);
}

void gf_xor_rows(const uint8_t* const* sources, size_t count,
                 uint8_t* dst, size_t length, int accumulate) {
    size_t j, p, start_j = 0;
    if (count == 0) {
        if (!accumulate) memset(dst, 0, length);
        return;
    }
    if (!accumulate) {
        memcpy(dst, sources[0], length);
        start_j = 1;
    }
    for (j = start_j; j < count; j++) {
        const uint8_t* src = sources[j];
        p = 0;
        for (; p + 8 <= length; p += 8) {
            uint64_t a, b;
            memcpy(&a, dst + p, 8);
            memcpy(&b, src + p, 8);
            a ^= b;
            memcpy(dst + p, &a, 8);
        }
        for (; p < length; p++) dst[p] ^= src[p];
    }
}
"""

#: Build variants, most capable first.  ``-march=native`` unlocks the
#: SIMD tiers; a compiler that rejects it still gets the scalar tier.
_VARIANTS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("native", ("-O3", "-march=native")),
    ("generic", ("-O3",)),
)

_TIER_NAMES = {
    3: "GFNI+AVX512",
    2: "GFNI+AVX2",
    1: "AVX2 pshufb",
    0: "scalar C",
}


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-gf"


def _module_name(tag: str) -> str:
    digest = hashlib.sha256(
        (_SOURCE + _CDEF + tag).encode("utf-8")
    ).hexdigest()[:12]
    return f"_repro_gf_{tag}_{digest}"


def _load_shared_object(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem.split(".")[0], path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _find_cached(cache_dir: Path, modname: str) -> "Path | None":
    if not cache_dir.is_dir():
        return None
    for candidate in sorted(cache_dir.glob(modname + "*")):
        if candidate.suffix in (".so", ".pyd", ".dylib"):
            return candidate
    return None


def _compile_variant(tag: str, flags: Sequence[str], cache_dir: Path) -> Path:
    """Compile one variant into the cache; returns the shared object."""
    import cffi

    modname = _module_name(tag)
    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    ffi.set_source(modname, _SOURCE, extra_compile_args=list(flags))
    build_dir = tempfile.mkdtemp(prefix="repro-gf-build-")
    try:
        built = Path(ffi.compile(tmpdir=build_dir, verbose=False))
        cache_dir.mkdir(parents=True, exist_ok=True)
        target = cache_dir / built.name
        staging = target.with_name(target.name + f".tmp{os.getpid()}")
        shutil.copy2(built, staging)
        os.replace(staging, target)  # atomic publish for concurrent builds
        return target
    finally:
        shutil.rmtree(build_dir, ignore_errors=True)


def _load_or_build():
    """Return ``(lib, ffi, variant_tag)``, building at most once per host."""
    cache_dir = _cache_dir()
    for tag, _flags in _VARIANTS:
        cached = _find_cached(cache_dir, _module_name(tag))
        if cached is not None:
            try:
                module = _load_shared_object(cached)
                return module.lib, module.ffi, tag
            except (ImportError, OSError):
                continue  # stale/foreign .so: rebuild below
    failures = []
    for tag, flags in _VARIANTS:
        try:
            built = _compile_variant(tag, flags, cache_dir)
            module = _load_shared_object(built)
            return module.lib, module.ffi, tag
        except Exception as exc:  # compiler missing, flags rejected, ...
            failures.append(f"{tag}: {type(exc).__name__}: {exc}")
    raise BackendUnavailable(
        "cffi backend could not compile its C module "
        f"({'; '.join(failures)})"
    )


def build_affine_table(field) -> np.ndarray:
    """Per-coefficient GFNI affine qwords for ``field``'s modulus.

    ``GF2P8AFFINEQB`` computes ``A @ x`` over GF(2) where byte ``b`` of
    the qword ``A`` is matrix row ``7 - b`` with bit ``j`` equal to
    ``A[7-b][j]``; loading ``element_to_bitmatrix(c)`` in that layout
    makes the instruction multiply by ``c`` in *this* field.
    """
    from repro.gf.bitmatrix import element_to_bitmatrix

    table = np.zeros(256, dtype=np.uint64)
    for c in range(256):
        matrix = element_to_bitmatrix(c, field)
        value = 0
        for b in range(8):
            row = matrix[7 - b]
            byte_val = 0
            for j in range(8):
                byte_val |= int(row[j]) << j
            value |= byte_val << (8 * b)
        table[c] = value
    return table


def build_nibble_table(field) -> np.ndarray:
    """Per-coefficient split tables for the PSHUFB tier.

    ``nib[c, :16]`` maps a low nibble, ``nib[c, 16:]`` a high nibble;
    XOR of the two lookups is the full product (GF multiplication is
    linear over the nibble split).
    """
    prod = field._prod
    nib = np.empty((256, 32), dtype=np.uint8)
    nib[:, :16] = prod[:, :16]
    nib[:, 16:] = prod[:, np.arange(16) << 4]
    return np.ascontiguousarray(nib)


class CffiBackend(KernelBackend):
    """SIMD-tiered compiled kernels behind the cffi FFI."""

    name = "cffi"
    is_native = True

    def __init__(self):
        try:
            import cffi  # noqa: F401
        except ImportError as exc:
            raise BackendUnavailable(f"cffi is not installed: {exc}") from exc
        self._lib, self._ffi, self.variant = _load_or_build()
        self.tier = int(self._lib.gf_kernel_tier())
        #: field modulus -> (affine, nibble, product) table trio, kept
        #: alive for the lifetime of the backend so the C side can hold
        #: bare pointers during calls.
        self._tables: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    @property
    def tier_description(self) -> str:
        return f"compiled C, {_TIER_NAMES.get(self.tier, f'tier {self.tier}')}"

    def _tables_for(self, field) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        key = field.primitive_poly
        trio = self._tables.get(key)
        if trio is None:
            prod = np.ascontiguousarray(field._prod)
            trio = (build_affine_table(field), build_nibble_table(field), prod)
            self._tables[key] = trio
        return trio

    def _row_pointers(self, rows: Sequence[np.ndarray], const: bool):
        ctype = "const uint8_t *[]" if const else "uint8_t *[]"
        cast_to = "const uint8_t *" if const else "uint8_t *"
        return self._ffi.new(
            ctype,
            [self._ffi.cast(cast_to, row.ctypes.data) for row in rows],
        )

    def matmul(
        self,
        field,
        coeffs: np.ndarray,
        rows_in: Sequence[np.ndarray],
        rows_out: Sequence[np.ndarray],
        accumulate: bool = False,
    ) -> None:
        if not rows_out:
            return
        affine, nib, prod = self._tables_for(field)
        coeffs = np.ascontiguousarray(coeffs, dtype=np.uint8)
        m, n = coeffs.shape
        length = int(rows_out[0].shape[0])
        ffi = self._ffi
        self._lib.gf_matmul(
            ffi.cast("const uint64_t *", affine.ctypes.data),
            ffi.cast("const uint8_t *", nib.ctypes.data),
            ffi.cast("const uint8_t *", prod.ctypes.data),
            ffi.cast("const uint8_t *", coeffs.ctypes.data),
            m,
            n,
            self._row_pointers(rows_in, const=True),
            self._row_pointers(rows_out, const=False),
            length,
            1 if accumulate else 0,
        )

    def matmul_batch(
        self,
        field,
        coeffs: np.ndarray,
        batch_rows_in: Sequence[Sequence[np.ndarray]],
        batch_rows_out: Sequence[Sequence[np.ndarray]],
        accumulate: bool = False,
    ) -> None:
        self.bind_matmul_batch(
            field, coeffs, batch_rows_in, batch_rows_out, accumulate
        )()

    def bind_matmul_batch(
        self,
        field,
        coeffs: np.ndarray,
        batch_rows_in: Sequence[Sequence[np.ndarray]],
        batch_rows_out: Sequence[Sequence[np.ndarray]],
        accumulate: bool = False,
    ):
        affine, nib, prod = self._tables_for(field)
        coeffs = np.ascontiguousarray(coeffs, dtype=np.uint8)
        m, n = coeffs.shape
        flat_in = [row for rows in batch_rows_in for row in rows]
        flat_out = [row for rows in batch_rows_out for row in rows]
        batch = len(batch_rows_out)
        if len(flat_in) != batch * n or len(flat_out) != batch * m:
            raise ValueError(
                "batch rows do not match the coefficient matrix shape"
            )
        length = int(flat_out[0].shape[0]) if flat_out else 0
        ffi = self._ffi
        lib = self._lib
        # Pointer arrays and table pointers are marshalled once, here;
        # the closure is a single C call per invocation.  The row and
        # table arrays are captured so the bare pointers stay alive.
        args = (
            ffi.cast("const uint64_t *", affine.ctypes.data),
            ffi.cast("const uint8_t *", nib.ctypes.data),
            ffi.cast("const uint8_t *", prod.ctypes.data),
            ffi.cast("const uint8_t *", coeffs.ctypes.data),
            m,
            n,
            batch,
            self._row_pointers(flat_in, const=True),
            self._row_pointers(flat_out, const=False),
            length,
            1 if accumulate else 0,
        )
        keepalive = (affine, nib, prod, coeffs, flat_in, flat_out)

        def execute() -> None:
            lib.gf_matmul_batch(*args)
            _ = keepalive  # noqa: F841 - anchors buffer lifetimes

        if not batch or not m:
            return lambda: None
        return execute

    def xor_rows(
        self,
        sources: Sequence[np.ndarray],
        dst: np.ndarray,
        accumulate: bool = False,
    ) -> None:
        ffi = self._ffi
        self._lib.gf_xor_rows(
            self._row_pointers(sources, const=True),
            len(sources),
            ffi.cast("uint8_t *", dst.ctypes.data),
            int(dst.shape[0]),
            1 if accumulate else 0,
        )

    def crc32c(self, data: np.ndarray, value: int = 0) -> int:
        """CRC32C of one contiguous uint8 buffer (chains ``value``)."""
        return int(
            self._lib.crc32c_one(
                self._ffi.cast("const uint8_t *", data.ctypes.data),
                int(data.size),
                int(value) & 0xFFFFFFFF,
            )
        )

    def crc32c_rows(
        self, rows: Sequence[np.ndarray], lengths: Sequence[int]
    ) -> np.ndarray:
        """One CRC32C per row, one FFI crossing for the whole wave."""
        out = np.empty(len(rows), dtype=np.uint32)
        if not rows:
            return out
        length_arr = np.ascontiguousarray(lengths, dtype=np.uint64)
        self._lib.crc32c_rows(
            self._row_pointers(rows, const=True),
            self._ffi.cast("const uint64_t *", length_arr.ctypes.data),
            len(rows),
            self._ffi.cast("uint32_t *", out.ctypes.data),
        )
        return out
