"""Abstract interface every GF(2^8) kernel backend implements.

A backend owns two bulk kernels, both operating on sequences of
equal-length 1-d C-contiguous ``uint8`` rows (views into larger buffers
are fine; inputs and outputs must not alias):

- :meth:`KernelBackend.matmul` -- ``rows_out <- coeffs @ rows_in`` over
  GF(2^8), the operation behind ``GF256.dot``/``GF256.matmul`` and the
  packed stripe kernels;
- :meth:`KernelBackend.xor_rows` -- ``dst <- XOR of sources``, the
  operation behind the Cauchy bit-matrix strip schedules.

Backends are *semantically identical by contract*: every implementation
must be byte-for-byte equal to the numpy oracle
(:class:`~repro.gf.backends.numpy_backend.NumpyBackend`) on all inputs.
The hypothesis suites in ``tests/gf/test_backends.py`` enforce this at
the ``scale``/``dot``/``matmul`` and ``encode_batch``/``decode_batch``
layers.

Probing is a constructor concern: instantiating a backend must either
succeed (the backend is fully usable) or raise
:class:`~repro.errors.BackendUnavailable` with a reason.  Nothing else
may escape a probe -- the registry turns any unexpected error into an
unavailability record rather than breaking import of the GF layer.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import BackendUnavailable

__all__ = ["KernelBackend", "BackendUnavailable"]


class KernelBackend(abc.ABC):
    """One tier of the pluggable GF kernel engine.

    Attributes
    ----------
    name:
        Registry key (``"numpy"``, ``"cffi"``, ``"numba"``); also what
        benchmarks and ``BENCH_codec.json`` record.
    is_native:
        True when the backend's kernels run outside the numpy ufunc
        machinery (compiled C, JIT).  The GF layer only diverts work to
        a backend when this is set -- the numpy oracle's kernels *are*
        the fallback path, so dispatching to it would just add a hop.
    tier_description:
        Human-readable note on what the backend compiles down to (e.g.
        which SIMD tier the C build selected); surfaced by
        ``repro bench`` and the backend-matrix CI job.
    """

    name: str = "abstract"
    is_native: bool = False

    @property
    def tier_description(self) -> str:
        return self.name

    @abc.abstractmethod
    def matmul(
        self,
        field,
        coeffs: np.ndarray,
        rows_in: Sequence[np.ndarray],
        rows_out: Sequence[np.ndarray],
        accumulate: bool = False,
    ) -> None:
        """``rows_out <- coeffs @ rows_in`` over GF(2^8) (``^=`` when
        ``accumulate``).

        ``field`` is the :class:`~repro.gf.field.GF256` instance whose
        modulus defines the arithmetic; ``coeffs`` is an ``(m, n)``
        uint8 matrix; ``rows_in``/``rows_out`` are ``n``/``m``
        equal-length 1-d C-contiguous uint8 rows.
        """

    def matmul_batch(
        self,
        field,
        coeffs: np.ndarray,
        batch_rows_in: Sequence[Sequence[np.ndarray]],
        batch_rows_out: Sequence[Sequence[np.ndarray]],
        accumulate: bool = False,
    ) -> None:
        """Apply the *same* ``(m, n)`` matrix to a batch of row sets.

        ``batch_rows_in[b]`` / ``batch_rows_out[b]`` are the ``n``
        input / ``m`` output rows of batch element ``b``; all rows
        across the whole batch share one length.  This is the compiled
        repair-plan shape: one reduced repair matrix applied across
        every stripe of a survivor batch.  The default runs one
        :meth:`matmul` per element; native backends override it with a
        single fused call so a batch costs one FFI crossing instead of
        one per stripe.
        """
        for rows_in, rows_out in zip(batch_rows_in, batch_rows_out):
            self.matmul(field, coeffs, rows_in, rows_out, accumulate)

    def bind_matmul_batch(
        self,
        field,
        coeffs: np.ndarray,
        batch_rows_in: Sequence[Sequence[np.ndarray]],
        batch_rows_out: Sequence[Sequence[np.ndarray]],
        accumulate: bool = False,
    ):
        """Precompile a repeatable :meth:`matmul_batch` over fixed rows.

        Returns a zero-argument callable that re-applies the matrix to
        the *current contents* of the captured rows.  Callers that
        rebuild the same buffers every wave (the streaming repair
        pipeline's buffer pool, the repair benches) pay row validation
        and pointer marshalling once instead of per wave.  The default
        just closes over :meth:`matmul_batch`.
        """
        coeffs = np.ascontiguousarray(coeffs, dtype=np.uint8)
        batch_rows_in = [list(rows) for rows in batch_rows_in]
        batch_rows_out = [list(rows) for rows in batch_rows_out]

        def execute() -> None:
            self.matmul_batch(
                field, coeffs, batch_rows_in, batch_rows_out, accumulate
            )

        return execute

    @abc.abstractmethod
    def xor_rows(
        self,
        sources: Sequence[np.ndarray],
        dst: np.ndarray,
        accumulate: bool = False,
    ) -> None:
        """``dst <- sources[0] ^ sources[1] ^ ...`` (``^=`` when
        ``accumulate``).  An empty source list zero-fills (or leaves)
        ``dst``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} native={self.is_native}>"
