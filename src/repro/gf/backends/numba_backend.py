"""Optional numba-JIT kernel backend.

A middle tier for hosts with numba but no C compiler: the product-table
accumulation loop is JIT-compiled with ``nogil=True`` so, like the cffi
tier, it cooperates with the overlapped file pipeline's reader/writer
threads.  Kernels are compiled per-process on first construction; the
probe runs a tiny warm-up call so "numba is installed but cannot
compile" surfaces as :class:`~repro.errors.BackendUnavailable` at
selection time rather than as a crash on the hot path.

The inner loops are deliberately per-(row, coefficient) -- numba's typed
containers are slow to unbox, so the Python layer drives one JIT call
per term, each of which processes an entire row.  That keeps the
dispatch overhead at ``O(m * n)`` calls per matmul, negligible against
megabyte rows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import BackendUnavailable
from repro.gf.backends.base import KernelBackend


class NumbaBackend(KernelBackend):
    """JIT product-table kernels (optional tier)."""

    name = "numba"
    is_native = True

    def __init__(self):
        try:
            import numba
        except ImportError as exc:
            raise BackendUnavailable(f"numba is not installed: {exc}") from exc
        try:
            njit = numba.njit

            @njit(nogil=True, cache=False)
            def _gather_xor(row, src, dst):
                # dst ^= row[src], one product-table row at a time.
                for p in range(src.shape[0]):
                    dst[p] ^= row[src[p]]

            @njit(nogil=True, cache=False)
            def _xor_into(src, dst):
                for p in range(src.shape[0]):
                    dst[p] ^= src[p]

            probe = np.arange(32, dtype=np.uint8)
            table = np.arange(256, dtype=np.uint8)
            sink = np.zeros(32, dtype=np.uint8)
            _gather_xor(table, probe, sink)
            _xor_into(probe, sink)
        except Exception as exc:  # JIT/compile failure of any kind
            raise BackendUnavailable(
                f"numba kernels failed to compile: {type(exc).__name__}: {exc}"
            ) from exc
        self._gather_xor = _gather_xor
        self._xor_into = _xor_into

    @property
    def tier_description(self) -> str:
        return "numba JIT product-table kernels"

    def matmul(
        self,
        field,
        coeffs: np.ndarray,
        rows_in: Sequence[np.ndarray],
        rows_out: Sequence[np.ndarray],
        accumulate: bool = False,
    ) -> None:
        prod = field._prod
        for i, out in enumerate(rows_out):
            if not accumulate:
                out[...] = 0
            for j, src in enumerate(rows_in):
                coefficient = int(coeffs[i, j])
                if coefficient == 0:
                    continue
                if coefficient == 1:
                    self._xor_into(src, out)
                else:
                    self._gather_xor(
                        np.ascontiguousarray(prod[coefficient]), src, out
                    )

    def xor_rows(
        self,
        sources: Sequence[np.ndarray],
        dst: np.ndarray,
        accumulate: bool = False,
    ) -> None:
        start = 0
        if not accumulate:
            if not sources:
                dst[...] = 0
                return
            np.copyto(dst, sources[0])
            start = 1
        for source in sources[start:]:
            self._xor_into(source, dst)
