"""Structured GF(2^8) matrices used to construct erasure codes.

A systematic (k, r) MDS code is defined by a ``(k + r) x k`` generator
matrix whose top ``k x k`` block is the identity and whose every ``k x k``
submatrix is invertible.  Two standard constructions are provided:

- *Vandermonde-derived*: start from an extended ``(k + r) x k``
  Vandermonde matrix (every square submatrix of which is invertible for
  distinct evaluation points) and row-reduce its top block to the
  identity.  This preserves the any-k-rows-invertible property and is the
  construction used by classic Reed-Solomon deployments such as the
  HDFS-RAID codec studied in the paper.
- *Cauchy*: the parity block is a Cauchy matrix, all of whose square
  submatrices are invertible by construction.

Both yield storage-optimal (MDS) codes; tests verify the MDS property
exhaustively for the paper's parameters.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import CodeConstructionError
from repro.gf.field import DEFAULT_FIELD, GF256
from repro.gf.linalg import gf_inv_matrix, gf_matmul


def _field(field: Optional[GF256]) -> GF256:
    return field if field is not None else DEFAULT_FIELD


def vandermonde_matrix(
    rows: int,
    cols: int,
    points: Optional[Sequence[int]] = None,
    field: Optional[GF256] = None,
) -> np.ndarray:
    """Vandermonde matrix ``V[i, j] = points[i] ** j`` over GF(2^8).

    Parameters
    ----------
    rows, cols:
        Matrix dimensions.  ``rows`` distinct evaluation points are
        required, so ``rows <= 256``.
    points:
        Optional explicit evaluation points; defaults to ``0, 1, ..,
        rows - 1``.  Points must be distinct.
    """
    gf = _field(field)
    if rows > 256:
        raise CodeConstructionError(
            f"GF(256) Vandermonde supports at most 256 rows, got {rows}"
        )
    if points is None:
        points = list(range(rows))
    if len(points) != rows:
        raise CodeConstructionError(
            f"expected {rows} evaluation points, got {len(points)}"
        )
    if len(set(points)) != rows:
        raise CodeConstructionError("Vandermonde evaluation points must be distinct")
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for i, point in enumerate(points):
        for j in range(cols):
            matrix[i, j] = gf.pow(int(point), j)
    return matrix


def cauchy_matrix(
    rows: int,
    cols: int,
    x_points: Optional[Sequence[int]] = None,
    y_points: Optional[Sequence[int]] = None,
    field: Optional[GF256] = None,
) -> np.ndarray:
    """Cauchy matrix ``C[i, j] = 1 / (x[i] + y[j])`` over GF(2^8).

    All ``x`` and ``y`` points must be distinct from each other and
    pairwise across the two sets (so no denominator is zero).  Every
    square submatrix of a Cauchy matrix is invertible.
    """
    gf = _field(field)
    if x_points is None:
        x_points = list(range(cols, cols + rows))
    if y_points is None:
        y_points = list(range(cols))
    if len(x_points) != rows or len(y_points) != cols:
        raise CodeConstructionError("Cauchy point counts must match dimensions")
    if len(set(x_points) | set(y_points)) != rows + cols:
        raise CodeConstructionError("Cauchy points must be pairwise distinct")
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for i, x in enumerate(x_points):
        for j, y in enumerate(y_points):
            matrix[i, j] = gf.inv(gf.add(int(x), int(y)))
    return matrix


def systematic_generator_from_vandermonde(
    k: int, r: int, field: Optional[GF256] = None
) -> np.ndarray:
    """Systematic ``(k + r) x k`` MDS generator via Vandermonde reduction.

    The extended Vandermonde matrix on ``k + r`` distinct points has every
    ``k x k`` submatrix invertible; multiplying on the right by the
    inverse of its top block keeps that property while making the top
    block the identity.
    """
    if k < 1 or r < 0:
        raise CodeConstructionError(f"invalid code parameters k={k}, r={r}")
    if k + r > 256:
        raise CodeConstructionError(
            f"GF(256) supports stripes of at most 256 units, got {k + r}"
        )
    vander = vandermonde_matrix(k + r, k, field=field)
    top_inverse = gf_inv_matrix(vander[:k], field)
    return gf_matmul(vander, top_inverse, field)


def systematic_generator_from_cauchy(
    k: int, r: int, field: Optional[GF256] = None
) -> np.ndarray:
    """Systematic ``(k + r) x k`` MDS generator with a Cauchy parity block."""
    if k < 1 or r < 0:
        raise CodeConstructionError(f"invalid code parameters k={k}, r={r}")
    if k + r > 256:
        raise CodeConstructionError(
            f"GF(256) supports stripes of at most 256 units, got {k + r}"
        )
    generator = np.zeros((k + r, k), dtype=np.uint8)
    generator[:k] = np.eye(k, dtype=np.uint8)
    if r:
        generator[k:] = cauchy_matrix(r, k, field=field)
    return generator
