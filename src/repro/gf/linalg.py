"""Linear algebra over GF(2^8).

Erasure decoding is linear algebra: the surviving symbols of a stripe are
known linear combinations of the data symbols, so recovering erased data
means inverting (a submatrix of) the generator matrix.  This module
implements the small dense-matrix kernel that every code in the library
shares: multiplication, Gauss-Jordan inversion, rank, and linear solving,
all element-wise over GF(2^8).

Matrices are numpy ``uint8`` arrays; dimensions in this library are tiny
(at most ``k + r`` per side, typically 14), so clarity is preferred over
micro-optimisation -- the bulk data path (multiplying a decoding matrix
into megabytes of payload) is the vectorised :func:`gf_matmul`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import LinearAlgebraError
from repro.gf.field import DEFAULT_FIELD, GF256


def _field(field: Optional[GF256]) -> GF256:
    return field if field is not None else DEFAULT_FIELD


def gf_matmul(
    a: np.ndarray,
    b: np.ndarray,
    field: Optional[GF256] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Matrix product over GF(2^8).

    ``a`` has shape ``(m, n)`` and ``b`` shape ``(n, p)``; the result has
    shape ``(m, p)``.  ``b`` may be a wide payload matrix (``p`` in the
    megabytes); the product runs through the field's fused
    gather-then-XOR kernel (:meth:`~repro.gf.field.GF256.matmul`), which
    processes cache-sized column chunks.  ``out``, when given, is a
    preallocated ``uint8`` result buffer (it must not alias ``b``).
    """
    gf = _field(field)
    a = np.atleast_2d(np.asarray(a, dtype=np.uint8))
    b = np.atleast_2d(np.asarray(b, dtype=np.uint8))
    if a.shape[1] != b.shape[0]:
        raise LinearAlgebraError(
            f"cannot multiply {a.shape} by {b.shape}: inner dimensions differ"
        )
    return gf.matmul(a, b, out=out)


def gf_matmul_reference(
    a: np.ndarray, b: np.ndarray, field: Optional[GF256] = None
) -> np.ndarray:
    """Reference matrix product: scalar row loop over the log/antilog path.

    This is the pre-kernel implementation, kept so property tests can
    assert the fused :func:`gf_matmul` is byte-identical to it.
    """
    gf = _field(field)
    a = np.atleast_2d(np.asarray(a, dtype=np.uint8))
    b = np.atleast_2d(np.asarray(b, dtype=np.uint8))
    if a.shape[1] != b.shape[0]:
        raise LinearAlgebraError(
            f"cannot multiply {a.shape} by {b.shape}: inner dimensions differ"
        )
    m, n = a.shape
    p = b.shape[1]
    result = np.zeros((m, p), dtype=np.uint8)
    for i in range(m):
        for j in range(n):
            coefficient = int(a[i, j])
            if coefficient:
                np.bitwise_xor(
                    result[i],
                    gf.scale_reference(coefficient, b[j]),
                    out=result[i],
                )
    return result


def gf_inv_matrix(matrix: np.ndarray, field: Optional[GF256] = None) -> np.ndarray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination.

    Raises
    ------
    LinearAlgebraError
        If the matrix is not square or is singular.
    """
    gf = _field(field)
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise LinearAlgebraError(f"cannot invert non-square matrix {matrix.shape}")
    n = matrix.shape[0]
    work = matrix.astype(np.uint8).copy()
    inverse = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot_row = None
        for row in range(col, n):
            if work[row, col]:
                pivot_row = row
                break
        if pivot_row is None:
            raise LinearAlgebraError("matrix is singular over GF(256)")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        pivot_inv = gf.inv(int(work[col, col]))
        work[col] = gf.scale(pivot_inv, work[col])
        inverse[col] = gf.scale(pivot_inv, inverse[col])
        for row in range(n):
            if row != col and work[row, col]:
                factor = int(work[row, col])
                gf.addmul(work[row], factor, work[col])
                gf.addmul(inverse[row], factor, inverse[col])
    return inverse


def gf_rank(matrix: np.ndarray, field: Optional[GF256] = None) -> int:
    """Rank of a matrix over GF(2^8) via row echelon reduction."""
    gf = _field(field)
    work = np.atleast_2d(np.asarray(matrix, dtype=np.uint8)).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        pivot_row = None
        for row in range(rank, rows):
            if work[row, col]:
                pivot_row = row
                break
        if pivot_row is None:
            continue
        if pivot_row != rank:
            work[[rank, pivot_row]] = work[[pivot_row, rank]]
        pivot_inv = gf.inv(int(work[rank, col]))
        work[rank] = gf.scale(pivot_inv, work[rank])
        for row in range(rows):
            if row != rank and work[row, col]:
                gf.addmul(work[row], int(work[row, col]), work[rank])
        rank += 1
        if rank == rows:
            break
    return rank


def gf_solve(
    a: np.ndarray, b: np.ndarray, field: Optional[GF256] = None
) -> np.ndarray:
    """Solve ``a @ x = b`` over GF(2^8) for square non-singular ``a``.

    ``b`` may be a vector or a (possibly very wide) matrix of byte
    streams; the solution has the same trailing shape as ``b``.
    """
    a = np.asarray(a, dtype=np.uint8)
    b_arr = np.asarray(b, dtype=np.uint8)
    vector_input = b_arr.ndim == 1
    if vector_input:
        b_arr = b_arr.reshape(-1, 1)
    if a.shape[0] != b_arr.shape[0]:
        raise LinearAlgebraError(
            f"incompatible shapes for solve: {a.shape} and {b_arr.shape}"
        )
    solution = gf_matmul(gf_inv_matrix(a, field), b_arr, field)
    return solution[:, 0] if vector_input else solution


def gf_is_invertible(matrix: np.ndarray, field: Optional[GF256] = None) -> bool:
    """Return True when ``matrix`` is square and invertible over GF(2^8)."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.uint8))
    if matrix.shape[0] != matrix.shape[1]:
        return False
    return gf_rank(matrix, field) == matrix.shape[0]
