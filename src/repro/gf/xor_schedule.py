"""XOR-schedule compiler for bit-matrix codes (CSE'd strip schedules).

:func:`repro.gf.bitmatrix.xor_encode_strips` applies a binary matrix
row by row with ``strips[sources]`` fancy-indexing -- every output strip
materialises a gathered copy of its sources before reducing.  For the
Cauchy matrices of :class:`~repro.codes.crs.CauchyBitmatrixRSCode`
(~36 ones per parity row) that copies ~3.6x the stripe per encode.

This module compiles a binary matrix *once* into an explicit
:class:`XorSchedule`:

- output rows become sequential in-place XOR chains over source views
  (no gather copies at all), executed through the active kernel
  backend's ``xor_rows`` when one is native;
- common subexpressions are eliminated first: the classic greedy pass
  from the XOR-scheduling literature repeatedly extracts the pair of
  columns that co-occurs in the most rows into a shared temporary
  strip.  Each extraction with ``count`` co-occurrences trades
  ``count`` XORs for one, so the schedule's XOR count only ever
  decreases; compilation stops when no pair appears twice.

Schedules are pure data (tuples of indices), cheap to memoise next to
the decode-matrix caches, and byte-identical to ``xor_encode_strips``
by construction -- the hypothesis suite in
``tests/gf/test_xor_schedule.py`` pins that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import FieldError
from repro.observability import metrics

__all__ = ["XorSchedule", "compile_xor_schedule"]


@dataclass(frozen=True)
class XorSchedule:
    """A compiled XOR program equivalent to one binary matrix.

    Attributes
    ----------
    in_rows, out_rows:
        Shape of the source matrix: the schedule consumes ``in_rows``
        strips and produces ``out_rows``.
    temp_ops:
        Shared subexpressions, in dependency order.  Entry ``t`` XORs
        two operands into temporary strip ``in_rows + t``; operand
        indices below ``in_rows`` name input strips, at or above name
        earlier temporaries.
    out_ops:
        Per output row, the operand indices (same addressing) XORed
        together; an empty tuple means the row is all zeros.
    raw_xors, scheduled_xors:
        The classic Cauchy-RS cost metric (XORs per strip-length)
        before and after CSE; ``scheduled_xors <= raw_xors`` always.
    """

    in_rows: int
    out_rows: int
    temp_ops: Tuple[Tuple[int, int], ...]
    out_ops: Tuple[Tuple[int, ...], ...]
    raw_xors: int
    scheduled_xors: int

    def apply(
        self, strips: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Run the program: ``(in_rows, L) -> (out_rows, L)`` strips."""
        strips = np.asarray(strips, dtype=np.uint8)
        if strips.ndim != 2 or strips.shape[0] != self.in_rows:
            raise FieldError(
                f"schedule of {self.in_rows} inputs cannot consume "
                f"strips of shape {strips.shape}"
            )
        length = strips.shape[1]
        if out is None:
            out = np.empty((self.out_rows, length), dtype=np.uint8)
        elif out.shape != (self.out_rows, length) or out.dtype != np.uint8:
            raise FieldError(
                f"schedule out= must be uint8 of shape "
                f"({self.out_rows}, {length})"
            )
        temps = (
            np.empty((len(self.temp_ops), length), dtype=np.uint8)
            if self.temp_ops
            else None
        )

        def operand(index: int) -> np.ndarray:
            if index < self.in_rows:
                return strips[index]
            return temps[index - self.in_rows]

        for t, (a, b) in enumerate(self.temp_ops):
            np.bitwise_xor(operand(a), operand(b), out=temps[t])
        from repro.gf import backends
        from repro.gf.field import NATIVE_MIN_BYTES

        # Marshalling rows across the FFI costs more than it saves on
        # short strips; the numpy XOR loop is the right kernel there.
        backend = (
            backends.native_backend() if length >= NATIVE_MIN_BYTES else None
        )
        for i, sources in enumerate(self.out_ops):
            dst = out[i]
            if not sources:
                dst[...] = 0
                continue
            rows = [operand(s) for s in sources]
            if (
                backend is not None
                and dst.flags.c_contiguous
                and all(row.flags.c_contiguous for row in rows)
            ):
                backend.xor_rows(rows, dst)
            else:
                np.copyto(dst, rows[0])
                for row in rows[1:]:
                    np.bitwise_xor(dst, row, out=dst)
        return out


def compile_xor_schedule(matrix: np.ndarray) -> XorSchedule:
    """Compile a binary matrix into a CSE'd :class:`XorSchedule`.

    Greedy pairwise extraction: count pair co-occurrence over all
    current columns (inputs and already-extracted temporaries) with one
    boolean matmul per round, extract the best pair while any appears
    in two or more rows.  Ties break deterministically (lowest column
    pair in row-major order), so schedules -- and therefore encoded
    bytes and benchmarks -- are reproducible run to run.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise FieldError(f"expected a 2-d binary matrix, got {matrix.shape}")
    rows = matrix.astype(bool)
    out_rows, in_rows = rows.shape
    ones = int(rows.sum())
    nonempty = int((rows.sum(axis=1) > 0).sum())
    raw_xors = max(ones - nonempty, 0)

    temp_ops = []
    usage = rows.copy()  # (out_rows, in_rows + temps) operand usage
    while usage.shape[0] > 1:
        counts = usage.astype(np.float32)
        co = counts.T @ counts  # pair co-occurrence across rows
        co = np.triu(co, k=1)
        best = int(np.argmax(co))
        a, b = np.unravel_index(best, co.shape)
        if co[a, b] < 2:
            break
        both = usage[:, a] & usage[:, b]
        usage[both, a] = False
        usage[both, b] = False
        usage = np.column_stack([usage, both])
        temp_ops.append((int(a), int(b)))

    out_ops = tuple(
        tuple(int(j) for j in np.flatnonzero(usage[i]))
        for i in range(out_rows)
    )
    scheduled_xors = len(temp_ops) + sum(
        max(len(sources) - 1, 0) for sources in out_ops
    )
    schedule = XorSchedule(
        in_rows=in_rows,
        out_rows=out_rows,
        temp_ops=tuple(temp_ops),
        out_ops=out_ops,
        raw_xors=raw_xors,
        scheduled_xors=min(scheduled_xors, raw_xors),
    )
    m = metrics()
    if m is not None:
        m.inc("gf.xor_schedule.compiled")
        m.inc("gf.xor_schedule.raw_xors", schedule.raw_xors)
        m.inc("gf.xor_schedule.scheduled_xors", schedule.scheduled_xors)
    return schedule
