"""Packed gather tables for batched GF(2^8) kernels.

The PR-1 kernels (:meth:`repro.gf.field.GF256.matmul`) gather one
product-table row per (output row, input row) pair -- ``m * n`` gathers
per matrix application.  The batched data plane amortises table
construction across thousands of stripe widths' worth of bytes, which
makes two denser layouts profitable:

- :class:`PackedMatmul` packs **pairs of input columns** and **up to
  four output rows** into one ``(65536,)`` ``uint32`` table per
  (row-group, column-pair).  A 16-bit index is built from two adjacent
  input bytes; a single ``np.take`` then yields four output bytes at
  once, so an ``(m, n)`` matrix needs ``ceil(m/4) * ceil(n/2)`` gathers
  per chunk instead of ``m * n``.
- :class:`PackedRow` packs a **single output row** as per-column
  ``(65536,)`` ``uint16`` tables indexed by the source rows *viewed* as
  ``uint16`` -- the index is free (no arithmetic), giving ``n`` gathers
  plus ``n - 1`` XORs per chunk for a repair row.

Both classes are byte-identical to :func:`repro.gf.linalg.gf_matmul` /
:meth:`GF256.dot` (property-tested in ``tests/gf/test_packed.py``) and
are pure lookups -- no log/antilog arithmetic on the hot path.

When a native kernel backend is active (:mod:`repro.gf.backends`), both
classes skip their table builds entirely and delegate ``apply`` to the
backend's fused matmul -- the packed-table layouts only exist to beat
numpy's one-gather-per-coefficient cost, which a compiled SIMD kernel
beats outright.  The numpy table path is built lazily on first need and
remains the byte-identical fallback for rows the backend declines
(non-contiguous views).

Endianness convention (little-endian hosts; numpy ``uint16`` views):
the **low** byte of a 16-bit index corresponds to the **first** of the
two packed positions.  Tables are built with ``index & 255`` mapping to
the even column and ``index >> 8`` to the odd column, and indices are
assembled as ``odd_byte * 256 | even_byte`` to match.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import FieldError
from repro.gf.field import DEFAULT_FIELD, GF256

#: Elements per kernel chunk.  Smaller than the scalar kernels'
#: ``KERNEL_CHUNK`` because each chunk touches a 256 KiB uint32 table
#: per row-group/column-pair; 32 Ki indices keeps index + scratch + a
#: hot table slice resident in L2.
PACKED_CHUNK = 1 << 15

_ROWS_PER_GROUP = 4
_COLS_PER_PAIR = 2


def _as_rows(rows: Sequence[np.ndarray], length: Optional[int]) -> int:
    """Validate a sequence of equal-length 1-d uint8 rows; return length."""
    for row in rows:
        if row.dtype != np.uint8 or row.ndim != 1:
            raise FieldError("packed kernels take 1-d uint8 rows")
        if length is None:
            length = row.shape[0]
        elif row.shape[0] != length:
            raise FieldError(
                f"ragged packed-kernel rows: {row.shape[0]} != {length}"
            )
    if length is None:
        raise FieldError("packed kernels need at least one row")
    return length


class PackedMatmul:
    """Pair-of-columns x four-rows packed tables for a fixed matrix.

    Parameters
    ----------
    matrix:
        ``(m, n)`` uint8 matrix over GF(2^8), captured by value at
        construction (table build cost: ``ceil(m/4) * ceil(n/2)`` passes
        over a 64 Ki table; ~256 KiB of tables per group/pair cell).
    """

    def __init__(self, matrix: np.ndarray, field: Optional[GF256] = None):
        gf = field if field is not None else DEFAULT_FIELD
        matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2 or matrix.size == 0:
            raise FieldError(
                f"PackedMatmul needs a non-empty 2-d matrix, got {matrix.shape}"
            )
        self.shape = matrix.shape
        self.matrix = matrix
        self._field = gf
        from repro.gf import backends

        self._backend = backends.native_backend()
        self._pairs: Optional[int] = None
        self._groups: Optional[list] = None
        if self._backend is None:
            self._build_tables()

    def __getstate__(self):
        """Pickle without the backend handle (and its C pointers).

        The plan rehydrates against whatever backend the *receiving*
        process selects -- a pool worker may not share the parent's
        tiers.  Packed tables travel if already built; otherwise they
        rebuild lazily on first fallback use.
        """
        state = dict(self.__dict__)
        state["_backend"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        from repro.gf import backends

        self._backend = backends.native_backend()

    def _build_tables(self) -> None:
        """Numpy packed tables, deferred while a native backend serves."""
        matrix, gf = self.matrix, self._field
        m, n = matrix.shape
        prod = gf._prod
        index = np.arange(1 << 16, dtype=np.uint32)
        low = (index & 0xFF).astype(np.uint8)
        high = (index >> 8).astype(np.uint8)
        self._pairs = (n + _COLS_PER_PAIR - 1) // _COLS_PER_PAIR
        self._groups = []
        for g_start in range(0, m, _ROWS_PER_GROUP):
            g_rows = range(g_start, min(g_start + _ROWS_PER_GROUP, m))
            tables = np.zeros((self._pairs, 1 << 16), dtype=np.uint32)
            for p in range(self._pairs):
                even, odd = _COLS_PER_PAIR * p, _COLS_PER_PAIR * p + 1
                for lane, row in enumerate(g_rows):
                    cell = prod[matrix[row, even]][low]
                    if odd < n:
                        cell = cell ^ prod[matrix[row, odd]][high]
                    tables[p] |= cell.astype(np.uint32) << np.uint32(8 * lane)
            self._groups.append((len(g_rows), tables))

    def apply(
        self,
        rows_in: Sequence[np.ndarray],
        rows_out: Sequence[np.ndarray],
        accumulate: bool = False,
    ) -> None:
        """``rows_out <- matrix @ rows_in`` (or ``^=`` when accumulating).

        ``rows_in`` / ``rows_out`` are sequences of 1-d uint8 arrays of a
        common length (views into larger buffers are fine; input and
        output must not alias).
        """
        m, n = self.shape
        if len(rows_in) != n or len(rows_out) != m:
            raise FieldError(
                f"PackedMatmul{self.shape} got {len(rows_in)} inputs / "
                f"{len(rows_out)} outputs"
            )
        length = _as_rows(rows_in, None)
        _as_rows(rows_out, length)
        if length == 0:
            return
        if (
            self._backend is not None
            and all(row.flags.c_contiguous for row in rows_in)
            and all(row.flags.c_contiguous for row in rows_out)
        ):
            self._backend.matmul(
                self._field, self.matrix, rows_in, rows_out, accumulate
            )
            return
        if self._groups is None:
            self._build_tables()
        chunk = min(PACKED_CHUNK, length)
        idx = np.empty(chunk, dtype=np.uint16)
        acc = np.empty(chunk, dtype=np.uint32)
        scratch = np.empty(chunk, dtype=np.uint32)
        for start in range(0, length, PACKED_CHUNK):
            stop = min(start + PACKED_CHUNK, length)
            size = stop - start
            idx_c, acc_c, sc_c = idx[:size], acc[:size], scratch[:size]
            out_lane = 0
            for lanes, tables in self._groups:
                for p in range(self._pairs):
                    even, odd = _COLS_PER_PAIR * p, _COLS_PER_PAIR * p + 1
                    if odd < n:
                        np.multiply(
                            rows_in[odd][start:stop],
                            np.uint16(256),
                            out=idx_c,
                            casting="unsafe",
                        )
                        np.bitwise_or(
                            idx_c,
                            rows_in[even][start:stop],
                            out=idx_c,
                            casting="unsafe",
                        )
                    else:
                        idx_c[:] = rows_in[even][start:stop]
                    target = acc_c if p == 0 else sc_c
                    np.take(tables[p], idx_c, out=target)
                    if p != 0:
                        np.bitwise_xor(acc_c, sc_c, out=acc_c)
                unpacked = acc_c.view(np.uint8).reshape(size, 4)
                for lane in range(lanes):
                    out_seg = rows_out[out_lane + lane][start:stop]
                    if accumulate:
                        np.bitwise_xor(
                            out_seg, unpacked[:, lane], out=out_seg
                        )
                    else:
                        out_seg[:] = unpacked[:, lane]
                out_lane += lanes

    def apply_batch(
        self,
        batch_rows_in: Sequence[Sequence[np.ndarray]],
        batch_rows_out: Sequence[Sequence[np.ndarray]],
        accumulate: bool = False,
    ) -> None:
        """Apply the matrix to every row set of a survivor batch.

        One fused backend call when a native backend serves and every
        row is contiguous; otherwise a per-element :meth:`apply` loop
        (the byte-identical numpy oracle).
        """
        if self._backend is not None and _batch_contiguous(
            batch_rows_in, batch_rows_out
        ):
            self._backend.matmul_batch(
                self._field, self.matrix, batch_rows_in, batch_rows_out,
                accumulate,
            )
            return
        for rows_in, rows_out in zip(batch_rows_in, batch_rows_out):
            self.apply(rows_in, rows_out, accumulate)

    def bind_batch(
        self,
        batch_rows_in: Sequence[Sequence[np.ndarray]],
        batch_rows_out: Sequence[Sequence[np.ndarray]],
        accumulate: bool = False,
    ):
        """Precompiled executor over fixed buffers; see
        :meth:`KernelBackend.bind_matmul_batch`."""
        if self._backend is not None and _batch_contiguous(
            batch_rows_in, batch_rows_out
        ):
            return self._backend.bind_matmul_batch(
                self._field, self.matrix, batch_rows_in, batch_rows_out,
                accumulate,
            )
        batch_rows_in = [list(rows) for rows in batch_rows_in]
        batch_rows_out = [list(rows) for rows in batch_rows_out]

        def execute() -> None:
            for rows_in, rows_out in zip(batch_rows_in, batch_rows_out):
                self.apply(rows_in, rows_out, accumulate)

        return execute

    def matmul(self, data: np.ndarray, out: Optional[np.ndarray] = None):
        """Convenience 2-d wrapper: ``(n, L) -> (m, L)``."""
        data = np.asarray(data, dtype=np.uint8)
        if out is None:
            out = np.empty((self.shape[0], data.shape[1]), dtype=np.uint8)
        self.apply(list(data), list(out))
        return out


def _batch_contiguous(
    batch_rows_in: Sequence[Sequence[np.ndarray]],
    batch_rows_out: Sequence[Sequence[np.ndarray]],
) -> bool:
    """True when every row across the batch is backend-eligible."""
    return all(
        row.flags.c_contiguous
        for rows in batch_rows_in
        for row in rows
    ) and all(
        row.flags.c_contiguous
        for rows in batch_rows_out
        for row in rows
    )


def _u16_viewable(array: np.ndarray) -> bool:
    return (
        array.flags.c_contiguous
        and array.ctypes.data % 2 == 0
    )


class PackedRow:
    """Half-word packed tables for one GF(2^8) linear combination.

    Used for single-row repairs: the rebuilt unit is a fixed linear
    combination of ``n`` survivor rows, and each survivor row re-read as
    ``uint16`` *is* the gather index -- two bytes of the same source per
    lookup, no index arithmetic at all.  Zero coefficients are skipped;
    unit coefficients XOR the source directly instead of gathering.

    The fast path needs every row (and the output) to be C-contiguous
    with an even byte offset and an even common length; anything else
    falls back to plain product-table accumulation (still exact).
    """

    def __init__(self, coefficients: np.ndarray, field: Optional[GF256] = None):
        gf = field if field is not None else DEFAULT_FIELD
        coefficients = np.ascontiguousarray(coefficients, dtype=np.uint8)
        if coefficients.ndim != 2 and coefficients.ndim != 1:
            raise FieldError(
                f"PackedRow needs a coefficient vector, got {coefficients.shape}"
            )
        coefficients = coefficients.reshape(-1)
        self.coefficients = coefficients
        self._field = gf
        self._prod = gf._prod
        from repro.gf import backends

        self._backend = backends.native_backend()
        self._terms: Optional[list] = None
        if self._backend is None:
            self._build_terms()

    def __getstate__(self):
        """Pickle without the backend handle; see PackedMatmul."""
        state = dict(self.__dict__)
        state["_backend"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        from repro.gf import backends

        self._backend = backends.native_backend()

    def _build_terms(self) -> None:
        """Numpy half-word tables, deferred while a native backend serves."""
        coefficients = self.coefficients
        index = np.arange(1 << 16, dtype=np.uint32)
        low = (index & 0xFF).astype(np.uint8)
        high = (index >> 8).astype(np.uint8)
        # (source index, table-or-None); None marks a unit coefficient.
        self._terms = []
        for j, coeff in enumerate(coefficients):
            if coeff == 0:
                continue
            if coeff == 1:
                self._terms.append((j, None))
                continue
            table = self._prod[coeff][low].astype(np.uint16)
            table |= self._prod[coeff][high].astype(np.uint16) << np.uint16(8)
            self._terms.append((j, table))

    def apply(
        self,
        rows: Sequence[np.ndarray],
        out: np.ndarray,
        accumulate: bool = False,
    ) -> None:
        """``out <- sum_j coeff[j] * rows[j]`` (``^=`` when accumulating)."""
        if len(rows) != self.coefficients.shape[0]:
            raise FieldError(
                f"PackedRow of {self.coefficients.shape[0]} coefficients "
                f"got {len(rows)} rows"
            )
        length = _as_rows([out], _as_rows(rows, None) if rows else None)
        if length == 0:
            return
        if not np.any(self.coefficients):
            if not accumulate:
                out[:] = 0
            return
        if (
            self._backend is not None
            and out.flags.c_contiguous
            and all(row.flags.c_contiguous for row in rows)
        ):
            self._backend.matmul(
                self._field,
                self.coefficients.reshape(1, -1),
                rows,
                [out],
                accumulate,
            )
            return
        if self._terms is None:
            self._build_terms()
        fast = (
            length % 2 == 0
            and _u16_viewable(out)
            and all(_u16_viewable(rows[j]) for j, _ in self._terms)
        )
        if not fast:
            self._apply_bytewise(rows, out, accumulate)
            return
        out16 = out.view(np.uint16)
        half = length // 2
        chunk = min(PACKED_CHUNK, half)
        scratch = np.empty(chunk, dtype=np.uint16)
        for start in range(0, half, PACKED_CHUNK):
            stop = min(start + PACKED_CHUNK, half)
            sc_c = scratch[: stop - start]
            out_seg = out16[start:stop]
            for position, (j, table) in enumerate(self._terms):
                src = rows[j].view(np.uint16)[start:stop]
                first = position == 0 and not accumulate
                if table is None:
                    if first:
                        out_seg[:] = src
                    else:
                        np.bitwise_xor(out_seg, src, out=out_seg)
                else:
                    if first:
                        np.take(table, src, out=out_seg)
                    else:
                        np.take(table, src, out=sc_c)
                        np.bitwise_xor(out_seg, sc_c, out=out_seg)

    def apply_batch(
        self,
        batch_rows: Sequence[Sequence[np.ndarray]],
        batch_outs: Sequence[np.ndarray],
        accumulate: bool = False,
    ) -> None:
        """Rebuild one output row per batch element, fused when native."""
        if self._backend is not None and _batch_contiguous(
            batch_rows, [[out] for out in batch_outs]
        ):
            self._backend.matmul_batch(
                self._field,
                self.coefficients.reshape(1, -1),
                batch_rows,
                [[out] for out in batch_outs],
                accumulate,
            )
            return
        for rows, out in zip(batch_rows, batch_outs):
            self.apply(rows, out, accumulate)

    def bind_batch(
        self,
        batch_rows: Sequence[Sequence[np.ndarray]],
        batch_outs: Sequence[np.ndarray],
        accumulate: bool = False,
    ):
        """Precompiled executor over fixed buffers; see
        :meth:`KernelBackend.bind_matmul_batch`."""
        batch_rows_out = [[out] for out in batch_outs]
        if self._backend is not None and _batch_contiguous(
            batch_rows, batch_rows_out
        ):
            return self._backend.bind_matmul_batch(
                self._field,
                self.coefficients.reshape(1, -1),
                batch_rows,
                batch_rows_out,
                accumulate,
            )
        batch_rows = [list(rows) for rows in batch_rows]
        batch_outs = list(batch_outs)

        def execute() -> None:
            for rows, out in zip(batch_rows, batch_outs):
                self.apply(rows, out, accumulate)

        return execute

    def _apply_bytewise(
        self,
        rows: Sequence[np.ndarray],
        out: np.ndarray,
        accumulate: bool,
    ) -> None:
        """Exact fallback for odd / unaligned rows: plain u8 gathers."""
        prod = self._prod
        for position, (j, table) in enumerate(self._terms):
            coeff = int(self.coefficients[j])
            term = rows[j] if coeff == 1 else prod[coeff][rows[j]]
            if position == 0 and not accumulate:
                out[:] = term
            else:
                np.bitwise_xor(out, term, out=out)
