"""Finite-field arithmetic over GF(2^8).

This subpackage is the mathematical substrate for every erasure code in the
library.  It provides:

- :mod:`repro.gf.tables` -- construction of log/antilog tables for GF(2^8);
- :mod:`repro.gf.field` -- vectorised scalar and array field operations
  (:class:`~repro.gf.field.GF256`);
- :mod:`repro.gf.linalg` -- linear algebra over the field (matrix product,
  inversion, rank, linear solve);
- :mod:`repro.gf.matrices` -- structured matrices used by code
  constructions (Vandermonde, Cauchy, systematic generator matrices);
- :mod:`repro.gf.polynomial` -- univariate polynomials over GF(2^8);
- :mod:`repro.gf.backends` -- pluggable kernel backends (compiled C via
  cffi, numba JIT, numpy oracle) behind the bulk field operations;
- :mod:`repro.gf.xor_schedule` -- CSE'd XOR schedules compiled from the
  binary matrices of :mod:`repro.gf.bitmatrix`.

All heavy operations are vectorised with numpy: a "symbol" is one byte and
bulk payloads are ``uint8`` arrays, matching how production Reed-Solomon
codecs (e.g. the HDFS-RAID codec studied in the paper) treat data.
"""

from repro.gf.field import GF256, DEFAULT_FIELD
from repro.gf.linalg import (
    gf_inv_matrix,
    gf_matmul,
    gf_matmul_reference,
    gf_rank,
    gf_solve,
)
from repro.gf.matrices import (
    cauchy_matrix,
    systematic_generator_from_cauchy,
    systematic_generator_from_vandermonde,
    vandermonde_matrix,
)
from repro.gf.polynomial import GFPolynomial

__all__ = [
    "GF256",
    "DEFAULT_FIELD",
    "gf_matmul",
    "gf_matmul_reference",
    "gf_inv_matrix",
    "gf_rank",
    "gf_solve",
    "vandermonde_matrix",
    "cauchy_matrix",
    "systematic_generator_from_vandermonde",
    "systematic_generator_from_cauchy",
    "GFPolynomial",
]
