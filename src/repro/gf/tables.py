"""Log/antilog table construction for GF(2^8).

GF(2^8) is represented as polynomials over GF(2) modulo an irreducible
polynomial of degree 8.  The default modulus is ``x^8 + x^4 + x^3 + x^2 + 1``
(``0x11D``), the polynomial used by most storage codecs (Jerasure, ISA-L,
the original Reed-Solomon deployment in HDFS-RAID).  The element ``x``
(integer 2) is a generator of the multiplicative group for this modulus, so
every non-zero element is ``2**i`` for a unique ``i`` in ``[0, 254]``; the
tables built here let multiplication and division run as table lookups,
which numpy then vectorises over whole blocks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FieldError

#: Default irreducible polynomial: x^8 + x^4 + x^3 + x^2 + 1.
DEFAULT_PRIMITIVE_POLY = 0x11D

#: Order of the multiplicative group of GF(2^8).
GROUP_ORDER = 255

#: Number of field elements.
FIELD_SIZE = 256

#: Length of the antilog table.  It wraps the 255-cycle enough times that
#: ``exp[log[a] + log[b]]`` is always in range even when one operand is the
#: zero sentinel (whose "log" is :data:`ZERO_LOG_SENTINEL`); zero operands
#: are masked out by the caller afterwards.
EXP_TABLE_LEN = 1024

#: Sentinel stored in ``log[0]``.  ``log[0]`` is mathematically undefined;
#: the sentinel merely keeps table lookups in bounds until the zero mask is
#: applied.
ZERO_LOG_SENTINEL = 2 * GROUP_ORDER + 1

#: Irreducible degree-8 polynomials over GF(2) that have 2 as a primitive
#: element (a non-exhaustive, commonly used subset).
KNOWN_PRIMITIVE_POLYS = (0x11D, 0x12B, 0x12D, 0x14D, 0x15F, 0x163, 0x165)


def _carryless_multiply_mod(a: int, b: int, modulus: int) -> int:
    """Multiply two field elements bit-by-bit, reducing modulo ``modulus``.

    This is the slow reference implementation used only to *build* the
    tables; all runtime multiplication goes through the tables.
    """
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= modulus
    return result


def build_tables(primitive_poly: int = DEFAULT_PRIMITIVE_POLY) -> Tuple[np.ndarray, np.ndarray]:
    """Build (exp, log) tables for GF(2^8).

    Parameters
    ----------
    primitive_poly:
        The irreducible modulus polynomial, as an integer with bit ``i``
        set when the coefficient of ``x^i`` is 1.  It must be of degree 8
        and the element 2 must generate the multiplicative group.

    Returns
    -------
    (exp, log):
        ``exp`` is a ``uint8`` array of length :data:`EXP_TABLE_LEN` with
        the 255-element antilog cycle repeated, so ``exp[log[a] + log[b]]``
        needs no explicit ``% 255``.  ``log`` is an ``int32`` array of 256
        entries; ``log[0]`` holds :data:`ZERO_LOG_SENTINEL` and must never
        be interpreted as a logarithm.
    """
    if primitive_poly >> 8 != 1:
        raise FieldError(
            f"primitive polynomial {primitive_poly:#x} is not of degree 8"
        )
    cycle = np.zeros(GROUP_ORDER, dtype=np.uint8)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    value = 1
    for power in range(GROUP_ORDER):
        cycle[power] = value
        log[value] = power
        value = _carryless_multiply_mod(value, 2, primitive_poly)
    # 2 must have order exactly 255: the cycle returns to 1 only at the
    # end AND visits every non-zero element once.  (Checking only
    # ``value == 1`` after 255 steps would accept any order dividing
    # 255, e.g. the AES polynomial 0x11B where 2 has order 51.)
    if value != 1 or len(set(cycle.tolist())) != GROUP_ORDER:
        raise FieldError(
            f"2 is not a primitive element modulo {primitive_poly:#x}"
        )
    exp = np.resize(cycle, EXP_TABLE_LEN)
    log[0] = ZERO_LOG_SENTINEL
    return exp, log


def build_multiplication_table(
    primitive_poly: int = DEFAULT_PRIMITIVE_POLY,
) -> np.ndarray:
    """Build the full 256x256 multiplication table bit-by-bit.

    This is the slow reference construction, retained as an independent
    cross-check of :func:`build_product_table` (which derives the same
    table from the log/antilog tables in one vectorised pass).
    """
    table = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
    for a in range(FIELD_SIZE):
        for b in range(FIELD_SIZE):
            table[a, b] = _carryless_multiply_mod(a, b, primitive_poly)
    return table


def build_product_table(exp: np.ndarray, log: np.ndarray) -> np.ndarray:
    """Derive the full 256x256 product table from (exp, log) tables.

    ``table[a, b] == a * b`` in the field, including the zero row and
    column, so a multiply is a single gather with no zero masking.  The
    table costs 64 KiB and is built once per :class:`~repro.gf.field.GF256`
    instance.

    The sentinel in ``log[0]`` keeps the intermediate index sum within
    the wrapped antilog table (max ``2 * ZERO_LOG_SENTINEL`` =
    1022 < :data:`EXP_TABLE_LEN`); the zero row/column overwrite then
    discards whatever those sentinel lookups produced.
    """
    index = log[:, None] + log[None, :]
    table = exp[index]
    table[0, :] = 0
    table[:, 0] = 0
    return table
