"""Large-scale simulator scenarios on the sharded epoch engine.

Not paper figures: these exercise the simulator substrate at the scale
the paper's cluster actually had (multiple thousands of machines) and
beyond, using the sharded engine from :mod:`repro.cluster.shard`.
Three named scenarios:

- ``scale_correlated`` -- correlated rack-batch failures (several
  machines of one rack going down together), the §2 failure mode that
  makes wide stripes lose multiple units at once;
- ``scale_hetero`` -- heterogeneous block capacities (a wide full/tail
  block-size mix), stressing the byte accounting rather than the event
  machinery;
- ``scale_chaos`` -- a chaos storm: node flaps plus latent unit
  corruption on top of the background failure trace.

Every scenario runs smoke-sized by default (seconds, suitable for
``repro run``/CI) and at 10k nodes with ``full=True``.  At smoke size
the sharded trajectory is verified against the serial oracle
bit-for-bit; at full scale the oracle is the thing being avoided, so
the check is skipped and the engine's own invariants stand in.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional

from repro.cluster.config import ClusterConfig
from repro.cluster.shard import ShardedSimulation
from repro.cluster.simulation import SimulationResult, WarehouseSimulation
from repro.experiments.runner import ExperimentResult, register_experiment

#: Full-scale topology: 10,020 machines (334 racks of 30).
FULL_RACKS = 334
#: Smoke topology: 240 machines (24 racks of 10).
SMOKE_RACKS = 24


def _scenario_config(full: bool, days: Optional[float]) -> ClusterConfig:
    if full:
        return ClusterConfig(
            num_racks=FULL_RACKS,
            nodes_per_rack=30,
            stripes_per_node=60.0,
            days=days if days is not None else 60.0,
            seed=8,
            destination_draws="hashed",
        )
    return ClusterConfig(
        num_racks=SMOKE_RACKS,
        nodes_per_rack=10,
        stripes_per_node=20.0,
        days=days if days is not None else 6.0,
        seed=8,
        destination_draws="hashed",
    )


def _fingerprint(result: SimulationResult) -> tuple:
    stats, meter = result.stats, result.meter
    return (
        tuple(result.blocks_recovered_per_day),
        tuple(result.cross_rack_bytes_per_day),
        stats.blocks_recovered,
        stats.bytes_downloaded,
        stats.unrecoverable_units,
        meter.total_bytes,
        meter.cross_rack_bytes,
        meter.num_transfers,
    )


def _run_scenario(
    experiment_id: str,
    title: str,
    config: ClusterConfig,
    full: bool,
    workers: Optional[int],
) -> ExperimentResult:
    start = time.perf_counter()
    simulation = ShardedSimulation(config, workers=workers)
    result = simulation.run()
    wall = time.perf_counter() - start

    oracle_match: Optional[bool] = None
    if not full:
        oracle_match = _fingerprint(
            WarehouseSimulation(config).run()
        ) == _fingerprint(result)

    fractions = result.degraded_fractions
    rows = [
        {"metric": "machines", "value": config.num_nodes},
        {"metric": "stripes", "value": config.num_stripes},
        {"metric": "simulated days", "value": config.days},
        {"metric": "shards", "value": simulation.num_shards},
        {"metric": "worker processes", "value": simulation.num_workers},
        {"metric": "wall seconds", "value": round(wall, 2)},
        {"metric": "simulated days/s", "value": round(config.days / wall, 1)},
        {
            "metric": "median unavailability events/day",
            "value": round(result.median_unavailability_events),
        },
        {
            "metric": "blocks recovered",
            "value": result.stats.blocks_recovered,
        },
        {
            "metric": "cross-rack TB/day (median, scaled)",
            "value": round(
                result.median_cross_rack_bytes_scaled / 1e12, 2
            ),
        },
        {
            "metric": "degraded stripes 1 / 2 / 3+ missing",
            "value": (
                f"{fractions['one']:.2%} / {fractions['two']:.2%} / "
                f"{fractions['three_plus']:.2%}"
            ),
        },
    ]
    if oracle_match is not None:
        rows.append(
            {
                "metric": "sharded == serial oracle",
                "value": oracle_match,
            }
        )
    if config.chaos_node_flaps or config.chaos_corrupt_units:
        rows.append(
            {
                "metric": "corrupt survivors excluded",
                "value": result.stats.corrupt_survivors_excluded,
            }
        )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        tables={"scenario": rows},
        data={
            "config": config,
            "wall_seconds": wall,
            "days_per_s": config.days / wall,
            "oracle_match": oracle_match,
            "result": result,
        },
    )


def scale_correlated(
    full: bool = False,
    days: Optional[float] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Correlated rack-batch failures at scale."""
    config = replace(
        _scenario_config(full, days),
        correlated_event_probability=0.25,
        correlated_batch_size=8,
    )
    return _run_scenario(
        "scale_correlated",
        "correlated rack failures (sharded engine)",
        config,
        full,
        workers,
    )


def scale_hetero(
    full: bool = False,
    days: Optional[float] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Heterogeneous block capacities: a wide full/tail size mix."""
    config = replace(
        _scenario_config(full, days),
        full_block_fraction=0.35,
        min_tail_block_fraction=0.02,
    )
    return _run_scenario(
        "scale_hetero",
        "heterogeneous block capacities (sharded engine)",
        config,
        full,
        workers,
    )


def scale_chaos(
    full: bool = False,
    days: Optional[float] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Chaos storm: node flaps plus latent corruption at scale."""
    base = _scenario_config(full, days)
    config = replace(
        base,
        chaos_node_flaps=40 if full else 6,
        chaos_corrupt_units=400 if full else 25,
    )
    return _run_scenario(
        "scale_chaos",
        "chaos storm at scale (sharded engine)",
        config,
        full,
        workers,
    )


register_experiment("scale_correlated", scale_correlated)
register_experiment("scale_hetero", scale_hetero)
register_experiment("scale_chaos", scale_chaos)
