"""Fig. 1 -- recovery of a (2,2) RS stripe moves k units across switches.

The figure shows four nodes on four racks holding ``a1``, ``a2``,
``a1+a2``, ``a1+2a2``; recovering ``a1`` transfers *two* full units
through the TOR switches and the aggregation switch.  We build exactly
that cluster with real payloads, kill node 1, run recovery, and read the
transfer counts off the traffic meter.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.network import TrafficMeter
from repro.cluster.topology import Topology
from repro.codes.rs import ReedSolomonCode
from repro.experiments.runner import ExperimentResult, register_experiment


def run(unit_size: int = 1 << 20, seed: int = 0) -> ExperimentResult:
    """Rebuild unit a1 of a (2,2) RS stripe on a 4-rack cluster."""
    topology = Topology(num_racks=4, nodes_per_rack=1)
    meter = TrafficMeter(topology, record_transfers=True)
    code = ReedSolomonCode(2, 2)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(2, unit_size), dtype=np.uint8)
    stripe = code.encode(data)

    failed_node = 0  # node 1 of the figure, holding a1
    survivors = {node: stripe[node] for node in range(4) if node != failed_node}
    plan = code.repair_plan(failed_node, survivors.keys())
    rebuilt, downloaded = code.execute_repair(failed_node, survivors, plan)
    assert np.array_equal(rebuilt, stripe[failed_node])
    # Charge each planned read as a transfer to the rebuild destination
    # (node 0's replacement lives on rack 0, as in the figure).
    for request in plan.requests:
        meter.charge(0.0, request.node, failed_node, unit_size)

    units_moved = downloaded / unit_size
    result = ExperimentResult(
        experiment_id="fig1",
        title="recovery of one (2,2) RS unit moves k units across racks",
        paper_rows=[
            {
                "metric": "units transferred through TOR switches",
                "paper": 2,
                "measured": units_moved,
            },
            {
                "metric": "units through aggregation switch",
                "paper": 2,
                "measured": meter.aggregation_switch_bytes / unit_size,
            },
            {
                "metric": "nodes contacted",
                "paper": 2,
                "measured": plan.num_connections,
            },
        ],
        data={
            "bytes_downloaded": downloaded,
            "cross_rack_bytes": meter.cross_rack_bytes,
            "switch_bytes": dict(meter.bytes_by_switch),
            "transfers": len(meter.transfers),
        },
    )
    return result


register_experiment("fig1", run)
