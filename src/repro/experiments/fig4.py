"""Fig. 4 -- the piggybacking toy example on a (2,2) RS code.

Two byte-level stripes {a1, a2} and {b1, b2}; ``a1`` is added onto the
second parity of the second stripe.  Recovery of node 1 downloads
``b2``, ``b1+b2`` and ``b1+2b2+a1`` -- 3 units instead of 4 -- while the
code still tolerates any 2 of 4 failures.  We execute exactly that
recovery with real bytes and also brute-force the fault tolerance.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.codes.piggyback import PiggybackedRSCode, fig4_toy_design
from repro.codes.rs import ReedSolomonCode
from repro.experiments.runner import ExperimentResult, register_experiment


def run(unit_size: int = 2048, seed: int = 0) -> ExperimentResult:
    code = PiggybackedRSCode(2, 2, design=fig4_toy_design())
    rs = ReedSolomonCode(2, 2)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(2, unit_size), dtype=np.uint8)
    stripe = code.encode(data)

    # Recovery of node 1 (stripe index 0): the paper's 3-unit download.
    survivors = {node: stripe[node] for node in range(1, 4)}
    rebuilt, downloaded = code.execute_repair(0, survivors)
    assert np.array_equal(rebuilt, stripe[0])
    subunits = downloaded // (unit_size // 2)

    # RS reference on the same data: 4 subunit-equivalents (2 units).
    rs_stripe = rs.encode(data)
    __, rs_downloaded = rs.execute_repair(
        0, {node: rs_stripe[node] for node in range(1, 4)}
    )

    # Fault tolerance: any 2 erasures decodable.
    tolerates_any_two = True
    for erased in combinations(range(4), 2):
        available = {
            node: stripe[node] for node in range(4) if node not in erased
        }
        decoded = code.decode(available)
        tolerates_any_two = tolerates_any_two and bool(
            np.array_equal(decoded, data)
        )

    result = ExperimentResult(
        experiment_id="fig4",
        title="(2,2) piggyback toy example",
        paper_rows=[
            {
                "metric": "bytes downloaded to recover node 1 (in stripe bytes)",
                "paper": 3,
                "measured": subunits,
                "note": "RS needs 4",
            },
            {
                "metric": "RS download for the same recovery",
                "paper": 4,
                "measured": rs_downloaded / (unit_size // 2),
                "note": "2 full units = 4 stripe bytes",
            },
            {
                "metric": "tolerates any 2 of 4 failures",
                "paper": True,
                "measured": tolerates_any_two,
            },
            {
                "metric": "extra storage vs RS",
                "paper": 0,
                "measured": int(stripe.size - rs_stripe.size),
            },
        ],
        data={
            "downloaded_bytes": downloaded,
            "rs_downloaded_bytes": rs_downloaded,
            "design_groups": [list(g) for g in code.design.groups],
        },
    )
    return result


register_experiment("fig4", run)
