"""Extension experiments beyond the paper's figures.

- ``ext_bound``: where the codes sit against the regenerating-codes
  cut-set lower bound the paper cites in Section 5;
- ``ext_capacity``: Section 3.2's closing argument quantified -- how
  much more data the saved network lets the cluster erasure-code;
- ``ext_degraded``: foreground degraded reads during outages, showing
  the repair saving also applies to the read path;
- ``ext_raiding``: the §2.1 growth pipeline -- converting "a few
  petabytes every week" of cooling data to erasure-coded form is itself
  a cross-rack network load, compared here with the recovery load;
- ``ext_latency``: §3.2's "time taken for recovery" measured inside the
  DES -- recoveries drain through a bandwidth-limited shared pipe, and
  the per-block flag-to-completion latency is compared across codes;
- ``ext_uplink``: §2.1's "heavily oversubscribed" framing -- recovery
  traffic expressed as TOR-uplink utilisation, per day, RS vs
  Piggybacked-RS.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.bounds import (
    best_cutset_bound_units,
    repair_optimality_table,
)
from repro.analysis.capacity import OperatingPoint, codable_capacity_table
from repro.analysis.growth import RaidConversionModel, weekly_growth_report
from repro.analysis.oversubscription import UplinkModel
from repro.cluster.config import ClusterConfig
from repro.cluster.sweep import run_many
from repro.codes.hitchhiker import hitchhiker_xor
from repro.codes.piggyback import PiggybackedRSCode
from repro.codes.rs import ReedSolomonCode
from repro.experiments.runner import ExperimentResult, register_experiment


def run_bound() -> ExperimentResult:
    """Repair download vs the MSR cut-set bound at (10,4)."""
    rs = ReedSolomonCode(10, 4)
    piggyback = PiggybackedRSCode(10, 4)
    rows = repair_optimality_table([rs, piggyback, hitchhiker_xor(10, 4)])
    bound = best_cutset_bound_units(10, 14)
    table = [
        {
            "code": row.code_name,
            "avg_data_repair_units": round(row.average_data_repair_units, 2),
            "cutset_bound_units": round(row.bound_units, 2),
            "gap_to_bound": f"{row.gap_to_bound:.2f}x",
            "closes_of_RS_gap": f"{row.fraction_of_possible_saving:.0%}",
        }
        for row in rows
    ]
    piggyback_row = rows[1]
    result = ExperimentResult(
        experiment_id="ext_bound",
        title="repair download vs the regenerating-codes cut-set bound",
        paper_rows=[
            {
                "metric": "cut-set optimum at (10,4), d=13 helpers (units)",
                "paper": "d/(d-k+1) [Dimakis et al., cited as [9]]",
                "measured": round(bound, 2),
            },
            {
                "metric": "piggyback closes part of the RS-to-optimum gap",
                "paper": "existing MSR codes impractical at these parameters",
                "measured": f"{piggyback_row.fraction_of_possible_saving:.0%}",
                "note": "with no restriction on (k, r)",
            },
        ],
        tables={"repair optimality": table},
        data={
            "bound_units": bound,
            "piggyback_gap": piggyback_row.gap_to_bound,
        },
    )
    return result


def run_capacity() -> ExperimentResult:
    """How much data each code can protect in the same network budget."""
    rs = ReedSolomonCode(10, 4)
    piggyback = PiggybackedRSCode(10, 4)
    point = OperatingPoint(coded_bytes=10e15, recovery_bytes_per_day=180e12)
    rows = codable_capacity_table([rs, piggyback], baseline=rs,
                                  operating_point=point)
    table = [
        {
            "code": row.code_name,
            "traffic_per_coded_byte": f"{row.relative_traffic_per_byte:.3f}x RS",
            "codable_PB_at_180TB_per_day": round(row.codable_bytes / 1e15, 2),
            "disk_saved_vs_3x_PB": round(
                row.disk_bytes_saved_vs_replication / 1e15, 2
            ),
        }
        for row in rows
    ]
    rs_row, pb_row = rows
    gain = pb_row.codable_bytes / rs_row.codable_bytes - 1
    result = ExperimentResult(
        experiment_id="ext_capacity",
        title="codable data within the recovery-network budget",
        paper_rows=[
            {
                "metric": "more data codable under Piggybacked-RS",
                "paper": "\"allow for storing a greater fraction of data "
                         "using erasure codes\" (Section 3.2)",
                "measured": f"+{gain:.0%}",
                "note": "same 180 TB/day cross-rack budget",
            },
            {
                "metric": "extra disk saved vs 3x replication (PB)",
                "paper": "(not quantified)",
                "measured": round(
                    (pb_row.disk_bytes_saved_vs_replication
                     - rs_row.disk_bytes_saved_vs_replication) / 1e15,
                    2,
                ),
            },
        ],
        tables={"codable capacity": table},
        data={"gain_fraction": gain},
    )
    return result


def run_degraded(
    days: float = 8.0,
    seed: int = 20130901,
    reads_per_stripe_per_day: float = 1.0,
    config: Optional[ClusterConfig] = None,
) -> ExperimentResult:
    """Foreground degraded reads under RS vs Piggybacked-RS."""
    if config is None:
        config = ClusterConfig(
            days=days,
            seed=seed,
            stripes_per_node=30.0,
            reads_per_stripe_per_day=reads_per_stripe_per_day,
        )
    rs_result, pb_result = run_many(
        [config, config.with_code("piggyback")]
    )
    rs_reads, pb_reads = rs_result.read_stats, pb_result.read_stats
    assert rs_reads is not None and pb_reads is not None
    saving = (
        1 - pb_reads.degraded_bytes / rs_reads.degraded_bytes
        if rs_reads.degraded_bytes
        else 0.0
    )
    table = [
        {
            "code": result.code_name,
            "reads": stats.reads,
            "degraded_reads": stats.degraded_reads,
            "degraded_fraction": f"{stats.degraded_fraction:.3%}",
            "degraded_GB": round(stats.degraded_bytes / 1e9, 2),
            "amplification_x": round(stats.degraded_read_amplification, 2),
        }
        for result, stats in ((rs_result, rs_reads), (pb_result, pb_reads))
    ]
    result = ExperimentResult(
        experiment_id="ext_degraded",
        title="degraded reads during outages: RS vs Piggybacked-RS",
        paper_rows=[
            {
                "metric": "degraded-read bytes saved by piggybacking",
                "paper": "~30% for data blocks (Section 3.1 applies to reads)",
                "measured": f"{saving:.0%}",
                "note": "degraded reads always target data blocks",
            },
            {
                "metric": "same reads served under both codes",
                "paper": True,
                "measured": rs_reads.reads == pb_reads.reads,
            },
        ],
        tables={"read workload": table},
        data={
            "saving": saving,
            "rs_degraded_bytes": rs_reads.degraded_bytes,
            "pb_degraded_bytes": pb_reads.degraded_bytes,
        },
    )
    return result


def run_raiding(
    growth_bytes_per_week: float = 2e15,
    recovery_bytes_per_day: float = 180e12,
) -> ExperimentResult:
    """Raid-conversion traffic for the weekly cold-data cohort (§2.1)."""
    rs = ReedSolomonCode(10, 4)
    piggyback = PiggybackedRSCode(10, 4)
    model = RaidConversionModel()
    reports = [
        weekly_growth_report(
            code, growth_bytes_per_week, recovery_bytes_per_day, model
        )
        for code in (rs, piggyback)
    ]
    table = [
        {
            "code": report.code_name,
            "conversion_TB_per_day": round(
                report.conversion_bytes_per_day / 1e12, 1
            ),
            "recovery_TB_per_day": round(
                report.recovery_bytes_per_day / 1e12, 1
            ),
            "total_TB_per_day": round(
                report.total_network_bytes_per_day / 1e12, 1
            ),
            "disk_freed_PB_per_week": round(
                report.storage_released_per_week / 1e15, 2
            ),
        }
        for report in reports
    ]
    # Piggybacking changes recovery, not conversion; reflect that by
    # scaling the recovery column with the exact plan-weighted fraction.
    table[1]["recovery_TB_per_day"] = round(
        recovery_bytes_per_day * (107 / 140) / 1e12, 1
    )
    table[1]["total_TB_per_day"] = (
        table[1]["conversion_TB_per_day"] + table[1]["recovery_TB_per_day"]
    )
    conversion_tb = reports[0].conversion_bytes_per_day / 1e12
    result = ExperimentResult(
        experiment_id="ext_raiding",
        title="raid-conversion vs recovery network load (Section 2.1 growth)",
        paper_rows=[
            {
                "metric": "cold-data growth raided per week",
                "paper": "\"a few petabytes every week\"",
                "measured": f"{growth_bytes_per_week / 1e15:.0f} PB",
            },
            {
                "metric": "conversion traffic (TB/day)",
                "paper": "(not measured; competes for the same TOR links)",
                "measured": round(conversion_tb, 1),
                "note": "1.4 bytes moved per logical byte raided",
            },
            {
                "metric": "conversion cost identical for Piggybacked-RS",
                "paper": "piggybacks are free at encode time",
                "measured": table[0]["conversion_TB_per_day"]
                == table[1]["conversion_TB_per_day"],
            },
            {
                "metric": "disk freed per week (PB)",
                "paper": "3x -> 1.4x on the raided cohort",
                "measured": table[0]["disk_freed_PB_per_week"],
            },
        ],
        tables={"weekly growth pipeline": table},
        data={"reports": table},
    )
    return result


def run_latency(
    days: float = 8.0,
    seed: int = 20130901,
    bandwidth_bytes_per_sec: float = 20e9,
    config: Optional[ClusterConfig] = None,
) -> ExperimentResult:
    """Per-block recovery latency through a shared bandwidth pipe."""
    import numpy as np

    if config is None:
        config = ClusterConfig(
            days=days,
            seed=seed,
            stripes_per_node=25.0,
            recovery_bandwidth_bytes_per_sec=bandwidth_bytes_per_sec,
        )
    rs_result, pb_result = run_many(
        [config, config.with_code("piggyback")]
    )
    rows = []
    latencies = {}
    for result in (rs_result, pb_result):
        lat = np.asarray(result.stats.repair_latencies)
        latencies[result.code_name] = lat
        rows.append(
            {
                "code": result.code_name,
                "blocks": int(lat.size),
                "mean_s": round(float(lat.mean()), 3),
                "median_s": round(float(np.median(lat)), 3),
                "p99_s": round(float(np.percentile(lat, 99)), 2),
                "cancelled": result.stats.cancelled_recoveries,
            }
        )
    rs_mean = rows[0]["mean_s"]
    pb_mean = rows[1]["mean_s"]
    speedup = 1 - pb_mean / rs_mean if rs_mean else 0.0
    result = ExperimentResult(
        experiment_id="ext_latency",
        title="recovery latency through a shared bandwidth pipe (DES)",
        paper_rows=[
            {
                "metric": "piggyback recovery completes faster",
                "paper": "\"expected to lower the recovery times\" (Section 3.2)",
                "measured": pb_mean < rs_mean,
                "note": f"mean {pb_mean:.2f}s vs {rs_mean:.2f}s",
            },
            {
                "metric": "latency reduction",
                "paper": "tracks the download reduction",
                "measured": f"{speedup:.0%}",
            },
            {
                "metric": "same blocks recovered",
                "paper": True,
                "measured": rows[0]["blocks"] == rows[1]["blocks"],
            },
        ],
        tables={"recovery latency": rows},
        data={
            "speedup": speedup,
            "rs_mean": rs_mean,
            "pb_mean": pb_mean,
        },
    )
    return result


def run_uplink(
    days: float = 12.0,
    seed: int = 20130901,
    uplink_gbps: float = 40.0,
    config: Optional[ClusterConfig] = None,
) -> ExperimentResult:
    """Recovery traffic as TOR-uplink utilisation, RS vs Piggybacked-RS."""
    if config is None:
        config = ClusterConfig(days=days, seed=seed, stripes_per_node=30.0)
    rs_result, pb_result = run_many(
        [config, config.with_code("piggyback")]
    )
    model = UplinkModel(racks=config.num_racks, uplink_gbps=uplink_gbps)
    rows = [
        model.report(
            rs_result.code_name, rs_result.cross_rack_bytes_per_day_scaled
        ),
        model.report(
            pb_result.code_name, pb_result.cross_rack_bytes_per_day_scaled
        ),
    ]
    rs_peak = rows[0]["peak_uplink_util_%"]
    pb_peak = rows[1]["peak_uplink_util_%"]
    result = ExperimentResult(
        experiment_id="ext_uplink",
        title="recovery traffic as TOR-uplink utilisation",
        paper_rows=[
            {
                "metric": "recovery consumes oversubscribed uplink capacity",
                "paper": "\"precious cross-rack bandwidth that is heavily "
                         "oversubscribed\" (Section 2.1)",
                "measured": f"median {rows[0]['median_uplink_util_%']}% "
                            f"of {uplink_gbps:.0f} Gb/s uplinks (RS)",
            },
            {
                "metric": "piggybacking frees uplink headroom",
                "paper": "implied by the traffic saving",
                "measured": pb_peak < rs_peak,
                "note": f"peak {pb_peak}% vs {rs_peak}%",
            },
        ],
        tables={"uplink utilisation": rows},
        data={"rs": rows[0], "pb": rows[1]},
    )
    return result


register_experiment("ext_uplink", run_uplink)
register_experiment("ext_latency", run_latency)
register_experiment("ext_bound", run_bound)
register_experiment("ext_capacity", run_capacity)
register_experiment("ext_degraded", run_degraded)
register_experiment("ext_raiding", run_raiding)
