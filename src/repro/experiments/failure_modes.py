"""Section 2.2, item 2 -- how many blocks are missing from a degraded stripe.

The paper, over six months of data: of all stripes with missing blocks,
98.08% have exactly one missing, 1.87% two, 0.05% three or more -- so
single-failure recovery is by far the common case, which is exactly the
case the Piggybacked-RS code optimises.  We run a longer simulation and
report the same split, observed at recovery time.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.config import PAPER_TARGETS, ClusterConfig
from repro.cluster.simulation import WarehouseSimulation
from repro.experiments.runner import ExperimentResult, register_experiment


def run(
    days: float = 48.0,
    seed: int = 20130901,
    config: Optional[ClusterConfig] = None,
) -> ExperimentResult:
    if config is None:
        # Lower block density is fine here: the split is a per-stripe
        # property, and more days beat more stripes for tail accuracy.
        config = ClusterConfig(days=days, seed=seed, stripes_per_node=30.0)
    sim_result = WarehouseSimulation(config).run()
    fractions = sim_result.degraded_fractions
    result = ExperimentResult(
        experiment_id="tab_missing",
        title="missing blocks per degraded stripe",
        paper_rows=[
            {
                "metric": "stripes with exactly 1 missing (%)",
                "paper": PAPER_TARGETS.fraction_one_missing * 100,
                "measured": fractions["one"] * 100,
            },
            {
                "metric": "stripes with exactly 2 missing (%)",
                "paper": PAPER_TARGETS.fraction_two_missing * 100,
                "measured": fractions["two"] * 100,
            },
            {
                "metric": "stripes with 3+ missing (%)",
                "paper": PAPER_TARGETS.fraction_three_plus_missing * 100,
                "measured": fractions["three_plus"] * 100,
            },
        ],
        tables={
            "raw histogram": [
                {"missing_blocks": missing, "occurrences": count}
                for missing, count in sorted(
                    sim_result.degraded_histogram.items()
                )
            ]
        },
        data={
            "fractions": fractions,
            "histogram": sim_result.degraded_histogram,
        },
    )
    return result


register_experiment("tab_missing", run)
