"""Repair-policy ablation on the bandwidth-throttled recovery path.

Not a paper figure: this sweeps the repair-policy engine
(:mod:`repro.cluster.repair_policy`) over a contended recovery pipe --
eager vs lazy repair, FIFO vs priority queueing, and the full stack
with a per-link bandwidth model plus hot spares -- and reports what
each policy buys:

- ``eager_fifo`` is the historical throttled baseline.  Its trajectory
  is regression-pinned: with every policy knob off the scheduler must
  reproduce the plain ``recovery_bandwidth_bytes_per_sec`` law
  *exactly*, counter for counter.
- ``lazy_fifo`` defers single-erasure repairs behind a timer so that
  transient failures heal themselves (more cancellations, fewer bytes).
- ``eager_priority`` serves multi-erasure stripes first, shrinking
  urgent queue wait (the data-loss exposure window) without changing
  which flags get repaired.
- ``lazy_priority`` combines both.
- ``full_stack`` adds the per-rack link model and hot spares on top.

Every variant runs through :class:`ShardedSimulation`; at smoke size
each is cross-checked bit-for-bit against the serial
:class:`WarehouseSimulation` oracle.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, Optional

from repro.cluster.config import ClusterConfig
from repro.cluster.shard import ShardedSimulation
from repro.cluster.simulation import SimulationResult, WarehouseSimulation
from repro.experiments.runner import ExperimentResult, register_experiment

#: Recovery-pipe rates chosen so the smoke topology (240 machines)
#: builds a real backlog: repairs contend instead of completing
#: instantly, which is the regime the policies exist for.
SMOKE_BANDWIDTH = 12e6
FULL_BANDWIDTH = 400e6


def _base_config(full: bool, days: Optional[float]) -> ClusterConfig:
    if full:
        return ClusterConfig(
            num_racks=334,
            nodes_per_rack=30,
            stripes_per_node=60.0,
            days=days if days is not None else 30.0,
            seed=8,
            destination_draws="hashed",
            recovery_bandwidth_bytes_per_sec=FULL_BANDWIDTH,
        )
    return ClusterConfig(
        num_racks=24,
        nodes_per_rack=10,
        stripes_per_node=20.0,
        days=days if days is not None else 6.0,
        seed=8,
        destination_draws="hashed",
        recovery_bandwidth_bytes_per_sec=SMOKE_BANDWIDTH,
    )


def _policy_matrix(base: ClusterConfig) -> Dict[str, ClusterConfig]:
    lazy = dict(lazy_repair=True, lazy_repair_delay_seconds=7200.0)
    priority = dict(repair_queue_discipline="priority")
    return {
        "eager_fifo": base,
        "lazy_fifo": replace(base, **lazy),
        "eager_priority": replace(base, **priority),
        "lazy_priority": replace(base, **lazy, **priority),
        "full_stack": replace(
            base,
            **lazy,
            **priority,
            priority_aging_seconds=6 * 3600.0,
            lazy_repair_threshold=200,
            repair_link_gbps=1.0,
            repair_oversubscription=4.0,
            hot_spares_per_rack=1,
        ),
    }


def _fingerprint(result: SimulationResult) -> tuple:
    stats, meter = result.stats, result.meter
    return (
        stats.blocks_recovered,
        stats.bytes_downloaded,
        stats.cancelled_recoveries,
        stats.flagged_events_recovered,
        stats.flagged_events_skipped,
        stats.queue_wait_us,
        stats.urgent_wait_us,
        stats.deferred_repairs,
        stats.promoted_repairs,
        stats.queue_peak_depth,
        stats.spare_placements,
        tuple(stats.repair_latencies),
        meter.total_bytes,
        meter.cross_rack_bytes,
        tuple(sorted(meter.cross_rack_bytes_by_day.items())),
    )


def repair_policies(
    full: bool = False,
    days: Optional[float] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Eager/lazy x FIFO/priority x spares over a contended pipe."""
    base = _base_config(full, days)
    matrix = _policy_matrix(base)

    rows = []
    fingerprints: Dict[str, tuple] = {}
    results: Dict[str, SimulationResult] = {}
    for name, config in matrix.items():
        start = time.perf_counter()
        simulation = ShardedSimulation(config, workers=workers)
        result = simulation.run()
        wall = time.perf_counter() - start
        oracle_match: Optional[bool] = None
        if not full:
            oracle_match = _fingerprint(
                WarehouseSimulation(config).run()
            ) == _fingerprint(result)
        stats = result.stats
        waits = max(stats.flagged_events_recovered, 1)
        rows.append(
            {
                "policy": name,
                "blocks": stats.blocks_recovered,
                "GB downloaded": round(stats.bytes_downloaded / 1e9, 1),
                "cancelled": stats.cancelled_recoveries,
                "deferred": stats.deferred_repairs,
                "promoted": stats.promoted_repairs,
                "peak depth": stats.queue_peak_depth,
                "mean wait s": round(stats.queue_wait_us / waits / 1e6, 1),
                "urgent wait s": round(stats.urgent_wait_us / 1e6, 1),
                "spares used": stats.spare_placements,
                "wall s": round(wall, 2),
                "oracle": "" if oracle_match is None else oracle_match,
            }
        )
        fingerprints[name] = _fingerprint(result)
        results[name] = result

    # Regression pin: all policy knobs off == the plain throttled law.
    # ``eager_fifo`` already *is* the plain config; assert the engine
    # agrees with a fresh serial run of it rather than trusting the
    # loop above shared state.
    baseline_pin = fingerprints["eager_fifo"] == _fingerprint(
        WarehouseSimulation(base).run()
    )
    urgent = {n: f[6] for n, f in fingerprints.items()}
    summary = [
        {
            "check": "eager_fifo == plain throttled law (pinned)",
            "value": baseline_pin,
        },
        {
            "check": "priority shrinks urgent wait",
            "value": urgent["eager_priority"] < urgent["eager_fifo"],
        },
        {
            "check": "lazy repair downloads fewer bytes",
            "value": fingerprints["lazy_fifo"][1]
            <= fingerprints["eager_fifo"][1],
        },
    ]
    return ExperimentResult(
        experiment_id="repair_policies",
        title="repair-policy ablation (eager/lazy x fifo/priority x spares)",
        tables={"policies": rows, "summary": summary},
        data={
            "base_config": base,
            "fingerprints": fingerprints,
            "results": results,
            "baseline_pin": baseline_pin,
            "urgent_wait_us": urgent,
        },
    )


register_experiment("repair_policies", repair_policies)
